//===- bench/bench_e2_e2e_build.cpp - E2: end-to-end build speedup --------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E2 reproduces the paper's headline table: end-to-end incremental
/// build time over a commit sequence, stateless baseline vs stateful
/// compiler, per project and on average (the paper reports a 6.72%
/// average speedup on its C++ projects). End-to-end includes
/// dependency scanning, recompiling dirty files, linking, and state
/// I/O — everything a developer waits for after saving.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E2", "End-to-end incremental build time: stateless vs stateful");

  constexpr unsigned NumCommits = 25;
  constexpr uint64_t ProfileSeed = 42;
  constexpr uint64_t EditSeed = 1337;

  std::printf("\n%u-commit replay per project, O2, mean end-to-end build "
              "time per commit (configurations interleaved per commit):\n\n",
              NumCommits);
  printRow({"project", "stateless(ms)", "stateful(ms)", "speedup",
            "skipped", "run"});

  double SumSpeedup = 0;
  double TotalBase = 0, TotalStateful = 0;
  unsigned NumProjects = 0;
  std::vector<std::string> JsonRows;

  const std::vector<ReplayConfig> Configs = {
      {"stateless", StatefulConfig::Mode::Stateless, false, OptLevel::O2},
      {"stateful", StatefulConfig::Mode::HeuristicSkip, false,
       OptLevel::O2},
  };
  for (const ProjectProfile &Profile : standardProfiles()) {
    std::vector<ReplayResult> Rs = replayCommitsInterleaved(
        Profile, ProfileSeed, EditSeed, NumCommits, Configs);
    ReplayResult &Base = Rs[0];
    ReplayResult &Stateful = Rs[1];

    double Speedup = Stateful.meanIncrementalUs() > 0
                         ? Base.meanIncrementalUs() /
                               Stateful.meanIncrementalUs()
                         : 0;
    SumSpeedup += Speedup;
    TotalBase += Base.TotalIncrementalUs;
    TotalStateful += Stateful.TotalIncrementalUs;
    ++NumProjects;

    printRow({Profile.Name, fmt(Base.meanIncrementalUs() / 1000),
              fmt(Stateful.meanIncrementalUs() / 1000),
              fmt(Speedup, 3) + "x",
              std::to_string(Stateful.PassesSkipped),
              std::to_string(Stateful.PassesRun)});
    JsonRows.push_back(
        JsonBuilder()
            .field("project", Profile.Name)
            .field("stateless_mean_us", Base.meanIncrementalUs())
            .field("stateful_mean_us", Stateful.meanIncrementalUs())
            .field("speedup", Speedup)
            .field("passes_run", Stateful.PassesRun)
            .field("passes_skipped", Stateful.PassesSkipped)
            .str());
  }

  double MeanSpeedup = NumProjects ? SumSpeedup / NumProjects : 0;
  double AggSpeedup = TotalStateful > 0 ? TotalBase / TotalStateful : 0;
  std::printf("\n");
  printRow({"geo/arith mean", "", "", fmt(MeanSpeedup, 3) + "x"});
  printRow({"aggregate", fmt(TotalBase / 1000), fmt(TotalStateful / 1000),
            fmt(AggSpeedup, 3) + "x"});
  std::printf("\nend-to-end improvement (aggregate): %s  "
              "[paper: 6.72%% average on Clang/C++ projects]\n",
              fmtPercent(1.0 - TotalStateful / TotalBase).c_str());

  // Cold-build comparison (state recording overhead shows up here).
  std::printf("\nCold (full) build time, for reference:\n\n");
  printRow({"project", "stateless(ms)", "stateful(ms)", "overhead"});
  for (const ProjectProfile &Profile : standardProfiles()) {
    ReplayResult Base = replayCommits(Profile, ProfileSeed, EditSeed, 0,
                                      StatefulConfig::Mode::Stateless);
    ReplayResult Stateful = replayCommits(
        Profile, ProfileSeed, EditSeed, 0, StatefulConfig::Mode::HeuristicSkip);
    printRow({Profile.Name, fmt(Base.ColdBuildUs / 1000),
              fmt(Stateful.ColdBuildUs / 1000),
              fmtPercent(Stateful.ColdBuildUs / Base.ColdBuildUs - 1.0)});
  }

  writeBenchJson("BENCH_e2.json",
                 JsonBuilder()
                     .field("experiment", std::string("e2_e2e_build"))
                     .field("commits", NumCommits)
                     .field("mean_speedup", MeanSpeedup)
                     .field("aggregate_speedup", AggSpeedup)
                     .field("improvement_fraction",
                            1.0 - TotalStateful / TotalBase)
                     .raw("projects", jsonArray(JsonRows))
                     .str());
  return 0;
}
