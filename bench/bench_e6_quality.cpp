//===- bench/bench_e6_quality.cpp - E6: generated-code quality impact -----------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E6 reproduces the code-quality table: does dormant-pass skipping
/// degrade the optimized output? For each project we replay the same
/// commit stream under the stateless and stateful compilers and, after
/// every commit, execute both linked programs on the VM, comparing
///  * behavior (must be identical — soundness),
///  * dynamic weighted cost (the performance proxy),
///  * static code size (VISA instruction count).
/// The paper's claim is that skipping previously-dormant passes almost
/// never loses optimizations; quality deltas should be ~0%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "vm/VM.h"

using namespace sc;
using namespace sc::bench;

namespace {

struct QualitySample {
  uint64_t Cost = 0;
  uint64_t DynInsts = 0;
  uint64_t StaticInsts = 0;
  bool OK = false;
  std::vector<int64_t> Output;
  std::optional<int64_t> Ret;
};

QualitySample sample(BuildDriver &Driver) {
  QualitySample Q;
  if (!Driver.program())
    return Q;
  for (const MFunction &F : Driver.program()->Functions)
    Q.StaticInsts += F.instructionCount();
  VM Vm(*Driver.program());
  ExecResult R = Vm.run();
  if (R.Trapped)
    return Q;
  Q.Cost = R.Cost;
  Q.DynInsts = R.DynamicInsts;
  Q.Output = R.Output;
  Q.Ret = R.ReturnValue;
  Q.OK = true;
  return Q;
}

} // namespace

int main() {
  banner("E6", "Output quality: stateful vs stateless compiled programs");

  constexpr unsigned NumCommits = 15;
  std::printf("\n%u-commit replay; dynamic cost and static size of the "
              "final program, plus worst per-commit deltas:\n\n",
              NumCommits);
  printRow({"project", "dyn-cost rel", "dyn-insts rel", "size rel",
            "worst-dyn", "behavior"}, 15);

  for (const ProjectProfile &Profile : standardProfiles()) {
    InMemoryFileSystem FS1, FS2;
    ProjectModel M1 = ProjectModel::generate(Profile, 42);
    ProjectModel M2 = ProjectModel::generate(Profile, 42);
    M1.renderAll(FS1);
    M2.renderAll(FS2);

    BuildDriver Base(FS1, makeOptions(StatefulConfig::Mode::Stateless));
    BuildDriver Stateful(FS2,
                         makeOptions(StatefulConfig::Mode::HeuristicSkip));
    if (!Base.build().Success || !Stateful.build().Success) {
      std::fprintf(stderr, "build failed\n");
      return 1;
    }

    RNG R1(999), R2(999);
    bool BehaviorOK = true;
    double WorstDynRel = 1.0;
    uint64_t FinalBaseCost = 0, FinalStatefulCost = 0;
    uint64_t FinalBaseDyn = 0, FinalStatefulDyn = 0;
    uint64_t FinalBaseSize = 0, FinalStatefulSize = 0;

    for (unsigned C = 0; C != NumCommits; ++C) {
      M1.applyCommit(R1, FS1);
      M2.applyCommit(R2, FS2);
      if (!Base.build().Success || !Stateful.build().Success) {
        std::fprintf(stderr, "incremental build failed\n");
        return 1;
      }
      QualitySample A = sample(Base);
      QualitySample B = sample(Stateful);
      if (!A.OK || !B.OK || A.Output != B.Output || A.Ret != B.Ret)
        BehaviorOK = false;
      if (A.DynInsts > 0)
        WorstDynRel = std::max(WorstDynRel,
                               double(B.DynInsts) / double(A.DynInsts));
      FinalBaseCost = A.Cost;
      FinalStatefulCost = B.Cost;
      FinalBaseDyn = A.DynInsts;
      FinalStatefulDyn = B.DynInsts;
      FinalBaseSize = A.StaticInsts;
      FinalStatefulSize = B.StaticInsts;
    }

    printRow({Profile.Name,
              fmt(FinalBaseCost
                      ? double(FinalStatefulCost) / FinalBaseCost
                      : 0,
                  4),
              fmt(FinalBaseDyn ? double(FinalStatefulDyn) / FinalBaseDyn
                               : 0,
                  4),
              fmt(FinalBaseSize
                      ? double(FinalStatefulSize) / FinalBaseSize
                      : 0,
                  4),
              fmt(WorstDynRel, 4),
              BehaviorOK ? "identical" : "DIVERGED!"},
             15);
  }

  std::printf("\n1.0 = identical quality; >1.0 = the stateful build's "
              "output executes more (weighted) work. The paper's claim "
              "is that values stay ~1.0 because a dormant-before pass is "
              "almost always dormant-after.\n");
  return 0;
}
