//===- bench/bench_e10_thread_scaling.cpp - E10: thread scaling -----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E10 measures how end-to-end build time scales with the shared
/// work-stealing pool: -j 1/2/4/8 × {stateless, stateful} over the
/// same commit replay on a large generated project. Both parallelism
/// levels are exercised — TU-level compile jobs and intra-TU
/// function-pass tasks — and the output is byte-identical at every
/// thread count (asserted by the ParallelDeterminism test; this bench
/// only measures).
///
/// Results are written to BENCH_e10.json so the perf trajectory is
/// tracked across PRs and machines. Every run records both the
/// requested -j and the effective concurrency (min of -j and the
/// machine's hardware threads): a scaling claim taken on a constrained
/// runner where -j8 really ran on 1 core is not a scaling measurement,
/// and the oversubscribed flag makes that visible to downstream
/// tooling (tools/bench_check.py skips regression gating on such
/// runs). Per-config p50/p95 incremental latency is recorded alongside
/// the mean, since means hide scheduling stalls in the tail.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <thread>

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E10", "Thread scaling: end-to-end build time at -j 1/2/4/8");

  constexpr unsigned NumCommits = 12;
  constexpr uint64_t ProfileSeed = 42;
  constexpr uint64_t EditSeed = 1337;
  const unsigned HardwareThreads =
      std::max(1u, std::thread::hardware_concurrency());

  // Large workload: enough files for TU-level parallelism and enough
  // functions per file for the intra-TU level to matter.
  ProjectProfile Profile;
  Profile.Name = "large";
  Profile.NumFiles = 30;
  Profile.MinFuncsPerFile = 8;
  Profile.MaxFuncsPerFile = 16;
  Profile.MaxImportsPerFile = 4;
  Profile.MinSegs = 3;
  Profile.MaxSegs = 8;

  const std::vector<unsigned> JobCounts = {1, 2, 4, 8};
  std::printf("\n%u-commit replay, %u files, O2, machine has %u hardware "
              "threads.\nAll 8 configurations interleaved per commit:\n\n",
              NumCommits, Profile.NumFiles, HardwareThreads);

  std::vector<ReplayConfig> Configs;
  for (unsigned J : JobCounts)
    Configs.push_back({"stateless-j" + std::to_string(J),
                       StatefulConfig::Mode::Stateless, false, OptLevel::O2,
                       J});
  for (unsigned J : JobCounts)
    Configs.push_back({"stateful-j" + std::to_string(J),
                       StatefulConfig::Mode::HeuristicSkip, false,
                       OptLevel::O2, J});

  std::vector<ReplayResult> Rs = replayCommitsInterleaved(
      Profile, ProfileSeed, EditSeed, NumCommits, Configs);

  printRow({"config", "cold(ms)", "inc-mean(ms)", "inc-p95(ms)",
            "speedup-vs-j1", "eff-conc"});
  std::vector<std::string> JsonRows;
  bool AnyOversubscribed = false;
  for (size_t I = 0; I != Configs.size(); ++I) {
    const ReplayResult &R = Rs[I];
    // Baseline: the -j1 lane of the same mode (lanes are grouped by
    // mode, four job counts each).
    const ReplayResult &J1 = Rs[I - (I % JobCounts.size())];
    double Speedup = R.meanIncrementalUs() > 0
                         ? J1.meanIncrementalUs() / R.meanIncrementalUs()
                         : 0;
    // What the pool can actually run simultaneously: a requested -j8
    // on a 1-core machine time-slices 8 workers over 1 core.
    const unsigned Effective = std::min(Configs[I].Jobs, HardwareThreads);
    const bool Oversubscribed = Effective < Configs[I].Jobs;
    AnyOversubscribed |= Oversubscribed;
    printRow({Configs[I].Label, fmt(R.ColdBuildUs / 1000),
              fmt(R.meanIncrementalUs() / 1000),
              fmt(R.p95IncrementalUs() / 1000), fmt(Speedup, 3) + "x",
              std::to_string(Effective) + (Oversubscribed ? "!" : "")});
    JsonRows.push_back(
        JsonBuilder()
            .field("config", Configs[I].Label)
            .field("jobs_requested", Configs[I].Jobs)
            .field("effective_concurrency", Effective)
            .field("oversubscribed", uint64_t(Oversubscribed))
            .field("stateful",
                   uint64_t(Configs[I].Mode != StatefulConfig::Mode::Stateless))
            .field("cold_us", R.ColdBuildUs)
            .field("incremental_mean_us", R.meanIncrementalUs())
            .field("incremental_p50_us", R.p50IncrementalUs())
            .field("incremental_p95_us", R.p95IncrementalUs())
            .field("speedup_vs_j1", Speedup)
            .field("passes_run", R.PassesRun)
            .field("passes_skipped", R.PassesSkipped)
            .str());
  }

  if (AnyOversubscribed)
    std::printf("\nWARNING: some configurations requested more jobs than the "
                "%u hardware\nthread(s) available — their speedup numbers "
                "measure time-slicing overhead,\nnot scaling. The JSON flags "
                "them (oversubscribed: 1) so regression\ntooling can skip "
                "scaling assertions on this machine.\n",
                HardwareThreads);
  else
    std::printf("\nNote: speedup is bounded by the %u hardware thread(s) of "
                "this machine;\nthe JSON records the count so cross-machine "
                "trajectories stay comparable.\n",
                HardwareThreads);

  writeBenchJson("BENCH_e10.json",
                 JsonBuilder()
                     .field("experiment", std::string("e10_thread_scaling"))
                     .field("hardware_threads", HardwareThreads)
                     .field("oversubscribed", uint64_t(AnyOversubscribed))
                     .field("commits", NumCommits)
                     .field("files", Profile.NumFiles)
                     .raw("runs", jsonArray(JsonRows))
                     .str());
  return 0;
}
