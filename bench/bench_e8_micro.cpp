//===- bench/bench_e8_micro.cpp - E8: per-pass and state micro-costs ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E8 measures the micro-costs behind the end-to-end numbers with
/// google-benchmark: individual pass runtimes on a representative
/// module, the cost of fingerprinting, state (de)serialization, and a
/// whole-TU compile at each optimization level.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/IRGen.h"
#include "ir/StructuralHash.h"
#include "lang/Parser.h"
#include "state/BuildStateDB.h"
#include "support/Trace.h"
#include "transforms/Passes.h"
#include "workload/Workload.h"

#include <benchmark/benchmark.h>

using namespace sc;

namespace {

/// A representative module: several functions with loops, arrays,
/// calls, and globals (rendered from the workload generator so the mix
/// matches the E1-E7 projects).
std::string representativeSource() {
  ProjectProfile Profile = profileByName("small_cli");
  ProjectModel Model = ProjectModel::generate(Profile, 7);
  std::string Src;
  // Concatenate a few files' worth of functions, dropping imports so
  // the result is a standalone TU (calls stay module-local because we
  // include every earlier file).
  for (unsigned I = 0; I != 4 && I + 1 < Model.numFiles(); ++I) {
    std::string Text = Model.renderFile(I);
    size_t Pos = 0;
    std::string Filtered;
    while (Pos < Text.size()) {
      size_t End = Text.find('\n', Pos);
      if (End == std::string::npos)
        End = Text.size();
      std::string Line = Text.substr(Pos, End - Pos);
      if (Line.rfind("import ", 0) != 0)
        Filtered += Line + "\n";
      Pos = End + 1;
    }
    Src += Filtered;
  }
  return Src;
}

std::unique_ptr<Module> lowerRepresentative() {
  static const std::string Src = representativeSource();
  DiagnosticEngine Diags;
  Parser P(Src, Diags);
  auto AST = P.parseModule();
  ModuleInterface Iface = analyzeModule(*AST, {}, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    std::abort();
  }
  return generateIR(*AST, "bench.mc", Iface);
}

void BM_Frontend(benchmark::State &State) {
  const std::string Src = representativeSource();
  for (auto _ : State) {
    DiagnosticEngine Diags;
    Parser P(Src, Diags);
    auto AST = P.parseModule();
    ModuleInterface Iface = analyzeModule(*AST, {}, Diags);
    auto M = generateIR(*AST, "bench.mc", Iface);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_Frontend);

void BM_SinglePass(benchmark::State &State, const char *PassName) {
  for (auto _ : State) {
    State.PauseTiming();
    auto M = lowerRepresentative();
    AnalysisManager AM(*M);
    // Pre-run mem2reg so mid-pipeline passes see realistic IR.
    auto Mem2Reg = createMem2RegPass();
    for (size_t I = 0; I != M->numFunctions(); ++I)
      Mem2Reg->run(*M->function(I), AM);
    AM.invalidateAll();
    std::unique_ptr<FunctionPass> P;
    std::string Name(PassName);
    if (Name == "mem2reg") {
      // Use fresh IR (not pre-promoted) for mem2reg itself.
      M = lowerRepresentative();
      P = createMem2RegPass();
    } else if (Name == "instsimplify")
      P = createInstSimplifyPass();
    else if (Name == "sccp")
      P = createSCCPPass();
    else if (Name == "cse")
      P = createCSEPass();
    else if (Name == "simplifycfg")
      P = createSimplifyCFGPass();
    else if (Name == "licm")
      P = createLICMPass();
    else if (Name == "loopunroll")
      P = createLoopUnrollPass();
    else if (Name == "dce")
      P = createDCEPass();
    AnalysisManager AM2(*M);
    State.ResumeTiming();

    for (size_t I = 0; I != M->numFunctions(); ++I) {
      bool Changed = P->run(*M->function(I), AM2);
      if (Changed)
        AM2.invalidate(*M->function(I));
      benchmark::DoNotOptimize(Changed);
    }
  }
}
BENCHMARK_CAPTURE(BM_SinglePass, mem2reg, "mem2reg");
BENCHMARK_CAPTURE(BM_SinglePass, instsimplify, "instsimplify");
BENCHMARK_CAPTURE(BM_SinglePass, sccp, "sccp");
BENCHMARK_CAPTURE(BM_SinglePass, cse, "cse");
BENCHMARK_CAPTURE(BM_SinglePass, simplifycfg, "simplifycfg");
BENCHMARK_CAPTURE(BM_SinglePass, licm, "licm");
BENCHMARK_CAPTURE(BM_SinglePass, loopunroll, "loopunroll");
BENCHMARK_CAPTURE(BM_SinglePass, dce, "dce");

void BM_Fingerprint(benchmark::State &State) {
  auto M = lowerRepresentative();
  for (auto _ : State)
    for (size_t I = 0; I != M->numFunctions(); ++I)
      benchmark::DoNotOptimize(structuralHash(*M->function(I)));
}
BENCHMARK(BM_Fingerprint);

void BM_StateSerialize(benchmark::State &State) {
  BuildStateDB DB;
  for (int F = 0; F != 40; ++F) {
    TUState TU;
    TU.PipelineSignature = 1;
    TU.ModuleDormancy.assign(25, 0);
    for (int G = 0; G != 8; ++G) {
      FunctionRecord Rec;
      Rec.Fingerprint = F * 100 + G;
      Rec.Dormancy.assign(25, G % 2);
      TU.Functions["fn" + std::to_string(G)] = Rec;
    }
    DB.update("file" + std::to_string(F) + ".mc", TU);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(DB.serialize());
}
BENCHMARK(BM_StateSerialize);

void BM_StateDeserialize(benchmark::State &State) {
  BuildStateDB DB;
  for (int F = 0; F != 40; ++F) {
    TUState TU;
    TU.PipelineSignature = 1;
    TU.ModuleDormancy.assign(25, 0);
    for (int G = 0; G != 8; ++G) {
      FunctionRecord Rec;
      Rec.Dormancy.assign(25, 1);
      TU.Functions["fn" + std::to_string(G)] = Rec;
    }
    DB.update("file" + std::to_string(F) + ".mc", TU);
  }
  std::string Bytes = DB.serialize();
  for (auto _ : State) {
    BuildStateDB R;
    benchmark::DoNotOptimize(R.deserialize(Bytes));
  }
}
BENCHMARK(BM_StateDeserialize);

void BM_CompileTU(benchmark::State &State, OptLevel Opt, bool Stateful) {
  static const std::string Src = representativeSource();
  BuildStateDB DB;
  CompilerOptions Options;
  Options.Opt = Opt;
  if (Stateful)
    Options.Stateful.SkipMode = StatefulConfig::Mode::HeuristicSkip;
  Compiler C(Options, Stateful ? &DB : nullptr);
  // Warm the state so the stateful case measures the skipping path.
  if (Stateful)
    C.compile("bench.mc", Src, {});
  for (auto _ : State) {
    CompileResult R = C.compile("bench.mc", Src, {});
    benchmark::DoNotOptimize(R.Success);
  }
}
BENCHMARK_CAPTURE(BM_CompileTU, O0, OptLevel::O0, false);
BENCHMARK_CAPTURE(BM_CompileTU, O1, OptLevel::O1, false);
BENCHMARK_CAPTURE(BM_CompileTU, O2_stateless, OptLevel::O2, false);
BENCHMARK_CAPTURE(BM_CompileTU, O2_stateful_warm, OptLevel::O2, true);

void BM_CompileTU_TraceDisabled(benchmark::State &State) {
  // The zero-overhead guarantee behind `scbuild --trace-out`: a
  // compiled-in but DISABLED recorder must not perturb an untraced
  // compile. Compare against BM_CompileTU/O2_stateless — the delta is
  // the total cost of the telemetry call sites (one pointer+flag test
  // each), expected to be within run-to-run noise.
  static const std::string Src = representativeSource();
  TraceRecorder Trace(/*StartEnabled=*/false);
  CompilerOptions Options;
  Options.Opt = OptLevel::O2;
  Options.Trace = &Trace;
  Compiler C(Options);
  for (auto _ : State) {
    CompileResult R = C.compile("bench.mc", Src, {});
    benchmark::DoNotOptimize(R.Success);
  }
  if (Trace.numEvents() != 0 || Trace.droppedEvents() != 0) {
    std::fprintf(stderr,
                 "E8: disabled TraceRecorder recorded events — the "
                 "zero-overhead gate is broken\n");
    std::abort();
  }
}
BENCHMARK(BM_CompileTU_TraceDisabled);

void BM_CompileTU_SamplingOff(benchmark::State &State) {
  // The `--profile-sample-hz=0` guarantee: with tracing ON but
  // sampling OFF, every SampleFrame site (build phases, compile
  // phases, per-pass) must cost exactly one relaxed load — no stack
  // maintenance, no allocation. Compare against an enabled-recorder
  // run; the delta is the sampling hooks alone.
  static const std::string Src = representativeSource();
  TraceRecorder Trace(/*StartEnabled=*/true, 1u << 12);
  CompilerOptions Options;
  Options.Opt = OptLevel::O2;
  Options.Trace = &Trace;
  Compiler C(Options);
  for (auto _ : State) {
    CompileResult R = C.compile("bench.mc", Src, {});
    benchmark::DoNotOptimize(R.Success);
  }
  if (!Trace.sampleStacks().empty()) {
    std::fprintf(stderr,
                 "E8: sampling-off compile left current-span frames — "
                 "the --profile-sample-hz=0 gate is broken\n");
    std::abort();
  }
}
BENCHMARK(BM_CompileTU_SamplingOff);

void BM_TraceSpanRecord(benchmark::State &State, bool Enabled) {
  // Per-event recording cost: enabled measures the lock-free ring
  // append (steady-state: the ring wraps and overwrites), disabled
  // measures the early-out every instrumented call site pays.
  TraceRecorder R(Enabled, 1u << 12);
  for (auto _ : State) {
    const uint64_t T0 = nowNanos();
    R.span("bench", "s", T0, T0 + 1);
  }
  if (!Enabled && R.numEvents() != 0)
    std::abort();
}
BENCHMARK_CAPTURE(BM_TraceSpanRecord, enabled, true);
BENCHMARK_CAPTURE(BM_TraceSpanRecord, disabled, false);

} // namespace

BENCHMARK_MAIN();
