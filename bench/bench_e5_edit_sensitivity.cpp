//===- bench/bench_e5_edit_sensitivity.cpp - E5: speedup vs edit kind/size ------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E5 reproduces the sensitivity figure: how does the stateful
/// compiler's benefit vary with the kind of edit? Body-local tweaks
/// keep most dormancy records valid (high skip rates); interface
/// changes dirty more files and add unseen functions (lower rates).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace sc;
using namespace sc::bench;

namespace {

struct KindResult {
  double BaseUs = 0;     // Stateless lane total.
  double StatefulUs = 0; // Stateful lane total.
  uint64_t Skipped = 0;
  uint64_t Run = 0;
  unsigned FilesCompiled = 0;
  unsigned Edits = 0;
};

/// Measures one edit kind with the stateless and stateful lanes
/// interleaved per edit (cancels machine drift between the modes).
KindResult measureKind(EditKind Kind, unsigned NumEdits) {
  ProjectProfile Profile = profileByName("json_lib");
  InMemoryFileSystem FS1, FS2;
  ProjectModel M1 = ProjectModel::generate(Profile, 42);
  ProjectModel M2 = ProjectModel::generate(Profile, 42);
  M1.renderAll(FS1);
  M2.renderAll(FS2);
  BuildDriver Base(FS1, makeOptions(StatefulConfig::Mode::Stateless));
  BuildDriver Stateful(FS2,
                       makeOptions(StatefulConfig::Mode::HeuristicSkip));
  if (!Base.build().Success || !Stateful.build().Success)
    return {};

  KindResult R;
  RNG Rand1(777), Rand2(777);
  for (unsigned E = 0; E != NumEdits; ++E) {
    M1.applyEdit(Kind, Rand1, FS1);
    M2.applyEdit(Kind, Rand2, FS2);
    BuildStats SA = Base.build();
    BuildStats SB = Stateful.build();
    if (!SA.Success || !SB.Success)
      return R;
    ++R.Edits;
    R.BaseUs += SA.TotalUs;
    R.StatefulUs += SB.TotalUs;
    R.Skipped += SB.Skip.PassesSkipped;
    R.Run += SB.Skip.PassesRun;
    R.FilesCompiled += SA.FilesCompiled;
  }
  return R;
}

} // namespace

int main() {
  banner("E5", "Speedup sensitivity to edit kind (json_lib, O2)");

  constexpr unsigned NumEdits = 20;
  const EditKind Kinds[] = {
      EditKind::ConstTweak,   EditKind::CondFlip,
      EditKind::StmtInsert,   EditKind::StmtDelete,
      EditKind::BodyRewrite,  EditKind::AddFunction,
      EditKind::SignatureChange,
  };

  std::printf("\n%u edits of each kind, identical edit streams per mode:\n\n",
              NumEdits);
  printRow({"edit kind", "files/edit", "stateless(ms)", "stateful(ms)",
            "speedup", "skip-rate"}, 16);

  for (EditKind Kind : Kinds) {
    KindResult R = measureKind(Kind, NumEdits);

    double MeanBase = R.Edits ? R.BaseUs / R.Edits : 0;
    double MeanStateful = R.Edits ? R.StatefulUs / R.Edits : 0;
    double SkipRate = R.Skipped + R.Run
                          ? double(R.Skipped) / (R.Skipped + R.Run)
                          : 0;

    printRow({editKindName(Kind),
              fmt(R.Edits ? double(R.FilesCompiled) / R.Edits : 0, 1),
              fmt(MeanBase / 1000), fmt(MeanStateful / 1000),
              fmt(MeanStateful > 0 ? MeanBase / MeanStateful : 0, 3) + "x",
              fmtPercent(SkipRate)},
             16);
  }

  std::printf("\nExpected shape: body-local edits (const-tweak, cond-flip) "
              "show the highest skip rates; interface-changing edits "
              "(add-function, signature-change) recompile more files and "
              "encounter unseen functions, reducing the benefit.\n");
  return 0;
}
