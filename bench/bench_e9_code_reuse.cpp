//===- bench/bench_e9_code_reuse.cpp - E9: function-level code reuse ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E9 evaluates the repository's extension beyond the paper:
/// function-level *code* reuse. Where the paper skips dormant passes
/// for recompiled functions, the extension splices the entire cached
/// compiled code of any function whose inline-closure key is unchanged
/// — skipping pipeline AND backend. Measures the extra end-to-end
/// gain, the reuse rate, and the state-DB growth it costs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E9", "Extension: function-level code reuse (beyond the paper)");

  constexpr unsigned NumCommits = 25;
  std::printf("\n%u-commit replay, O2; heuristic skipping with and "
              "without code reuse (interleaved per commit):\n\n",
              NumCommits);
  printRow({"project", "skip-only(ms)", "+reuse(ms)", "speedup",
            "reused-fns", "stateDB(KB)"}, 15);

  const std::vector<ReplayConfig> Pair = {
      {"skip-only", StatefulConfig::Mode::HeuristicSkip, false,
       OptLevel::O2},
      {"skip+reuse", StatefulConfig::Mode::HeuristicSkip, true,
       OptLevel::O2},
  };
  double SumBase = 0, SumReuse = 0;
  for (const ProjectProfile &Profile : standardProfiles()) {
    std::vector<ReplayResult> Rs = replayCommitsInterleaved(
        Profile, 42, 1337, NumCommits, Pair);
    double BaseMs = Rs[0].meanIncrementalUs();
    double ReuseMs = Rs[1].meanIncrementalUs();
    SumBase += BaseMs;
    SumReuse += ReuseMs;
    printRow({Profile.Name, fmt(BaseMs / 1000), fmt(ReuseMs / 1000),
              fmt(ReuseMs > 0 ? BaseMs / ReuseMs : 0, 3) + "x",
              std::to_string(Rs[1].FunctionsReused),
              fmt(Rs[1].StateDBBytes / 1024.0, 1)},
             15);
  }
  std::printf("\naggregate extra improvement from code reuse: %s\n",
              fmtPercent(1.0 - SumReuse / SumBase).c_str());

  // Stateless -> skip -> skip+reuse ladder on one project.
  std::printf("\nThe full incrementality ladder (http_server, "
              "interleaved):\n\n");
  printRow({"configuration", "mean-inc(ms)", "vs stateless"}, 26);
  const std::vector<ReplayConfig> Ladder = {
      {"stateless", StatefulConfig::Mode::Stateless, false, OptLevel::O2},
      {"skip", StatefulConfig::Mode::HeuristicSkip, false, OptLevel::O2},
      {"skip+reuse", StatefulConfig::Mode::HeuristicSkip, true,
       OptLevel::O2},
  };
  std::vector<ReplayResult> Rungs = replayCommitsInterleaved(
      profileByName("http_server"), 42, 1337, NumCommits, Ladder);
  double Ref = Rungs[0].meanIncrementalUs();
  printRow({"stateless (paper baseline)", fmt(Ref / 1000), "1.000x"}, 26);
  printRow({"dormant-pass skip (paper)",
            fmt(Rungs[1].meanIncrementalUs() / 1000),
            fmt(Ref / Rungs[1].meanIncrementalUs(), 3) + "x"}, 26);
  printRow({"skip + code reuse (ours)",
            fmt(Rungs[2].meanIncrementalUs() / 1000),
            fmt(Ref / Rungs[2].meanIncrementalUs(), 3) + "x"}, 26);
  return 0;
}
