//===- bench/BenchUtils.h - Experiment harness helpers ----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the experiment binaries (E1-E9): fixed-width
/// table printing and the standard build-and-edit driver loops. Each
/// bench binary regenerates one table/figure of EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BENCH_BENCHUTILS_H
#define SC_BENCH_BENCHUTILS_H

#include "build_sys/BuildSystem.h"
#include "support/RNG.h"
#include "workload/Workload.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace sc::bench {

/// Prints a header banner for one experiment.
inline void banner(const std::string &Id, const std::string &Title) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", Id.c_str(), Title.c_str());
  std::printf("================================================================\n");
}

/// Simple fixed-width row printing.
inline void printRow(const std::vector<std::string> &Cells, int Width = 14) {
  for (const std::string &C : Cells)
    std::printf("%-*s", Width, C.c_str());
  std::printf("\n");
}

inline std::string fmt(double V, int Precision = 2) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

inline std::string fmtPercent(double Fraction, int Precision = 2) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}

/// Standard build options for an experiment run. \p Jobs is the total
/// build concurrency (work-stealing pool shared by TU jobs and
/// function tasks).
inline BuildOptions makeOptions(StatefulConfig::Mode Mode,
                                OptLevel Opt = OptLevel::O2,
                                unsigned Jobs = 1) {
  BuildOptions BO;
  BO.Compiler.Opt = Opt;
  BO.Compiler.Stateful.SkipMode = Mode;
  BO.Jobs = Jobs;
  return BO;
}

//===--- Machine-readable output (BENCH_*.json) ---------------------------===//

/// Minimal JSON object builder: enough for flat benchmark records and
/// nested arrays built via raw(). Not a general serializer — bench
/// values are ASCII numbers and identifier-like strings.
class JsonBuilder {
public:
  JsonBuilder &field(const std::string &K, const std::string &V) {
    sep();
    Out += "\"" + K + "\":\"" + V + "\"";
    return *this;
  }
  JsonBuilder &field(const std::string &K, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    sep();
    Out += "\"" + K + "\":" + Buf;
    return *this;
  }
  JsonBuilder &field(const std::string &K, uint64_t V) {
    sep();
    Out += "\"" + K + "\":" + std::to_string(V);
    return *this;
  }
  JsonBuilder &field(const std::string &K, unsigned V) {
    return field(K, static_cast<uint64_t>(V));
  }
  /// Inserts \p RawJson verbatim (for arrays / nested objects).
  JsonBuilder &raw(const std::string &K, const std::string &RawJson) {
    sep();
    Out += "\"" + K + "\":" + RawJson;
    return *this;
  }
  std::string str() const { return "{" + Out + "}"; }

private:
  void sep() {
    if (!Out.empty())
      Out += ",";
  }
  std::string Out;
};

/// Joins element JSON strings into an array literal.
inline std::string jsonArray(const std::vector<std::string> &Elems) {
  std::string Out = "[";
  for (size_t I = 0; I != Elems.size(); ++I) {
    if (I)
      Out += ",";
    Out += Elems[I];
  }
  return Out + "]";
}

/// Writes \p Json to \p Path (relative to the bench's working
/// directory) and echoes where it went.
inline void writeBenchJson(const std::string &Path, const std::string &Json) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("\nwrote %s\n", Path.c_str());
}

/// Linear-interpolated percentile of \p Values (\p P in [0, 100]).
inline double percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0;
  std::sort(Values.begin(), Values.end());
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

/// Measured end-to-end numbers for one commit-replay run.
struct ReplayResult {
  double ColdBuildUs = 0;
  double TotalIncrementalUs = 0; // Sum over all commits.
  /// Per-commit incremental build latency, in commit order; feeds the
  /// p50/p95 tail metrics (means hide scheduling stalls).
  std::vector<double> IncrementalUs;
  unsigned Commits = 0;
  unsigned FilesCompiled = 0;
  uint64_t PassesRun = 0;
  uint64_t PassesSkipped = 0;
  double MiddleEndUs = 0;  // Sum of middle-end phase time.
  double FrontendUs = 0;
  double BackendUs = 0;
  double StateUs = 0;
  double StateIOUs = 0;
  uint64_t StateDBBytes = 0;
  uint64_t FunctionsReused = 0;

  double meanIncrementalUs() const {
    return Commits ? TotalIncrementalUs / Commits : 0;
  }
  double p50IncrementalUs() const { return percentile(IncrementalUs, 50); }
  double p95IncrementalUs() const { return percentile(IncrementalUs, 95); }
};

/// Replays \p NumCommits commits over a generated project with the
/// given build options. The same (ProfileSeed, EditSeed) gives an
/// identical source history for every configuration, so they are
/// directly comparable.
inline ReplayResult replayCommits(const ProjectProfile &Profile,
                                  uint64_t ProfileSeed, uint64_t EditSeed,
                                  unsigned NumCommits,
                                  const BuildOptions &Options) {
  InMemoryFileSystem FS;
  ProjectModel Model = ProjectModel::generate(Profile, ProfileSeed);
  Model.renderAll(FS);

  BuildDriver Driver(FS, Options);
  ReplayResult R;
  BuildStats Cold = Driver.build();
  if (!Cold.Success) {
    std::fprintf(stderr, "cold build failed: %s\n", Cold.ErrorText.c_str());
    return R;
  }
  R.ColdBuildUs = Cold.TotalUs;

  RNG Rand(EditSeed);
  for (unsigned C = 0; C != NumCommits; ++C) {
    Model.applyCommit(Rand, FS);
    BuildStats S = Driver.build();
    if (!S.Success) {
      std::fprintf(stderr, "incremental build failed: %s\n",
                   S.ErrorText.c_str());
      return R;
    }
    ++R.Commits;
    R.TotalIncrementalUs += S.TotalUs;
    R.IncrementalUs.push_back(S.TotalUs);
    R.FilesCompiled += S.FilesCompiled;
    R.PassesRun += S.Skip.PassesRun;
    R.PassesSkipped += S.Skip.PassesSkipped;
    R.MiddleEndUs += S.CompilePhases.MiddleUs;
    R.FrontendUs += S.CompilePhases.FrontendUs;
    R.BackendUs += S.CompilePhases.BackendUs;
    R.StateUs += S.CompilePhases.StateUs;
    R.StateIOUs += S.StateIOUs;
    R.StateDBBytes = S.StateDBBytes;
  }
  return R;
}

inline ReplayResult replayCommits(const ProjectProfile &Profile,
                                  uint64_t ProfileSeed, uint64_t EditSeed,
                                  unsigned NumCommits,
                                  StatefulConfig::Mode Mode,
                                  OptLevel Opt = OptLevel::O2) {
  return replayCommits(Profile, ProfileSeed, EditSeed, NumCommits,
                       makeOptions(Mode, Opt));
}

/// One compiler configuration for an interleaved comparison.
struct ReplayConfig {
  std::string Label;
  StatefulConfig::Mode Mode = StatefulConfig::Mode::Stateless;
  bool ReuseCode = false;
  OptLevel Opt = OptLevel::O2;
  unsigned Jobs = 1;
};

/// Replays the same commit stream against several configurations,
/// building them in round-robin order after every commit. Interleaving
/// removes machine-load drift from the comparison: any slow period
/// hits all configurations equally.
inline std::vector<ReplayResult>
replayCommitsInterleaved(const ProjectProfile &Profile, uint64_t ProfileSeed,
                         uint64_t EditSeed, unsigned NumCommits,
                         const std::vector<ReplayConfig> &Configs) {
  struct Lane {
    std::unique_ptr<InMemoryFileSystem> FS;
    std::unique_ptr<ProjectModel> Model;
    std::unique_ptr<BuildDriver> Driver;
    RNG Rand{0};
  };
  std::vector<Lane> Lanes;
  std::vector<ReplayResult> Results(Configs.size());

  for (const ReplayConfig &Cfg : Configs) {
    Lane L;
    L.FS = std::make_unique<InMemoryFileSystem>();
    L.Model = std::make_unique<ProjectModel>(
        ProjectModel::generate(Profile, ProfileSeed));
    L.Model->renderAll(*L.FS);
    BuildOptions BO = makeOptions(Cfg.Mode, Cfg.Opt, Cfg.Jobs);
    BO.Compiler.Stateful.ReuseFunctionCode = Cfg.ReuseCode;
    L.Driver = std::make_unique<BuildDriver>(*L.FS, BO);
    L.Rand = RNG(EditSeed);
    Lanes.push_back(std::move(L));
  }

  for (size_t I = 0; I != Lanes.size(); ++I) {
    BuildStats Cold = Lanes[I].Driver->build();
    if (!Cold.Success) {
      std::fprintf(stderr, "cold build failed: %s\n",
                   Cold.ErrorText.c_str());
      return Results;
    }
    Results[I].ColdBuildUs = Cold.TotalUs;
  }

  for (unsigned C = 0; C != NumCommits; ++C) {
    for (size_t I = 0; I != Lanes.size(); ++I) {
      Lanes[I].Model->applyCommit(Lanes[I].Rand, *Lanes[I].FS);
      BuildStats S = Lanes[I].Driver->build();
      if (!S.Success) {
        std::fprintf(stderr, "incremental build failed: %s\n",
                     S.ErrorText.c_str());
        return Results;
      }
      ReplayResult &R = Results[I];
      ++R.Commits;
      R.TotalIncrementalUs += S.TotalUs;
      R.IncrementalUs.push_back(S.TotalUs);
      R.FilesCompiled += S.FilesCompiled;
      R.PassesRun += S.Skip.PassesRun;
      R.PassesSkipped += S.Skip.PassesSkipped;
      R.MiddleEndUs += S.CompilePhases.MiddleUs;
      R.FrontendUs += S.CompilePhases.FrontendUs;
      R.BackendUs += S.CompilePhases.BackendUs;
      R.StateUs += S.CompilePhases.StateUs;
      R.StateIOUs += S.StateIOUs;
      R.StateDBBytes = S.StateDBBytes;
      R.FunctionsReused += S.Skip.FunctionsReused;
    }
  }
  return Results;
}

} // namespace sc::bench

#endif // SC_BENCH_BENCHUTILS_H
