//===- bench/bench_e7_persistence.cpp - E7: dormancy persistence ablation -------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E7 reproduces the ablation that justifies the paper's heuristic:
/// when a function's body is edited, how often does a pass that was
/// dormant before the edit stay dormant after it? Every build in this
/// study runs the full pipeline (RefreshInterval = 1 disables
/// skipping), so each build's dormancy vectors are ground truth; we
/// compare consecutive snapshots per (TU, function, pass). A high
/// persistence rate means skipping by name-match loses almost nothing;
/// "awakened" passes (dormant before, active after) are the only
/// quality risk.
///
/// Also compares the policies' skip volume: HeuristicSkip vs ExactSkip
/// vs refresh intervals (the knobs from DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "driver/Compiler.h"

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E7", "Dormancy persistence across edits (heuristic ablation)");

  ProjectProfile Profile = profileByName("json_lib");
  constexpr unsigned NumEdits = 60;

  // Ground-truth study: track dormancy vectors across edits with a
  // full pipeline every time (Stateless mode records are produced by a
  // dedicated stateful compiler whose skip mode never skips: use
  // ExactSkip with always-mismatching... simplest: HeuristicSkip with
  // RefreshInterval=1 forces a full pipeline each build while still
  // recording state).
  InMemoryFileSystem FS;
  ProjectModel Model = ProjectModel::generate(Profile, 42);
  Model.renderAll(FS);

  BuildOptions BO = makeOptions(StatefulConfig::Mode::HeuristicSkip);
  BO.Compiler.Stateful.RefreshInterval = 1; // Always re-learn.
  BuildDriver Driver(FS, BO);
  if (!Driver.build().Success) {
    std::fprintf(stderr, "cold build failed\n");
    return 1;
  }

  // Snapshot dormancy per (TU, function) across edits by re-reading
  // the state DB between builds.
  auto SnapshotDormancy = [&]() {
    std::map<std::string, std::vector<uint8_t>> Out;
    const BuildStateDB &DB = Driver.stateDB();
    for (const std::string &Path : FS.listFiles()) {
      const TUState *TU = DB.lookup(Path);
      if (!TU)
        continue;
      for (const auto &[Fn, Rec] : TU->Functions)
        Out[Path + "::" + Fn] = Rec.Dormancy;
    }
    return Out;
  };

  auto Before = SnapshotDormancy();
  RNG Rand(31337);
  uint64_t DormantBefore = 0, StillDormant = 0, Awakened = 0;
  uint64_t ActiveBefore = 0, FellAsleep = 0;

  for (unsigned E = 0; E != NumEdits; ++E) {
    Model.applyCommit(Rand, FS);
    if (!Driver.build().Success) {
      std::fprintf(stderr, "incremental build failed\n");
      return 1;
    }
    auto After = SnapshotDormancy();
    for (const auto &[Key, NewBits] : After) {
      auto It = Before.find(Key);
      if (It == Before.end() || It->second.size() != NewBits.size())
        continue;
      for (size_t I = 0; I != NewBits.size(); ++I) {
        if (It->second[I]) {
          ++DormantBefore;
          if (NewBits[I])
            ++StillDormant;
          else
            ++Awakened;
        } else {
          ++ActiveBefore;
          if (NewBits[I])
            ++FellAsleep;
        }
      }
    }
    Before = std::move(After);
  }

  std::printf("\nAcross %u commits on %s (every build fully re-learned):\n\n",
              NumEdits, Profile.Name.c_str());
  printRow({"metric", "count"}, 34);
  printRow({"dormant (pass,fn) pairs before", std::to_string(DormantBefore)},
           34);
  printRow({"  still dormant after edit", std::to_string(StillDormant)}, 34);
  printRow({"  awakened by edit", std::to_string(Awakened)}, 34);
  printRow({"active pairs before", std::to_string(ActiveBefore)}, 34);
  printRow({"  fell dormant after edit", std::to_string(FellAsleep)}, 34);
  std::printf("\ndormancy persistence: %s   [the heuristic's justification; "
              "awakened passes are the quality risk E6 bounds]\n",
              fmtPercent(DormantBefore
                             ? double(StillDormant) / DormantBefore
                             : 0)
                  .c_str());

  //===--- Policy ablation: skip volume and time ---------------------------===//

  std::printf("\nPolicy ablation (25 commits, render_engine):\n\n");
  printRow({"policy", "mean-inc(ms)", "skip-rate"}, 22);

  struct PolicyCase {
    const char *Name;
    StatefulConfig::Mode Mode;
    unsigned Refresh;
    bool ModulePasses;
  };
  const PolicyCase Cases[] = {
      {"stateless", StatefulConfig::Mode::Stateless, 0, true},
      {"exact", StatefulConfig::Mode::ExactSkip, 0, true},
      {"heuristic", StatefulConfig::Mode::HeuristicSkip, 0, true},
      {"heuristic+refresh4", StatefulConfig::Mode::HeuristicSkip, 4, true},
      {"heuristic-nomodule", StatefulConfig::Mode::HeuristicSkip, 0, false},
  };

  ProjectProfile Big = profileByName("render_engine");
  for (const PolicyCase &PC : Cases) {
    InMemoryFileSystem PFS;
    ProjectModel PM = ProjectModel::generate(Big, 42);
    PM.renderAll(PFS);
    BuildOptions PBO = makeOptions(PC.Mode);
    PBO.Compiler.Stateful.RefreshInterval = PC.Refresh;
    PBO.Compiler.Stateful.SkipModulePasses = PC.ModulePasses;
    BuildDriver PDriver(PFS, PBO);
    if (!PDriver.build().Success)
      continue;
    RNG PRand(1337);
    double Total = 0;
    uint64_t Skip = 0, Run = 0;
    for (unsigned C = 0; C != 25; ++C) {
      PM.applyCommit(PRand, PFS);
      BuildStats S = PDriver.build();
      if (!S.Success)
        break;
      Total += S.TotalUs;
      Skip += S.Skip.PassesSkipped;
      Run += S.Skip.PassesRun;
    }
    printRow({PC.Name, fmt(Total / 25 / 1000),
              fmtPercent(Skip + Run ? double(Skip) / (Skip + Run) : 0)},
             22);
  }
  return 0;
}
