//===- bench/bench_daemon.cpp - Daemon load/latency harness ---------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Load harness for the multi-client build service: genny-style phases
/// ramp N concurrent clients (N = 1/4/8) through edit → build → verify
/// cycles against one in-process BuildDaemon, measuring what a shared
/// service must be measured by — tail latency, not means.
///
/// Per client-count phase:
///  * one warmup (cold) build, excluded from latencies;
///  * R rounds of: apply one scripted edit, then fire N concurrent
///    identical build requests and record each client's end-to-end
///    latency (connect → exit frame).
/// Identical concurrent requests are expected to coalesce into few
/// compile waves; the phase records the daemon's coalesce counter
/// delta and queue-depth high-water mark alongside p50/p95/p99 latency
/// and the per-client fairness spread (slowest client mean / fastest
/// client mean — a fair service keeps this near 1).
///
/// A separate overload phase (MaxQueue=1, non-coalescible alternating
/// clean/incremental requests, deliberate service-time floor) verifies
/// admission control under pressure: some requests MUST bounce with
/// `busy` frames, and every bounced client gets that answer quickly
/// instead of hanging.
///
/// Results land in BENCH_daemon.json for tools/bench_check.py, which
/// gates tail-latency regressions the same way the thread-scaling
/// bench is gated (and SKIPs honestly on constrained/oversubscribed
/// runners, where queueing behavior reflects the runner, not the
/// code).
///
/// The daemon runs in-process (not a forked scbuildd) so the bench can
/// read service counters directly; the socket, framing, threading, and
/// admission paths are exactly the production ones.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "build_sys/Daemon.h"
#include "build_sys/DaemonClient.h"
#include "support/FileSystem.h"
#include "support/RNG.h"
#include "workload/Workload.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace sc;
using namespace sc::bench;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - Start)
      .count();
}

struct TempTree {
  std::string Path;
  TempTree() {
    char Buf[] = "/tmp/sc-benchd-XXXXXX";
    const char *P = ::mkdtemp(Buf);
    Path = P ? P : "";
  }
  ~TempTree() {
    if (!Path.empty()) {
      std::error_code EC;
      std::filesystem::remove_all(Path, EC);
    }
  }
};

/// One daemon lifetime: in-process BuildDaemon served from a thread.
struct Service {
  RealFileSystem &FS;
  std::unique_ptr<BuildDaemon> Daemon;
  std::thread Server;

  Service(RealFileSystem &FS, unsigned HoldMs, unsigned MaxQueue = 16)
      : FS(FS) {
    DaemonConfig Config;
    Config.Quiet = true;
    Config.Build.Compiler.Stateful.SkipMode =
        StatefulConfig::Mode::HeuristicSkip;
    Config.Build.Compiler.RecordDecisions = true;
    Config.HoldMs = HoldMs;
    Config.MaxQueue = MaxQueue;
    Daemon = std::make_unique<BuildDaemon>(FS, std::move(Config));
    std::string Err;
    if (!Daemon->start(&Err)) {
      std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
      std::exit(1);
    }
    Server = std::thread([this] { Daemon->serve(); });
  }
  ~Service() {
    Daemon->requestStop();
    Server.join();
  }

  /// One synchronous build request; returns the exit code (or a
  /// DaemonClient error value) and the latency in ms.
  int build(double *LatencyMs, bool Clean = false) {
    DaemonRequest Req;
    Req.Verb = "build";
    Req.Quiet = true;
    Req.Clean = Clean;
    const auto Start = Clock::now();
    DaemonClient C = DaemonClient::connect(Daemon->socketPath());
    int Code = -1;
    if (C.connected())
      Code = C.roundTrip(Req, nullptr, nullptr, nullptr, nullptr);
    if (LatencyMs)
      *LatencyMs = msSince(Start);
    return Code;
  }
};

/// Results of one client-count phase.
struct PhaseResult {
  unsigned Clients = 0;
  unsigned Requests = 0;
  unsigned Failures = 0;
  double P50Ms = 0, P95Ms = 0, P99Ms = 0;
  double FairnessSpread = 1.0;
  uint64_t CoalesceHits = 0;
  uint32_t QueueHighWater = 0;
  uint64_t BusyRejections = 0;
  uint64_t BuildsServed = 0;
};

PhaseResult runPhase(RealFileSystem &FS, ProjectModel &Model, RNG &Rand,
                     unsigned Clients, unsigned Rounds, unsigned HoldMs) {
  Service S(FS, HoldMs);
  PhaseResult R;
  R.Clients = Clients;

  // Warmup (cold or post-edit) build, excluded from the measurements.
  double Ignore = 0;
  if (S.build(&Ignore) != 0) {
    std::fprintf(stderr, "warmup build failed (clients=%u)\n", Clients);
    std::exit(1);
  }
  const DaemonServiceStats Before = S.Daemon->serviceStats();

  std::vector<std::vector<double>> PerClient(Clients);
  std::atomic<unsigned> Failures{0};
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    // One scripted edit dirties the tree; N clients then race to
    // request the rebuild. Identical pending requests coalesce.
    Model.applyCommit(Rand, FS);
    std::vector<std::thread> Threads;
    for (unsigned CI = 0; CI != Clients; ++CI)
      Threads.emplace_back([&, CI] {
        double Ms = 0;
        if (S.build(&Ms) != 0)
          Failures.fetch_add(1);
        PerClient[CI].push_back(Ms);
      });
    for (auto &T : Threads)
      T.join();
  }

  std::vector<double> All;
  std::vector<double> ClientMeans;
  for (const auto &Lats : PerClient) {
    double Sum = 0;
    for (double L : Lats) {
      All.push_back(L);
      Sum += L;
    }
    if (!Lats.empty())
      ClientMeans.push_back(Sum / static_cast<double>(Lats.size()));
  }
  R.Requests = static_cast<unsigned>(All.size());
  R.Failures = Failures.load();
  R.P50Ms = percentile(All, 50);
  R.P95Ms = percentile(All, 95);
  R.P99Ms = percentile(All, 99);
  if (ClientMeans.size() > 1) {
    double Min = ClientMeans[0], Max = ClientMeans[0];
    for (double M : ClientMeans) {
      Min = std::min(Min, M);
      Max = std::max(Max, M);
    }
    R.FairnessSpread = Min > 0 ? Max / Min : 1.0;
  }

  const DaemonServiceStats After = S.Daemon->serviceStats();
  R.CoalesceHits = After.Coalesced - Before.Coalesced;
  R.QueueHighWater = After.QueueHighWater;
  R.BusyRejections = After.BusyRejections - Before.BusyRejections;
  R.BuildsServed = After.BuildsServed - Before.BuildsServed;
  return R;
}

} // namespace

int main() {
  banner("DAEMON", "Multi-client build service: load, tail latency, overload");

  const unsigned HardwareThreads =
      std::max(1u, std::thread::hardware_concurrency());
  constexpr unsigned Rounds = 6;
  constexpr unsigned HoldMs = 5; // Service-time floor: queues can form.

  // Medium workload on a real (disk) tree — the daemon protocol runs
  // over a real Unix socket against RealFileSystem.
  ProjectProfile Profile;
  Profile.Name = "daemon-load";
  Profile.NumFiles = 12;
  Profile.MinFuncsPerFile = 4;
  Profile.MaxFuncsPerFile = 8;
  Profile.MaxImportsPerFile = 3;

  const std::vector<unsigned> ClientCounts = {1, 4, 8};
  // More client threads than cores means latency measures the runner's
  // scheduler as much as the service; record it so the regression gate
  // can skip honestly.
  const unsigned MaxClients =
      *std::max_element(ClientCounts.begin(), ClientCounts.end());
  const bool Oversubscribed = MaxClients + 1 > HardwareThreads;

  std::printf("\n%u rounds per phase, %u files, hold %u ms, machine has %u "
              "hardware thread(s)%s\n\n",
              Rounds, Profile.NumFiles, HoldMs, HardwareThreads,
              Oversubscribed ? " (oversubscribed)" : "");

  printRow({"clients", "p50(ms)", "p95(ms)", "p99(ms)", "coalesced",
            "queue-hw", "fairness"});
  std::vector<std::string> JsonRows;
  for (unsigned Clients : ClientCounts) {
    // A fresh tree per phase: phases are independent measurements, not
    // one long-running history.
    TempTree Tree;
    RealFileSystem FS(Tree.Path);
    ProjectModel Model = ProjectModel::generate(Profile, /*Seed=*/42);
    Model.renderAll(FS);
    RNG Rand(1337);

    PhaseResult R = runPhase(FS, Model, Rand, Clients, Rounds, HoldMs);
    if (R.Failures) {
      std::fprintf(stderr, "phase clients=%u had %u failed requests\n",
                   Clients, R.Failures);
      return 1;
    }
    // Keep the phase's build-history ledger before the tree is torn
    // down: `bench_check.py history` validates it (monotone ids,
    // checksummed records) as the ledger's long-run soak artifact.
    {
      std::error_code EC;
      std::filesystem::copy_file(Tree.Path + "/out/history.jsonl",
                                 "BENCH_daemon_history.jsonl",
                                 std::filesystem::copy_options::overwrite_existing,
                                 EC);
    }
    printRow({std::to_string(Clients), fmt(R.P50Ms), fmt(R.P95Ms),
              fmt(R.P99Ms), std::to_string(R.CoalesceHits),
              std::to_string(R.QueueHighWater), fmt(R.FairnessSpread)});
    JsonBuilder Row;
    Row.field("clients", static_cast<uint64_t>(R.Clients))
        .field("requests", static_cast<uint64_t>(R.Requests))
        .field("builds_served", R.BuildsServed)
        .field("build_latency_p50_ms", R.P50Ms)
        .field("build_latency_p95_ms", R.P95Ms)
        .field("build_latency_p99_ms", R.P99Ms)
        .field("queue_high_water", static_cast<uint64_t>(R.QueueHighWater))
        .field("coalesce_hits", R.CoalesceHits)
        .field("busy_rejections", R.BusyRejections)
        .field("fairness_spread", R.FairnessSpread);
    JsonRows.push_back(Row.str());
  }

  //===--- Overload phase --------------------------------------------------===//
  //
  // MaxQueue=1 and alternating clean/incremental requests (which never
  // coalesce with each other) guarantee admission pressure: with the
  // builder held HoldMs per wave, 8 concurrent mismatched requests
  // cannot all fit. Busy answers must be structured and fast.
  uint64_t OverloadBusy = 0, OverloadAccepted = 0;
  double BusyAnswerP95Ms = 0;
  {
    TempTree Tree;
    RealFileSystem FS(Tree.Path);
    ProjectModel Model = ProjectModel::generate(Profile, /*Seed=*/42);
    Model.renderAll(FS);

    Service S(FS, /*HoldMs=*/40, /*MaxQueue=*/1);
    double Ignore = 0;
    if (S.build(&Ignore) != 0) {
      std::fprintf(stderr, "overload warmup build failed\n");
      return 1;
    }
    constexpr unsigned OverloadClients = 8;
    std::atomic<uint64_t> Busy{0}, Accepted{0}, Failed{0};
    std::vector<double> BusyLatencies(OverloadClients, 0.0);
    std::vector<std::thread> Threads;
    for (unsigned CI = 0; CI != OverloadClients; ++CI)
      Threads.emplace_back([&, CI] {
        double Ms = 0;
        int Code = S.build(&Ms, /*Clean=*/CI % 2 == 0);
        if (Code == DaemonClient::BusyRejected) {
          Busy.fetch_add(1);
          BusyLatencies[CI] = Ms;
        } else if (Code == 0)
          Accepted.fetch_add(1);
        else
          Failed.fetch_add(1);
      });
    for (auto &T : Threads)
      T.join();
    if (Failed.load()) {
      std::fprintf(stderr, "overload phase had %llu hard failures\n",
                   static_cast<unsigned long long>(Failed.load()));
      return 1;
    }
    OverloadBusy = Busy.load();
    OverloadAccepted = Accepted.load();
    std::vector<double> BusyOnly;
    for (unsigned CI = 0; CI != OverloadClients; ++CI)
      if (BusyLatencies[CI] > 0)
        BusyOnly.push_back(BusyLatencies[CI]);
    BusyAnswerP95Ms = percentile(BusyOnly, 95);
    std::printf("\noverload: %llu accepted, %llu busy-rejected "
                "(busy answer p95 %.2f ms)\n",
                static_cast<unsigned long long>(OverloadAccepted),
                static_cast<unsigned long long>(OverloadBusy),
                BusyAnswerP95Ms);
  }

  JsonBuilder Overload;
  Overload.field("clients", static_cast<uint64_t>(8))
      .field("max_queue", static_cast<uint64_t>(1))
      .field("accepted", OverloadAccepted)
      .field("busy_rejections", OverloadBusy)
      .field("busy_answer_p95_ms", BusyAnswerP95Ms);

  JsonBuilder Out;
  Out.field("experiment", std::string("daemon"))
      .field("hardware_threads", static_cast<uint64_t>(HardwareThreads))
      .field("oversubscribed", static_cast<uint64_t>(Oversubscribed ? 1 : 0))
      .field("rounds", static_cast<uint64_t>(Rounds))
      .field("files", static_cast<uint64_t>(Profile.NumFiles))
      .field("hold_ms", static_cast<uint64_t>(HoldMs))
      .raw("runs", jsonArray(JsonRows))
      .raw("overload", Overload.str());
  writeBenchJson("BENCH_daemon.json", Out.str());
  return 0;
}
