//===- bench/bench_e3_breakdown.cpp - E3: compile-time breakdown ----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E3 reproduces the compile-phase breakdown figure: where does the
/// time go in incremental recompiles (frontend / middle-end /
/// backend / state bookkeeping), and how much of the middle end does
/// dormant-pass skipping recover? The middle end is the only phase the
/// paper's technique can shrink, which is why end-to-end gains are
/// single-digit percentages even at high skip rates.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E3", "Per-phase compile time in incremental builds");

  constexpr unsigned NumCommits = 25;
  ProjectProfile Profile = profileByName("http_server");

  ReplayResult Base = replayCommits(Profile, 42, 1337, NumCommits,
                                    StatefulConfig::Mode::Stateless);
  ReplayResult Stateful = replayCommits(Profile, 42, 1337, NumCommits,
                                        StatefulConfig::Mode::HeuristicSkip);

  std::printf("\nProject: %s, %u commits, O2. Phase totals across all "
              "recompiled TUs:\n\n",
              Profile.Name.c_str(), NumCommits);
  printRow({"phase", "stateless(ms)", "stateful(ms)", "reduction"});

  auto Row = [](const char *Name, double A, double B) {
    printRow({Name, fmt(A / 1000), fmt(B / 1000),
              A > 0 ? fmtPercent(1.0 - B / A) : "-"});
  };
  Row("frontend", Base.FrontendUs, Stateful.FrontendUs);
  Row("middle-end", Base.MiddleEndUs, Stateful.MiddleEndUs);
  Row("backend", Base.BackendUs, Stateful.BackendUs);
  Row("state bookkeeping", Base.StateUs, Stateful.StateUs);
  Row("state I/O", Base.StateIOUs, Stateful.StateIOUs);

  double BaseCompile =
      Base.FrontendUs + Base.MiddleEndUs + Base.BackendUs + Base.StateUs;
  double StatefulCompile = Stateful.FrontendUs + Stateful.MiddleEndUs +
                           Stateful.BackendUs + Stateful.StateUs;
  Row("compile total", BaseCompile, StatefulCompile);
  Row("end-to-end", Base.TotalIncrementalUs, Stateful.TotalIncrementalUs);

  std::printf("\nMiddle-end share of stateless compile time: %s\n",
              fmtPercent(BaseCompile > 0 ? Base.MiddleEndUs / BaseCompile
                                         : 0)
                  .c_str());
  std::printf("Pass executions skipped by the stateful compiler: %llu of "
              "%llu (%s)\n",
              static_cast<unsigned long long>(Stateful.PassesSkipped),
              static_cast<unsigned long long>(Stateful.PassesSkipped +
                                              Stateful.PassesRun),
              fmtPercent(double(Stateful.PassesSkipped) /
                         double(Stateful.PassesSkipped + Stateful.PassesRun))
                  .c_str());
  return 0;
}
