//===- bench/bench_e3_breakdown.cpp - E3: compile-time breakdown ----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E3 reproduces the compile-phase breakdown figure: where does the
/// time go in incremental recompiles (frontend / middle-end /
/// backend / state bookkeeping), and how much of the middle end does
/// dormant-pass skipping recover? The middle end is the only phase the
/// paper's technique can shrink, which is why end-to-end gains are
/// single-digit percentages even at high skip rates.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "support/Trace.h"

#include <algorithm>
#include <map>

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E3", "Per-phase compile time in incremental builds");

  constexpr unsigned NumCommits = 25;
  ProjectProfile Profile = profileByName("http_server");

  ReplayResult Base = replayCommits(Profile, 42, 1337, NumCommits,
                                    StatefulConfig::Mode::Stateless);
  ReplayResult Stateful = replayCommits(Profile, 42, 1337, NumCommits,
                                        StatefulConfig::Mode::HeuristicSkip);

  std::printf("\nProject: %s, %u commits, O2. Phase totals across all "
              "recompiled TUs:\n\n",
              Profile.Name.c_str(), NumCommits);
  printRow({"phase", "stateless(ms)", "stateful(ms)", "reduction"});

  auto Row = [](const char *Name, double A, double B) {
    printRow({Name, fmt(A / 1000), fmt(B / 1000),
              A > 0 ? fmtPercent(1.0 - B / A) : "-"});
  };
  Row("frontend", Base.FrontendUs, Stateful.FrontendUs);
  Row("middle-end", Base.MiddleEndUs, Stateful.MiddleEndUs);
  Row("backend", Base.BackendUs, Stateful.BackendUs);
  Row("state bookkeeping", Base.StateUs, Stateful.StateUs);
  Row("state I/O", Base.StateIOUs, Stateful.StateIOUs);

  double BaseCompile =
      Base.FrontendUs + Base.MiddleEndUs + Base.BackendUs + Base.StateUs;
  double StatefulCompile = Stateful.FrontendUs + Stateful.MiddleEndUs +
                           Stateful.BackendUs + Stateful.StateUs;
  Row("compile total", BaseCompile, StatefulCompile);
  Row("end-to-end", Base.TotalIncrementalUs, Stateful.TotalIncrementalUs);

  // Trace-derived per-pass refinement: the PhaseTimings above say how
  // big the middle end is; the telemetry spans say which passes the
  // remaining middle-end time goes to and which dormancy verdicts the
  // skips carry — the same data `scbuild --trace-out` shows on a
  // timeline.
  {
    constexpr unsigned TracedCommits = 10;
    TraceRecorder Trace;
    BuildOptions BO =
        makeOptions(StatefulConfig::Mode::HeuristicSkip, OptLevel::O2);
    BO.Compiler.Trace = &Trace;

    InMemoryFileSystem FS;
    ProjectModel Model = ProjectModel::generate(Profile, 42);
    Model.renderAll(FS);
    BuildDriver Driver(FS, BO);
    if (!Driver.build().Success)
      return 1;
    Trace.clear(); // Cold build aside: trace only the incrementals.
    RNG Rand(1337);
    for (unsigned C = 0; C != TracedCommits; ++C) {
      Model.applyCommit(Rand, FS);
      if (!Driver.build().Success)
        return 1;
    }

    struct PassTotals {
      uint64_t Runs = 0;
      double Ms = 0;
      uint64_t Skips = 0;
    };
    std::map<std::string, PassTotals> ByPass;
    for (const TraceEvent &E : Trace.snapshot()) {
      const std::string Cat = E.Category;
      if (Cat == "pass") {
        PassTotals &T = ByPass[E.Name];
        ++T.Runs;
        T.Ms += double(E.DurNs) / 1e6;
      } else if (Cat == "pass.skip") {
        ++ByPass[E.Name].Skips;
      }
    }
    std::vector<std::pair<std::string, PassTotals>> Sorted(ByPass.begin(),
                                                           ByPass.end());
    std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
      return A.second.Ms > B.second.Ms;
    });

    std::printf("\nTrace-derived per-pass totals over %u traced commits "
                "(stateful, from pass spans):\n\n",
                TracedCommits);
    printRow({"pass", "runs", "time(ms)", "skips"});
    for (size_t I = 0; I != Sorted.size() && I != 10; ++I)
      printRow({Sorted[I].first, std::to_string(Sorted[I].second.Runs),
                fmt(Sorted[I].second.Ms),
                std::to_string(Sorted[I].second.Skips)});
    if (Trace.droppedEvents())
      std::printf("(trace dropped %llu events; totals are a lower bound)\n",
                  static_cast<unsigned long long>(Trace.droppedEvents()));
  }

  std::printf("\nMiddle-end share of stateless compile time: %s\n",
              fmtPercent(BaseCompile > 0 ? Base.MiddleEndUs / BaseCompile
                                         : 0)
                  .c_str());
  std::printf("Pass executions skipped by the stateful compiler: %llu of "
              "%llu (%s)\n",
              static_cast<unsigned long long>(Stateful.PassesSkipped),
              static_cast<unsigned long long>(Stateful.PassesSkipped +
                                              Stateful.PassesRun),
              fmtPercent(double(Stateful.PassesSkipped) /
                         double(Stateful.PassesSkipped + Stateful.PassesRun))
                  .c_str());
  return 0;
}
