//===- bench/bench_e1_dormancy.cpp - E1: pass dormancy distribution ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E1 reproduces the paper's motivational measurement: in a full build,
/// what fraction of (function, pass) executions are dormant (run
/// without changing the IR)? High dormancy is the headroom the
/// stateful compiler exploits. Reports per-project dormancy, the
/// per-pass breakdown, and a histogram of dormant-pass counts per
/// function.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "driver/Compiler.h"
#include "driver/IRGen.h"
#include "lang/Parser.h"
#include "pass/PassManager.h"

#include <map>

using namespace sc;
using namespace sc::bench;

namespace {

/// Counts executions and changes per pass name.
struct DormancyRecorder : public PassInstrumentation {
  std::map<std::string, std::pair<uint64_t, uint64_t>> PerPass; // run, chg
  std::map<const Function *, unsigned> DormantPerFunction;
  std::map<const Function *, unsigned> TotalPerFunction;

  void afterPass(const std::string &Name, size_t, const Function &F,
                 bool Changed, double) override {
    auto &Slot = PerPass[Name];
    ++Slot.first;
    if (Changed)
      ++Slot.second;
    ++TotalPerFunction[&F];
    if (!Changed)
      ++DormantPerFunction[&F];
  }
};

} // namespace

int main() {
  banner("E1", "Pass dormancy in a full O2 build (motivational figure)");

  std::printf("\nPer-project dormancy of function-pass executions:\n\n");
  printRow({"project", "files", "functions", "pass-execs", "dormant",
            "dormancy"});

  std::map<std::string, std::pair<uint64_t, uint64_t>> GlobalPerPass;
  std::map<unsigned, unsigned> Histogram; // dormant-count bucket -> #fns
  uint64_t GrandRuns = 0, GrandDormant = 0;

  for (const ProjectProfile &Profile : standardProfiles()) {
    InMemoryFileSystem FS;
    ProjectModel Model = ProjectModel::generate(Profile, 42);
    Model.renderAll(FS);

    // Compile every file through the O2 pipeline with a recorder.
    PassPipeline Pipeline = buildPipeline(OptLevel::O2);
    DormancyRecorder Recorder;
    unsigned NumFunctions = 0;

    for (const std::string &Path : FS.listFiles()) {
      std::string Source = *FS.readFile(Path);
      auto Scanned = Compiler::scanInterface(Source);
      if (!Scanned)
        continue;
      // Resolve imports against already-scanned interfaces.
      ModuleInterface Imports;
      for (const std::string &Dep : Scanned->second) {
        auto DepScanned = Compiler::scanInterface(*FS.readFile(Dep));
        if (DepScanned)
          Imports.insert(Imports.end(), DepScanned->first.begin(),
                         DepScanned->first.end());
      }
      DiagnosticEngine Diags;
      Parser P(Source, Diags);
      auto AST = P.parseModule();
      ModuleInterface Own = analyzeModule(*AST, Imports, Diags);
      if (Diags.hasErrors()) {
        std::fprintf(stderr, "%s", Diags.render(Path).c_str());
        return 1;
      }
      ModuleInterface All = Imports;
      All.insert(All.end(), Own.begin(), Own.end());
      auto M = generateIR(*AST, Path, All);
      NumFunctions += static_cast<unsigned>(M->numFunctions());
      AnalysisManager AM(*M);
      Pipeline.run(*M, AM, &Recorder);
    }

    uint64_t Runs = 0, Dormant = 0;
    for (const auto &[Name, RC] : Recorder.PerPass) {
      Runs += RC.first;
      Dormant += RC.first - RC.second;
      auto &G = GlobalPerPass[Name];
      G.first += RC.first;
      G.second += RC.second;
    }
    GrandRuns += Runs;
    GrandDormant += Dormant;

    for (const auto &[F, Total] : Recorder.TotalPerFunction) {
      unsigned D = Recorder.DormantPerFunction.count(F)
                       ? Recorder.DormantPerFunction.at(F)
                       : 0;
      // Bucket by dormant fraction decile.
      unsigned Bucket = Total ? (D * 10) / Total : 0;
      if (Bucket > 9)
        Bucket = 9;
      ++Histogram[Bucket];
    }

    printRow({Profile.Name, std::to_string(Model.numFiles()),
              std::to_string(NumFunctions), std::to_string(Runs),
              std::to_string(Dormant),
              fmtPercent(Runs ? double(Dormant) / Runs : 0)});
  }

  printRow({"ALL", "", "", std::to_string(GrandRuns),
            std::to_string(GrandDormant),
            fmtPercent(GrandRuns ? double(GrandDormant) / GrandRuns : 0)});

  std::printf("\nPer-pass dormancy (all projects, O2 pipeline order):\n\n");
  printRow({"pass", "execs", "changed", "dormancy"}, 16);
  for (const auto &[Name, RC] : GlobalPerPass)
    printRow({Name, std::to_string(RC.first), std::to_string(RC.second),
              fmtPercent(RC.first ? 1.0 - double(RC.second) / RC.first : 0)},
             16);

  std::printf("\nHistogram: functions by dormant fraction (deciles):\n\n");
  printRow({"dormant-frac", "#functions"}, 16);
  for (unsigned B = 0; B != 10; ++B) {
    std::string Range =
        std::to_string(B * 10) + "-" + std::to_string(B * 10 + 10) + "%";
    printRow({Range, std::to_string(Histogram.count(B) ? Histogram[B] : 0)},
             16);
  }
  return 0;
}
