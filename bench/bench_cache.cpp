//===- bench/bench_cache.cpp - Remote object-cache fleet benchmark --------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the remote object-cache tier (sccached) from the fleet's
/// point of view: how much of a cold build disappears when a warm
/// cache already holds every object the workspace needs. Three runs
/// per project profile, all from identical sources:
///
///   cold-local   a fresh workspace, no remote tier — every TU
///                compiles (the baseline the fleet pays today);
///   publisher    a fresh workspace that fills the empty cache while
///                compiling (the one warm builder);
///   cold+warm    another fresh workspace against the now-warm cache —
///                the acceptance row: it must compile 0 TUs, parse 0
///                objects, and take RemoteHits == object count.
///
/// Results go to BENCH_cache.json. The daemon runs in-process on a
/// Unix socket with an in-memory store, so the numbers measure
/// protocol + verification + admission cost, not disk jitter — the
/// same substrate policy as every other bench.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "cache_sys/CacheDaemon.h"

#include <cstdlib>
#include <filesystem>
#include <thread>

using namespace sc;
using namespace sc::bench;

namespace {

struct ProfileRun {
  std::string Profile;
  unsigned Files = 0;
  double ColdLocalUs = 0;
  double PublisherUs = 0;
  double ColdWarmUs = 0;
  BuildStats Warm; // The cold+warm acceptance build.
};

} // namespace

int main() {
  banner("CACHE", "Remote object cache: cold fleet member vs warm sccached");

  char SockDir[] = "/tmp/sc-bench-cache-XXXXXX";
  if (!::mkdtemp(SockDir)) {
    std::fprintf(stderr, "cannot create socket dir\n");
    return 1;
  }
  const std::string SockPath = std::string(SockDir) + "/cache.sock";

  std::vector<ProfileRun> Runs;
  bool AcceptanceOk = true;

  for (const char *Name : {"small_cli", "json_lib", "http_server"}) {
    // One fresh daemon per profile so each cold+warm run is measured
    // against a cache holding exactly that project.
    InMemoryFileSystem StoreFS;
    CacheDaemonConfig DC;
    DC.SocketPath = SockPath;
    DC.Quiet = true;
    CacheDaemon Daemon(StoreFS, DC);
    std::string Err;
    if (!Daemon.start(&Err)) {
      std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
      return 1;
    }
    std::thread Serve([&Daemon] { Daemon.serve(); });

    ProfileRun R;
    R.Profile = Name;
    ProjectProfile Profile = profileByName(Name);
    constexpr uint64_t Seed = 42;

    auto Workspace = [&](InMemoryFileSystem &FS) {
      ProjectModel Model = ProjectModel::generate(Profile, Seed);
      Model.renderAll(FS);
    };

    {
      InMemoryFileSystem FS;
      Workspace(FS);
      BuildDriver Driver(FS, BuildOptions{});
      BuildStats S = Driver.build();
      if (!S.Success) {
        std::fprintf(stderr, "cold-local build failed\n");
        return 1;
      }
      R.ColdLocalUs = S.TotalUs;
      R.Files = S.FilesTotal;
    }
    {
      InMemoryFileSystem FS;
      Workspace(FS);
      BuildOptions BO;
      BO.RemoteCache = SockPath;
      BuildDriver Driver(FS, BO);
      BuildStats S = Driver.build();
      if (!S.Success || S.RemoteErrors) {
        std::fprintf(stderr, "publisher build failed\n");
        return 1;
      }
      R.PublisherUs = S.TotalUs;
    }
    {
      InMemoryFileSystem FS;
      Workspace(FS);
      BuildOptions BO;
      BO.RemoteCache = SockPath;
      BuildDriver Driver(FS, BO);
      R.Warm = Driver.build();
      if (!R.Warm.Success) {
        std::fprintf(stderr, "cold+warm build failed\n");
        return 1;
      }
      R.ColdWarmUs = R.Warm.TotalUs;
    }

    // The acceptance contract: a cold workspace against a warm cache
    // compiles nothing, parses nothing, and hits on every object.
    if (R.Warm.FilesCompiled != 0 || R.Warm.ObjectsParsed != 0 ||
        R.Warm.RemoteHits != R.Warm.FilesTotal || R.Warm.RemoteErrors != 0)
      AcceptanceOk = false;

    Runs.push_back(R);
    Daemon.requestStop();
    Serve.join();
  }

  std::error_code EC;
  std::filesystem::remove_all(SockDir, EC);

  std::printf("\nCold fleet member, identical sources, in-process daemon:\n\n");
  printRow({"profile", "files", "cold-local(ms)", "cold+warm(ms)", "speedup",
            "hits", "compiled"},
           16);
  std::vector<std::string> JsonRows;
  for (const ProfileRun &R : Runs) {
    double Speedup = R.ColdWarmUs > 0 ? R.ColdLocalUs / R.ColdWarmUs : 0;
    printRow({R.Profile, std::to_string(R.Files), fmt(R.ColdLocalUs / 1000),
              fmt(R.ColdWarmUs / 1000), fmt(Speedup, 2) + "x",
              std::to_string(R.Warm.RemoteHits),
              std::to_string(R.Warm.FilesCompiled)},
             16);
    JsonRows.push_back(JsonBuilder()
                           .field("profile", R.Profile)
                           .field("files", R.Files)
                           .field("cold_local_us", R.ColdLocalUs)
                           .field("publisher_us", R.PublisherUs)
                           .field("cold_warm_us", R.ColdWarmUs)
                           .field("speedup", Speedup)
                           .field("remote_hits", R.Warm.RemoteHits)
                           .field("remote_misses", R.Warm.RemoteMisses)
                           .field("remote_errors", R.Warm.RemoteErrors)
                           .field("files_compiled",
                                  uint64_t(R.Warm.FilesCompiled))
                           .field("objects_parsed", R.Warm.ObjectsParsed)
                           .str());
  }

  std::printf("\nacceptance (every profile: RemoteHits == object count, "
              "0 compiled, 0 parsed): %s\n",
              AcceptanceOk ? "PASS" : "FAIL");

  writeBenchJson("BENCH_cache.json",
                 JsonBuilder()
                     .field("experiment", std::string("remote_cache"))
                     .field("acceptance_pass", uint64_t(AcceptanceOk))
                     .raw("runs", jsonArray(JsonRows))
                     .str());
  return AcceptanceOk ? 0 : 1;
}
