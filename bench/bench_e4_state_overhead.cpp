//===- bench/bench_e4_state_overhead.cpp - E4: state storage & I/O overhead -----===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// E4 reproduces the state-overhead table: how large is the persisted
/// BuildStateDB relative to the project, and how expensive are its
/// save/load operations relative to a recompile? The technique is only
/// viable if this "memory" is cheap.
///
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "state/BuildStateDB.h"
#include "support/Timer.h"

using namespace sc;
using namespace sc::bench;

int main() {
  banner("E4", "BuildStateDB storage and I/O overhead");

  std::printf("\nAfter a cold O2 build of each project:\n\n");
  printRow({"project", "src(KB)", "objs(KB)", "state(KB)", "st/src",
            "save(us)", "load(us)"});

  for (const ProjectProfile &Profile : standardProfiles()) {
    InMemoryFileSystem FS;
    ProjectModel Model = ProjectModel::generate(Profile, 42);
    Model.renderAll(FS);
    uint64_t SourceBytes = Model.totalSourceBytes();

    BuildDriver Driver(FS, makeOptions(StatefulConfig::Mode::HeuristicSkip));
    BuildStats S = Driver.build();
    if (!S.Success) {
      std::fprintf(stderr, "build failed: %s\n", S.ErrorText.c_str());
      return 1;
    }

    // Measure save/load on the persisted DB (average of several runs).
    const BuildStateDB &DB = Driver.stateDB();
    constexpr int Reps = 20;
    Timer SaveT, LoadT;
    std::string Bytes;
    for (int I = 0; I != Reps; ++I) {
      SaveT.start();
      Bytes = DB.serialize();
      SaveT.stop();
      BuildStateDB Restored;
      LoadT.start();
      bool OK = Restored.deserialize(Bytes);
      LoadT.stop();
      if (!OK) {
        std::fprintf(stderr, "state round-trip failed\n");
        return 1;
      }
    }

    printRow({Profile.Name, fmt(SourceBytes / 1024.0, 1),
              fmt(S.ObjectBytes / 1024.0, 1),
              fmt(S.StateDBBytes / 1024.0, 1),
              fmtPercent(double(S.StateDBBytes) / double(SourceBytes)),
              fmt(SaveT.micros() / Reps, 1),
              fmt(LoadT.micros() / Reps, 1)});
  }

  std::printf("\nState-recording overhead on cold builds (stateful vs "
              "stateless wall clock) is reported by E2's cold-build "
              "table; per-TU bookkeeping time appears in E3.\n");
  return 0;
}
