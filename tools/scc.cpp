//===- tools/scc.cpp - Stateful-compiler command-line driver ---------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `scc` — compile, inspect, and run MiniC translation units.
///
///   scc file.mc [options]
///
/// Options:
///   -o <path>          write the object file (default: <file>.o)
///   -O0|-O1|-O2        optimization level (default -O2)
///   --stateful         enable dormant-pass skipping
///   --reuse            also enable function-level code reuse
///   --state-db <path>  persistent state location (default: .scc-state.db)
///   --emit-ir          print the optimized IR
///   --emit-asm         print the generated VISA assembly
///   --run              link this object alone and execute main()
///   --stats            print compile statistics
///   --quiet            suppress the pass-skip summary (never warnings)
///   --verify-each      run the IR verifier after every changing pass
///
/// Imports are resolved relative to the directory of the importing
/// file (like #include "..."), so `scc sub/main.mc` from anywhere finds
/// `sub/util.mc` via `import "util.mc"`.
///
//===----------------------------------------------------------------------===//

#include "build_sys/BuildSystem.h"
#include "codegen/AsmPrinter.h"
#include "codegen/ObjectFile.h"
#include "driver/Compiler.h"
#include "driver/IRGen.h"
#include "ir/IRPrinter.h"
#include "lang/Parser.h"
#include "support/FileSystem.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace sc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: scc <file.mc> [-o out.o] [-O0|-O1|-O2] [--stateful] "
      "[--reuse]\n           [--state-db path] [--emit-ir] [--emit-asm] "
      "[--run] [--stats]\n           [--quiet] [--verify-each]\n");
}

/// Resolves \p Import as written in the file at \p FromPath: absolute
/// imports are taken verbatim; relative ones are joined to the
/// importer's directory and lexically normalized ("."/".." segments),
/// the #include "..." rule. Keeping it lexical (no realpath) means the
/// same source resolves identically on every filesystem.
std::string resolveImportPath(const std::string &FromPath,
                              const std::string &Import) {
  std::string Joined;
  if (!Import.empty() && Import[0] == '/') {
    Joined = Import;
  } else {
    size_t Slash = FromPath.find_last_of('/');
    Joined = Slash == std::string::npos
                 ? Import
                 : FromPath.substr(0, Slash + 1) + Import;
  }
  // Normalize: collapse "." and fold ".." into its parent where one
  // exists (leading ".."s are kept — they climb above the start dir).
  std::vector<std::string> Parts;
  bool Absolute = !Joined.empty() && Joined[0] == '/';
  size_t Pos = 0;
  while (Pos <= Joined.size()) {
    size_t Next = Joined.find('/', Pos);
    if (Next == std::string::npos)
      Next = Joined.size();
    std::string Part = Joined.substr(Pos, Next - Pos);
    Pos = Next + 1;
    if (Part.empty() || Part == ".")
      continue;
    if (Part == ".." && !Parts.empty() && Parts.back() != "..") {
      Parts.pop_back();
      continue;
    }
    Parts.push_back(std::move(Part));
  }
  std::string Out = Absolute ? "/" : "";
  for (size_t I = 0; I != Parts.size(); ++I)
    Out += (I ? "/" : "") + Parts[I];
  return Out;
}

/// Resolves the direct imports' interfaces (one level is enough: sema
/// only needs signatures, which the import's own file declares).
/// \p FromPath is the importing file — import strings are resolved
/// relative to its directory.
bool resolveImports(RealFileSystem &FS, const std::string &FromPath,
                    const std::string &Source, ModuleInterface &Out) {
  auto Scanned = Compiler::scanInterface(Source);
  if (!Scanned)
    return true; // Syntax errors surface in the real compile below.
  for (const std::string &Dep : Scanned->second) {
    const std::string DepPath = resolveImportPath(FromPath, Dep);
    std::optional<std::string> DepSource = FS.readFile(DepPath);
    if (!DepSource) {
      std::fprintf(stderr, "scc: error: cannot read import '%s' (from '%s')\n",
                   DepPath.c_str(), FromPath.c_str());
      return false;
    }
    auto DepScanned = Compiler::scanInterface(*DepSource);
    if (!DepScanned) {
      std::fprintf(stderr, "scc: error: syntax errors in import '%s'\n",
                   DepPath.c_str());
      return false;
    }
    Out.insert(Out.end(), DepScanned->first.begin(),
               DepScanned->first.end());
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string InputPath, OutputPath, StatePath = ".scc-state.db";
  CompilerOptions Options;
  bool Stateful = false, EmitIR = false, EmitAsm = false, Run = false,
       Stats = false, Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-o") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "scc: error: option '-o' requires a value\n");
        return 1;
      }
      OutputPath = argv[++I];
    } else if (Arg == "-O0")
      Options.Opt = OptLevel::O0;
    else if (Arg == "-O1")
      Options.Opt = OptLevel::O1;
    else if (Arg == "-O2")
      Options.Opt = OptLevel::O2;
    else if (Arg == "--stateful")
      Stateful = true;
    else if (Arg == "--reuse") {
      Stateful = true;
      Options.Stateful.ReuseFunctionCode = true;
    } else if (Arg == "--state-db") {
      if (I + 1 >= argc) {
        std::fprintf(stderr,
                     "scc: error: option '--state-db' requires a value\n");
        return 1;
      }
      StatePath = argv[++I];
    } else if (Arg == "--emit-ir")
      EmitIR = true;
    else if (Arg == "--emit-asm")
      EmitAsm = true;
    else if (Arg == "--run")
      Run = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--verify-each")
      Options.VerifyEach = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "scc: error: unknown option '%s'\n",
                   Arg.c_str());
      usage();
      return 1;
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      std::fprintf(stderr, "scc: error: multiple input files\n");
      return 1;
    }
  }
  if (InputPath.empty()) {
    usage();
    return 1;
  }
  if (OutputPath.empty())
    OutputPath = InputPath + ".o";

  RealFileSystem FS(".");
  std::optional<std::string> Source = FS.readFile(InputPath);
  if (!Source) {
    std::fprintf(stderr, "scc: error: cannot read '%s'\n",
                 InputPath.c_str());
    return 1;
  }

  ModuleInterface Imports;
  if (!resolveImports(FS, InputPath, *Source, Imports))
    return 1;

  BuildStateDB DB;
  if (Stateful) {
    Options.Stateful.SkipMode = StatefulConfig::Mode::HeuristicSkip;
    DB.loadFromFile(FS, StatePath); // Missing/corrupt: cold build.
  }

  Compiler TheCompiler(Options, Stateful ? &DB : nullptr);
  CompileResult Result =
      TheCompiler.compile(InputPath, *Source, Imports);
  if (!Result.Success) {
    std::fprintf(stderr, "%s", Result.DiagText.c_str());
    return 1;
  }

  if (!FS.writeFile(OutputPath, writeObject(Result.Object))) {
    std::fprintf(stderr, "scc: error: cannot write '%s'\n",
                 OutputPath.c_str());
    return 1;
  }
  if (Stateful && !DB.saveToFile(FS, StatePath))
    // Non-fatal: the object was written, only the next run is colder.
    std::fprintf(stderr,
                 "scc: warning: cannot save compiler state to '%s' (%s)\n",
                 StatePath.c_str(), FS.lastError().c_str());

  // The same pass-skip summary scbuild prints, so a lone `scc
  // --stateful` run is as observable as a full build. --quiet
  // suppresses this (and --stats), never warnings or diagnostics.
  if (Stateful && !Quiet)
    std::printf("scc: passes run %llu, skipped %llu; "
                "functions reused %llu; state db %.1f KB\n",
                static_cast<unsigned long long>(Result.SkipStats.PassesRun),
                static_cast<unsigned long long>(
                    Result.SkipStats.PassesSkipped),
                static_cast<unsigned long long>(
                    Result.SkipStats.FunctionsReused),
                DB.sizeBytes() / 1024.0);

  if (EmitIR) {
    // Re-lower to show the optimized IR: the driver does not keep the
    // module, so compile a display copy through the same pipeline.
    DiagnosticEngine Diags;
    Parser P(*Source, Diags);
    auto AST = P.parseModule();
    ModuleInterface Own = analyzeModule(*AST, Imports, Diags);
    ModuleInterface All = Imports;
    All.insert(All.end(), Own.begin(), Own.end());
    auto M = generateIR(*AST, InputPath, All);
    PassPipeline Pipeline = buildPipeline(Options.Opt);
    AnalysisManager AM(*M);
    Pipeline.run(*M, AM);
    std::printf("%s", printModule(*M).c_str());
  }
  if (EmitAsm)
    std::printf("%s", printAssembly(Result.Object).c_str());

  if (Stats && !Quiet) {
    std::printf("scc: %s: fe %.0fus | mid %.0fus | be %.0fus | "
                "IR %zu -> %zu insts",
                InputPath.c_str(), Result.Timings.FrontendUs,
                Result.Timings.MiddleUs, Result.Timings.BackendUs,
                Result.IRInstsBeforeOpt, Result.IRInstsAfterOpt);
    if (Stateful)
      std::printf(" | passes run %llu skipped %llu | reused fns %llu",
                  static_cast<unsigned long long>(
                      Result.SkipStats.PassesRun),
                  static_cast<unsigned long long>(
                      Result.SkipStats.PassesSkipped),
                  static_cast<unsigned long long>(
                      Result.SkipStats.FunctionsReused));
    std::printf("\n");
  }

  if (Run) {
    // Compile the transitive imports so the program links, like a
    // one-shot `gcc a.c b.c` driver invocation.
    std::vector<MModule> Extra;
    std::vector<std::string> Done{InputPath};
    auto Scanned = Compiler::scanInterface(*Source);
    std::vector<std::string> Queue;
    if (Scanned)
      for (const std::string &Dep : Scanned->second)
        Queue.push_back(resolveImportPath(InputPath, Dep));
    while (!Queue.empty()) {
      std::string Dep = Queue.back();
      Queue.pop_back();
      if (std::find(Done.begin(), Done.end(), Dep) != Done.end())
        continue;
      Done.push_back(Dep);
      std::optional<std::string> DepSource = FS.readFile(Dep);
      if (!DepSource) {
        std::fprintf(stderr, "scc: error: cannot read import '%s'\n",
                     Dep.c_str());
        return 1;
      }
      ModuleInterface DepImports;
      if (!resolveImports(FS, Dep, *DepSource, DepImports))
        return 1;
      auto DepScan = Compiler::scanInterface(*DepSource);
      if (DepScan)
        for (const std::string &Next : DepScan->second)
          Queue.push_back(resolveImportPath(Dep, Next));
      Compiler DepCompiler(Options, Stateful ? &DB : nullptr);
      CompileResult DepResult =
          DepCompiler.compile(Dep, *DepSource, DepImports);
      if (!DepResult.Success) {
        std::fprintf(stderr, "%s", DepResult.DiagText.c_str());
        return 1;
      }
      Extra.push_back(std::move(DepResult.Object));
    }

    std::vector<const MModule *> LinkSet{&Result.Object};
    for (const MModule &Obj : Extra)
      LinkSet.push_back(&Obj);
    LinkResult Linked = linkObjects(LinkSet);
    if (!Linked.succeeded()) {
      for (const std::string &E : Linked.Errors)
        std::fprintf(stderr, "scc: link error: %s\n", E.c_str());
      return 1;
    }
    VM Machine(*Linked.Program);
    ExecResult R = Machine.run();
    if (R.Trapped) {
      std::fprintf(stderr, "scc: trap: %s\n", R.TrapReason.c_str());
      return 1;
    }
    for (int64_t V : R.Output)
      std::printf("%lld\n", static_cast<long long>(V));
    return static_cast<int>(R.ReturnValue.value_or(0) & 0xff);
  }
  return 0;
}
