//===- tools/scbuildd.cpp - Resident build daemon --------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `scbuildd` — park one BuildDriver behind `<dir>/out/.daemon.sock`
/// and serve `scbuild --daemon` clients until told to stop. The scan
/// cache, parsed-object cache, and compiler state stay warm between
/// requests, so the second build of an unchanged tree re-scans and
/// re-parses nothing.
///
///   scbuildd [dir] [options]
///
/// Options:
///   -O0|-O1|-O2           optimization level (default -O2)
///   -j <N>                build concurrency (default: all hardware threads)
///   --stateless           baseline compiler (default: stateful)
///   --exact               ExactSkip policy
///   --reuse               function-level code reuse
///   --idle-timeout-ms=N   exit after N ms without a request (0 = never)
///   --max-queue=N         admission control: reject build requests with a
///                         structured `busy` frame once N builds are already
///                         queued (default 16)
///   --request-timeout-ms=N
///                         cancel build requests still queued after N ms
///                         with a clean error frame (0 = wait forever)
///   --report-json=FILE    on exit, write the versioned JSON build report of
///                         the last build, including the daemon.* service
///                         counters from the metrics registry
///   --metrics-out=FILE    periodically (and on exit) rewrite FILE atomically
///                         with the metrics registry in Prometheus text
///                         exposition format — a scrape file for collectors
///                         that cannot speak the socket protocol; the same
///                         text is served live by the `metrics` verb
///   --metrics-interval-ms=N
///                         period of the --metrics-out dump (default 1000)
///   --remote-cache=SOCKET use the sccached daemon on Unix socket SOCKET
///                         as a shared remote object-cache tier (see
///                         scbuild --remote-cache; same degrade-to-local
///                         failure semantics)
///   --trace-stream=FILE   stream Chrome trace events to FILE as they
///                         happen (flushed after every request; the file
///                         is loadable in Perfetto even mid-run)
///   --quiet               suppress lifecycle messages
///
/// Configuration is fixed at startup: a `scbuild --daemon` request with
/// different -O/--stateless/--exact/--reuse flags is rejected (restart
/// the daemon with the flags you want). -j may differ per request —
/// concurrency never changes build outputs.
///
//===----------------------------------------------------------------------===//

#include "build_sys/BuildReport.h"
#include "build_sys/Daemon.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

using namespace sc;

namespace {
BuildDaemon *ActiveDaemon = nullptr;

void onSignal(int) {
  // requestStop() is a relaxed atomic store — async-signal-safe. The
  // serve() loop notices within one accept slice.
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

bool parseUnsigned(const char *Text, unsigned &Out) {
  if (!*Text)
    return false;
  unsigned long V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(*P - '0');
    if (V > 0xffffffffUL)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}
} // namespace

int main(int argc, char **argv) {
  std::string Dir = ".";
  DaemonConfig Config;
  Config.Build.Compiler.Stateful.SkipMode = StatefulConfig::Mode::HeuristicSkip;
  Config.Build.Jobs = std::max(1u, std::thread::hardware_concurrency());
  std::string TraceStream;

  bool ArgError = false;
  auto FlagValue = [&](const std::string &Arg, const char *Flag, int &I,
                       std::string &Out) {
    std::string Prefix = std::string(Flag) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg != Flag)
      return false;
    if (I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    std::fprintf(stderr, "scbuildd: error: option '%s' requires a value\n",
                 Flag);
    ArgError = true;
    return true;
  };

  std::string IdleText, MaxQueueText, ReqTimeoutText, HoldText, ReportOut;
  std::string MetricsIntervalText;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (FlagValue(Arg, "--trace-stream", I, TraceStream) ||
        FlagValue(Arg, "--idle-timeout-ms", I, IdleText) ||
        FlagValue(Arg, "--max-queue", I, MaxQueueText) ||
        FlagValue(Arg, "--request-timeout-ms", I, ReqTimeoutText) ||
        // Hidden: injects a fixed per-build service-time floor so tests
        // and the smoke script can form queues deterministically.
        FlagValue(Arg, "--hold-ms", I, HoldText) ||
        FlagValue(Arg, "--report-json", I, ReportOut) ||
        FlagValue(Arg, "--metrics-out", I, Config.MetricsOut) ||
        FlagValue(Arg, "--metrics-interval-ms", I, MetricsIntervalText) ||
        FlagValue(Arg, "--remote-cache", I, Config.Build.RemoteCache))
      continue;
    if (Arg == "-O0")
      Config.Build.Compiler.Opt = OptLevel::O0;
    else if (Arg == "-O1")
      Config.Build.Compiler.Opt = OptLevel::O1;
    else if (Arg == "-O2")
      Config.Build.Compiler.Opt = OptLevel::O2;
    else if (Arg == "-j") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "scbuildd: error: option '-j' requires a value\n");
        return 1;
      }
      unsigned Jobs = 0;
      if (!parseUnsigned(argv[++I], Jobs)) {
        std::fprintf(stderr,
                     "scbuildd: error: option '-j' requires a positive "
                     "integer (got '%s')\n",
                     argv[I]);
        return 1;
      }
      Config.Build.Jobs = std::max(1u, Jobs);
    } else if (Arg == "--stateless")
      Config.Build.Compiler.Stateful.SkipMode = StatefulConfig::Mode::Stateless;
    else if (Arg == "--exact")
      Config.Build.Compiler.Stateful.SkipMode = StatefulConfig::Mode::ExactSkip;
    else if (Arg == "--reuse")
      Config.Build.Compiler.Stateful.ReuseFunctionCode = true;
    else if (Arg == "--quiet")
      Config.Quiet = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::fprintf(stderr,
                   "usage: scbuildd [dir] [-O0|-O1|-O2] [-j N] [--stateless] "
                   "[--exact] [--reuse]\n                "
                   "[--idle-timeout-ms=N] [--max-queue=N] "
                   "[--request-timeout-ms=N]\n                "
                   "[--trace-stream=FILE] [--report-json=FILE] "
                   "[--metrics-out=FILE]\n                "
                   "[--metrics-interval-ms=N] [--remote-cache=SOCKET] "
                   "[--quiet]\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "scbuildd: error: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    } else {
      Dir = Arg;
    }
  }
  if (ArgError)
    return 1;
  auto ParseMsFlag = [](const std::string &Text, const char *Flag,
                        unsigned &Out) {
    if (Text.empty())
      return true;
    if (parseUnsigned(Text.c_str(), Out))
      return true;
    std::fprintf(stderr,
                 "scbuildd: error: option '%s' requires a "
                 "non-negative integer (got '%s')\n",
                 Flag, Text.c_str());
    return false;
  };
  if (!ParseMsFlag(IdleText, "--idle-timeout-ms", Config.IdleTimeoutMs) ||
      !ParseMsFlag(MaxQueueText, "--max-queue", Config.MaxQueue) ||
      !ParseMsFlag(ReqTimeoutText, "--request-timeout-ms",
                   Config.RequestTimeoutMs) ||
      !ParseMsFlag(HoldText, "--hold-ms", Config.HoldMs) ||
      !ParseMsFlag(MetricsIntervalText, "--metrics-interval-ms",
                   Config.MetricsIntervalMs))
    return 1;
  Config.MetricsIntervalMs = std::max(1u, Config.MetricsIntervalMs);

  RealFileSystem FS(Dir);

  // Decision recording feeds `scbuild --daemon --explain`.
  Config.Build.Compiler.RecordDecisions =
      Config.Build.Compiler.Stateful.SkipMode != StatefulConfig::Mode::Stateless;
  MetricsRegistry Metrics;
  Config.Build.Compiler.Metrics = &Metrics;

  // The recorder always exists: its span aggregates feed each build's
  // history-ledger record. A sink is attached only under
  // --trace-stream; without one the daemon clears the rings after each
  // build instead of streaming them.
  std::unique_ptr<TraceRecorder> Trace = std::make_unique<TraceRecorder>();
  Trace->setThreadName("daemon-main");
  std::unique_ptr<FileTraceSink> Sink;
  if (!TraceStream.empty()) {
    Sink = std::make_unique<FileTraceSink>(TraceStream);
    if (!Sink->ok()) {
      std::fprintf(stderr, "scbuildd: error: could not open trace stream '%s'\n",
                   TraceStream.c_str());
      return 1;
    }
    Trace->setSink(Sink.get());
  }
  Config.Build.Compiler.Trace = Trace.get();

  BuildDaemon Daemon(FS, Config);
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "scbuildd: error: %s\n", Err.c_str());
    return 1;
  }

  // SIGTERM/SIGINT take the exact same path as the `shutdown` verb:
  // requestStop() flips the stop flag and serve() runs its graceful
  // drain (finish in-flight, cancel queued with clean frames, join
  // threads, flush traces, unlink the socket, release the lock).
  // sigaction without SA_RESTART so a signal interrupts the accept
  // poll promptly instead of waiting out the slice.
  ActiveDaemon = &Daemon;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGINT, &SA, nullptr);
  ::sigaction(SIGTERM, &SA, nullptr);
  std::signal(SIGPIPE, SIG_IGN); // Client death mid-frame must not kill us.

  int Code = Daemon.serve();

  ActiveDaemon = nullptr;
  if (Trace)
    Trace->flush();
  if (Sink)
    Sink->close(); // Seal the stream into strictly valid JSON.
  if (!ReportOut.empty()) {
    // The report carries the last build's stats plus the full metrics
    // registry dump — including the daemon.* service counters.
    const std::string Json = buildReportJson(Daemon.lastBuildStats(), &Metrics);
    if (std::FILE *F = std::fopen(ReportOut.c_str(), "wb")) {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "scbuildd: warning: could not write report '%s'\n",
                   ReportOut.c_str());
    }
  }
  return Code;
}
