//===- tools/scbuildd.cpp - Resident build daemon --------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `scbuildd` — park one BuildDriver behind `<dir>/out/.daemon.sock`
/// and serve `scbuild --daemon` clients until told to stop. The scan
/// cache, parsed-object cache, and compiler state stay warm between
/// requests, so the second build of an unchanged tree re-scans and
/// re-parses nothing.
///
///   scbuildd [dir] [options]
///
/// Options:
///   -O0|-O1|-O2           optimization level (default -O2)
///   -j <N>                build concurrency (default: all hardware threads)
///   --stateless           baseline compiler (default: stateful)
///   --exact               ExactSkip policy
///   --reuse               function-level code reuse
///   --idle-timeout-ms=N   exit after N ms without a request (0 = never)
///   --remote-cache=SOCKET use the sccached daemon on Unix socket SOCKET
///                         as a shared remote object-cache tier (see
///                         scbuild --remote-cache; same degrade-to-local
///                         failure semantics)
///   --trace-stream=FILE   stream Chrome trace events to FILE as they
///                         happen (flushed after every request; the file
///                         is loadable in Perfetto even mid-run)
///   --quiet               suppress lifecycle messages
///
/// Configuration is fixed at startup: a `scbuild --daemon` request with
/// different -O/--stateless/--exact/--reuse flags is rejected (restart
/// the daemon with the flags you want). -j may differ per request —
/// concurrency never changes build outputs.
///
//===----------------------------------------------------------------------===//

#include "build_sys/Daemon.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

using namespace sc;

namespace {
BuildDaemon *ActiveDaemon = nullptr;

void onSignal(int) {
  // requestStop() is a relaxed atomic store — async-signal-safe. The
  // serve() loop notices within one accept slice.
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

bool parseUnsigned(const char *Text, unsigned &Out) {
  if (!*Text)
    return false;
  unsigned long V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(*P - '0');
    if (V > 0xffffffffUL)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}
} // namespace

int main(int argc, char **argv) {
  std::string Dir = ".";
  DaemonConfig Config;
  Config.Build.Compiler.Stateful.SkipMode = StatefulConfig::Mode::HeuristicSkip;
  Config.Build.Jobs = std::max(1u, std::thread::hardware_concurrency());
  std::string TraceStream;

  bool ArgError = false;
  auto FlagValue = [&](const std::string &Arg, const char *Flag, int &I,
                       std::string &Out) {
    std::string Prefix = std::string(Flag) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg != Flag)
      return false;
    if (I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    std::fprintf(stderr, "scbuildd: error: option '%s' requires a value\n",
                 Flag);
    ArgError = true;
    return true;
  };

  std::string IdleText;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (FlagValue(Arg, "--trace-stream", I, TraceStream) ||
        FlagValue(Arg, "--idle-timeout-ms", I, IdleText) ||
        FlagValue(Arg, "--remote-cache", I, Config.Build.RemoteCache))
      continue;
    if (Arg == "-O0")
      Config.Build.Compiler.Opt = OptLevel::O0;
    else if (Arg == "-O1")
      Config.Build.Compiler.Opt = OptLevel::O1;
    else if (Arg == "-O2")
      Config.Build.Compiler.Opt = OptLevel::O2;
    else if (Arg == "-j") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "scbuildd: error: option '-j' requires a value\n");
        return 1;
      }
      unsigned Jobs = 0;
      if (!parseUnsigned(argv[++I], Jobs)) {
        std::fprintf(stderr,
                     "scbuildd: error: option '-j' requires a positive "
                     "integer (got '%s')\n",
                     argv[I]);
        return 1;
      }
      Config.Build.Jobs = std::max(1u, Jobs);
    } else if (Arg == "--stateless")
      Config.Build.Compiler.Stateful.SkipMode = StatefulConfig::Mode::Stateless;
    else if (Arg == "--exact")
      Config.Build.Compiler.Stateful.SkipMode = StatefulConfig::Mode::ExactSkip;
    else if (Arg == "--reuse")
      Config.Build.Compiler.Stateful.ReuseFunctionCode = true;
    else if (Arg == "--quiet")
      Config.Quiet = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::fprintf(stderr,
                   "usage: scbuildd [dir] [-O0|-O1|-O2] [-j N] [--stateless] "
                   "[--exact] [--reuse]\n                "
                   "[--idle-timeout-ms=N] [--trace-stream=FILE] "
                   "[--remote-cache=SOCKET] [--quiet]\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "scbuildd: error: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    } else {
      Dir = Arg;
    }
  }
  if (ArgError)
    return 1;
  if (!IdleText.empty() && !parseUnsigned(IdleText.c_str(),
                                          Config.IdleTimeoutMs)) {
    std::fprintf(stderr,
                 "scbuildd: error: option '--idle-timeout-ms' requires a "
                 "non-negative integer (got '%s')\n",
                 IdleText.c_str());
    return 1;
  }

  RealFileSystem FS(Dir);

  // Decision recording feeds `scbuild --daemon --explain`.
  Config.Build.Compiler.RecordDecisions =
      Config.Build.Compiler.Stateful.SkipMode != StatefulConfig::Mode::Stateless;
  MetricsRegistry Metrics;
  Config.Build.Compiler.Metrics = &Metrics;

  std::unique_ptr<TraceRecorder> Trace;
  std::unique_ptr<FileTraceSink> Sink;
  if (!TraceStream.empty()) {
    Sink = std::make_unique<FileTraceSink>(TraceStream);
    if (!Sink->ok()) {
      std::fprintf(stderr, "scbuildd: error: could not open trace stream '%s'\n",
                   TraceStream.c_str());
      return 1;
    }
    Trace = std::make_unique<TraceRecorder>();
    Trace->setThreadName("daemon-main");
    Trace->setSink(Sink.get());
    Config.Build.Compiler.Trace = Trace.get();
  }

  BuildDaemon Daemon(FS, Config);
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "scbuildd: error: %s\n", Err.c_str());
    return 1;
  }

  ActiveDaemon = &Daemon;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // Client death mid-frame must not kill us.

  int Code = Daemon.serve();

  ActiveDaemon = nullptr;
  if (Trace)
    Trace->flush();
  if (Sink)
    Sink->close(); // Seal the stream into strictly valid JSON.
  return Code;
}
