//===- tools/scbuild.cpp - Incremental build tool --------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `scbuild` — build a directory of .mc files incrementally and
/// optionally run the linked program. The on-disk artifacts (objects,
/// manifest, compiler state) live in <dir>/out and persist between
/// invocations, so repeated `scbuild` calls behave like make/ninja
/// driving the stateful compiler.
///
///   scbuild [dir] [options]
///   scbuild analyze [dir] [--build=ID] [--against=ID] [--top=N] [--json]
///                   critical-path analysis over the build history ledger
///                   (<dir>/out/history.jsonl): slowest TUs and passes,
///                   lock/pool attribution, and an A-vs-B regression diff
///   scbuild daemon-top [dir] [--watch]
///                   one-shot (or looping, with --watch) status view of the
///                   serving daemon, built on its status + metrics verbs
///
/// Options:
///   -O0|-O1|-O2     optimization level (default -O2)
///   -j <N>          total build concurrency, shared by TU-level jobs
///                   and intra-TU function-pass tasks (default: all
///                   hardware threads; 0 is clamped to 1)
///   --stateless     baseline compiler (default: stateful)
///   --exact         ExactSkip policy instead of the paper's heuristic
///   --reuse         enable function-level code reuse
///   --clean         drop artifacts and state before building
///   --run [args...] execute main() after a successful build; the
///                   remaining arguments are passed as integers
///   --quiet         suppress the build summary (warnings still print)
///   --daemon[=auto-start]
///                   build through a resident scbuildd daemon when one
///                   serves <dir>/out (warm caches across builds); with
///                   =auto-start, launch one if none is running. Falls
///                   back to an in-process build when no daemon listens.
///                   Output is byte-identical either way.
///   --daemon-status print the serving daemon's status and exit
///   --daemon-shutdown
///                   stop the serving daemon and exit
///   --remote-cache=PATH
///                   use the sccached daemon listening on Unix socket
///                   PATH as a shared remote object cache: objects
///                   another machine already compiled are fetched and
///                   verified instead of recompiled, and new objects
///                   are published for the rest of the fleet. A dead or
///                   absent daemon degrades to a plain local build with
///                   one warning — never a failed build.
///   --verify-deps   after a successful build, cross-check the files
///                   each TU actually read against the import graph's
///                   tracked edges (build_sys/DepVerifier.h). Findings
///                   print as stable `dep-missing:` / `dep-redundant:`
///                   reason lines and the exit code is 6. Observational
///                   only — never changes what gets built.
///   --trace-out=FILE   write a Chrome trace-event JSON of the build
///                      (load in chrome://tracing or Perfetto)
///   --report-json=FILE write the versioned JSON build report
///   --history-limit=N  retain at most N records in out/history.jsonl
///                      (default 512; 0 disables the ledger entirely)
///   --profile-sample-hz=N
///                      sample every thread's current span stack N times a
///                      second and merge the weighted aggregates into the
///                      trace and history record (0 = off, the default; the
///                      off path costs one relaxed load per span)
///   --explain TU[:pass] replay why each pass ran or slept for TU in
///                       the last recorded build (no build happens;
///                       with --daemon, answered by the daemon)
///
//===----------------------------------------------------------------------===//

#include "build_sys/Analyze.h"
#include "build_sys/BuildReport.h"
#include "build_sys/BuildSystem.h"
#include "build_sys/Daemon.h"
#include "build_sys/DaemonClient.h"
#include "build_sys/Explain.h"
#include "support/FaultyFileSystem.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace sc;

namespace {

/// Strict decimal parse for numeric options. Rejects empty strings,
/// signs, and trailing junk ("4x"), which strtoul would quietly accept.
bool parseUnsigned(const char *Text, unsigned &Out) {
  if (!*Text)
    return false;
  unsigned long V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(*P - '0');
    if (V > 0xffffffffUL)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

/// Same contract for 64-bit values (build ids).
bool parseU64Arg(const char *Text, uint64_t &Out) {
  if (!*Text)
    return false;
  uint64_t V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    uint64_t Next = V * 10 + static_cast<uint64_t>(*P - '0');
    if (Next < V)
      return false; // Overflow.
    V = Next;
  }
  Out = V;
  return true;
}

/// Launches `scbuildd` (found next to this executable) detached, with
/// its stdio under <dir>/out/.daemon.log, then waits for the socket to
/// appear. Returns a connected client (disconnected on failure).
DaemonClient autoStartDaemon(const std::string &Dir, const std::string &Sock,
                             const BuildOptions &Options) {
  // Find scbuildd next to /proc/self/exe; fall back to PATH lookup.
  std::string Daemon = "scbuildd";
  char Self[4096];
  ssize_t N = ::readlink("/proc/self/exe", Self, sizeof(Self) - 1);
  if (N > 0) {
    Self[N] = '\0';
    std::string Exe(Self);
    size_t Slash = Exe.find_last_of('/');
    if (Slash != std::string::npos)
      Daemon = Exe.substr(0, Slash + 1) + "scbuildd";
  }

  std::vector<std::string> Args = {Daemon, Dir};
  Args.push_back(Options.Compiler.Opt == OptLevel::O0   ? "-O0"
                 : Options.Compiler.Opt == OptLevel::O1 ? "-O1"
                                                        : "-O2");
  if (Options.Compiler.Stateful.SkipMode == StatefulConfig::Mode::Stateless)
    Args.push_back("--stateless");
  else if (Options.Compiler.Stateful.SkipMode ==
           StatefulConfig::Mode::ExactSkip)
    Args.push_back("--exact");
  if (Options.Compiler.Stateful.ReuseFunctionCode)
    Args.push_back("--reuse");
  Args.push_back("-j");
  Args.push_back(std::to_string(Options.Jobs));

  const std::string LogDir = Dir + "/" + Options.OutDir;
  ::mkdir(LogDir.c_str(), 0755); // Best effort; scbuildd creates it too.
  const std::string LogPath = LogDir + "/.daemon.log";

  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::setsid(); // Detach: outlive this scbuild and its terminal.
    int Log = ::open(LogPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (Log >= 0) {
      ::dup2(Log, 1);
      ::dup2(Log, 2);
      ::close(Log);
    }
    std::vector<char *> Argv;
    for (std::string &A : Args)
      Argv.push_back(A.data());
    Argv.push_back(nullptr);
    ::execv(Argv[0], Argv.data());
    ::execvp("scbuildd", Argv.data());
    _exit(127);
  }
  if (Pid < 0)
    return DaemonClient::connect(Sock); // One last direct try.
  // The daemon runs in its own session; we never wait() on it — it is
  // reparented when this scbuild exits.
  for (int Tries = 0; Tries != 60; ++Tries) {
    DaemonClient C = DaemonClient::connect(Sock);
    if (C.connected())
      return C;
    ::usleep(50 * 1000);
  }
  return DaemonClient::connect(Sock);
}

} // namespace

int main(int argc, char **argv) {
  std::string Dir = ".";
  BuildOptions Options;
  Options.Compiler.Stateful.SkipMode =
      StatefulConfig::Mode::HeuristicSkip;
  // Default to every hardware thread; hardware_concurrency() may
  // return 0 on exotic platforms.
  Options.Jobs = std::max(1u, std::thread::hardware_concurrency());
  bool Clean = false, Run = false, Quiet = false;
  bool Daemon = false, DaemonAutoStart = false;
  bool DaemonStatus = false, DaemonShutdown = false;
  std::string TraceOut, ReportOut, ExplainQ, RemoteCache;
  std::string Command; // "analyze" | "daemon-top" | "" (build).
  std::string BuildIdText, AgainstIdText, TopText;
  std::string HistoryLimitText, SampleHzText;
  bool AnalyzeJson = false, Watch = false;
  std::vector<int64_t> RunArgs;
  std::vector<std::string> FaultSpecs; // Hidden --inject-fault op:N.

  // Accepts --flag=VALUE or --flag VALUE. A matching flag with no
  // value is consumed too (ArgError set), so it reports "requires a
  // value" instead of falling through to "unknown option".
  bool ArgError = false;
  auto FlagValue = [&](const std::string &Arg, const char *Flag, int &I,
                       std::string &Out) {
    std::string Prefix = std::string(Flag) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg != Flag)
      return false;
    if (I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    std::fprintf(stderr, "scbuild: error: option '%s' requires a value\n",
                 Flag);
    ArgError = true;
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Run) {
      RunArgs.push_back(std::strtoll(Arg.c_str(), nullptr, 10));
      continue;
    }
    if (FlagValue(Arg, "--trace-out", I, TraceOut) ||
        FlagValue(Arg, "--report-json", I, ReportOut) ||
        FlagValue(Arg, "--explain", I, ExplainQ) ||
        FlagValue(Arg, "--remote-cache", I, RemoteCache) ||
        FlagValue(Arg, "--build", I, BuildIdText) ||
        FlagValue(Arg, "--against", I, AgainstIdText) ||
        FlagValue(Arg, "--top", I, TopText) ||
        FlagValue(Arg, "--history-limit", I, HistoryLimitText) ||
        FlagValue(Arg, "--profile-sample-hz", I, SampleHzText))
      continue;
    if (Arg == "-O0")
      Options.Compiler.Opt = OptLevel::O0;
    else if (Arg == "-O1")
      Options.Compiler.Opt = OptLevel::O1;
    else if (Arg == "-O2")
      Options.Compiler.Opt = OptLevel::O2;
    else if (Arg == "-j") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "scbuild: error: option '-j' requires a value\n");
        return 1;
      }
      unsigned Jobs = 0;
      if (!parseUnsigned(argv[++I], Jobs)) {
        std::fprintf(stderr,
                     "scbuild: error: option '-j' requires a positive "
                     "integer (got '%s')\n",
                     argv[I]);
        return 1;
      }
      // 0 would mean "no threads at all"; the nearest meaningful
      // request is a serial build.
      Options.Jobs = std::max(1u, Jobs);
    }
    else if (Arg == "--stateless")
      Options.Compiler.Stateful.SkipMode = StatefulConfig::Mode::Stateless;
    else if (Arg == "--exact")
      Options.Compiler.Stateful.SkipMode = StatefulConfig::Mode::ExactSkip;
    else if (Arg == "--reuse")
      Options.Compiler.Stateful.ReuseFunctionCode = true;
    else if (Arg == "--verify-deps")
      Options.VerifyDeps = true;
    else if (Arg == "--clean")
      Clean = true;
    else if (Arg == "--run")
      Run = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--json")
      AnalyzeJson = true;
    else if (Arg == "--watch")
      Watch = true;
    else if (Arg == "--daemon")
      Daemon = true;
    else if (Arg == "--daemon=auto-start") {
      Daemon = true;
      DaemonAutoStart = true;
    } else if (Arg == "--daemon-status")
      DaemonStatus = true;
    else if (Arg == "--daemon-shutdown")
      DaemonShutdown = true;
    else if (Arg == "--inject-fault") {
      // Hidden: deterministic fault injection for repros/benchmarks —
      // torn:N | enospc:N | enospc*:N (sticky) | read:N | crash:N,
      // firing on the Nth matching filesystem operation.
      if (I + 1 >= argc) {
        std::fprintf(
            stderr,
            "scbuild: error: option '--inject-fault' requires a value\n");
        return 1;
      }
      FaultSpecs.push_back(argv[++I]);
    } else if (Arg == "--lock-timeout-ms") {
      // Hidden: shorten the advisory-lock wait (tests/repros).
      if (I + 1 >= argc) {
        std::fprintf(
            stderr,
            "scbuild: error: option '--lock-timeout-ms' requires a value\n");
        return 1;
      }
      Options.LockTimeoutMs = static_cast<unsigned>(
          std::strtoul(argv[++I], nullptr, 10));
    } else if (Arg == "--help" || Arg == "-h") {
      std::fprintf(stderr,
                   "usage: scbuild [dir] [-O0|-O1|-O2] [-j N] "
                   "[--stateless] [--exact] [--reuse]\n               "
                   "[--clean] [--quiet] [--verify-deps] "
                   "[--daemon[=auto-start]] "
                   "[--daemon-status] [--daemon-shutdown]\n               "
                   "[--trace-out=FILE] [--report-json=FILE] "
                   "[--remote-cache=SOCKET]\n               "
                   "[--history-limit=N] [--profile-sample-hz=N]\n"
                   "               [--explain TU[:pass]] [--run [args...]]\n"
                   "       scbuild analyze [dir] [--build=ID] [--against=ID] "
                   "[--top=N] [--json]\n"
                   "       scbuild daemon-top [dir] [--watch]\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "scbuild: error: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    } else if (Command.empty() &&
               (Arg == "analyze" || Arg == "daemon-top")) {
      Command = Arg;
    } else {
      Dir = Arg;
    }
  }
  if (ArgError)
    return 1;

  auto ParseU64Flag = [](const std::string &Text, const char *Flag,
                         uint64_t &Out) {
    if (Text.empty())
      return true;
    if (parseU64Arg(Text.c_str(), Out))
      return true;
    std::fprintf(stderr,
                 "scbuild: error: option '%s' requires a non-negative "
                 "integer (got '%s')\n",
                 Flag, Text.c_str());
    return false;
  };
  auto ParseU32Flag = [](const std::string &Text, const char *Flag,
                         unsigned &Out) {
    if (Text.empty())
      return true;
    if (parseUnsigned(Text.c_str(), Out))
      return true;
    std::fprintf(stderr,
                 "scbuild: error: option '%s' requires a non-negative "
                 "integer (got '%s')\n",
                 Flag, Text.c_str());
    return false;
  };
  uint64_t AnalyzeBuildId = 0, AnalyzeAgainstId = 0;
  unsigned AnalyzeTop = 5;
  if (!ParseU64Flag(BuildIdText, "--build", AnalyzeBuildId) ||
      !ParseU64Flag(AgainstIdText, "--against", AnalyzeAgainstId) ||
      !ParseU32Flag(TopText, "--top", AnalyzeTop) ||
      !ParseU32Flag(HistoryLimitText, "--history-limit",
                    Options.HistoryLimit) ||
      !ParseU32Flag(SampleHzText, "--profile-sample-hz",
                    Options.ProfileSampleHz))
    return 1;

  //===--- analyze: offline report over the history ledger ----------------===//

  if (Command == "analyze") {
    RealFileSystem AnalyzeFS(Dir);
    AnalyzeOptions AOpt;
    AOpt.BuildId = AnalyzeBuildId;
    AOpt.AgainstId = AnalyzeAgainstId;
    AOpt.TopN = std::max(1u, AnalyzeTop);
    AOpt.Json = AnalyzeJson;
    AnalyzeResult AR =
        analyzeHistory(AnalyzeFS, Options.OutDir + "/history.jsonl", AOpt);
    if (!AR.OK) {
      std::fprintf(stderr, "scbuild: error: %s\n", AR.Error.c_str());
      return 1;
    }
    std::fputs(AR.Text.c_str(), stdout);
    return 0;
  }

  const bool Stateful =
      Options.Compiler.Stateful.SkipMode != StatefulConfig::Mode::Stateless;

  //===--- Daemon paths ---------------------------------------------------===//

  auto PrintOut = [](const std::string &T) {
    std::fwrite(T.data(), 1, T.size(), stdout);
  };
  auto PrintErr = [](const std::string &T) {
    std::fwrite(T.data(), 1, T.size(), stderr);
  };
  const std::string SockPath = daemonSocketPath(Dir, Options.OutDir);

  //===--- daemon-top: live service view over status + metrics verbs ------===//

  if (Command == "daemon-top") {
    for (;;) {
      std::string Status, MetricsText, Err;
      DaemonClient StatusConn = DaemonClient::connect(SockPath);
      if (!StatusConn.connected()) {
        std::fprintf(stderr, "scbuild: no daemon is serving '%s'\n",
                     SockPath.c_str());
        return 1;
      }
      DaemonRequest Req;
      Req.Verb = "status";
      if (StatusConn.roundTrip(
              Req, [&](const std::string &T) { Status += T; }, PrintErr,
              nullptr, &Err) < 0) {
        std::fprintf(stderr, "scbuild: error: daemon request failed: %s\n",
                     Err.c_str());
        return 1;
      }
      // One request per connection, so the metrics verb reconnects.
      DaemonClient MetricsConn = DaemonClient::connect(SockPath);
      Req.Verb = "metrics";
      if (!MetricsConn.connected() ||
          MetricsConn.roundTrip(
              Req, [&](const std::string &T) { MetricsText += T; }, PrintErr,
              nullptr, &Err) < 0) {
        std::fprintf(stderr, "scbuild: error: daemon request failed: %s\n",
                     Err.c_str());
        return 1;
      }
      const auto Samples = MetricsTextExporter::parse(MetricsText);
      auto Sample = [&](const char *Name) -> double {
        for (const auto &P : Samples)
          if (P.first == Name)
            return P.second;
        return 0.0;
      };
      auto Pct = [](double Part, double Whole) -> double {
        return Whole > 0.0 ? 100.0 * Part / Whole : 0.0;
      };
      const double Requests = Sample("scbuild_daemon_requests_served_total");
      const double Coalesced = Sample("scbuild_daemon_coalesced_total");
      const double Busy = Sample("scbuild_daemon_busy_rejections_total");
      const double Timeouts = Sample("scbuild_daemon_request_timeouts_total");
      const double Disc = Sample("scbuild_daemon_disconnects_total");
      const double RHits = Sample("scbuild_build_remote_hits_total");
      const double RMisses = Sample("scbuild_build_remote_misses_total");
      const double Scans = Sample("scbuild_build_interface_scans_total");
      const double ScanHits = Sample("scbuild_build_scan_cache_hits_total");

      std::string Top;
      if (Watch)
        Top += "\x1b[H\x1b[2J"; // Home + clear, terminal-top style.
      Top += "scbuild daemon-top — " + SockPath + "\n";
      Top += Status;
      char Line[256];
      std::snprintf(Line, sizeof(Line),
                    "daemon-top: queue depth %.0f (high water %.0f), active "
                    "connections %.0f\n",
                    Sample("scbuild_daemon_queue_depth"),
                    Sample("scbuild_daemon_queue_high_water"),
                    Sample("scbuild_daemon_connections_active"));
      Top += Line;
      std::snprintf(Line, sizeof(Line),
                    "daemon-top: rates: coalesced %.1f%%, busy %.0f, "
                    "timeouts %.0f, disconnects %.0f (of %.0f requests)\n",
                    Pct(Coalesced, Requests), Busy, Timeouts, Disc, Requests);
      Top += Line;
      if (RHits + RMisses > 0) {
        std::snprintf(Line, sizeof(Line),
                      "daemon-top: remote cache: %.0f hits / %.0f misses "
                      "(%.1f%% hit ratio)\n",
                      RHits, RMisses, Pct(RHits, RHits + RMisses));
        Top += Line;
      }
      if (Scans + ScanHits > 0) {
        std::snprintf(Line, sizeof(Line),
                      "daemon-top: scan cache: %.0f hits / %.0f scans "
                      "(%.1f%% warm)\n",
                      ScanHits, Scans + ScanHits,
                      Pct(ScanHits, Scans + ScanHits));
        Top += Line;
      }
      PrintOut(Top);
      if (!Watch)
        return 0;
      ::usleep(1000 * 1000);
    }
  }

  if (DaemonStatus || DaemonShutdown) {
    DaemonClient Client = DaemonClient::connect(SockPath);
    if (!Client.connected()) {
      if (DaemonShutdown) {
        std::fprintf(stderr, "scbuild: no daemon is serving '%s' "
                             "(nothing to stop)\n",
                     SockPath.c_str());
        return 0;
      }
      std::fprintf(stderr, "scbuild: no daemon is serving '%s'\n",
                   SockPath.c_str());
      return 1;
    }
    DaemonRequest Req;
    Req.Verb = DaemonShutdown ? "shutdown" : "status";
    std::string Err;
    int Code = Client.roundTrip(Req, PrintOut, PrintErr, nullptr, &Err);
    if (Code < 0) {
      std::fprintf(stderr, "scbuild: error: daemon request failed: %s\n",
                   Err.c_str());
      return 1;
    }
    return Code;
  }

  if (Daemon) {
    // Per-process telemetry sinks cannot cross the socket; the daemon
    // has its own (scbuildd --trace-stream).
    if (!TraceOut.empty() || !ReportOut.empty() || !FaultSpecs.empty()) {
      std::fprintf(stderr,
                   "scbuild: error: --trace-out/--report-json/--inject-fault "
                   "cannot be combined with --daemon (the daemon process owns "
                   "those sinks; see scbuildd --trace-stream)\n");
      return 1;
    }
    // The verifier runs inside the building process and reports
    // through BuildStats, which does not cross the socket.
    if (Options.VerifyDeps) {
      std::fprintf(stderr,
                   "scbuild: error: --verify-deps cannot be combined with "
                   "--daemon (the verifier runs in the building process; "
                   "use an in-process build)\n");
      return 1;
    }
    // Likewise the remote-cache connection: the resident driver lives
    // in the daemon process, so the tier is configured there.
    if (!RemoteCache.empty()) {
      std::fprintf(stderr,
                   "scbuild: error: --remote-cache cannot be combined with "
                   "--daemon (configure the tier on the daemon: scbuildd "
                   "--remote-cache=SOCKET)\n");
      return 1;
    }
    DaemonClient Client = DaemonClient::connect(SockPath);
    if (!Client.connected() && DaemonAutoStart)
      Client = autoStartDaemon(Dir, SockPath, Options);
    if (Client.connected()) {
      DaemonRequest Req;
      if (!ExplainQ.empty()) {
        Req.Verb = "explain";
        Req.Query = ExplainQ;
      } else {
        Req.Verb = "build";
        Req.Clean = Clean;
        Req.Quiet = Quiet;
        Req.Run = Run;
        Req.RunArgs = RunArgs;
        Req.Opt = static_cast<int>(Options.Compiler.Opt);
        Req.Mode = static_cast<int>(Options.Compiler.Stateful.SkipMode);
        Req.Reuse = Options.Compiler.Stateful.ReuseFunctionCode;
        Req.Jobs = Options.Jobs;
      }
      // First attempt rides the connection we already have; on a busy
      // rejection or transport failure, requestWithRetry reconnects
      // with doubling backoff + jitter before we give up and fall back
      // in-process.
      std::string Err;
      DaemonFrame Exit;
      int Code = Client.roundTrip(Req, PrintOut, PrintErr, &Exit, &Err);
      if (Code < 0) {
        DaemonClient::RetryPolicy Policy;
        Policy.Attempts = 3;
        if (Code == DaemonClient::BusyRejected && Exit.RetryAfterMs)
          Policy.InitialBackoffMs = Exit.RetryAfterMs;
        Code = DaemonClient::requestWithRetry(SockPath, Req, PrintOut,
                                              PrintErr, Policy, &Exit, &Err);
      }
      if (Code >= 0)
        return Code;
      if (Code == DaemonClient::BusyRejected)
        std::fprintf(stderr,
                     "scbuild: warning: daemon busy (queue depth %u) after "
                     "retries; building in-process\n",
                     Exit.QueueDepth);
      else
        std::fprintf(stderr,
                     "scbuild: warning: daemon request failed (%s); "
                     "building in-process\n",
                     Err.c_str());
    }
    // No daemon (or it died mid-request, or it stayed overloaded):
    // transparent in-process fallback — same flags, same output, just
    // cold caches.
  }

  //===--- In-process build ----------------------------------------------===//

  RealFileSystem DiskFS(Dir);

  // --explain replays the recorded decision log; no build happens.
  if (!ExplainQ.empty()) {
    bool OK = false;
    std::string Text = explainQuery(DiskFS, Options.OutDir, ExplainQ, &OK);
    std::fprintf(OK ? stdout : stderr, "%s", Text.c_str());
    return OK ? 0 : 1;
  }

  // Telemetry sinks. Decision recording is on for every stateful
  // scbuild (it feeds --explain). The trace recorder also feeds the
  // history ledger's per-TU/per-pass aggregates, so it exists whenever
  // the ledger is on (the default) — a disabled ledger AND no
  // --trace-out skips even the pointer-registered ring work.
  Options.Compiler.RecordDecisions = Stateful;
  Options.RemoteCache = RemoteCache;
  std::unique_ptr<TraceRecorder> Trace;
  if (!TraceOut.empty() || Options.HistoryLimit) {
    Trace = std::make_unique<TraceRecorder>();
    Trace->setThreadName("build-main");
    Options.Compiler.Trace = Trace.get();
  }
  MetricsRegistry Metrics;
  Options.Compiler.Metrics = &Metrics;

  VirtualFileSystem *FS = &DiskFS;
  std::unique_ptr<FaultyFileSystem> Faulty;
  if (!FaultSpecs.empty()) {
    Faulty = std::make_unique<FaultyFileSystem>(DiskFS);
    for (const std::string &Spec : FaultSpecs)
      if (!Faulty->armSpec(Spec)) {
        std::fprintf(stderr,
                     "scbuild: error: bad --inject-fault spec '%s' "
                     "(want torn:N|enospc:N|enospc*:N|read:N|crash:N)\n",
                     Spec.c_str());
        return 1;
      }
    FS = Faulty.get();
  }

  BuildDriver Driver(*FS, Options);
  BuildStats Stats;
  try {
    if (Clean)
      Driver.clean();
    Stats = Driver.build();
  } catch (const CrashPoint &C) {
    // Simulated process death from --inject-fault crash:N. Exit
    // without any cleanup beyond unwinding, like the real thing.
    std::fprintf(stderr, "scbuild: simulated crash in %s\n", C.Op.c_str());
    return 3;
  }

  // Telemetry outputs are written for failed builds too — a failing
  // build is exactly when a timeline is most wanted. These are
  // user-facing host paths, independent of the project filesystem.
  auto WriteHostFile = [](const std::string &Path, const std::string &Text,
                          const char *What) {
    if (std::FILE *F = std::fopen(Path.c_str(), "wb")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
      return true;
    }
    std::fprintf(stderr, "scbuild: warning: could not write %s '%s'\n", What,
                 Path.c_str());
    return false;
  };
  if (Trace && !TraceOut.empty())
    WriteHostFile(TraceOut, Trace->toChromeJson(), "trace");
  if (!ReportOut.empty())
    WriteHostFile(ReportOut, buildReportJson(Stats, &Metrics), "report");

  // One renderer shared with the daemon, so `scbuild` and `scbuild
  // --daemon` produce byte-identical output per stream.
  RenderedOutcome R = renderBuildOutcome(Stats, Stateful, Quiet);
  if (Stats.Success && Run) {
    VM Machine(*Driver.program());
    renderRunOutcome(R, Machine.run("main", RunArgs));
  }
  PrintErr(R.Err);
  PrintOut(R.Out);

  // Dependency-verifier verdict. Printed here (not in the shared
  // renderer) so `scbuild --daemon` output stays byte-identical; a
  // finding is its own failure mode with its own exit code.
  if (Options.VerifyDeps && Stats.Success) {
    for (const std::string &F : Stats.DepFindings)
      std::fprintf(stderr, "scbuild: %s\n", F.c_str());
    if (!Stats.DepFindings.empty()) {
      std::fprintf(stderr,
                   "scbuild: error: dependency verification failed: %u "
                   "missing, %u redundant (%u TUs checked)\n",
                   Stats.DepsMissing, Stats.DepsRedundant,
                   Stats.DepsTUsChecked);
      return 6;
    }
    if (!Quiet)
      std::fprintf(stderr, "scbuild: deps verified: %u TUs, 0 findings\n",
                   Stats.DepsTUsChecked);
  }
  return R.Code;
}
