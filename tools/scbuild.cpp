//===- tools/scbuild.cpp - Incremental build tool --------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `scbuild` — build a directory of .mc files incrementally and
/// optionally run the linked program. The on-disk artifacts (objects,
/// manifest, compiler state) live in <dir>/out and persist between
/// invocations, so repeated `scbuild` calls behave like make/ninja
/// driving the stateful compiler.
///
///   scbuild [dir] [options]
///
/// Options:
///   -O0|-O1|-O2     optimization level (default -O2)
///   -j <N>          total build concurrency, shared by TU-level jobs
///                   and intra-TU function-pass tasks (default: all
///                   hardware threads)
///   --stateless     baseline compiler (default: stateful)
///   --exact         ExactSkip policy instead of the paper's heuristic
///   --reuse         enable function-level code reuse
///   --clean         drop artifacts and state before building
///   --run [args...] execute main() after a successful build; the
///                   remaining arguments are passed as integers
///   --quiet         suppress the build summary (warnings still print)
///   --trace-out=FILE   write a Chrome trace-event JSON of the build
///                      (load in chrome://tracing or Perfetto)
///   --report-json=FILE write the versioned JSON build report
///   --explain TU[:pass] replay why each pass ran or slept for TU in
///                       the last recorded build (no build happens)
///
//===----------------------------------------------------------------------===//

#include "build_sys/BuildReport.h"
#include "build_sys/BuildSystem.h"
#include "build_sys/Explain.h"
#include "support/FaultyFileSystem.h"
#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace sc;

int main(int argc, char **argv) {
  std::string Dir = ".";
  BuildOptions Options;
  Options.Compiler.Stateful.SkipMode =
      StatefulConfig::Mode::HeuristicSkip;
  // Default to every hardware thread; hardware_concurrency() may
  // return 0 on exotic platforms.
  Options.Jobs = std::max(1u, std::thread::hardware_concurrency());
  bool Clean = false, Run = false, Quiet = false;
  std::string TraceOut, ReportOut, ExplainQ;
  std::vector<int64_t> RunArgs;
  std::vector<std::string> FaultSpecs; // Hidden --inject-fault op:N.

  // Accepts --flag=VALUE or --flag VALUE. A matching flag with no
  // value is consumed too (ArgError set), so it reports "requires a
  // value" instead of falling through to "unknown option".
  bool ArgError = false;
  auto FlagValue = [&](const std::string &Arg, const char *Flag, int &I,
                       std::string &Out) {
    std::string Prefix = std::string(Flag) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg != Flag)
      return false;
    if (I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    std::fprintf(stderr, "scbuild: error: option '%s' requires a value\n",
                 Flag);
    ArgError = true;
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Run) {
      RunArgs.push_back(std::strtoll(Arg.c_str(), nullptr, 10));
      continue;
    }
    if (FlagValue(Arg, "--trace-out", I, TraceOut) ||
        FlagValue(Arg, "--report-json", I, ReportOut) ||
        FlagValue(Arg, "--explain", I, ExplainQ))
      continue;
    if (Arg == "-O0")
      Options.Compiler.Opt = OptLevel::O0;
    else if (Arg == "-O1")
      Options.Compiler.Opt = OptLevel::O1;
    else if (Arg == "-O2")
      Options.Compiler.Opt = OptLevel::O2;
    else if (Arg == "-j") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "scbuild: error: option '-j' requires a value\n");
        return 1;
      }
      Options.Jobs = static_cast<unsigned>(
          std::strtoul(argv[++I], nullptr, 10));
    }
    else if (Arg == "--stateless")
      Options.Compiler.Stateful.SkipMode = StatefulConfig::Mode::Stateless;
    else if (Arg == "--exact")
      Options.Compiler.Stateful.SkipMode = StatefulConfig::Mode::ExactSkip;
    else if (Arg == "--reuse")
      Options.Compiler.Stateful.ReuseFunctionCode = true;
    else if (Arg == "--clean")
      Clean = true;
    else if (Arg == "--run")
      Run = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--inject-fault") {
      // Hidden: deterministic fault injection for repros/benchmarks —
      // torn:N | enospc:N | enospc*:N (sticky) | read:N | crash:N,
      // firing on the Nth matching filesystem operation.
      if (I + 1 >= argc) {
        std::fprintf(
            stderr,
            "scbuild: error: option '--inject-fault' requires a value\n");
        return 1;
      }
      FaultSpecs.push_back(argv[++I]);
    } else if (Arg == "--lock-timeout-ms") {
      // Hidden: shorten the advisory-lock wait (tests/repros).
      if (I + 1 >= argc) {
        std::fprintf(
            stderr,
            "scbuild: error: option '--lock-timeout-ms' requires a value\n");
        return 1;
      }
      Options.LockTimeoutMs = static_cast<unsigned>(
          std::strtoul(argv[++I], nullptr, 10));
    } else if (Arg == "--help" || Arg == "-h") {
      std::fprintf(stderr,
                   "usage: scbuild [dir] [-O0|-O1|-O2] [-j N] "
                   "[--stateless] [--exact] [--reuse]\n               "
                   "[--clean] [--quiet] [--trace-out=FILE] "
                   "[--report-json=FILE]\n               "
                   "[--explain TU[:pass]] [--run [args...]]\n");
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "scbuild: error: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    } else {
      Dir = Arg;
    }
  }
  if (ArgError)
    return 1;

  RealFileSystem DiskFS(Dir);

  // --explain replays the recorded decision log; no build happens.
  if (!ExplainQ.empty()) {
    bool OK = false;
    std::string Text = explainQuery(DiskFS, Options.OutDir, ExplainQ, &OK);
    std::fprintf(OK ? stdout : stderr, "%s", Text.c_str());
    return OK ? 0 : 1;
  }

  // Telemetry sinks. Decision recording is on for every stateful
  // scbuild (it feeds --explain); the trace recorder exists only when
  // asked for, so untraced builds skip even the pointer-registered
  // ring work.
  Options.Compiler.RecordDecisions =
      Options.Compiler.Stateful.SkipMode != StatefulConfig::Mode::Stateless;
  std::unique_ptr<TraceRecorder> Trace;
  if (!TraceOut.empty()) {
    Trace = std::make_unique<TraceRecorder>();
    Trace->setThreadName("build-main");
    Options.Compiler.Trace = Trace.get();
  }
  MetricsRegistry Metrics;
  Options.Compiler.Metrics = &Metrics;

  VirtualFileSystem *FS = &DiskFS;
  std::unique_ptr<FaultyFileSystem> Faulty;
  if (!FaultSpecs.empty()) {
    Faulty = std::make_unique<FaultyFileSystem>(DiskFS);
    for (const std::string &Spec : FaultSpecs)
      if (!Faulty->armSpec(Spec)) {
        std::fprintf(stderr,
                     "scbuild: error: bad --inject-fault spec '%s' "
                     "(want torn:N|enospc:N|enospc*:N|read:N|crash:N)\n",
                     Spec.c_str());
        return 1;
      }
    FS = Faulty.get();
  }

  BuildDriver Driver(*FS, Options);
  BuildStats Stats;
  try {
    if (Clean)
      Driver.clean();
    Stats = Driver.build();
  } catch (const CrashPoint &C) {
    // Simulated process death from --inject-fault crash:N. Exit
    // without any cleanup beyond unwinding, like the real thing.
    std::fprintf(stderr, "scbuild: simulated crash in %s\n", C.Op.c_str());
    return 3;
  }
  for (const std::string &W : Stats.Warnings)
    std::fprintf(stderr, "scbuild: warning: %s\n", W.c_str());

  // Telemetry outputs are written for failed builds too — a failing
  // build is exactly when a timeline is most wanted. These are
  // user-facing host paths, independent of the project filesystem.
  auto WriteHostFile = [](const std::string &Path, const std::string &Text,
                          const char *What) {
    if (std::FILE *F = std::fopen(Path.c_str(), "wb")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
      return true;
    }
    std::fprintf(stderr, "scbuild: warning: could not write %s '%s'\n", What,
                 Path.c_str());
    return false;
  };
  if (Trace)
    WriteHostFile(TraceOut, Trace->toChromeJson(), "trace");
  if (!ReportOut.empty())
    WriteHostFile(ReportOut, buildReportJson(Stats, &Metrics), "report");

  if (!Stats.Success) {
    std::fprintf(stderr, "%s\n", Stats.ErrorText.c_str());
    return 1;
  }

  if (!Quiet) {
    std::printf("scbuild: %u/%u files compiled in %.1f ms "
                "(scan %.1f, compile %.1f, link %.1f, state %.1f)\n",
                Stats.FilesCompiled, Stats.FilesTotal,
                Stats.TotalUs / 1000, Stats.ScanUs / 1000,
                Stats.CompileUs / 1000, Stats.LinkUs / 1000,
                Stats.StateIOUs / 1000);
    if (Options.Compiler.Stateful.SkipMode !=
        StatefulConfig::Mode::Stateless)
      std::printf("scbuild: passes run %llu, skipped %llu; "
                  "functions reused %llu; state db %.1f KB\n",
                  static_cast<unsigned long long>(Stats.Skip.PassesRun),
                  static_cast<unsigned long long>(
                      Stats.Skip.PassesSkipped),
                  static_cast<unsigned long long>(
                      Stats.Skip.FunctionsReused),
                  Stats.StateDBBytes / 1024.0);
  }

  if (Run) {
    VM Machine(*Driver.program());
    ExecResult R = Machine.run("main", RunArgs);
    if (R.Trapped) {
      std::fprintf(stderr, "scbuild: trap: %s\n", R.TrapReason.c_str());
      return 1;
    }
    for (int64_t V : R.Output)
      std::printf("%lld\n", static_cast<long long>(V));
    return static_cast<int>(R.ReturnValue.value_or(0) & 0xff);
  }
  return 0;
}
