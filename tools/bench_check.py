#!/usr/bin/env python3
"""Perf regression gate over BENCH_e10.json (the bench-regress ctest).

Runs the E10 thread-scaling bench fresh, then compares its stateful-j8
speedup-over-j1 against the value committed in the repo's
BENCH_e10.json. Fails (exit 1) when the fresh speedup drops more than
ALLOWED_DROP below the committed one — the "cross-TU frontier actually
scales" property is load-bearing and must not silently regress.

Scaling numbers are only meaningful when -j8 really runs on >= 8
hardware threads. On constrained runners (CI containers pinned to 1-2
cores) a -j8 run measures time-slicing overhead, not scaling, so the
gate SKIPS (exit 77, ctest's skip code) instead of comparing garbage:
  - before running the bench, when the machine has < 8 hardware threads;
  - after running it, when the fresh JSON flags the stateful-j8 run as
    oversubscribed (defense in depth — the bench decides too).

Usage: bench_check.py <bench_e10_binary> <committed_BENCH_e10.json>
The bench binary writes BENCH_e10.json into the current directory.
"""

import json
import os
import subprocess
import sys

SKIP = 77  # ctest SKIP_RETURN_CODE
ALLOWED_DROP = 0.10  # Fail below committed * (1 - ALLOWED_DROP).
GATED_CONFIG = "stateful-j8"


def skip(msg):
    print(f"SKIP: {msg}")
    sys.exit(SKIP)


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def find_run(doc, config):
    for run in doc.get("runs", []):
        if run.get("config") == config:
            return run
    return None


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <bench_e10_binary> <committed_json>")
    bench, committed_path = sys.argv[1], sys.argv[2]

    hw = os.cpu_count() or 1
    if hw < 8:
        skip(f"machine has {hw} hardware thread(s); the {GATED_CONFIG} "
             "scaling claim needs >= 8 — not a scaling measurement here")

    try:
        with open(committed_path) as f:
            committed = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read committed baseline {committed_path}: {e}")

    print(f"running {bench} ...")
    proc = subprocess.run([bench], cwd=os.getcwd())
    if proc.returncode != 0:
        fail(f"bench exited with {proc.returncode}")

    try:
        with open("BENCH_e10.json") as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"bench did not produce a readable BENCH_e10.json: {e}")

    fresh_run = find_run(fresh, GATED_CONFIG)
    if fresh_run is None:
        fail(f"fresh JSON has no {GATED_CONFIG} run")
    if fresh_run.get("oversubscribed"):
        skip(f"fresh {GATED_CONFIG} run is flagged oversubscribed "
             f"(effective_concurrency="
             f"{fresh_run.get('effective_concurrency')})")

    committed_run = find_run(committed, GATED_CONFIG)
    if committed_run is None:
        fail(f"committed baseline has no {GATED_CONFIG} run")
    baseline = committed_run.get("speedup_vs_j1")
    if not baseline or baseline <= 0:
        fail(f"committed baseline has no usable speedup_vs_j1")
    if committed_run.get("oversubscribed"):
        # A baseline taken on a constrained runner gates nothing real;
        # regenerate it on >= 8 effective threads to arm the check.
        skip("committed baseline was itself taken oversubscribed; "
             "regenerate BENCH_e10.json on >= 8 hardware threads")

    measured = fresh_run.get("speedup_vs_j1", 0)
    floor = baseline * (1.0 - ALLOWED_DROP)
    print(f"{GATED_CONFIG}: committed speedup {baseline:.3f}x, "
          f"measured {measured:.3f}x, floor {floor:.3f}x")
    if measured < floor:
        fail(f"{GATED_CONFIG} speedup regressed: {measured:.3f}x < "
             f"{floor:.3f}x (committed {baseline:.3f}x - "
             f"{ALLOWED_DROP:.0%})")
    print("OK: thread-scaling speedup within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
