#!/usr/bin/env python3
"""Perf regression gates over committed BENCH_*.json files.

One subcommand per gating ctest (plus `history` and `scenario`, which
validate artifacts rather than re-measure):

  bench_check.py e10 <bench_e10_binary> <committed_BENCH_e10.json>
      Re-measures E10 thread scaling and fails when the stateful-j8
      speedup-over-j1 drops more than E10_ALLOWED_DROP below the
      committed value — the "cross-TU frontier actually scales"
      property is load-bearing and must not silently regress.

  bench_check.py daemon <bench_daemon_binary> <committed_BENCH_daemon.json>
      Re-runs the multi-client daemon load harness. Functional service
      properties are checked unconditionally (concurrent clients must
      coalesce, overload must answer busy instead of queueing without
      bound). Tail latency (p95 per client count) is compared against
      the committed baseline only when the measurement is honest.

Both gates SKIP (exit 77, ctest's skip code) rather than compare
garbage on constrained runners: scaling and latency numbers taken on a
1-2 core CI container measure time-slicing overhead, not the property
under test. The skip is decided both before the run (hardware thread
count) and after it (the fresh JSON flags itself oversubscribed —
defense in depth; the bench decides too). A committed baseline that was
itself taken oversubscribed gates nothing real and also skips.

Each bench binary writes its BENCH_*.json into the current directory.
"""

import json
import os
import subprocess
import sys

SKIP = 77  # ctest SKIP_RETURN_CODE

E10_ALLOWED_DROP = 0.10  # Fail below committed * (1 - drop).
E10_GATED_CONFIG = "stateful-j8"

# Tail latency is noisy; only a substantial regression fails the gate.
DAEMON_ALLOWED_P95_RISE = 0.50  # Fail above committed * (1 + rise).


def skip(msg):
    print(f"SKIP: {msg}")
    sys.exit(SKIP)


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read {what} {path}: {e}")


def run_bench(bench, output_name):
    print(f"running {bench} ...")
    proc = subprocess.run([bench], cwd=os.getcwd())
    if proc.returncode != 0:
        fail(f"bench exited with {proc.returncode}")
    return load_json(output_name, "bench output")


def find_run(doc, key, value):
    for run in doc.get("runs", []):
        if run.get(key) == value:
            return run
    return None


# ---------------------------------------------------------------- e10


def check_e10(bench, committed_path):
    hw = os.cpu_count() or 1
    if hw < 8:
        skip(f"machine has {hw} hardware thread(s); the {E10_GATED_CONFIG} "
             "scaling claim needs >= 8 — not a scaling measurement here")

    committed = load_json(committed_path, "committed baseline")
    fresh = run_bench(bench, "BENCH_e10.json")

    fresh_run = find_run(fresh, "config", E10_GATED_CONFIG)
    if fresh_run is None:
        fail(f"fresh JSON has no {E10_GATED_CONFIG} run")
    if fresh_run.get("oversubscribed"):
        skip(f"fresh {E10_GATED_CONFIG} run is flagged oversubscribed "
             f"(effective_concurrency="
             f"{fresh_run.get('effective_concurrency')})")

    committed_run = find_run(committed, "config", E10_GATED_CONFIG)
    if committed_run is None:
        fail(f"committed baseline has no {E10_GATED_CONFIG} run")
    baseline = committed_run.get("speedup_vs_j1")
    if not baseline or baseline <= 0:
        fail("committed baseline has no usable speedup_vs_j1")
    if committed_run.get("oversubscribed"):
        # A baseline taken on a constrained runner gates nothing real;
        # regenerate it on >= 8 effective threads to arm the check.
        skip("committed baseline was itself taken oversubscribed; "
             "regenerate BENCH_e10.json on >= 8 hardware threads")

    measured = fresh_run.get("speedup_vs_j1", 0)
    floor = baseline * (1.0 - E10_ALLOWED_DROP)
    print(f"{E10_GATED_CONFIG}: committed speedup {baseline:.3f}x, "
          f"measured {measured:.3f}x, floor {floor:.3f}x")
    if measured < floor:
        fail(f"{E10_GATED_CONFIG} speedup regressed: {measured:.3f}x < "
             f"{floor:.3f}x (committed {baseline:.3f}x - "
             f"{E10_ALLOWED_DROP:.0%})")
    print("OK: thread-scaling speedup within tolerance")
    sys.exit(0)


# ------------------------------------------------------------- daemon


def check_daemon(bench, committed_path):
    committed = load_json(committed_path, "committed baseline")
    fresh = run_bench(bench, "BENCH_daemon.json")

    # Functional properties hold on any machine — check them before any
    # oversubscription skip. A broken service must fail even where the
    # latency numbers would be meaningless.
    runs = fresh.get("runs", [])
    if not runs:
        fail("fresh JSON has no runs")
    multi = [r for r in runs if r.get("clients", 0) > 1]
    if not multi:
        fail("fresh JSON has no multi-client run")
    if all(r.get("coalesce_hits", 0) == 0 for r in multi):
        fail("no multi-client run coalesced a single request — identical "
             "concurrent requests must share one build wave")
    overload = fresh.get("overload", {})
    if overload.get("busy_rejections", 0) <= 0:
        fail("overload phase produced no busy rejections — a full queue "
             "must bounce with a structured busy frame, not grow")
    if overload.get("accepted", 0) <= 0:
        fail("overload phase accepted nothing — admission control must "
             "degrade, not deny service entirely")
    print(f"service properties OK: coalesce hits "
          f"{[r.get('coalesce_hits') for r in multi]}, overload "
          f"{overload.get('accepted')} accepted / "
          f"{overload.get('busy_rejections')} busy-rejected")

    # Latency comparison is only honest when neither measurement was
    # oversubscribed (client threads + builder time-slicing one core
    # measures the scheduler, not the service).
    if fresh.get("oversubscribed"):
        skip(f"fresh run is flagged oversubscribed "
             f"(hardware_threads={fresh.get('hardware_threads')}); "
             "service properties verified, tail latency not gated")
    if committed.get("oversubscribed"):
        skip("committed baseline was itself taken oversubscribed; "
             "regenerate BENCH_daemon.json on a multi-core machine to "
             "arm the latency gate")

    failures = []
    for fresh_run in runs:
        clients = fresh_run.get("clients")
        committed_run = find_run(committed, "clients", clients)
        if committed_run is None:
            print(f"note: committed baseline has no {clients}-client run; "
                  "not gated")
            continue
        baseline = committed_run.get("build_latency_p95_ms")
        measured = fresh_run.get("build_latency_p95_ms")
        if not baseline or baseline <= 0 or measured is None:
            continue
        ceiling = baseline * (1.0 + DAEMON_ALLOWED_P95_RISE)
        verdict = "FAIL" if measured > ceiling else "ok"
        print(f"{clients} client(s): committed p95 {baseline:.2f} ms, "
              f"measured {measured:.2f} ms, ceiling {ceiling:.2f} ms "
              f"[{verdict}]")
        if measured > ceiling:
            failures.append(clients)
    if failures:
        fail(f"p95 build latency regressed for client count(s) "
             f"{failures} (> committed + {DAEMON_ALLOWED_P95_RISE:.0%})")
    print("OK: daemon service properties and tail latency within tolerance")
    sys.exit(0)


# ------------------------------------------------------------ history


def check_history(ledger_path):
    """Validates a build-history ledger (history.jsonl) left behind by a
    bench_daemon run: every line is standalone JSON carrying the
    versioned schema and a well-formed checksum, and build ids are
    strictly monotone. Skips when the ledger is absent (bench-daemon
    has not run in this build tree yet)."""
    if not os.path.exists(ledger_path):
        skip(f"no ledger at {ledger_path}; run the bench-daemon test first")
    records = []
    with open(ledger_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not standalone JSON: {e}")
            if rec.get("schema") != "scbuild-history":
                fail(f"line {lineno}: schema is {rec.get('schema')!r}, "
                     "expected 'scbuild-history'")
            if rec.get("schema_version") != 1:
                fail(f"line {lineno}: unexpected schema_version "
                     f"{rec.get('schema_version')!r}")
            crc = rec.get("crc", "")
            if len(crc) != 16 or any(c not in "0123456789abcdef"
                                     for c in crc):
                fail(f"line {lineno}: malformed crc {crc!r}")
            if not line.endswith(',"crc":"%s"}' % crc):
                fail(f"line {lineno}: crc is not the final key — the "
                     "checksum must cover every byte before it")
            records.append(rec)
    if not records:
        fail(f"{ledger_path} holds no records")
    ids = [r.get("build", 0) for r in records]
    if any(b <= a for a, b in zip(ids, ids[1:])):
        fail(f"build ids are not strictly monotone: {ids}")
    for key in ("success", "phases_us", "counters", "tus", "passes"):
        missing = [i for i, r in enumerate(records, 1) if key not in r]
        if missing:
            fail(f"record(s) {missing} lack the '{key}' field")
    print(f"OK: {len(records)} ledger record(s), ids {ids[0]}..{ids[-1]} "
          "monotone, schema v1, checksums well-formed")
    sys.exit(0)


def check_scenario(scworkload, spec_path):
    """Replays a bundled scenario through scworkload and validates the
    "scworkload-replay" report: every phase built, the dependency
    verifier found nothing, and the incremental artifacts byte-matched
    a scratch build after every phase. Scenario replays are
    deterministic at any -j, so this gate never skips for hardware."""
    if not os.path.exists(spec_path):
        fail(f"no scenario spec at {spec_path}")
    report = "BENCH_scenario.json"
    workspace = "bench_scenario_ws"
    if os.path.exists(workspace):
        import shutil
        shutil.rmtree(workspace)
    os.makedirs(workspace)
    print(f"running {scworkload} run {spec_path} ...")
    proc = subprocess.run(
        [scworkload, "run", spec_path, "--dir", workspace, "-j", "4",
         "--quiet", f"--report-json={report}"], cwd=os.getcwd())
    if proc.returncode != 0:
        fail(f"scworkload exited with {proc.returncode}")
    doc = load_json(report, "replay report")
    if doc.get("schema") != "scworkload-replay":
        fail(f"schema is {doc.get('schema')!r}, expected 'scworkload-replay'")
    if doc.get("schema_version") != 1:
        fail(f"unexpected schema_version {doc.get('schema_version')!r}")
    if doc.get("ok") is not True:
        fail(f"replay not ok: findings {doc.get('findings')}")
    if doc.get("findings"):
        fail(f"verifier findings on a clean scenario: {doc['findings']}")
    phases = doc.get("phases", [])
    if not phases:
        fail("report holds no phase outcomes")
    for ph in phases:
        for key in ("phase", "iteration", "build_ok", "scratch_match",
                    "files_compiled", "files_total", "deps_missing",
                    "deps_redundant"):
            if key not in ph:
                fail(f"phase record lacks the {key!r} field: {ph}")
        if not ph["build_ok"]:
            fail(f"phase {ph['phase']!r} failed to build")
        if not ph["scratch_match"]:
            fail(f"phase {ph['phase']!r} diverged from a scratch build")
        if ph["deps_missing"] or ph["deps_redundant"]:
            fail(f"phase {ph['phase']!r} has dependency findings: {ph}")
    print(f"OK: scenario {doc.get('scenario')!r} replayed clean — "
          f"{len(phases)} build(s), zero findings, scratch-identical")
    sys.exit(0)


def main():
    usage = (f"usage: {sys.argv[0]} e10|daemon <bench_binary> "
             f"<committed_json>  |  {sys.argv[0]} history <ledger.jsonl>"
             f"  |  {sys.argv[0]} scenario <scworkload> <spec.scen>")
    if len(sys.argv) == 3 and sys.argv[1] == "history":
        check_history(sys.argv[2])
    if len(sys.argv) != 4:
        fail(usage)
    sub, bench, committed_path = sys.argv[1], sys.argv[2], sys.argv[3]
    if sub == "e10":
        check_e10(bench, committed_path)
    elif sub == "daemon":
        check_daemon(bench, committed_path)
    elif sub == "scenario":
        check_scenario(bench, committed_path)
    else:
        fail(usage)


if __name__ == "__main__":
    main()
