//===- tools/scworkload.cpp - Scenario replay tool -------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `scworkload` — replay a declarative workload scenario (see
/// docs/WORKLOADS.md) against a workspace, building after every phase
/// iteration and failing on any dependency-verifier finding or
/// non-incremental divergence (the incremental manifest must match a
/// scratch build of the same tree).
///
///   scworkload run SPEC [options]      replay SPEC into a workspace
///   scworkload check SPEC              parse + echo the normalized spec
///
/// Options (run):
///   --dir DIR         workspace directory (default "."); the scenario's
///                     generated project is rendered here and out/ holds
///                     the build artifacts
///   -j N              build concurrency (default 1 — replays are
///                     deterministic at any -j; crank it to stress)
///   -O0|-O1|-O2       optimization level (default -O2)
///   --stateless       baseline compiler (default: stateful)
///   --no-verify-deps  skip the dependency cross-check
///   --no-scratch      skip the scratch-build comparison
///   --via-daemon      route builds through the scbuildd serving the
///                     workspace (verification and scratch comparison
///                     stay in-process)
///   --report-json=FILE  write the replay report (schema
///                       "scworkload-replay" v1)
///   --edit-log=FILE   write the flat edit log (determinism debugging)
///   --quiet           suppress per-phase progress lines
///
/// Exit codes: 0 clean replay; 1 usage/parse error; 2 replay failed
/// (verifier finding, scratch divergence, or build failure).
///
//===----------------------------------------------------------------------===//

#include "build_sys/Daemon.h"
#include "build_sys/DaemonClient.h"
#include "support/FileSystem.h"
#include "workload/Scenario.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace sc;

namespace {

bool parseUnsigned(const char *Text, unsigned &Out) {
  if (!*Text)
    return false;
  unsigned long V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(*P - '0');
    if (V > 0xffffffffUL)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

bool readHostFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

bool writeHostFile(const std::string &Path, const std::string &Text,
                   const char *What) {
  if (std::FILE *F = std::fopen(Path.c_str(), "wb")) {
    std::fwrite(Text.data(), 1, Text.size(), F);
    std::fclose(F);
    return true;
  }
  std::fprintf(stderr, "scworkload: warning: could not write %s '%s'\n", What,
               Path.c_str());
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: scworkload run SPEC [--dir DIR] [-j N] [-O0|-O1|-O2]\n"
      "                  [--stateless] [--no-verify-deps] [--no-scratch]\n"
      "                  [--via-daemon] [--report-json=FILE] "
      "[--edit-log=FILE] [--quiet]\n"
      "       scworkload check SPEC\n");
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  const std::string Command = argv[1];
  const std::string SpecPath = argv[2];
  if (Command != "run" && Command != "check")
    return usage();

  std::string Dir = ".";
  std::string ReportOut, EditLogOut;
  ScenarioRunOptions Opts;
  bool ViaDaemon = false, Quiet = false;

  bool ArgError = false;
  auto FlagValue = [&](const std::string &Arg, const char *Flag, int &I,
                       std::string &Out) {
    std::string Prefix = std::string(Flag) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg != Flag)
      return false;
    if (I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    std::fprintf(stderr, "scworkload: error: option '%s' requires a value\n",
                 Flag);
    ArgError = true;
    return true;
  };

  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (FlagValue(Arg, "--dir", I, Dir) ||
        FlagValue(Arg, "--report-json", I, ReportOut) ||
        FlagValue(Arg, "--edit-log", I, EditLogOut))
      continue;
    if (Arg == "-j") {
      if (I + 1 >= argc || !parseUnsigned(argv[++I], Opts.Jobs)) {
        std::fprintf(stderr,
                     "scworkload: error: option '-j' requires a positive "
                     "integer\n");
        return 1;
      }
      Opts.Jobs = Opts.Jobs ? Opts.Jobs : 1;
    } else if (Arg == "-O0")
      Opts.OptLevel = 0;
    else if (Arg == "-O1")
      Opts.OptLevel = 1;
    else if (Arg == "-O2")
      Opts.OptLevel = 2;
    else if (Arg == "--stateless")
      Opts.Stateful = false;
    else if (Arg == "--no-verify-deps")
      Opts.VerifyDeps = false;
    else if (Arg == "--no-scratch")
      Opts.ScratchCompare = false;
    else if (Arg == "--via-daemon")
      ViaDaemon = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else {
      std::fprintf(stderr, "scworkload: error: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (ArgError)
    return 1;

  std::string Text;
  if (!readHostFile(SpecPath, Text)) {
    std::fprintf(stderr, "scworkload: error: cannot read spec '%s'\n",
                 SpecPath.c_str());
    return 1;
  }
  Scenario S;
  std::string Error;
  if (!ScenarioParser::parse(Text, S, Error)) {
    std::fprintf(stderr, "scworkload: error: %s: %s\n", SpecPath.c_str(),
                 Error.c_str());
    return 1;
  }

  if (Command == "check") {
    // Echo the normalized form — what renderScenario round-trips.
    std::fputs(renderScenario(S).c_str(), stdout);
    return 0;
  }

  RealFileSystem FS(Dir);

  if (ViaDaemon) {
    const std::string Sock = daemonSocketPath(Dir, Opts.OutDir);
    Opts.ExternalBuild = [Sock]() {
      ScenarioBuildResult R;
      DaemonClient Client = DaemonClient::connect(Sock);
      if (!Client.connected()) {
        R.Error = "no daemon is serving '" + Sock + "'";
        return R;
      }
      DaemonRequest Req;
      Req.Verb = "build";
      Req.Quiet = true;
      std::string Err, Captured;
      auto Capture = [&](const std::string &T) { Captured += T; };
      int Code = Client.roundTrip(Req, Capture, Capture, nullptr, &Err);
      R.Ok = Code == 0;
      if (!R.Ok)
        R.Error = !Err.empty() ? Err : Captured;
      return R;
    };
  }

  ScenarioRunner Runner(S, FS, Opts);
  bool OK = Runner.run();

  if (!Quiet) {
    for (const ScenarioPhaseOutcome &O : Runner.outcomes()) {
      std::string Tag = O.Phase;
      if (O.Iteration)
        Tag += "#" + std::to_string(O.Iteration);
      if (!O.BuildOk) {
        std::fprintf(stderr, "scworkload: %s: BUILD FAILED: %s\n", Tag.c_str(),
                     O.BuildError.c_str());
        continue;
      }
      std::fprintf(stderr,
                   "scworkload: %s: changed %zu, compiled %u/%u, deps %u/%u, "
                   "scratch %s%s\n",
                   Tag.c_str(), O.ChangedFiles.size(), O.FilesCompiled,
                   O.FilesTotal, O.DepsMissing, O.DepsRedundant,
                   O.ScratchMatch ? "ok" : "DIVERGED",
                   O.Findings.empty() ? "" : " [FINDINGS]");
    }
  }
  // Findings always print — they are the verdict.
  for (const ScenarioPhaseOutcome &O : Runner.outcomes())
    for (const std::string &F : O.Findings)
      std::fprintf(stderr, "scworkload: %s\n", F.c_str());

  if (!ReportOut.empty())
    writeHostFile(ReportOut, Runner.reportJson(), "report");
  if (!EditLogOut.empty()) {
    std::string Log;
    for (const std::string &L : Runner.editLog())
      Log += L + "\n";
    writeHostFile(EditLogOut, Log, "edit log");
  }

  if (!OK) {
    std::fprintf(stderr, "scworkload: replay FAILED for scenario '%s'\n",
                 S.Name.c_str());
    return 2;
  }
  if (!Quiet)
    std::fprintf(stderr, "scworkload: replay ok: scenario '%s' (%zu builds)\n",
                 S.Name.c_str(), Runner.outcomes().size());
  return 0;
}
