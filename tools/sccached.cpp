//===- tools/sccached.cpp - Shared object-cache daemon ---------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// `sccached` — a content-addressed object-cache daemon shared by a
/// fleet of builders. One warm builder publishes every object it
/// compiles; every other machine's `scbuild --remote-cache=SOCKET`
/// then fetches verified objects instead of recompiling unchanged TUs.
/// Entries persist under the cache directory across daemon restarts.
///
///   sccached --socket=PATH [options]          serve
///   sccached --socket=PATH --stats            print a serving daemon's stats
///   sccached --socket=PATH --stats --json     the same as JSON, carrying the
///                                             registry under the "metrics"
///                                             key (the shape scbuildd
///                                             --report-json uses)
///   sccached --socket=PATH --metrics          print the daemon's metrics in
///                                             Prometheus text exposition
///   sccached --socket=PATH --shutdown         stop a serving daemon
///
/// Options (serve mode):
///   --cache-dir=DIR      entry storage (default: `<socket dir>/sccache`)
///   --max-bytes=N        LRU budget over stored payload bytes
///                        (default 0 = unlimited); at the budget the
///                        least-recently-used entries are evicted
///   --idle-timeout-ms=N  exit after N ms without a request (0 = never)
///   --metrics-out=FILE   periodically (and on exit) rewrite FILE atomically
///                        with the cache.* metrics in Prometheus text
///                        exposition format
///   --metrics-interval-ms=N
///                        period of the --metrics-out dump (default 1000)
///   --quiet              suppress lifecycle messages
///
//===----------------------------------------------------------------------===//

#include "cache_sys/CacheDaemon.h"
#include "cache_sys/RemoteCacheClient.h"
#include "support/FileSystem.h"

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace sc;

namespace {
CacheDaemon *ActiveDaemon = nullptr;

void onSignal(int) {
  // requestStop() is a relaxed atomic store — async-signal-safe. The
  // serve() loop notices within one accept slice.
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

bool parseU64(const char *Text, uint64_t &Out) {
  if (!*Text)
    return false;
  uint64_t V = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    uint64_t Next = V * 10 + static_cast<uint64_t>(*P - '0');
    if (Next < V)
      return false; // Overflow.
    V = Next;
  }
  Out = V;
  return true;
}
} // namespace

int main(int argc, char **argv) {
  std::string Socket, CacheDir, MetricsOut;
  uint64_t MaxBytes = 0, IdleMs = 0, MetricsIntervalMs = 1000;
  bool Quiet = false, Stats = false, Shutdown = false;
  bool Json = false, Metrics = false;

  bool ArgError = false;
  auto FlagValue = [&](const std::string &Arg, const char *Flag, int &I,
                       std::string &Out) {
    std::string Prefix = std::string(Flag) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Out = Arg.substr(Prefix.size());
      return true;
    }
    if (Arg != Flag)
      return false;
    if (I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    std::fprintf(stderr, "sccached: error: option '%s' requires a value\n",
                 Flag);
    ArgError = true;
    return true;
  };

  std::string MaxBytesText, IdleText, MetricsIntervalText;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (FlagValue(Arg, "--socket", I, Socket) ||
        FlagValue(Arg, "--cache-dir", I, CacheDir) ||
        FlagValue(Arg, "--max-bytes", I, MaxBytesText) ||
        FlagValue(Arg, "--metrics-out", I, MetricsOut) ||
        FlagValue(Arg, "--metrics-interval-ms", I, MetricsIntervalText) ||
        FlagValue(Arg, "--idle-timeout-ms", I, IdleText))
      continue;
    if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg == "--shutdown")
      Shutdown = true;
    else if (Arg == "--help" || Arg == "-h") {
      std::fprintf(stderr,
                   "usage: sccached --socket=PATH [--cache-dir=DIR] "
                   "[--max-bytes=N]\n                [--idle-timeout-ms=N] "
                   "[--metrics-out=FILE] [--metrics-interval-ms=N]\n"
                   "                [--quiet] [--stats [--json]] [--metrics] "
                   "[--shutdown]\n");
      return 0;
    } else {
      std::fprintf(stderr, "sccached: error: unknown option '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (ArgError)
    return 1;
  if (Socket.empty()) {
    std::fprintf(stderr, "sccached: error: --socket=PATH is required\n");
    return 1;
  }
  if (!MaxBytesText.empty() && !parseU64(MaxBytesText.c_str(), MaxBytes)) {
    std::fprintf(stderr,
                 "sccached: error: option '--max-bytes' requires a "
                 "non-negative integer (got '%s')\n",
                 MaxBytesText.c_str());
    return 1;
  }
  if (!IdleText.empty() && !parseU64(IdleText.c_str(), IdleMs)) {
    std::fprintf(stderr,
                 "sccached: error: option '--idle-timeout-ms' requires a "
                 "non-negative integer (got '%s')\n",
                 IdleText.c_str());
    return 1;
  }
  if (!MetricsIntervalText.empty() &&
      !parseU64(MetricsIntervalText.c_str(), MetricsIntervalMs)) {
    std::fprintf(stderr,
                 "sccached: error: option '--metrics-interval-ms' requires a "
                 "non-negative integer (got '%s')\n",
                 MetricsIntervalText.c_str());
    return 1;
  }

  //===--- Client modes ---------------------------------------------------===//

  if (Stats || Metrics || Shutdown) {
    std::string Err;
    std::unique_ptr<RemoteCacheClient> Client =
        RemoteCacheClient::connect(Socket, &Err);
    if (!Client) {
      if (Shutdown) {
        std::fprintf(stderr,
                     "sccached: no daemon is serving '%s' (nothing to stop)\n",
                     Socket.c_str());
        return 0;
      }
      std::fprintf(stderr, "sccached: no daemon is serving '%s'\n",
                   Socket.c_str());
      return 1;
    }
    if (Shutdown) {
      if (!Client->shutdownServer()) {
        std::fprintf(stderr, "sccached: error: shutdown request failed\n");
        return 1;
      }
      return 0;
    }
    if (Metrics) {
      std::string Text, MetricsJson;
      if (Client->metrics(Text, MetricsJson) !=
          RemoteCacheClient::Result::Hit) {
        std::fprintf(stderr, "sccached: error: metrics request failed\n");
        return 1;
      }
      std::fputs(Text.c_str(), stdout);
      return 0;
    }
    CacheStats CS;
    if (Client->stats(CS) != RemoteCacheClient::Result::Hit) {
      std::fprintf(stderr, "sccached: error: stats request failed\n");
      return 1;
    }
    if (Json) {
      // The same "metrics" key (and registry shape) as scbuildd
      // --report-json, so live and offline fleet views line up.
      std::string Text, MetricsJson;
      if (Client->metrics(Text, MetricsJson) !=
          RemoteCacheClient::Result::Hit) {
        std::fprintf(stderr, "sccached: error: metrics request failed\n");
        return 1;
      }
      std::printf("{\n  \"schema\": \"sccached-stats\",\n"
                  "  \"schema_version\": 1,\n"
                  "  \"entries\": %llu,\n  \"bytes_stored\": %llu,\n"
                  "  \"max_bytes\": %llu,\n  \"gets\": %llu,\n"
                  "  \"hits\": %llu,\n  \"misses\": %llu,\n"
                  "  \"puts\": %llu,\n  \"touches\": %llu,\n"
                  "  \"evictions\": %llu,\n  \"corrupt_dropped\": %llu,\n"
                  "  \"metrics\": %s\n}\n",
                  static_cast<unsigned long long>(CS.Entries),
                  static_cast<unsigned long long>(CS.BytesStored),
                  static_cast<unsigned long long>(CS.MaxBytes),
                  static_cast<unsigned long long>(CS.Gets),
                  static_cast<unsigned long long>(CS.Hits),
                  static_cast<unsigned long long>(CS.Misses),
                  static_cast<unsigned long long>(CS.Puts),
                  static_cast<unsigned long long>(CS.Touches),
                  static_cast<unsigned long long>(CS.Evictions),
                  static_cast<unsigned long long>(CS.CorruptDropped),
                  MetricsJson.c_str());
      return 0;
    }
    std::printf("sccached: entries %llu, bytes %llu (budget %llu)\n"
                "sccached: gets %llu (hits %llu, misses %llu), puts %llu, "
                "touches %llu\n"
                "sccached: evictions %llu, corrupt dropped %llu\n",
                static_cast<unsigned long long>(CS.Entries),
                static_cast<unsigned long long>(CS.BytesStored),
                static_cast<unsigned long long>(CS.MaxBytes),
                static_cast<unsigned long long>(CS.Gets),
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses),
                static_cast<unsigned long long>(CS.Puts),
                static_cast<unsigned long long>(CS.Touches),
                static_cast<unsigned long long>(CS.Evictions),
                static_cast<unsigned long long>(CS.CorruptDropped));
    return 0;
  }

  //===--- Serve ----------------------------------------------------------===//

  // The cache root lives on the real filesystem next to the socket by
  // default. RealFileSystem paths are relative to its root, so root
  // the VFS at the cache directory and store under "cache".
  if (CacheDir.empty()) {
    size_t Slash = Socket.find_last_of('/');
    CacheDir = (Slash == std::string::npos ? std::string(".")
                                           : Socket.substr(0, Slash)) +
               "/sccache";
  }
  RealFileSystem FS(CacheDir);

  CacheDaemonConfig Config;
  Config.SocketPath = Socket;
  Config.CacheRoot = "cache";
  Config.MaxBytes = MaxBytes;
  Config.IdleTimeoutMs = static_cast<unsigned>(IdleMs);
  Config.MetricsOut = MetricsOut;
  Config.MetricsIntervalMs =
      std::max<unsigned>(1, static_cast<unsigned>(MetricsIntervalMs));
  Config.Quiet = Quiet;

  CacheDaemon Daemon(FS, Config);
  std::string Err;
  if (!Daemon.start(&Err)) {
    std::fprintf(stderr, "sccached: error: %s\n", Err.c_str());
    return 1;
  }

  ActiveDaemon = &Daemon;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // Client death mid-frame must not kill us.

  int Code = Daemon.serve();
  ActiveDaemon = nullptr;
  return Code;
}
