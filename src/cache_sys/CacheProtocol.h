//===- cache_sys/CacheProtocol.h - sccached wire protocol -------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between `sccached` (the shared object-cache
/// daemon) and its clients, riding the same length-prefixed flat-JSON
/// framing the build daemon uses (support/Socket.h + FlatJson.h).
///
/// Every request is one JSON header frame; a `put obj` request is
/// followed by exactly one binary frame carrying the object bytes.
/// Every response is one JSON header frame; a found `get obj` response
/// is followed by exactly one binary frame carrying the bytes. All
/// other payloads (action digests, stats) are small enough to ride
/// inline in the header.
///
/// Two entry kinds share the store:
///
///  * `obj` — content-addressed object bytes. The key IS the 16-hex
///    content hash of the bytes, so both ends can (and do) verify
///    every transfer: the daemon rejects a put whose bytes do not hash
///    to the key, evicts-never-serves a stored entry that fails the
///    check on get, and the client re-verifies every fetched object
///    before admitting it to the local cache.
///  * `act` — action entries mapping an *input* key (hash of a TU's
///    content hash, effective import interface hash, and build config
///    hash) to the 16-hex digest of the object those inputs
///    deterministically produce. This is what lets a cold workspace —
///    which knows its inputs but has no manifest recording output
///    hashes — resolve inputs -> digest -> verified bytes. A corrupt
///    action value is harmless: it leads to an object miss or a hash
///    mismatch, never to wrong bytes.
///
/// Decoders skip unknown keys (parseFlatObject), so the protocol can
/// grow without breaking older peers.
///
//===----------------------------------------------------------------------===//

#ifndef SC_CACHE_SYS_CACHEPROTOCOL_H
#define SC_CACHE_SYS_CACHEPROTOCOL_H

#include <cstdint>
#include <string>

namespace sc {

/// Fixed-width lowercase hex spelling of a 64-bit hash — the wire and
/// on-disk form of every cache key and digest.
std::string hex16(uint64_t V);

/// Strict inverse of hex16(): exactly 16 lowercase/uppercase hex
/// digits. Anything else is a protocol error.
bool parseHex16(const std::string &S, uint64_t &V);

/// Aggregate counters the daemon reports via `stats` (and prints on
/// shutdown). All lifetime totals since daemon start.
struct CacheStats {
  uint64_t Gets = 0;          ///< get requests served.
  uint64_t Hits = 0;          ///< get requests that found a valid entry.
  uint64_t Misses = 0;        ///< get requests that found nothing.
  uint64_t Puts = 0;          ///< put requests that stored a new entry.
  uint64_t Touches = 0;       ///< touch requests served.
  uint64_t Evictions = 0;     ///< entries evicted to honor the budget.
  uint64_t CorruptDropped = 0; ///< entries failing verification: rejected
                               ///< puts + stored entries evicted on get.
  uint64_t Entries = 0;       ///< live entries (objects + actions).
  uint64_t BytesStored = 0;   ///< live payload bytes.
  uint64_t MaxBytes = 0;      ///< configured budget (0 = unlimited).
};

/// One client request (the JSON header frame).
struct CacheRequest {
  /// `Metrics` answers with the daemon's metrics registry rendered
  /// both ways inline: Prometheus text exposition (for scrapers and
  /// `scbuild daemon-top`) and the registry JSON object (the same
  /// `"metrics"` shape `scbuild --report-json` carries, so live and
  /// offline views agree field-for-field).
  enum class Op { Get, Put, Touch, Stats, Metrics, Shutdown };
  Op Operation = Op::Stats;
  std::string Kind;   ///< "obj" or "act"; empty for stats/shutdown.
  std::string Key;    ///< hex16 entry key.
  std::string Digest; ///< put act: hex16 object digest this action maps to.
  uint64_t Size = 0;  ///< put obj: byte count of the following binary frame.
};

/// One daemon response (the JSON header frame).
struct CacheResponse {
  bool Ok = false;      ///< Request was well-formed and processed.
  bool Found = false;   ///< get/touch: entry exists (and verified, for obj).
  bool Stored = false;  ///< put: entry admitted (false = rejected corrupt).
  std::string Digest;   ///< get act hit: the mapped object digest.
  uint64_t Size = 0;    ///< get obj hit: byte count of the following frame.
  std::string Error;    ///< Ok == false: human-readable reason.
  bool HasStats = false;
  CacheStats Stats;

  // -- metrics responses --
  /// Prometheus text exposition of the daemon's registry.
  std::string MetricsText;
  /// The registry as one JSON object {"counters":{},"gauges":{}} —
  /// byte-identical in shape to the `"metrics"` key of scbuild-report.
  std::string MetricsJson;
};

std::string encodeCacheRequest(const CacheRequest &R);
bool decodeCacheRequest(const std::string &Json, CacheRequest &R);

std::string encodeCacheResponse(const CacheResponse &R);
bool decodeCacheResponse(const std::string &Json, CacheResponse &R);

} // namespace sc

#endif // SC_CACHE_SYS_CACHEPROTOCOL_H
