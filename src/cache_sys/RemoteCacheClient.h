//===- cache_sys/RemoteCacheClient.h - sccached client ----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The build-side client of `sccached`, speaking CacheProtocol over
/// one persistent connection. The BuildDriver composes its verbs into
/// the tiering contract:
///
///   local miss -> fetch(input key)     [action -> object -> verify]
///   local hit  -> touchOrNeedPut(key)  [keep the fleet's hot set warm]
///   compiled   -> publish(key, digest, bytes)
///
/// Every fetched object is re-verified here (hash(bytes) == digest)
/// before the caller may admit it to the local cache — the daemon
/// verifies too, but a client never trusts the wire. Results are
/// three-valued: Hit/Miss describe the cache, Error means the remote
/// is unusable (dead daemon, protocol desync) — the driver's cue to
/// degrade to local-only. After any Error the client latches into a
/// failed state and answers Error without touching the socket, so one
/// warning covers the whole build.
///
//===----------------------------------------------------------------------===//

#ifndef SC_CACHE_SYS_REMOTECACHECLIENT_H
#define SC_CACHE_SYS_REMOTECACHECLIENT_H

#include "cache_sys/CacheProtocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <memory>
#include <string>

namespace sc {

class RemoteCacheClient {
public:
  enum class Result { Hit, Miss, Error };

  /// Connects to a listening sccached; null (with \p Err) when nothing
  /// answers — the caller treats that like any other remote error.
  static std::unique_ptr<RemoteCacheClient>
  connect(const std::string &SocketPath, std::string *Err);

  /// Full fetch pipeline for one TU: resolve the action entry for
  /// \p InputKey, fetch the object it names, verify the bytes hash to
  /// the digest. On Hit, \p Digest and \p Bytes are the verified
  /// object. A fetched-but-corrupt object reports Miss (the daemon
  /// already evicted its copy; we recompile).
  Result fetch(uint64_t InputKey, uint64_t &Digest, std::string &Bytes);

  /// Publishes a compiled object and its action mapping.
  Result publish(uint64_t InputKey, uint64_t Digest,
                 const std::string &Bytes);

  /// Refreshes the action + object entries for a locally-clean TU;
  /// Miss means the remote lacks (part of) it and the caller should
  /// publish. This is what lets an already-warm builder populate a
  /// cold fleet cache without recompiling anything.
  Result touchEntry(uint64_t InputKey, uint64_t Digest);

  Result stats(CacheStats &Out);

  /// Fetches the daemon's metrics registry rendered both ways:
  /// Prometheus text (\p Text) and registry JSON (\p Json). Hit when
  /// the daemon answered with a non-empty rendering.
  Result metrics(std::string &Text, std::string &Json);

  /// Asks the daemon to exit; true when it acknowledged.
  bool shutdownServer();

  /// True once any operation failed; all further calls return Error
  /// cheaply.
  bool failed() const { return Failed; }

private:
  explicit RemoteCacheClient(UnixSocket Conn) : Conn(std::move(Conn)) {}

  /// One request/response exchange. Sends \p ObjBytes as a binary
  /// frame after the header when non-null; receives a binary payload
  /// into \p RespBytes when the response announces one.
  bool roundTrip(const CacheRequest &Req, CacheResponse &Resp,
                 const std::string *ObjBytes, std::string *RespBytes);

  UnixSocket Conn;
  bool Failed = false;
};

} // namespace sc

#endif // SC_CACHE_SYS_REMOTECACHECLIENT_H
