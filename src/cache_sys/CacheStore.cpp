//===- cache_sys/CacheStore.cpp - Content-addressed LRU store ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache_sys/CacheStore.h"

#include "support/AtomicFile.h"
#include "support/Hashing.h"

using namespace sc;

CacheStore::CacheStore(VirtualFileSystem &FS, std::string Root,
                       uint64_t MaxBytes)
    : FS(FS), Root(std::move(Root)), MaxBytes(MaxBytes) {
  indexExisting();
}

std::string CacheStore::relPath(Kind K, uint64_t Key) const {
  return (K == Kind::Object ? "obj/" : "act/") + hex16(Key);
}

void CacheStore::indexExisting() {
  const std::string ObjPrefix = Root + "/obj/";
  const std::string ActPrefix = Root + "/act/";
  for (const std::string &Path : FS.listFiles()) {
    bool IsObj = Path.compare(0, ObjPrefix.size(), ObjPrefix) == 0;
    bool IsAct = Path.compare(0, ActPrefix.size(), ActPrefix) == 0;
    if ((!IsObj && !IsAct) || isAtomicTempPath(Path))
      continue;
    std::optional<std::string> Bytes = FS.readFile(Path);
    if (!Bytes)
      continue;
    // Re-index under the root-relative name; verification happens
    // lazily on get, so a vandalized survivor costs nothing until
    // someone asks for it.
    admit(Path.substr(Root.size() + 1), Bytes->size());
  }
}

void CacheStore::admit(const std::string &Rel, uint64_t Bytes) {
  auto It = Index.find(Rel);
  if (It != Index.end()) {
    Lru.splice(Lru.end(), Lru, It->second.LruIt);
    TotalBytes += Bytes - It->second.Bytes;
    It->second.Bytes = Bytes;
  } else {
    Lru.push_back(Rel);
    Index[Rel] = {std::prev(Lru.end()), Bytes};
    TotalBytes += Bytes;
  }
  // Evict cold entries until the budget holds. The entry just
  // admitted sits at the hot end and is never evicted — a single
  // over-budget object is still served to the client that asked for
  // it rather than thrashing.
  while (MaxBytes && TotalBytes > MaxBytes && Lru.size() > 1) {
    const std::string Cold = Lru.front();
    FS.removeFile(Root + "/" + Cold);
    drop(Cold);
    ++S.Evictions;
  }
}

void CacheStore::drop(const std::string &Rel) {
  auto It = Index.find(Rel);
  if (It == Index.end())
    return;
  TotalBytes -= It->second.Bytes;
  Lru.erase(It->second.LruIt);
  Index.erase(It);
}

bool CacheStore::putObject(uint64_t Key, const std::string &Bytes) {
  // Verify before anything touches disk: a client claiming bytes it
  // does not have must not poison the fleet.
  if (hashString(Bytes) != Key) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.CorruptDropped;
    return false;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  const std::string Rel = relPath(Kind::Object, Key);
  if (Index.count(Rel)) {
    admit(Rel, Bytes.size()); // Recency refresh only.
    return true;
  }
  if (!atomicWriteFile(FS, Root + "/" + Rel, Bytes))
    return false;
  admit(Rel, Bytes.size());
  ++S.Puts;
  return true;
}

bool CacheStore::getObject(uint64_t Key, std::string &Bytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Gets;
  const std::string Rel = relPath(Kind::Object, Key);
  auto It = Index.find(Rel);
  if (It == Index.end()) {
    ++S.Misses;
    return false;
  }
  std::optional<std::string> Read = FS.readFile(Root + "/" + Rel);
  if (!Read || hashString(*Read) != Key) {
    // Evict, never serve. Absent bytes under a live index entry count
    // as corruption too — something outside the daemon deleted them.
    FS.removeFile(Root + "/" + Rel);
    drop(Rel);
    ++S.CorruptDropped;
    ++S.Misses;
    return false;
  }
  admit(Rel, Read->size());
  ++S.Hits;
  Bytes = std::move(*Read);
  return true;
}

bool CacheStore::putAction(uint64_t Key, uint64_t Digest) {
  std::lock_guard<std::mutex> Lock(Mu);
  const std::string Rel = relPath(Kind::Action, Key);
  const std::string Value = hex16(Digest);
  if (auto Existing = FS.readFile(Root + "/" + Rel);
      Existing && *Existing == Value) {
    admit(Rel, Value.size());
    return true;
  }
  if (!atomicWriteFile(FS, Root + "/" + Rel, Value))
    return false;
  bool Fresh = !Index.count(Rel);
  admit(Rel, Value.size());
  if (Fresh)
    ++S.Puts;
  return true;
}

bool CacheStore::getAction(uint64_t Key, uint64_t &Digest) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Gets;
  const std::string Rel = relPath(Kind::Action, Key);
  auto It = Index.find(Rel);
  if (It == Index.end()) {
    ++S.Misses;
    return false;
  }
  std::optional<std::string> Read = FS.readFile(Root + "/" + Rel);
  if (!Read || !parseHex16(*Read, Digest)) {
    FS.removeFile(Root + "/" + Rel);
    drop(Rel);
    ++S.CorruptDropped;
    ++S.Misses;
    return false;
  }
  admit(Rel, Read->size());
  ++S.Hits;
  return true;
}

bool CacheStore::touch(Kind K, uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Touches;
  const std::string Rel = relPath(K, Key);
  auto It = Index.find(Rel);
  if (It == Index.end())
    return false;
  admit(Rel, It->second.Bytes);
  return true;
}

CacheStats CacheStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats Out = S;
  Out.Entries = Index.size();
  Out.BytesStored = TotalBytes;
  Out.MaxBytes = MaxBytes;
  return Out;
}
