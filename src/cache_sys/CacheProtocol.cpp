//===- cache_sys/CacheProtocol.cpp - sccached wire protocol --------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache_sys/CacheProtocol.h"

#include "support/FlatJson.h"

using namespace sc;

std::string sc::hex16(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<size_t>(I)] = Digits[V & 0xf];
    V >>= 4;
  }
  return Out;
}

bool sc::parseHex16(const std::string &S, uint64_t &V) {
  if (S.size() != 16)
    return false;
  uint64_t Out = 0;
  for (char C : S) {
    Out <<= 4;
    if (C >= '0' && C <= '9')
      Out |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Out |= static_cast<uint64_t>(C - 'a' + 10);
    else if (C >= 'A' && C <= 'F')
      Out |= static_cast<uint64_t>(C - 'A' + 10);
    else
      return false;
  }
  V = Out;
  return true;
}

namespace {

const char *opName(CacheRequest::Op Op) {
  switch (Op) {
  case CacheRequest::Op::Get:      return "get";
  case CacheRequest::Op::Put:      return "put";
  case CacheRequest::Op::Touch:    return "touch";
  case CacheRequest::Op::Stats:    return "stats";
  case CacheRequest::Op::Metrics:  return "metrics";
  case CacheRequest::Op::Shutdown: return "shutdown";
  }
  return "stats";
}

bool opFromName(const std::string &Name, CacheRequest::Op &Op) {
  if (Name == "get")
    Op = CacheRequest::Op::Get;
  else if (Name == "put")
    Op = CacheRequest::Op::Put;
  else if (Name == "touch")
    Op = CacheRequest::Op::Touch;
  else if (Name == "stats")
    Op = CacheRequest::Op::Stats;
  else if (Name == "metrics")
    Op = CacheRequest::Op::Metrics;
  else if (Name == "shutdown")
    Op = CacheRequest::Op::Shutdown;
  else
    return false;
  return true;
}

void appendU64Field(std::string &Out, const char *Key, uint64_t V) {
  Out += ",\"";
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

std::string sc::encodeCacheRequest(const CacheRequest &R) {
  std::string Out = "{\"op\":";
  appendJsonString(Out, opName(R.Operation));
  if (!R.Kind.empty()) {
    Out += ",\"kind\":";
    appendJsonString(Out, R.Kind);
  }
  if (!R.Key.empty()) {
    Out += ",\"key\":";
    appendJsonString(Out, R.Key);
  }
  if (!R.Digest.empty()) {
    Out += ",\"digest\":";
    appendJsonString(Out, R.Digest);
  }
  if (R.Size)
    appendU64Field(Out, "size", R.Size);
  Out += '}';
  return Out;
}

bool sc::decodeCacheRequest(const std::string &Json, CacheRequest &R) {
  R = CacheRequest();
  bool SawOp = false, BadOp = false;
  bool Parsed = parseFlatObject(Json, [&](JsonCursor &C, const std::string &K) {
    if (K == "op") {
      SawOp = true;
      if (!opFromName(C.parseString(), R.Operation))
        BadOp = true;
    } else if (K == "kind") {
      R.Kind = C.parseString();
    } else if (K == "key") {
      R.Key = C.parseString();
    } else if (K == "digest") {
      R.Digest = C.parseString();
    } else if (K == "size") {
      R.Size = C.parseU64();
    } else {
      C.skipValue();
    }
  });
  return Parsed && SawOp && !BadOp;
}

std::string sc::encodeCacheResponse(const CacheResponse &R) {
  std::string Out = "{\"ok\":";
  Out += R.Ok ? "true" : "false";
  Out += ",\"found\":";
  Out += R.Found ? "true" : "false";
  Out += ",\"stored\":";
  Out += R.Stored ? "true" : "false";
  if (!R.Digest.empty()) {
    Out += ",\"digest\":";
    appendJsonString(Out, R.Digest);
  }
  if (R.Size)
    appendU64Field(Out, "size", R.Size);
  if (!R.Error.empty()) {
    Out += ",\"error\":";
    appendJsonString(Out, R.Error);
  }
  if (R.HasStats) {
    Out += ",\"hasStats\":true";
    appendU64Field(Out, "gets", R.Stats.Gets);
    appendU64Field(Out, "hits", R.Stats.Hits);
    appendU64Field(Out, "misses", R.Stats.Misses);
    appendU64Field(Out, "puts", R.Stats.Puts);
    appendU64Field(Out, "touches", R.Stats.Touches);
    appendU64Field(Out, "evictions", R.Stats.Evictions);
    appendU64Field(Out, "corruptDropped", R.Stats.CorruptDropped);
    appendU64Field(Out, "entries", R.Stats.Entries);
    appendU64Field(Out, "bytesStored", R.Stats.BytesStored);
    appendU64Field(Out, "maxBytes", R.Stats.MaxBytes);
  }
  if (!R.MetricsText.empty()) {
    Out += ",\"metricsText\":";
    appendJsonString(Out, R.MetricsText);
  }
  if (!R.MetricsJson.empty()) {
    Out += ",\"metricsJson\":";
    appendJsonString(Out, R.MetricsJson);
  }
  Out += '}';
  return Out;
}

bool sc::decodeCacheResponse(const std::string &Json, CacheResponse &R) {
  R = CacheResponse();
  bool SawOk = false;
  bool Parsed = parseFlatObject(Json, [&](JsonCursor &C, const std::string &K) {
    if (K == "ok") {
      SawOk = true;
      R.Ok = C.parseBool();
    } else if (K == "found") {
      R.Found = C.parseBool();
    } else if (K == "stored") {
      R.Stored = C.parseBool();
    } else if (K == "digest") {
      R.Digest = C.parseString();
    } else if (K == "size") {
      R.Size = C.parseU64();
    } else if (K == "error") {
      R.Error = C.parseString();
    } else if (K == "hasStats") {
      R.HasStats = C.parseBool();
    } else if (K == "gets") {
      R.Stats.Gets = C.parseU64();
    } else if (K == "hits") {
      R.Stats.Hits = C.parseU64();
    } else if (K == "misses") {
      R.Stats.Misses = C.parseU64();
    } else if (K == "puts") {
      R.Stats.Puts = C.parseU64();
    } else if (K == "touches") {
      R.Stats.Touches = C.parseU64();
    } else if (K == "evictions") {
      R.Stats.Evictions = C.parseU64();
    } else if (K == "corruptDropped") {
      R.Stats.CorruptDropped = C.parseU64();
    } else if (K == "entries") {
      R.Stats.Entries = C.parseU64();
    } else if (K == "bytesStored") {
      R.Stats.BytesStored = C.parseU64();
    } else if (K == "maxBytes") {
      R.Stats.MaxBytes = C.parseU64();
    } else if (K == "metricsText") {
      R.MetricsText = C.parseString();
    } else if (K == "metricsJson") {
      R.MetricsJson = C.parseString();
    } else {
      C.skipValue();
    }
  });
  return Parsed && SawOk;
}
