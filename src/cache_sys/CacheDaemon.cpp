//===- cache_sys/CacheDaemon.cpp - Shared object-cache daemon ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache_sys/CacheDaemon.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>

#include <unistd.h>

using namespace sc;

CacheDaemon::CacheDaemon(VirtualFileSystem &FS, CacheDaemonConfig Config)
    : FS(FS), Config(std::move(Config)) {}

CacheDaemon::~CacheDaemon() {
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
}

void CacheDaemon::chat(const char *Fmt, ...) {
  if (Config.Quiet)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
}

bool CacheDaemon::start(std::string *Err) {
  SockPath = Config.SocketPath;
  // A leftover socket file from a dead daemon would make bind() fail
  // with EADDRINUSE forever; a *live* daemon answers a connect. Probe
  // before unlinking so we never steal a serving daemon's socket.
  {
    std::string ProbeErr;
    UnixSocket Probe = UnixSocket::connectTo(SockPath, &ProbeErr);
    if (Probe.valid()) {
      if (Err)
        *Err = "another sccached is already serving '" + SockPath + "'";
      SockPath.clear();
      return false;
    }
  }
  ::unlink(SockPath.c_str());
  std::string SockErr;
  Listener = UnixSocket::listenOn(SockPath, &SockErr);
  if (!Listener.valid()) {
    if (Err)
      *Err = "could not listen on '" + SockPath + "': " + SockErr;
    SockPath.clear();
    return false;
  }
  Store = std::make_unique<CacheStore>(FS, Config.CacheRoot, Config.MaxBytes);
  CacheStats S = Store->stats();
  chat("sccached: pid %ld serving '%s' (%llu entries, %llu bytes%s)\n",
       static_cast<long>(::getpid()), SockPath.c_str(),
       static_cast<unsigned long long>(S.Entries),
       static_cast<unsigned long long>(S.BytesStored),
       Config.MaxBytes ? (", budget " + std::to_string(Config.MaxBytes)).c_str()
                       : "");
  return true;
}

void CacheDaemon::publishMetrics() {
  if (!Store)
    return;
  const CacheStats S = Store->stats();
  std::lock_guard<std::mutex> L(MetricsMu);
  // The store reports lifetime totals; counters are monotonic, so fold
  // in the delta since the last publication.
  auto Fold = [&](const char *Name, uint64_t Now, uint64_t Last) {
    if (Now > Last)
      Metrics.counter(Name).add(Now - Last);
  };
  Fold("cache.gets", S.Gets, LastPublished.Gets);
  Fold("cache.hits", S.Hits, LastPublished.Hits);
  Fold("cache.misses", S.Misses, LastPublished.Misses);
  Fold("cache.puts", S.Puts, LastPublished.Puts);
  Fold("cache.touches", S.Touches, LastPublished.Touches);
  Fold("cache.evictions", S.Evictions, LastPublished.Evictions);
  Fold("cache.corrupt_dropped", S.CorruptDropped,
       LastPublished.CorruptDropped);
  Metrics.gauge("cache.entries").set(static_cast<double>(S.Entries));
  Metrics.gauge("cache.bytes_stored").set(static_cast<double>(S.BytesStored));
  Metrics.gauge("cache.max_bytes").set(static_cast<double>(S.MaxBytes));
  LastPublished = S;
}

std::string CacheDaemon::metricsText() {
  publishMetrics();
  return MetricsTextExporter::render(Metrics);
}

std::string CacheDaemon::metricsJson() {
  publishMetrics();
  return Metrics.toJson();
}

void CacheDaemon::dumpMetricsFile() {
  if (Config.MetricsOut.empty())
    return;
  const std::string Text = metricsText();
  const std::string Tmp = Config.MetricsOut + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  const bool Wrote = std::fwrite(Text.data(), 1, Text.size(), F) ==
                     Text.size();
  std::fclose(F);
  if (!Wrote || ::rename(Tmp.c_str(), Config.MetricsOut.c_str()) != 0)
    ::unlink(Tmp.c_str());
}

void CacheDaemon::handleConnection(UnixSocket Conn) {
  std::string Header;
  for (;;) {
    UnixSocket::RecvStatus St;
    if (!Conn.recvFrame(Header, /*TimeoutMs=*/500, &St)) {
      if (St == UnixSocket::RecvStatus::TimedOut) {
        // Persistent connections idle between requests; keep waiting
        // unless the daemon is going down.
        if (Stop.load())
          return;
        continue;
      }
      return; // Disconnected or protocol corruption: drop the peer.
    }
    ActivityTick.fetch_add(1, std::memory_order_relaxed);

    CacheRequest Req;
    CacheResponse Resp;
    if (!decodeCacheRequest(Header, Req)) {
      Resp.Error = "malformed request";
      Conn.sendFrame(encodeCacheResponse(Resp));
      return; // Out of protocol sync; nothing sane can follow.
    }

    // A put-obj header is always followed by one binary frame; consume
    // it before validating anything else or the stream desyncs.
    std::string PutBytes;
    if (Req.Operation == CacheRequest::Op::Put && Req.Kind == "obj") {
      if (!Conn.recvFrame(PutBytes, /*TimeoutMs=*/30000, &St))
        return;
      ActivityTick.fetch_add(1, std::memory_order_relaxed);
      if (PutBytes.size() != Req.Size) {
        Resp.Error = "payload size does not match header";
        Conn.sendFrame(encodeCacheResponse(Resp));
        return;
      }
    }

    uint64_t Key = 0, Digest = 0;
    const bool NeedsKey = Req.Operation == CacheRequest::Op::Get ||
                          Req.Operation == CacheRequest::Op::Put ||
                          Req.Operation == CacheRequest::Op::Touch;
    if (NeedsKey &&
        (!parseHex16(Req.Key, Key) ||
         (Req.Kind != "obj" && Req.Kind != "act"))) {
      Resp.Error = "bad key or kind";
      Conn.sendFrame(encodeCacheResponse(Resp));
      continue; // Stream is still in sync; the peer may recover.
    }
    const CacheStore::Kind Kind = Req.Kind == "obj"
                                      ? CacheStore::Kind::Object
                                      : CacheStore::Kind::Action;

    std::string ObjBytes;
    switch (Req.Operation) {
    case CacheRequest::Op::Get:
      Resp.Ok = true;
      if (Kind == CacheStore::Kind::Object) {
        Resp.Found = Store->getObject(Key, ObjBytes);
        Resp.Size = ObjBytes.size();
      } else {
        Resp.Found = Store->getAction(Key, Digest);
        if (Resp.Found)
          Resp.Digest = hex16(Digest);
      }
      break;
    case CacheRequest::Op::Put:
      Resp.Ok = true;
      if (Kind == CacheStore::Kind::Object) {
        Resp.Stored = Store->putObject(Key, PutBytes);
      } else {
        if (!parseHex16(Req.Digest, Digest)) {
          Resp.Ok = false;
          Resp.Error = "bad digest";
        } else {
          Resp.Stored = Store->putAction(Key, Digest);
        }
      }
      break;
    case CacheRequest::Op::Touch:
      Resp.Ok = true;
      Resp.Found = Store->touch(Kind, Key);
      break;
    case CacheRequest::Op::Stats:
      Resp.Ok = true;
      Resp.HasStats = true;
      Resp.Stats = Store->stats();
      break;
    case CacheRequest::Op::Metrics:
      // Both renderings of the same refreshed registry snapshot, so a
      // scraper's text view and a tool's JSON view cannot disagree.
      Resp.Ok = true;
      Resp.MetricsText = metricsText();
      Resp.MetricsJson = Metrics.toJson();
      break;
    case CacheRequest::Op::Shutdown:
      Resp.Ok = true;
      Conn.sendFrame(encodeCacheResponse(Resp));
      chat("sccached: shutdown requested by client\n");
      requestStop();
      return;
    }

    if (!Conn.sendFrame(encodeCacheResponse(Resp)))
      return;
    if (Req.Operation == CacheRequest::Op::Get &&
        Kind == CacheStore::Kind::Object && Resp.Found)
      if (!Conn.sendFrame(ObjBytes))
        return;
  }
}

int CacheDaemon::serve() {
  using Clock = std::chrono::steady_clock;
  auto LastActivity = Clock::now();
  auto LastMetricsDump = Clock::now();
  dumpMetricsFile(); // Scrape-file exists from the first slice on.
  uint64_t LastTick = ActivityTick.load();
  while (!Stop.load()) {
    if (!Config.MetricsOut.empty() &&
        Clock::now() - LastMetricsDump >=
            std::chrono::milliseconds(Config.MetricsIntervalMs)) {
      dumpMetricsFile();
      LastMetricsDump = Clock::now();
    }
    uint64_t Tick = ActivityTick.load();
    if (Tick != LastTick) {
      LastTick = Tick;
      LastActivity = Clock::now();
    }
    if (Config.IdleTimeoutMs &&
        Clock::now() - LastActivity >=
            std::chrono::milliseconds(Config.IdleTimeoutMs)) {
      chat("sccached: idle for %u ms, exiting\n", Config.IdleTimeoutMs);
      break;
    }
    bool TimedOut = false;
    UnixSocket Conn = Listener.accept(/*TimeoutMs=*/200, &TimedOut);
    if (!Conn.valid())
      continue; // Timeout slice (or transient accept error): re-poll.
    LastActivity = Clock::now();
    Workers.emplace_back(
        [this, C = std::move(Conn)]() mutable { handleConnection(std::move(C)); });
  }
  // Go down in order: stop accepting (close + unlink so clients
  // degrade to local-only instead of queueing), tell every connection
  // thread to wind down, then wait for them.
  Stop.store(true);
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  for (std::thread &W : Workers)
    W.join();
  if (Store) {
    CacheStats S = Store->stats();
    chat("sccached: exiting — hits %llu, misses %llu, puts %llu, "
         "evictions %llu, corrupt dropped %llu\n",
         static_cast<unsigned long long>(S.Hits),
         static_cast<unsigned long long>(S.Misses),
         static_cast<unsigned long long>(S.Puts),
         static_cast<unsigned long long>(S.Evictions),
         static_cast<unsigned long long>(S.CorruptDropped));
  }
  // Final scrape-file dump: the file reflects the end state, not the
  // last periodic slice.
  dumpMetricsFile();
  return 0;
}
