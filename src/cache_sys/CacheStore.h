//===- cache_sys/CacheStore.h - Content-addressed LRU store -----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sccached daemon's storage engine: a content-addressed,
/// LRU-bounded entry store over a VirtualFileSystem. Two entry kinds
/// (see CacheProtocol.h): `obj` entries whose key is the content hash
/// of their bytes, and tiny `act` entries mapping an input key to an
/// object digest.
///
/// Layout under the root: `<root>/obj/<hex16>` (raw object bytes) and
/// `<root>/act/<hex16>` (the mapped digest as 16 hex chars). Every
/// write is atomic (temp + rename), so a crashed daemon never leaves a
/// torn entry; whatever IS on disk when a daemon starts is re-indexed
/// and reused — the cache survives daemon restarts.
///
/// Integrity is enforced at both edges: a put whose bytes do not hash
/// to the claimed key is rejected (never stored), and a stored object
/// that no longer hashes to its key on get is evicted on the spot and
/// never served. Corrupt entries are therefore indistinguishable from
/// misses to clients — but counted separately (CorruptDropped), so
/// operators and tests can tell vandalism from cold caches.
///
/// The LRU budget (`MaxBytes`, 0 = unlimited) counts payload bytes of
/// both kinds; inserting past the budget evicts least-recently-used
/// entries (gets and touches refresh recency) until the new entry
/// fits. All methods are thread-safe — the daemon serves concurrent
/// connections against one store.
///
//===----------------------------------------------------------------------===//

#ifndef SC_CACHE_SYS_CACHESTORE_H
#define SC_CACHE_SYS_CACHESTORE_H

#include "cache_sys/CacheProtocol.h"
#include "support/FileSystem.h"

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace sc {

class CacheStore {
public:
  enum class Kind { Object, Action };

  /// Indexes whatever already lives under `<Root>/obj/` and
  /// `<Root>/act/` (recency order is arbitrary for pre-existing
  /// entries); new entries append in true access order.
  CacheStore(VirtualFileSystem &FS, std::string Root, uint64_t MaxBytes);

  /// Stores object bytes under their content hash. Returns false —
  /// and stores nothing — when hash(Bytes) != Key (a corrupt or lying
  /// client) or the write fails. Re-putting an existing key just
  /// refreshes its recency.
  bool putObject(uint64_t Key, const std::string &Bytes);

  /// Fetches and verifies an object. False on absence, on hash
  /// mismatch (the entry is evicted and counted CorruptDropped — it
  /// will never be served), or read failure.
  bool getObject(uint64_t Key, std::string &Bytes);

  /// Maps input key -> object digest.
  bool putAction(uint64_t Key, uint64_t Digest);

  /// Resolves an input key. A stored value that does not parse as a
  /// digest is dropped as corrupt.
  bool getAction(uint64_t Key, uint64_t &Digest);

  /// Refreshes an entry's recency without reading it; false when
  /// absent. This is how a warm builder keeps the fleet's hot set
  /// alive without re-uploading it.
  bool touch(Kind K, uint64_t Key);

  CacheStats stats() const;

private:
  std::string relPath(Kind K, uint64_t Key) const;
  void indexExisting();
  /// Inserts or refreshes \p Rel in the LRU index, then evicts from
  /// the cold end until the budget holds (the newest entry is never
  /// evicted). Caller holds Mu.
  void admit(const std::string &Rel, uint64_t Bytes);
  void drop(const std::string &Rel);

  VirtualFileSystem &FS;
  const std::string Root;
  const uint64_t MaxBytes;

  mutable std::mutex Mu;
  struct Entry {
    std::list<std::string>::iterator LruIt;
    uint64_t Bytes = 0;
  };
  std::list<std::string> Lru; ///< front = coldest, back = hottest.
  std::map<std::string, Entry> Index;
  uint64_t TotalBytes = 0;
  CacheStats S;
};

} // namespace sc

#endif // SC_CACHE_SYS_CACHESTORE_H
