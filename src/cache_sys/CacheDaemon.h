//===- cache_sys/CacheDaemon.h - Shared object-cache daemon -----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server side of `sccached`: a Unix-domain-socket daemon serving
/// the CacheProtocol get/put/touch/stats/shutdown verbs over a
/// CacheStore. Unlike the build daemon (one request at a time against
/// resident compiler caches), this daemon is a plain concurrent
/// key-value service: the accept loop hands each connection to its own
/// thread, connections are persistent (a build issues hundreds of
/// requests over one connection), and the store's internal lock is the
/// only serialization point.
///
/// Lifecycle mirrors scbuildd: start() binds the socket (unlinking a
/// stale file after probing it is genuinely dead), serve() loops until
/// requestStop() — from a signal handler or a client `shutdown` — or
/// the idle timeout elapses, then joins every connection thread and
/// unlinks the socket so clients degrade to local-only instead of
/// hanging.
///
//===----------------------------------------------------------------------===//

#ifndef SC_CACHE_SYS_CACHEDAEMON_H
#define SC_CACHE_SYS_CACHEDAEMON_H

#include "cache_sys/CacheStore.h"
#include "support/Metrics.h"
#include "support/Socket.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sc {

struct CacheDaemonConfig {
  std::string SocketPath;      ///< Host path to bind.
  std::string CacheRoot = "cache"; ///< Entry root inside the store FS.
  uint64_t MaxBytes = 0;       ///< LRU budget; 0 = unlimited.
  unsigned IdleTimeoutMs = 0;  ///< Exit after this much quiet; 0 = never.
  /// When non-empty: host path receiving the Prometheus text rendering
  /// of the cache.* metrics, rewritten atomically (temp + rename) every
  /// MetricsIntervalMs and once more on exit.
  std::string MetricsOut;
  unsigned MetricsIntervalMs = 1000; ///< Period of the --metrics-out dump.
  bool Quiet = false;          ///< Suppress stderr chatter.
};

class CacheDaemon {
public:
  /// \p FS backs the store (RealFileSystem in production; tests may
  /// pass an in-memory one).
  CacheDaemon(VirtualFileSystem &FS, CacheDaemonConfig Config);
  ~CacheDaemon();

  /// Binds the socket and indexes the cache root. False (with \p Err)
  /// when another live sccached owns the socket.
  bool start(std::string *Err);

  /// Accept loop; returns the process exit code. Blocks until
  /// requestStop(), a client `shutdown`, or idle timeout.
  int serve();

  /// Async-signal-safe stop request.
  void requestStop() { Stop.store(true); }

  const CacheStore &store() const { return *Store; }

  /// The daemon's cache.* metrics registry (tests; refreshed from the
  /// store by publishMetrics before every render).
  const MetricsRegistry &metricsRegistry() const { return Metrics; }

private:
  void chat(const char *Fmt, ...);
  /// One connection's request loop (runs on its own thread).
  void handleConnection(UnixSocket Conn);
  /// Mirrors the store's lifetime totals into the registry as cache.*
  /// counters/gauges (delta-published so counters stay monotonic).
  void publishMetrics();
  /// Prometheus text of the registry, refreshed at render time.
  std::string metricsText();
  /// Registry JSON ({"counters":{},"gauges":{}}), refreshed likewise.
  std::string metricsJson();
  /// Atomic (temp + rename) rewrite of Config.MetricsOut.
  void dumpMetricsFile();

  VirtualFileSystem &FS;
  CacheDaemonConfig Config;
  std::unique_ptr<CacheStore> Store;
  UnixSocket Listener;
  std::string SockPath;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ActivityTick{0}; ///< Bumped per request; idle reset.
  std::vector<std::thread> Workers;

  /// cache.* metrics, rendered by the `metrics` verb and --metrics-out.
  /// MetricsMu serializes delta publication (connection threads race);
  /// LastPublished holds the totals already folded into the counters.
  MetricsRegistry Metrics;
  std::mutex MetricsMu;
  CacheStats LastPublished;
};

} // namespace sc

#endif // SC_CACHE_SYS_CACHEDAEMON_H
