//===- cache_sys/RemoteCacheClient.cpp - sccached client -----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache_sys/RemoteCacheClient.h"

#include "support/Hashing.h"

using namespace sc;

namespace {
/// Generous per-frame budget: a fetch of a many-MiB object over a
/// loaded local socket stays well inside it, while a dead daemon
/// (closed socket) fails immediately, not after the timeout.
constexpr unsigned FrameTimeoutMs = 30000;
} // namespace

std::unique_ptr<RemoteCacheClient>
RemoteCacheClient::connect(const std::string &SocketPath, std::string *Err) {
  UnixSocket Conn = UnixSocket::connectTo(SocketPath, Err);
  if (!Conn.valid())
    return nullptr;
  return std::unique_ptr<RemoteCacheClient>(
      new RemoteCacheClient(std::move(Conn)));
}

bool RemoteCacheClient::roundTrip(const CacheRequest &Req, CacheResponse &Resp,
                                  const std::string *ObjBytes,
                                  std::string *RespBytes) {
  if (Failed)
    return false;
  auto Fail = [&] {
    Failed = true;
    Conn.close();
    return false;
  };
  if (!Conn.sendFrame(encodeCacheRequest(Req)))
    return Fail();
  if (ObjBytes && !Conn.sendFrame(*ObjBytes))
    return Fail();
  std::string Header;
  if (!Conn.recvFrame(Header, FrameTimeoutMs, nullptr))
    return Fail();
  if (!decodeCacheResponse(Header, Resp) || !Resp.Ok)
    return Fail();
  if (RespBytes && Resp.Found) {
    if (!Conn.recvFrame(*RespBytes, FrameTimeoutMs, nullptr))
      return Fail();
    if (RespBytes->size() != Resp.Size)
      return Fail();
  }
  return true;
}

RemoteCacheClient::Result
RemoteCacheClient::fetch(uint64_t InputKey, uint64_t &Digest,
                         std::string &Bytes) {
  CacheRequest Req;
  Req.Operation = CacheRequest::Op::Get;
  Req.Kind = "act";
  Req.Key = hex16(InputKey);
  CacheResponse Resp;
  if (!roundTrip(Req, Resp, nullptr, nullptr))
    return Result::Error;
  if (!Resp.Found || !parseHex16(Resp.Digest, Digest))
    return Result::Miss;

  Req.Kind = "obj";
  Req.Key = Resp.Digest;
  CacheResponse ObjResp;
  if (!roundTrip(Req, ObjResp, nullptr, &Bytes))
    return Result::Error;
  if (!ObjResp.Found)
    return Result::Miss;
  // Never trust the wire: the daemon verified its copy, but these
  // bytes crossed a socket since.
  if (hashString(Bytes) != Digest)
    return Result::Miss;
  return Result::Hit;
}

RemoteCacheClient::Result
RemoteCacheClient::publish(uint64_t InputKey, uint64_t Digest,
                           const std::string &Bytes) {
  CacheRequest Req;
  Req.Operation = CacheRequest::Op::Put;
  Req.Kind = "obj";
  Req.Key = hex16(Digest);
  Req.Size = Bytes.size();
  CacheResponse Resp;
  if (!roundTrip(Req, Resp, &Bytes, nullptr))
    return Result::Error;

  Req = CacheRequest();
  Req.Operation = CacheRequest::Op::Put;
  Req.Kind = "act";
  Req.Key = hex16(InputKey);
  Req.Digest = hex16(Digest);
  CacheResponse ActResp;
  if (!roundTrip(Req, ActResp, nullptr, nullptr))
    return Result::Error;
  return Resp.Stored || ActResp.Stored ? Result::Hit : Result::Miss;
}

RemoteCacheClient::Result
RemoteCacheClient::touchEntry(uint64_t InputKey, uint64_t Digest) {
  CacheRequest Req;
  Req.Operation = CacheRequest::Op::Touch;
  Req.Kind = "act";
  Req.Key = hex16(InputKey);
  CacheResponse ActResp;
  if (!roundTrip(Req, ActResp, nullptr, nullptr))
    return Result::Error;

  Req.Kind = "obj";
  Req.Key = hex16(Digest);
  CacheResponse ObjResp;
  if (!roundTrip(Req, ObjResp, nullptr, nullptr))
    return Result::Error;
  return ActResp.Found && ObjResp.Found ? Result::Hit : Result::Miss;
}

RemoteCacheClient::Result RemoteCacheClient::stats(CacheStats &Out) {
  CacheRequest Req;
  Req.Operation = CacheRequest::Op::Stats;
  CacheResponse Resp;
  if (!roundTrip(Req, Resp, nullptr, nullptr))
    return Result::Error;
  if (!Resp.HasStats)
    return Result::Miss;
  Out = Resp.Stats;
  return Result::Hit;
}

RemoteCacheClient::Result RemoteCacheClient::metrics(std::string &Text,
                                                     std::string &Json) {
  CacheRequest Req;
  Req.Operation = CacheRequest::Op::Metrics;
  CacheResponse Resp;
  if (!roundTrip(Req, Resp, nullptr, nullptr))
    return Result::Error;
  if (Resp.MetricsText.empty() && Resp.MetricsJson.empty())
    return Result::Miss; // An older daemon that predates the verb.
  Text = Resp.MetricsText;
  Json = Resp.MetricsJson;
  return Result::Hit;
}

bool RemoteCacheClient::shutdownServer() {
  CacheRequest Req;
  Req.Operation = CacheRequest::Op::Shutdown;
  CacheResponse Resp;
  return roundTrip(Req, Resp, nullptr, nullptr);
}
