//===- state/BuildStateDB.h - Persistent dormancy store ---------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's persistent memory between builds — the paper's core
/// data structure. For every translation unit it stores, per function,
/// the function's pre-optimization fingerprint and one dormancy bit
/// per pipeline position recording whether that pass changed the
/// function in the most recent compilation. Module-pass dormancy is
/// tracked per TU.
///
/// Integrity: the store is versioned and checksummed at two
/// granularities. Every per-TU segment carries its own checksum, so a
/// bit flip inside one segment drops only that TU to cold compilation
/// (partial-corruption salvage) while the rest of the store survives;
/// damage to the framing (header, segment lengths, truncation) rejects
/// the whole store and degrades to a cold build — never a wrong build.
/// A pipeline-signature mismatch (different pass sequence, optimization
/// level, or compiler version) invalidates a TU's records wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef SC_STATE_BUILDSTATEDB_H
#define SC_STATE_BUILDSTATEDB_H

#include "support/FileSystem.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sc {

/// Per-function state from the last build that compiled its TU.
struct FunctionRecord {
  /// Structural hash of the function's pre-optimization IR.
  uint64_t Fingerprint = 0;

  /// One entry per pipeline position; 1 = the pass ran (or its record
  /// was carried over) without changing the function.
  std::vector<uint8_t> Dormancy;

  /// Incremental builds since this function's records were last
  /// refreshed by a full pipeline run (drives the refresh policy).
  uint32_t Age = 0;

  /// Function-level code cache (the ReuseFunctionCode extension):
  /// CodeKey covers the function's inline closure — its own
  /// fingerprint, every reachable module-local callee's fingerprint,
  /// the module's global-usage summary, and the pipeline signature.
  /// An unchanged key proves every pass would see identical input, so
  /// the cached compiled code is byte-for-byte reusable.
  uint64_t CodeKey = 0;
  std::string CachedCode; // Serialized MFunction; empty = no cache.
};

/// Per-translation-unit state.
struct TUState {
  /// Pipeline identity these records were produced under.
  uint64_t PipelineSignature = 0;

  /// Dormancy of module passes (indexed by pipeline position; entries
  /// for function-pass positions are unused).
  std::vector<uint8_t> ModuleDormancy;

  std::map<std::string, FunctionRecord> Functions;
};

/// What a load salvaged from a damaged (or healthy) serialized store.
struct StateLoadReport {
  uint64_t TUsLoaded = 0;  // Segments that passed their checksum.
  uint64_t TUsDropped = 0; // Corrupt segments dropped (those TUs go cold).

  bool salvaged() const { return TUsDropped != 0; }
};

/// Thread-safety: the store is sharded by TU-key hash into 16
/// independently-locked stripes, so parallel workers recording
/// dormancy for different TUs almost never contend on the same lock.
/// A TUState pointer returned by lookup() stays valid under other
/// keys' updates (node-based map) and is only replaced by an update of
/// its own key — which the build system performs exactly once per TU.
/// The serialized format is shard-independent: segments are emitted in
/// globally sorted key order, byte-identical to the pre-sharding
/// single-map layout.
class BuildStateDB {
public:
  /// Looks up a TU's state; returns null when absent.
  const TUState *lookup(const std::string &TUKey) const;

  /// Installs (replaces) a TU's state after a compilation.
  void update(const std::string &TUKey, TUState State);

  /// Installs many TUs' states in one pass, grouped by shard so each
  /// shard's lock is taken at most once for the whole batch (vs one
  /// lock round trip per TU through update()). Used by the parallel
  /// scheduler's deferred write-back (CompilerOptions::DeferStateWrite)
  /// at end of build. Equivalent to calling update() per entry.
  void applyBatch(std::vector<std::pair<std::string, TUState>> Updates);

  /// Drops a TU's state (e.g. the source file was deleted).
  void remove(const std::string &TUKey);

  /// Drops everything (build-system clean).
  void clear();

  size_t numTUs() const;

  /// Serialized size in bytes (the E4 storage-overhead metric).
  /// Computed from the cached per-TU segments plus fixed framing —
  /// no serialize() round-trip, so it is O(dirty TUs), not O(bytes).
  uint64_t sizeBytes() const;

  //===--- Persistence ---------------------------------------------------===//

  std::string serialize() const;

  /// Replaces the contents from serialized bytes. Parses into a
  /// scratch store first and swaps only on success, so failure never
  /// mutates the live DB. Returns false when the framing (magic,
  /// version, lengths, trailing checksum) is unusable; returns true —
  /// filling \p Report with loaded/dropped counts — when the framing
  /// is intact, even if individual corrupt segments had to be dropped
  /// (those TUs simply compile cold next build).
  bool deserialize(const std::string &Bytes,
                   StateLoadReport *Report = nullptr);

  /// Convenience wrappers over a VirtualFileSystem. saveToFile is
  /// crash-safe: it stages through atomicWriteFile, so a crash mid-save
  /// leaves the previous store intact.
  bool saveToFile(VirtualFileSystem &FS, const std::string &Path) const;
  bool loadFromFile(VirtualFileSystem &FS, const std::string &Path,
                    StateLoadReport *Report = nullptr);

private:
  struct Segment {
    std::string Bytes;
    uint64_t Hash = 0;
  };

  /// One lock stripe. SegmentCache holds per-TU serialized segments
  /// with their hashes, invalidated on update/remove: a build that
  /// recompiled k of n files re-serializes and re-hashes only k
  /// segments, keeping the per-build save cost proportional to the
  /// work done (it matters once records carry cached code). The file
  /// checksum folds the per-segment hashes.
  struct Shard {
    mutable std::mutex Mu;
    std::map<std::string, TUState> TUs;
    mutable std::map<std::string, Segment> SegmentCache;
  };

  static constexpr size_t NumShards = 16;

  Shard &shardFor(const std::string &TUKey) const;

  /// Serializes (or returns the cached segment for) \p TUKey. The
  /// shard's lock must be held.
  static const Segment &segmentFor(const Shard &S, const std::string &TUKey);

  mutable Shard Shards[NumShards];
};

} // namespace sc

#endif // SC_STATE_BUILDSTATEDB_H
