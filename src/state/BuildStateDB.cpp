//===- state/BuildStateDB.cpp - Persistent dormancy store ---------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "state/BuildStateDB.h"

#include "support/AtomicFile.h"
#include "support/ContentionStats.h"
#include "support/Hashing.h"
#include "support/Serializer.h"

#include <algorithm>

using namespace sc;

namespace {
constexpr uint32_t DBMagic = 0x53434442; // "SCDB"
// Version 4: every per-TU segment is followed by its own u64 checksum,
// enabling partial-corruption salvage. Version 3 stores (one whole-file
// checksum only) fail the version check and load cold — the 3->4
// migration is one cold build.
constexpr uint32_t DBVersion = 4;

/// Encoded length of BinaryWriter::writeVarU64(V) (LEB128).
unsigned varintLen(uint64_t V) {
  unsigned N = 1;
  while (V >= 0x80) {
    V >>= 7;
    ++N;
  }
  return N;
}
} // namespace

BuildStateDB::Shard &BuildStateDB::shardFor(const std::string &TUKey) const {
  return Shards[hashString(TUKey) % NumShards];
}

const TUState *BuildStateDB::lookup(const std::string &TUKey) const {
  Shard &S = shardFor(TUKey);
  auto Lock = timedLock(S.Mu, stateDBContention());
  auto It = S.TUs.find(TUKey);
  return It != S.TUs.end() ? &It->second : nullptr;
}

void BuildStateDB::update(const std::string &TUKey, TUState State) {
  Shard &S = shardFor(TUKey);
  auto Lock = timedLock(S.Mu, stateDBContention());
  S.TUs[TUKey] = std::move(State);
  S.SegmentCache.erase(TUKey);
}

void BuildStateDB::applyBatch(
    std::vector<std::pair<std::string, TUState>> Updates) {
  // Group by shard first, then lock each shard exactly once. The
  // caller runs this at a quiet point (end of the compile wave), so
  // the single coarse hold per shard displaces what used to be one
  // contended lock round trip per TU from every worker thread.
  std::vector<size_t> ByShard[NumShards];
  for (size_t I = 0; I != Updates.size(); ++I)
    ByShard[hashString(Updates[I].first) % NumShards].push_back(I);
  for (size_t SI = 0; SI != NumShards; ++SI) {
    if (ByShard[SI].empty())
      continue;
    Shard &S = Shards[SI];
    auto Lock = timedLock(S.Mu, stateDBContention());
    for (size_t I : ByShard[SI]) {
      S.TUs[Updates[I].first] = std::move(Updates[I].second);
      S.SegmentCache.erase(Updates[I].first);
    }
  }
}

void BuildStateDB::remove(const std::string &TUKey) {
  Shard &S = shardFor(TUKey);
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.TUs.erase(TUKey);
  S.SegmentCache.erase(TUKey);
}

void BuildStateDB::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.TUs.clear();
    S.SegmentCache.clear();
  }
}

// Approximate under concurrency; used for stats only.
size_t BuildStateDB::numTUs() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.TUs.size();
  }
  return N;
}

uint64_t BuildStateDB::sizeBytes() const {
  // Sum the framing arithmetic over cached segments instead of
  // materializing the full byte string: header (magic, version, TU
  // count) + per TU {varint length prefix, segment, u64 segment
  // checksum} + u64 file checksum.
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(NumShards);
  for (const Shard &S : Shards)
    Locks.emplace_back(S.Mu);

  uint64_t N = 0;
  uint64_t Total = 8; // Magic + version.
  for (const Shard &S : Shards)
    for (const auto &[Key, TU] : S.TUs) {
      (void)TU;
      const Segment &Seg = segmentFor(S, Key);
      Total += varintLen(Seg.Bytes.size()) + Seg.Bytes.size() + 8;
      ++N;
    }
  Total += varintLen(N);
  Total += 8; // Checksum.
  return Total;
}

const BuildStateDB::Segment &
BuildStateDB::segmentFor(const Shard &S, const std::string &TUKey) {
  auto Cached = S.SegmentCache.find(TUKey);
  if (Cached != S.SegmentCache.end())
    return Cached->second;
  const TUState &TU = S.TUs.at(TUKey);
  BinaryWriter W;
  W.writeString(TUKey);
  W.writeU64(TU.PipelineSignature);
  W.writeVarU64(TU.ModuleDormancy.size());
  for (uint8_t Bit : TU.ModuleDormancy)
    W.writeU8(Bit);
  W.writeVarU64(TU.Functions.size());
  for (const auto &[Name, Rec] : TU.Functions) {
    W.writeString(Name);
    W.writeU64(Rec.Fingerprint);
    W.writeU32(Rec.Age);
    W.writeU64(Rec.CodeKey);
    W.writeString(Rec.CachedCode);
    W.writeVarU64(Rec.Dormancy.size());
    for (uint8_t Bit : Rec.Dormancy)
      W.writeU8(Bit);
  }
  Segment Seg;
  Seg.Bytes = std::string(W.data().begin(), W.data().end());
  Seg.Hash = hashString(Seg.Bytes);
  return S.SegmentCache[TUKey] = std::move(Seg);
}

std::string BuildStateDB::serialize() const {
  // Lock every shard (fixed index order — no deadlock) so the emitted
  // snapshot is consistent, then emit segments in globally sorted key
  // order: the format is identical to the pre-sharding single-map
  // layout, so files round-trip across the sharding change.
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(NumShards);
  for (const Shard &S : Shards)
    Locks.emplace_back(S.Mu);

  std::vector<std::pair<const std::string *, const Shard *>> Keys;
  for (const Shard &S : Shards)
    for (const auto &[Key, TU] : S.TUs) {
      (void)TU;
      Keys.push_back({&Key, &S});
    }
  std::sort(Keys.begin(), Keys.end(),
            [](const auto &A, const auto &B) { return *A.first < *B.first; });

  // Format: header, then per TU {varint segment length, segment
  // bytes, u64 segment checksum}, then a trailing checksum folding the
  // per-segment hashes. The per-segment checksum localizes damage — a
  // flipped bit inside one segment drops only that TU on load — and
  // folding cached hashes (instead of hashing the whole buffer) keeps
  // the save cost of an incremental build proportional to the number
  // of recompiled TUs even when records carry megabytes of cached
  // code.
  BinaryWriter Header;
  Header.writeU32(DBMagic);
  Header.writeU32(DBVersion);
  Header.writeVarU64(Keys.size());

  uint64_t Checksum = hashBytes(Header.data().data(), Header.data().size());
  std::string Out(Header.data().begin(), Header.data().end());
  for (const auto &[Key, S] : Keys) {
    const Segment &Seg = segmentFor(*S, *Key);
    BinaryWriter Frame;
    Frame.writeVarU64(Seg.Bytes.size());
    Out.append(Frame.data().begin(), Frame.data().end());
    Out += Seg.Bytes;
    BinaryWriter SegTail;
    SegTail.writeU64(Seg.Hash);
    Out.append(SegTail.data().begin(), SegTail.data().end());
    Checksum = hashCombine(Checksum, Seg.Hash);
  }
  BinaryWriter Tail;
  Tail.writeU64(Checksum);
  Out.append(Tail.data().begin(), Tail.data().end());
  return Out;
}

namespace {

/// Decodes one per-TU segment. Returns false (leaving \p Key / \p TU
/// partially filled but unused) when the segment bytes are malformed.
bool decodeSegment(const uint8_t *Data, size_t Len, std::string &Key,
                   TUState &TU) {
  BinaryReader SR(Data, Len);
  Key = SR.readString();
  TU.PipelineSignature = SR.readU64();
  uint64_t NumModuleBits = SR.readVarU64();
  for (uint64_t I = 0; I != NumModuleBits && !SR.failed(); ++I)
    TU.ModuleDormancy.push_back(SR.readU8());
  uint64_t NumFuncs = SR.readVarU64();
  for (uint64_t FI = 0; FI != NumFuncs && !SR.failed(); ++FI) {
    std::string Name = SR.readString();
    FunctionRecord Rec;
    Rec.Fingerprint = SR.readU64();
    Rec.Age = SR.readU32();
    Rec.CodeKey = SR.readU64();
    Rec.CachedCode = SR.readString();
    uint64_t NumBits = SR.readVarU64();
    for (uint64_t I = 0; I != NumBits && !SR.failed(); ++I)
      Rec.Dormancy.push_back(SR.readU8());
    TU.Functions[Name] = std::move(Rec);
  }
  return !SR.failed() && SR.atEnd();
}

} // namespace

bool BuildStateDB::deserialize(const std::string &Bytes,
                               StateLoadReport *Report) {
  // Parse into a scratch map first and swap only on success: a failed
  // load must never leave the live DB half-mutated (or clobber records
  // a running build already refreshed).
  std::map<std::string, TUState> Scratch;
  StateLoadReport Rep;

  if (Bytes.size() < 16)
    return false;
  BinaryReader Tail(
      reinterpret_cast<const uint8_t *>(Bytes.data()) + Bytes.size() - 8, 8);
  uint64_t Expected = Tail.readU64();

  BinaryReader R(reinterpret_cast<const uint8_t *>(Bytes.data()),
                 Bytes.size() - 8);
  if (R.readU32() != DBMagic || R.readU32() != DBVersion)
    return false;
  uint64_t NumTUs = R.readVarU64();
  if (R.failed())
    return false;
  uint64_t Checksum = hashBytes(Bytes.data(), R.position());

  for (uint64_t T = 0; T != NumTUs; ++T) {
    // Framing: {varint len, bytes, u64 stored hash}. Damage *here*
    // (bad length, truncation) makes everything after unaddressable,
    // so it rejects the whole store; damage confined to the segment
    // bytes is caught by the per-segment hash below and drops only
    // that TU.
    uint64_t SegLen = R.readVarU64();
    size_t SegStart = R.position();
    if (R.failed() || SegLen > Bytes.size() - 8 - SegStart)
      return false;
    R.skip(SegLen);
    uint64_t StoredHash = R.readU64();
    if (R.failed())
      return false;
    uint64_t ActualHash = hashBytes(Bytes.data() + SegStart, SegLen);
    Checksum = hashCombine(Checksum, ActualHash);

    std::string Key;
    TUState TU;
    if (ActualHash != StoredHash ||
        !decodeSegment(reinterpret_cast<const uint8_t *>(Bytes.data()) +
                           SegStart,
                       SegLen, Key, TU)) {
      ++Rep.TUsDropped; // Salvage: this TU compiles cold next build.
      continue;
    }
    Scratch[std::move(Key)] = std::move(TU);
    ++Rep.TUsLoaded;
  }
  if (R.failed() || !R.atEnd())
    return false;
  // With zero drops the fold of per-segment hashes must match the
  // trailing checksum (catches e.g. a flipped trailing checksum or
  // resequenced segments). With drops it cannot match — the mismatch
  // is already explained and accounted per segment.
  if (Rep.TUsDropped == 0 && Checksum != Expected)
    return false;

  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(NumShards);
  for (const Shard &S : Shards)
    Locks.emplace_back(S.Mu);
  for (Shard &S : Shards) {
    S.TUs.clear();
    S.SegmentCache.clear();
  }
  for (auto &[Key, TU] : Scratch)
    shardFor(Key).TUs[Key] = std::move(TU);
  if (Report)
    *Report = Rep;
  return true;
}

bool BuildStateDB::saveToFile(VirtualFileSystem &FS,
                              const std::string &Path) const {
  return atomicWriteFile(FS, Path, serialize());
}

bool BuildStateDB::loadFromFile(VirtualFileSystem &FS,
                                const std::string &Path,
                                StateLoadReport *Report) {
  std::optional<std::string> Bytes = FS.readFile(Path);
  if (!Bytes)
    return false;
  return deserialize(*Bytes, Report);
}
