//===- state/StatefulPolicy.h - Dormant-pass skip policy --------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateful compiler's decision logic and its pipeline hook.
///
/// Mechanism (paper §"stateful compiler"): during every compilation,
/// the pass manager's instrumentation records which passes were
/// *dormant* (ran without changing the IR) for each function. On the
/// next compilation of the same TU, passes recorded dormant for a
/// function are skipped for that function. Skipping a transform pass
/// is semantics-preserving by construction — at worst the output is
/// less optimized — and analyses recompute lazily, so skipping never
/// produces wrong code.
///
/// Policy knobs (ablations in bench/):
///  * Mode::HeuristicSkip — the paper's policy: match records by
///    function name even when the function body changed.
///  * Mode::ExactSkip — skip only when the function's fingerprint is
///    unchanged (no optimization-quality risk, less skipping).
///  * RefreshInterval — force a full pipeline for a function every N
///    incremental builds to re-learn dormancy (bounds quality drift).
///  * SkipModulePasses — extend skipping to module passes (dormant
///    last build for this TU).
///
//===----------------------------------------------------------------------===//

#ifndef SC_STATE_STATEFULPOLICY_H
#define SC_STATE_STATEFULPOLICY_H

#include "pass/PassManager.h"
#include "state/BuildStateDB.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace sc {

struct StatefulConfig {
  enum class Mode : uint8_t {
    Stateless,     // Baseline: never skip.
    ExactSkip,     // Skip dormant passes only for unchanged functions.
    HeuristicSkip, // Paper's policy: skip dormant passes by name match.
  };

  Mode SkipMode = Mode::HeuristicSkip;

  /// Force a full pipeline for a function after this many consecutive
  /// skipped builds (0 = never refresh).
  uint32_t RefreshInterval = 0;

  /// Also skip module passes recorded dormant for the TU.
  bool SkipModulePasses = true;

  /// Extension beyond the paper: functions whose inline-closure code
  /// key is unchanged skip the pipeline AND the backend entirely,
  /// splicing the previous build's compiled code from the state DB.
  /// Exact-match (like ExactSkip), so it carries zero quality risk.
  bool ReuseFunctionCode = false;
};

/// Counters describing skip behavior in one compilation.
struct StatefulStats {
  uint64_t PassesRun = 0;
  uint64_t PassesSkipped = 0;
  uint64_t FunctionsMatched = 0;    // Had a usable previous record.
  uint64_t FunctionsRefreshed = 0;  // Forced full run by refresh policy.
  uint64_t FunctionsReused = 0;     // Whole compiled code reused.
};

/// One TU's per-decision audit trail for a single build: for every
/// (function, pipeline-position) pair, why the pass ran or slept.
/// Persisted as out/decisions.bin and replayed by `scbuild --explain`.
struct TUDecisionLog {
  /// A packed decision: low 7 bits are a PassDecision, bit 0x80 means
  /// the executed pass reported a change.
  static constexpr uint8_t ChangedBit = 0x80;
  /// Sentinel for "no decision at this position" (e.g. a module-pass
  /// position inside a function's vector).
  static constexpr uint8_t NoDecision = 0x7F;

  static uint8_t pack(PassDecision D, bool Changed) {
    return static_cast<uint8_t>(D) | (Changed ? ChangedBit : 0);
  }

  /// Pipeline position names, index-aligned with the code vectors.
  std::vector<std::string> PassNames;
  /// Function name -> one packed code per pipeline position.
  std::map<std::string, std::vector<uint8_t>> Functions;
  /// Module-pass decisions, one packed code per pipeline position.
  std::vector<uint8_t> Module;
};

/// PassInstrumentation that implements dormancy-based skipping and
/// simultaneously records the TU's next-build state.
///
/// Thread-safe for the parallel pass engine WITHOUT locking the hot
/// path: every function named in \p Fingerprints gets a private slot
/// built in the constructor (skip verdict precomputed once per
/// function, not once per pass), and the engine guarantees each
/// function's chain runs on exactly one thread at a time, so the
/// per-function hooks mutate only that slot — no mutex. Module-pass
/// hooks run at the engine's sequential barriers and are likewise
/// unlocked. Only functions absent from \p Fingerprints (none, in
/// practice) fall back to a mutex-guarded overflow map. Aggregate
/// stats/state/decisions are folded from the slots on first access
/// after the run (merge-on-quiesce), so the recorded state is
/// identical for any thread count. setReusedFunctions()/takeNewState()
/// must be called outside pipeline execution.
///
/// Usage (per compilation of one TU):
///   StatefulInstrumentation SI(Config, Prev, Signature, Fingerprints);
///   Pipeline.run(Module, AM, &SI);
///   DB.update(TUKey, SI.takeNewState());
class StatefulInstrumentation : public PassInstrumentation {
public:
  /// \p Prev is the TU's record from the previous build (null on a
  /// cold build). \p PipelineSignature identifies the pass sequence;
  /// records with a different signature are ignored. \p Fingerprints
  /// maps current function names to pre-optimization fingerprints.
  StatefulInstrumentation(const StatefulConfig &Config, const TUState *Prev,
                          uint64_t PipelineSignature, size_t PipelineLength,
                          std::map<std::string, uint64_t> Fingerprints);

  bool shouldRunPass(const std::string &PassName, size_t PassIndex,
                     const Function &F,
                     PassDecision *Reason = nullptr) override;
  void afterPass(const std::string &PassName, size_t PassIndex,
                 const Function &F, bool Changed, double Micros) override;
  void onSkippedPass(const std::string &PassName, size_t PassIndex,
                     const Function &F) override;

  bool shouldRunModulePass(const std::string &PassName, size_t PassIndex,
                           const Module &M,
                           PassDecision *Reason = nullptr) override;
  void afterModulePass(const std::string &PassName, size_t PassIndex,
                       const Module &M, bool Changed, double Micros) override;

  /// Marks functions whose compiled code is being reused wholesale:
  /// every pass is skipped for them and their previous dormancy
  /// vector carries forward verbatim (their post-pipeline IR is
  /// irrelevant — the driver splices the cached code). Call before
  /// the pipeline runs.
  void setReusedFunctions(std::set<std::string> Names);

  /// The TU state to persist for the next build. Call once, after the
  /// pipeline ran.
  TUState takeNewState();

  /// The per-decision audit trail for this compilation (pass names are
  /// left empty; the driver fills them from the pipeline). Call once,
  /// after the pipeline ran.
  TUDecisionLog takeDecisions();

  const StatefulStats &stats() const {
    finalize();
    return Stats;
  }

private:
  /// Per-function state. The skip verdict is precomputed once in the
  /// constructor; during the pipeline the one thread running this
  /// function's chain mutates the recording fields without locking.
  struct FnSlot {
    //===--- Precomputed; immutable during the pipeline ---------------------===//
    /// Usable previous record under the current policy, or null.
    const FunctionRecord *Rec = nullptr;
    /// Why Rec is null (valid only when it is).
    PassDecision NoRecWhy = PassDecision::RanAlways;
    /// Previous dormancy vector (shape-matched), policy-independent;
    /// used for the reused-function carry-forward.
    const std::vector<uint8_t> *PrevDormancy = nullptr;
    bool Refresh = false; ///< Refresh policy forces a full run.
    uint32_t PrevAge = 0;
    uint64_t Fingerprint = 0;
    /// Set by setReusedFunctions() before the pipeline runs.
    bool Reused = false;
    //===--- Written only by this function's chain thread -------------------===//
    bool Queried = false;    ///< shouldRunPass seen at least once.
    bool SkippedAny = false; ///< Drives aging in takeNewState().
    uint64_t Runs = 0;
    uint64_t Skips = 0;
    FunctionRecord New;             ///< Dormancy being recorded.
    std::vector<uint8_t> Decisions; ///< Packed codes per position.
  };

  /// Fills the precomputed fields of \p S for \p FName (the decision
  /// ladder the per-pass hot path used to walk per query).
  void initSlot(FnSlot &S, const std::string &FName, uint64_t Fingerprint);

  /// Slot lookup: lock-free for functions known at construction, via
  /// the mutex-guarded overflow map otherwise.
  FnSlot &slotFor(const std::string &FName);

  /// Folds per-function slot counters into Stats once, after the
  /// pipeline quiesced. Idempotent.
  void finalize() const;

  StatefulConfig Config;
  const TUState *Prev;
  bool SigMismatch = false; // Prev dropped over a signature change.
  uint64_t PipelineSignature;
  size_t PipelineLength;
  std::map<std::string, uint64_t> Fingerprints;
  TUState NewState;
  TUDecisionLog Decisions;
  mutable StatefulStats Stats;
  mutable bool Finalized = false;
  /// One slot per function known at construction. The map's structure
  /// is immutable while the pipeline runs — concurrent find() is safe.
  std::map<std::string, FnSlot> Slots;
  /// Functions not present in Fingerprints (should not happen; kept
  /// for safety). Guarded by OverflowMu.
  std::mutex OverflowMu;
  std::map<std::string, FnSlot> Overflow;
};

} // namespace sc

#endif // SC_STATE_STATEFULPOLICY_H
