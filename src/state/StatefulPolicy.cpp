//===- state/StatefulPolicy.cpp - Dormant-pass skip policy ----------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "state/StatefulPolicy.h"

using namespace sc;

StatefulInstrumentation::StatefulInstrumentation(
    const StatefulConfig &Config, const TUState *Prev,
    uint64_t PipelineSignature, size_t PipelineLength,
    std::map<std::string, uint64_t> Fingerprints)
    : Config(Config), Prev(Prev), PipelineSignature(PipelineSignature),
      PipelineLength(PipelineLength), Fingerprints(std::move(Fingerprints)) {
  // Records from a different pipeline are meaningless; drop them.
  if (Prev && Prev->PipelineSignature != PipelineSignature) {
    this->Prev = nullptr;
    SigMismatch = true;
  }

  NewState.PipelineSignature = PipelineSignature;
  NewState.ModuleDormancy.assign(PipelineLength, 0);
  Decisions.Module.assign(PipelineLength, TUDecisionLog::NoDecision);
}

const FunctionRecord *
StatefulInstrumentation::usableRecord(const std::string &FName,
                                      bool &RefreshOut, PassDecision &Why) {
  RefreshOut = false;
  if (Config.SkipMode == StatefulConfig::Mode::Stateless) {
    Why = PassDecision::RanAlways;
    return nullptr;
  }
  if (!Prev) {
    Why = SigMismatch ? PassDecision::RanSignatureChange
                      : PassDecision::RanColdState;
    return nullptr;
  }
  auto It = Prev->Functions.find(FName);
  if (It == Prev->Functions.end()) {
    Why = PassDecision::RanNewFunction;
    return nullptr;
  }
  const FunctionRecord &Rec = It->second;
  if (Rec.Dormancy.size() != PipelineLength) {
    Why = PassDecision::RanStaleRecord;
    return nullptr;
  }

  if (Config.SkipMode == StatefulConfig::Mode::ExactSkip) {
    auto FPIt = Fingerprints.find(FName);
    if (FPIt == Fingerprints.end() || FPIt->second != Rec.Fingerprint) {
      Why = PassDecision::RanFingerprint;
      return nullptr;
    }
  }

  // Refresh policy: decide once per function per build.
  if (Config.RefreshInterval != 0) {
    auto Decided = RefreshDecided.find(FName);
    if (Decided == RefreshDecided.end()) {
      bool Refresh = Rec.Age + 1 >= Config.RefreshInterval;
      RefreshDecided[FName] = Refresh;
      if (Refresh)
        ++Stats.FunctionsRefreshed;
      Decided = RefreshDecided.find(FName);
    }
    if (Decided->second) {
      RefreshOut = true;
      Why = PassDecision::RanRefresh;
      return nullptr;
    }
  }
  return &Rec;
}

uint8_t &StatefulInstrumentation::decisionSlot(const std::string &FName,
                                               size_t PassIndex) {
  std::vector<uint8_t> &Codes = Decisions.Functions[FName];
  if (Codes.empty())
    Codes.assign(PipelineLength, TUDecisionLog::NoDecision);
  return Codes[PassIndex];
}

void StatefulInstrumentation::setReusedFunctions(
    std::set<std::string> Names) {
  ReusedFunctions = std::move(Names);
  Stats.FunctionsReused = ReusedFunctions.size();
}

bool StatefulInstrumentation::shouldRunPass(const std::string &,
                                            size_t PassIndex,
                                            const Function &F,
                                            PassDecision *Reason) {
  std::lock_guard<std::mutex> Lock(Mu);
  PassDecision Why = PassDecision::RanAlways;
  bool Run;
  if (ReusedFunctions.count(F.name())) {
    Why = PassDecision::SkippedReused;
    Run = false;
  } else {
    bool Refresh = false;
    const FunctionRecord *Rec = usableRecord(F.name(), Refresh, Why);
    if (!Rec) {
      Run = true;
    } else {
      MatchedFunctions.insert(F.name());
      Stats.FunctionsMatched = MatchedFunctions.size();
      Run = Rec->Dormancy[PassIndex] == 0;
      Why = Run ? PassDecision::RanActive : PassDecision::SkippedDormant;
    }
  }
  decisionSlot(F.name(), PassIndex) = TUDecisionLog::pack(Why, false);
  if (Reason)
    *Reason = Why;
  return Run;
}

void StatefulInstrumentation::afterPass(const std::string &, size_t PassIndex,
                                        const Function &F, bool Changed,
                                        double) {
  std::lock_guard<std::mutex> Lock(Mu);
  FunctionRecord &Rec = NewState.Functions[F.name()];
  if (Rec.Dormancy.empty()) {
    Rec.Dormancy.assign(PipelineLength, 0);
    auto It = Fingerprints.find(F.name());
    Rec.Fingerprint = It != Fingerprints.end() ? It->second : 0;
  }
  Rec.Dormancy[PassIndex] = Changed ? 0 : 1;
  if (Changed)
    decisionSlot(F.name(), PassIndex) |= TUDecisionLog::ChangedBit;
  ++Stats.PassesRun;
}

void StatefulInstrumentation::onSkippedPass(const std::string &,
                                            size_t PassIndex,
                                            const Function &F) {
  std::lock_guard<std::mutex> Lock(Mu);
  FunctionRecord &Rec = NewState.Functions[F.name()];
  if (Rec.Dormancy.empty()) {
    Rec.Dormancy.assign(PipelineLength, 0);
    auto It = Fingerprints.find(F.name());
    Rec.Fingerprint = It != Fingerprints.end() ? It->second : 0;
  }
  if (ReusedFunctions.count(F.name())) {
    // Cache splice: the previous dormancy vector stays authoritative
    // (this skip says nothing about dormancy — the pass was bypassed
    // because the whole compilation result is reused).
    Rec.Dormancy[PassIndex] = 0; // Unknown: be conservative.
    if (Prev) {
      auto It = Prev->Functions.find(F.name());
      if (It != Prev->Functions.end() &&
          It->second.Dormancy.size() == PipelineLength)
        Rec.Dormancy[PassIndex] = It->second.Dormancy[PassIndex];
    }
  } else {
    // Carry the dormant verdict forward: the pass was not executed, so
    // the best knowledge remains "dormant as of the last real run".
    Rec.Dormancy[PassIndex] = 1;
  }
  SkippedAnyFor.insert(F.name());
  ++Stats.PassesSkipped;
}

bool StatefulInstrumentation::shouldRunModulePass(const std::string &,
                                                  size_t PassIndex,
                                                  const Module &,
                                                  PassDecision *Reason) {
  std::lock_guard<std::mutex> Lock(Mu);
  PassDecision Why;
  bool Run;
  if (!Config.SkipModulePasses ||
      Config.SkipMode == StatefulConfig::Mode::Stateless) {
    Why = PassDecision::RanAlways;
    Run = true;
  } else if (!Prev) {
    Why = SigMismatch ? PassDecision::RanSignatureChange
                      : PassDecision::RanColdState;
    Run = true;
  } else if (PassIndex >= Prev->ModuleDormancy.size()) {
    Why = PassDecision::RanStaleRecord;
    Run = true;
  } else if (Prev->ModuleDormancy[PassIndex] == 0) {
    Why = PassDecision::RanActive;
    Run = true;
  } else {
    // Dormant last build: skip and carry the verdict forward.
    Why = PassDecision::SkippedDormant;
    Run = false;
    NewState.ModuleDormancy[PassIndex] = 1;
    ++Stats.PassesSkipped;
  }
  Decisions.Module[PassIndex] = TUDecisionLog::pack(Why, false);
  if (Reason)
    *Reason = Why;
  return Run;
}

void StatefulInstrumentation::afterModulePass(const std::string &,
                                              size_t PassIndex, const Module &,
                                              bool Changed, double) {
  std::lock_guard<std::mutex> Lock(Mu);
  NewState.ModuleDormancy[PassIndex] = Changed ? 0 : 1;
  if (Changed)
    Decisions.Module[PassIndex] |= TUDecisionLog::ChangedBit;
  ++Stats.PassesRun;
}

TUState StatefulInstrumentation::takeNewState() {
  // Age accounting: a function whose pipeline ran in full resets its
  // age; one with at least one carried-over (skipped) verdict ages.
  for (auto &[Name, Rec] : NewState.Functions) {
    if (SkippedAnyFor.count(Name)) {
      uint32_t PrevAge = 0;
      if (Prev) {
        auto It = Prev->Functions.find(Name);
        if (It != Prev->Functions.end())
          PrevAge = It->second.Age;
      }
      Rec.Age = PrevAge + 1;
    } else {
      Rec.Age = 0;
    }
  }
  return std::move(NewState);
}

TUDecisionLog StatefulInstrumentation::takeDecisions() {
  return std::move(Decisions);
}
