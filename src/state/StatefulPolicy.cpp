//===- state/StatefulPolicy.cpp - Dormant-pass skip policy ----------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "state/StatefulPolicy.h"

#include "support/ContentionStats.h"

using namespace sc;

StatefulInstrumentation::StatefulInstrumentation(
    const StatefulConfig &Config, const TUState *Prev,
    uint64_t PipelineSignature, size_t PipelineLength,
    std::map<std::string, uint64_t> Fingerprints)
    : Config(Config), Prev(Prev), PipelineSignature(PipelineSignature),
      PipelineLength(PipelineLength), Fingerprints(std::move(Fingerprints)) {
  // Records from a different pipeline are meaningless; drop them.
  if (Prev && Prev->PipelineSignature != PipelineSignature) {
    this->Prev = nullptr;
    SigMismatch = true;
  }

  NewState.PipelineSignature = PipelineSignature;
  NewState.ModuleDormancy.assign(PipelineLength, 0);
  Decisions.Module.assign(PipelineLength, TUDecisionLog::NoDecision);

  // Precompute every function's skip verdict once. The old engine
  // re-walked the decision ladder under a global mutex for every
  // (function, pass) query — 27x per function on O2; this makes the
  // per-pass hot path a map find plus slot reads, with no lock.
  for (const auto &[Name, FP] : this->Fingerprints)
    initSlot(Slots[Name], Name, FP);
}

void StatefulInstrumentation::initSlot(FnSlot &S, const std::string &FName,
                                       uint64_t Fingerprint) {
  S.Fingerprint = Fingerprint;
  if (Prev) {
    auto It = Prev->Functions.find(FName);
    if (It != Prev->Functions.end()) {
      S.PrevAge = It->second.Age;
      if (It->second.Dormancy.size() == PipelineLength)
        S.PrevDormancy = &It->second.Dormancy;
    }
  }

  // The decision ladder; mirrors the historical usableRecord().
  if (Config.SkipMode == StatefulConfig::Mode::Stateless) {
    S.NoRecWhy = PassDecision::RanAlways;
    return;
  }
  if (!Prev) {
    S.NoRecWhy = SigMismatch ? PassDecision::RanSignatureChange
                             : PassDecision::RanColdState;
    return;
  }
  auto It = Prev->Functions.find(FName);
  if (It == Prev->Functions.end()) {
    S.NoRecWhy = PassDecision::RanNewFunction;
    return;
  }
  const FunctionRecord &Rec = It->second;
  if (Rec.Dormancy.size() != PipelineLength) {
    S.NoRecWhy = PassDecision::RanStaleRecord;
    return;
  }
  if (Config.SkipMode == StatefulConfig::Mode::ExactSkip &&
      Fingerprint != Rec.Fingerprint) {
    S.NoRecWhy = PassDecision::RanFingerprint;
    return;
  }
  if (Config.RefreshInterval != 0 && Rec.Age + 1 >= Config.RefreshInterval) {
    S.Refresh = true;
    S.NoRecWhy = PassDecision::RanRefresh;
    return;
  }
  S.Rec = &Rec;
}

StatefulInstrumentation::FnSlot &
StatefulInstrumentation::slotFor(const std::string &FName) {
  auto It = Slots.find(FName);
  if (It != Slots.end())
    return It->second;
  // Unknown function (not in the fingerprint set): rare safety path.
  auto Lock = timedLock(OverflowMu, statefulPolicyContention());
  auto [OIt, Inserted] = Overflow.try_emplace(FName);
  if (Inserted)
    initSlot(OIt->second, FName, 0);
  return OIt->second;
}

void StatefulInstrumentation::setReusedFunctions(
    std::set<std::string> Names) {
  Stats.FunctionsReused = Names.size();
  for (const std::string &Name : Names)
    slotFor(Name).Reused = true;
}

bool StatefulInstrumentation::shouldRunPass(const std::string &,
                                            size_t PassIndex,
                                            const Function &F,
                                            PassDecision *Reason) {
  FnSlot &S = slotFor(F.name());
  S.Queried = true;
  PassDecision Why;
  bool Run;
  if (S.Reused) {
    Why = PassDecision::SkippedReused;
    Run = false;
  } else if (!S.Rec) {
    Why = S.NoRecWhy;
    Run = true;
  } else {
    Run = S.Rec->Dormancy[PassIndex] == 0;
    Why = Run ? PassDecision::RanActive : PassDecision::SkippedDormant;
  }
  if (S.Decisions.empty())
    S.Decisions.assign(PipelineLength, TUDecisionLog::NoDecision);
  S.Decisions[PassIndex] = TUDecisionLog::pack(Why, false);
  if (Reason)
    *Reason = Why;
  return Run;
}

void StatefulInstrumentation::afterPass(const std::string &, size_t PassIndex,
                                        const Function &F, bool Changed,
                                        double) {
  FnSlot &S = slotFor(F.name());
  if (S.New.Dormancy.empty()) {
    S.New.Dormancy.assign(PipelineLength, 0);
    S.New.Fingerprint = S.Fingerprint;
  }
  S.New.Dormancy[PassIndex] = Changed ? 0 : 1;
  // The engine always queries shouldRunPass first, which sizes the
  // decision vector; direct afterPass calls (unit tests) may not.
  if (Changed && PassIndex < S.Decisions.size())
    S.Decisions[PassIndex] |= TUDecisionLog::ChangedBit;
  ++S.Runs;
}

void StatefulInstrumentation::onSkippedPass(const std::string &,
                                            size_t PassIndex,
                                            const Function &F) {
  FnSlot &S = slotFor(F.name());
  if (S.New.Dormancy.empty()) {
    S.New.Dormancy.assign(PipelineLength, 0);
    S.New.Fingerprint = S.Fingerprint;
  }
  if (S.Reused) {
    // Cache splice: the previous dormancy vector stays authoritative
    // (this skip says nothing about dormancy — the pass was bypassed
    // because the whole compilation result is reused). Unknown shape:
    // be conservative (0).
    S.New.Dormancy[PassIndex] =
        S.PrevDormancy ? (*S.PrevDormancy)[PassIndex] : 0;
  } else {
    // Carry the dormant verdict forward: the pass was not executed, so
    // the best knowledge remains "dormant as of the last real run".
    S.New.Dormancy[PassIndex] = 1;
  }
  S.SkippedAny = true;
  ++S.Skips;
}

bool StatefulInstrumentation::shouldRunModulePass(const std::string &,
                                                  size_t PassIndex,
                                                  const Module &,
                                                  PassDecision *Reason) {
  // Module passes execute at the engine's sequential barriers — no
  // function chain is in flight — so this needs no lock.
  PassDecision Why;
  bool Run;
  if (!Config.SkipModulePasses ||
      Config.SkipMode == StatefulConfig::Mode::Stateless) {
    Why = PassDecision::RanAlways;
    Run = true;
  } else if (!Prev) {
    Why = SigMismatch ? PassDecision::RanSignatureChange
                      : PassDecision::RanColdState;
    Run = true;
  } else if (PassIndex >= Prev->ModuleDormancy.size()) {
    Why = PassDecision::RanStaleRecord;
    Run = true;
  } else if (Prev->ModuleDormancy[PassIndex] == 0) {
    Why = PassDecision::RanActive;
    Run = true;
  } else {
    // Dormant last build: skip and carry the verdict forward.
    Why = PassDecision::SkippedDormant;
    Run = false;
    NewState.ModuleDormancy[PassIndex] = 1;
    ++Stats.PassesSkipped;
  }
  Decisions.Module[PassIndex] = TUDecisionLog::pack(Why, false);
  if (Reason)
    *Reason = Why;
  return Run;
}

void StatefulInstrumentation::afterModulePass(const std::string &,
                                              size_t PassIndex, const Module &,
                                              bool Changed, double) {
  NewState.ModuleDormancy[PassIndex] = Changed ? 0 : 1;
  if (Changed)
    Decisions.Module[PassIndex] |= TUDecisionLog::ChangedBit;
  ++Stats.PassesRun;
}

void StatefulInstrumentation::finalize() const {
  // Merge-on-quiesce: fold the per-function slots into the aggregate
  // counters exactly once, after the pipeline finished (the engine's
  // barrier orders all slot writes before this read).
  if (Finalized)
    return;
  Finalized = true;
  auto Fold = [this](const std::map<std::string, FnSlot> &M) {
    for (const auto &[Name, S] : M) {
      (void)Name;
      Stats.PassesRun += S.Runs;
      Stats.PassesSkipped += S.Skips;
      if (S.Queried && !S.Reused && S.Rec)
        ++Stats.FunctionsMatched;
      // Reused functions short-circuit before the refresh ladder.
      if (S.Queried && !S.Reused && S.Refresh)
        ++Stats.FunctionsRefreshed;
    }
  };
  Fold(Slots);
  Fold(Overflow);
}

TUState StatefulInstrumentation::takeNewState() {
  finalize();
  // Assemble the persisted state from the slots. Age accounting: a
  // function whose pipeline ran in full resets its age; one with at
  // least one carried-over (skipped) verdict ages.
  auto Collect = [this](std::map<std::string, FnSlot> &M) {
    for (auto &[Name, S] : M) {
      if (S.New.Dormancy.empty())
        continue; // Never touched by a function-pass segment.
      S.New.Age = S.SkippedAny ? S.PrevAge + 1 : 0;
      NewState.Functions[Name] = std::move(S.New);
    }
  };
  Collect(Slots);
  Collect(Overflow);
  return std::move(NewState);
}

TUDecisionLog StatefulInstrumentation::takeDecisions() {
  finalize();
  auto Collect = [this](std::map<std::string, FnSlot> &M) {
    for (auto &[Name, S] : M) {
      if (S.Decisions.empty())
        continue; // Never queried.
      Decisions.Functions[Name] = std::move(S.Decisions);
    }
  };
  Collect(Slots);
  Collect(Overflow);
  return std::move(Decisions);
}
