//===- workload/Workload.cpp - Synthetic project generator ---------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace sc;

std::vector<ProjectProfile> sc::standardProfiles() {
  return {
      // Name            Files MinF MaxF Imp MinS MaxS
      {"small_cli", 12, 3, 7, 2, 2, 5},
      {"json_lib", 30, 5, 10, 3, 2, 6},
      {"http_server", 60, 5, 11, 3, 2, 6},
      {"render_engine", 100, 6, 12, 4, 3, 7},
      {"monorepo", 180, 6, 13, 5, 3, 7},
  };
}

ProjectProfile sc::profileByName(const std::string &Name) {
  for (const ProjectProfile &P : standardProfiles())
    if (P.Name == Name)
      return P;
  assert(false && "unknown project profile");
  return standardProfiles()[0];
}

const char *sc::editKindName(EditKind K) {
  switch (K) {
  case EditKind::ConstTweak:
    return "const-tweak";
  case EditKind::CondFlip:
    return "cond-flip";
  case EditKind::StmtInsert:
    return "stmt-insert";
  case EditKind::StmtDelete:
    return "stmt-delete";
  case EditKind::BodyRewrite:
    return "body-rewrite";
  case EditKind::AddFunction:
    return "add-function";
  case EditKind::SignatureChange:
    return "signature-change";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

ProjectModel ProjectModel::generate(const ProjectProfile &Profile,
                                    uint64_t Seed) {
  ProjectModel M;
  RNG Rand(Seed);

  unsigned NumFiles = std::max(2u, Profile.NumFiles);
  for (unsigned FI = 0; FI != NumFiles; ++FI) {
    FileModel File;
    bool IsMain = FI + 1 == NumFiles;
    File.Path = IsMain ? "main.mc" : "src" + std::to_string(FI) + ".mc";

    // Imports: sample from strictly earlier files (acyclic by layout).
    if (FI > 0) {
      unsigned Fanout = static_cast<unsigned>(
          Rand.nextInRange(IsMain ? 2 : 0,
                           std::min<int64_t>(Profile.MaxImportsPerFile, FI)));
      std::vector<unsigned> Candidates;
      for (unsigned J = 0; J != FI; ++J)
        Candidates.push_back(J);
      for (unsigned K = 0; K != Fanout && !Candidates.empty(); ++K) {
        size_t Pick = Rand.nextBelow(Candidates.size());
        File.Imports.push_back(Candidates[Pick]);
        Candidates.erase(Candidates.begin() +
                         static_cast<ptrdiff_t>(Pick));
      }
      std::sort(File.Imports.begin(), File.Imports.end());
    }

    // Module-private globals; roughly a third stay unused (globalopt
    // fodder).
    unsigned NumGlobals = static_cast<unsigned>(Rand.nextInRange(1, 3));
    for (unsigned G = 0; G != NumGlobals; ++G)
      File.GlobalInits.push_back(Rand.nextInRange(0, 99));

    M.Files.push_back(std::move(File));

    unsigned NumFuncs =
        IsMain ? 1
               : static_cast<unsigned>(
                     Rand.nextInRange(Profile.MinFuncsPerFile,
                                      Profile.MaxFuncsPerFile));
    for (unsigned K = 0; K != NumFuncs; ++K) {
      FuncModel F;
      F.Name = IsMain ? "main" : "f" + std::to_string(FI) + "_" +
                                     std::to_string(K);
      F.NumParams =
          IsMain ? 0 : static_cast<unsigned>(Rand.nextInRange(1, 3));
      F.SeedConst = Rand.nextInRange(0, 9);
      F.IsRecursive = !IsMain && Rand.chancePercent(7);
      unsigned FuncIdx = static_cast<unsigned>(M.Funcs.size());
      M.Funcs.push_back(std::move(F));
      M.FuncFile.push_back(FI);
      M.Files[FI].Funcs.push_back(FuncIdx);

      FuncModel &Fn = M.Funcs[FuncIdx];
      if (!Fn.IsRecursive) {
        unsigned NumSegs = static_cast<unsigned>(
            Rand.nextInRange(Profile.MinSegs,
                             IsMain ? Profile.MaxSegs + 2
                                    : Profile.MaxSegs));
        for (unsigned S = 0; S != NumSegs; ++S)
          Fn.Segs.push_back(M.makeSegment(Rand, FI, FuncIdx));
      }
    }
  }
  return M;
}

std::vector<unsigned> ProjectModel::callableFrom(unsigned FileIdx,
                                                 unsigned FuncIdx) const {
  // Imported functions plus same-file functions with a strictly
  // smaller index. Call edges therefore always point to smaller
  // function indices, which rules out unbounded mutual recursion by
  // construction (self-recursion uses its own bounded pattern).
  std::vector<unsigned> Result;
  for (unsigned ImportIdx : Files[FileIdx].Imports)
    for (unsigned Idx : Files[ImportIdx].Funcs)
      Result.push_back(Idx);
  for (unsigned Idx : Files[FileIdx].Funcs)
    if (Idx < FuncIdx)
      Result.push_back(Idx);
  return Result;
}

ProjectModel::SegModel ProjectModel::makeSegment(RNG &Rand, unsigned FileIdx,
                                                 unsigned FuncIdx) {
  SegModel S;
  S.Uid = NextUid++;
  unsigned Roll = static_cast<unsigned>(Rand.nextBelow(100));
  if (Roll < 30)
    S.K = SegModel::Kind::Arith;
  else if (Roll < 50)
    S.K = SegModel::Kind::LoopSum;
  else if (Roll < 62)
    S.K = SegModel::Kind::ArrayWork;
  else if (Roll < 78)
    S.K = SegModel::Kind::Branch;
  else if (Roll < 92)
    S.K = SegModel::Kind::CallMix;
  else
    S.K = SegModel::Kind::GlobalTouch;

  S.C1 = Rand.nextInRange(1, 12);
  S.C2 = Rand.nextInRange(0, 40);
  S.C3 = Rand.nextInRange(1, 7);
  S.Op = static_cast<unsigned>(Rand.nextBelow(4));

  switch (S.K) {
  case SegModel::Kind::LoopSum:
    // Mix small constant trips (unrollable) with larger ones.
    S.A = static_cast<unsigned>(Rand.chancePercent(40)
                                    ? Rand.nextInRange(2, 6)
                                    : Rand.nextInRange(8, 32));
    break;
  case SegModel::Kind::ArrayWork:
    S.A = static_cast<unsigned>(Rand.nextInRange(4, 16));
    break;
  case SegModel::Kind::CallMix: {
    std::vector<unsigned> Callable = callableFrom(FileIdx, FuncIdx);
    // Avoid self-calls from CallMix (recursion has its own pattern)
    // and calls to main.
    std::vector<unsigned> Filtered;
    for (unsigned Idx : Callable)
      if (Idx != FuncIdx && Funcs[Idx].Name != "main")
        Filtered.push_back(Idx);
    if (Filtered.empty()) {
      S.K = SegModel::Kind::Arith;
      break;
    }
    S.CalleeIdx = Filtered[Rand.nextBelow(Filtered.size())];
    break;
  }
  case SegModel::Kind::GlobalTouch:
    S.GlobalIdx = static_cast<unsigned>(
        Rand.nextBelow(Files[FileIdx].GlobalInits.size()));
    break;
  default:
    break;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string ProjectModel::renderCallArgs(const FuncModel &Callee,
                                         const FuncModel &Caller) const {
  std::ostringstream OS;
  for (unsigned P = 0; P != Callee.NumParams; ++P) {
    if (P)
      OS << ", ";
    if (Callee.IsRecursive && P == 0) {
      OS << "s % 11"; // Bounded recursion depth.
    } else if (P == 0) {
      OS << "s % " << (7 + Callee.NumParams);
    } else if (P - 1 < Caller.NumParams) {
      OS << "p" << (P - 1);
    } else {
      OS << static_cast<int>(P) * 3 + 1;
    }
  }
  return OS.str();
}

std::string ProjectModel::renderSegment(const SegModel &S, const FuncModel &F,
                                        unsigned FileIdx) const {
  std::ostringstream OS;
  std::string P0 = F.NumParams > 0 ? "p0" : "s";
  std::string P1 = F.NumParams > 1 ? "p1" : P0;

  switch (S.K) {
  case SegModel::Kind::Arith:
    switch (S.Op) {
    case 0:
      OS << "  s = s + (" << P0 << " * " << S.C1 << " + " << S.C2
         << ") / " << S.C3 << ";\n";
      break;
    case 1:
      // Repeated subexpression: CSE fodder.
      OS << "  s = s + " << P0 << " * " << S.C1 << " + " << P0 << " * "
         << S.C1 << " + " << S.C2 << ";\n";
      break;
    case 2:
      // Constant-foldable chain.
      OS << "  s = s + " << S.C1 << " * " << S.C3 << " + " << S.C2
         << " - " << S.C2 << " + " << P1 << ";\n";
      break;
    default:
      OS << "  s = s * 2 + (" << P1 << " % " << S.C3 << ") - " << S.C2
         << ";\n";
      break;
    }
    break;

  case SegModel::Kind::LoopSum:
    OS << "  for (var i" << S.Uid << " = 0; i" << S.Uid << " < " << S.A
       << "; i" << S.Uid << " = i" << S.Uid << " + 1) {\n";
    // One loop-invariant term (LICM fodder) plus an induction term.
    OS << "    s = s + i" << S.Uid << " * " << S.C1 << " + " << P0
       << " * " << S.C2 << ";\n";
    OS << "  }\n";
    break;

  case SegModel::Kind::ArrayWork:
    OS << "  var a" << S.Uid << "[" << S.A << "];\n";
    OS << "  for (var i" << S.Uid << " = 0; i" << S.Uid << " < " << S.A
       << "; i" << S.Uid << " = i" << S.Uid << " + 1) {\n";
    OS << "    a" << S.Uid << "[i" << S.Uid << "] = i" << S.Uid << " * "
       << S.C1 << " + " << S.C2 << ";\n";
    OS << "  }\n";
    OS << "  for (var j" << S.Uid << " = 0; j" << S.Uid << " < " << S.A
       << "; j" << S.Uid << " = j" << S.Uid << " + 1) {\n";
    OS << "    s = s + a" << S.Uid << "[j" << S.Uid << "];\n";
    OS << "  }\n";
    break;

  case SegModel::Kind::Branch: {
    const char *Cmp = S.Op == 0   ? "<"
                      : S.Op == 1 ? ">"
                      : S.Op == 2 ? "<="
                                  : "!=";
    if (S.C3 % 3 == 0) {
      // Tautology: SCCP/SimplifyCFG should erase the dead arm.
      OS << "  if (s == s) {\n    s = s + " << S.C2
         << ";\n  } else {\n    s = s * " << S.C1 << ";\n  }\n";
    } else {
      OS << "  if (" << P0 << " " << Cmp << " " << S.C1
         << ") {\n    s = s + " << S.C2 << ";\n  } else {\n    s = s - "
         << S.C3 << ";\n  }\n";
    }
    break;
  }

  case SegModel::Kind::CallMix: {
    assert(S.CalleeIdx != ~0u && "call segment without callee");
    const FuncModel &Callee = Funcs[S.CalleeIdx];
    OS << "  s = s + " << Callee.Name << "("
       << renderCallArgs(Callee, F) << ");\n";
    break;
  }

  case SegModel::Kind::GlobalTouch: {
    std::string G =
        "g" + std::to_string(FileIdx) + "_" + std::to_string(S.GlobalIdx);
    OS << "  " << G << " = " << G << " + " << S.C1 << ";\n";
    OS << "  s = s + " << G << " % " << (S.C3 + 1) << ";\n";
    break;
  }
  }
  return OS.str();
}

std::string ProjectModel::renderFunction(const FuncModel &F,
                                         unsigned FileIdx) const {
  std::ostringstream OS;
  OS << "fn " << F.Name << "(";
  for (unsigned P = 0; P != F.NumParams; ++P) {
    if (P)
      OS << ", ";
    OS << "p" << P << ": int";
  }
  OS << ") -> int {\n";

  if (F.IsRecursive) {
    OS << "  if (p0 <= 0) {\n    return " << F.SeedConst << ";\n  }\n";
    OS << "  return p0 + " << F.Name << "(p0 - 1";
    for (unsigned P = 1; P != F.NumParams; ++P)
      OS << ", p" << P;
    OS << ");\n";
    OS << "}\n";
    return OS.str();
  }

  OS << "  var s = " << F.SeedConst << ";\n";
  for (const SegModel &S : F.Segs)
    OS << renderSegment(S, F, FileIdx);
  OS << "  return s;\n";
  OS << "}\n";
  return OS.str();
}

std::string ProjectModel::renderFile(unsigned FileIdx) const {
  const FileModel &File = Files[FileIdx];
  std::ostringstream OS;
  OS << "// Generated file: " << File.Path << "\n";
  for (unsigned ImportIdx : File.Imports)
    OS << "import \"" << Files[ImportIdx].Path << "\";\n";
  for (size_t G = 0; G != File.GlobalInits.size(); ++G)
    OS << "global g" << FileIdx << "_" << G << " = "
       << File.GlobalInits[G] << ";\n";
  OS << "\n";
  for (unsigned FuncIdx : File.Funcs) {
    const FuncModel &F = Funcs[FuncIdx];
    if (F.Name == "main") {
      // main: aggregate calls across the project, then print.
      OS << "fn main() -> int {\n  var s = " << F.SeedConst << ";\n";
      for (const SegModel &S : F.Segs)
        OS << renderSegment(S, F, FileIdx);
      OS << "  print(s);\n  return s % 256;\n}\n";
    } else {
      OS << renderFunction(F, FileIdx);
    }
    OS << "\n";
  }
  return OS.str();
}

std::string ProjectModel::filePath(unsigned FileIdx) const {
  return Files[FileIdx].Path;
}

void ProjectModel::renderAll(VirtualFileSystem &FS) const {
  auto &Self = const_cast<ProjectModel &>(*this);
  Self.LastRendered.resize(Files.size());
  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Text = renderFile(FI);
    FS.writeFile(Files[FI].Path, Text);
    Self.LastRendered[FI] = std::move(Text);
  }
}

std::vector<std::string> ProjectModel::rerenderChanged(VirtualFileSystem &FS) {
  std::vector<std::string> Changed;
  LastRendered.resize(Files.size());
  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Text = renderFile(FI);
    if (Text != LastRendered[FI]) {
      FS.writeFile(Files[FI].Path, Text);
      LastRendered[FI] = std::move(Text);
      Changed.push_back(Files[FI].Path);
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Edits
//===----------------------------------------------------------------------===//

unsigned ProjectModel::pickEditableFunction(RNG &Rand) const {
  // Non-main, non-recursive functions with at least one segment.
  std::vector<unsigned> Candidates;
  for (unsigned I = 0; I != Funcs.size(); ++I)
    if (Funcs[I].Name != "main" && !Funcs[I].IsRecursive &&
        !Funcs[I].Segs.empty())
      Candidates.push_back(I);
  assert(!Candidates.empty() && "project has no editable functions");
  return Candidates[Rand.nextBelow(Candidates.size())];
}

std::vector<std::string> ProjectModel::applyEdit(EditKind Kind, RNG &Rand,
                                                 VirtualFileSystem &FS) {
  switch (Kind) {
  case EditKind::ConstTweak: {
    FuncModel &F = Funcs[pickEditableFunction(Rand)];
    SegModel &S = F.Segs[Rand.nextBelow(F.Segs.size())];
    S.C2 = S.C2 + Rand.nextInRange(1, 5);
    break;
  }
  case EditKind::CondFlip: {
    // Prefer a Branch segment; fall back to a const tweak.
    unsigned FuncIdx = pickEditableFunction(Rand);
    FuncModel &F = Funcs[FuncIdx];
    SegModel *Branch = nullptr;
    for (SegModel &S : F.Segs)
      if (S.K == SegModel::Kind::Branch) {
        Branch = &S;
        break;
      }
    if (Branch) {
      Branch->Op = (Branch->Op + 1) % 4;
      Branch->C1 += 1;
    } else {
      F.Segs[Rand.nextBelow(F.Segs.size())].C1 += 1;
    }
    break;
  }
  case EditKind::StmtInsert: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    unsigned FileIdx = FuncFile[FuncIdx];
    SegModel S = makeSegment(Rand, FileIdx, FuncIdx);
    FuncModel &F = Funcs[FuncIdx];
    size_t Pos = Rand.nextBelow(F.Segs.size() + 1);
    F.Segs.insert(F.Segs.begin() + static_cast<ptrdiff_t>(Pos),
                  std::move(S));
    break;
  }
  case EditKind::StmtDelete: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    FuncModel &F = Funcs[FuncIdx];
    if (F.Segs.size() > 1)
      F.Segs.erase(F.Segs.begin() +
                   static_cast<ptrdiff_t>(Rand.nextBelow(F.Segs.size())));
    else
      F.Segs[0].C2 += 1; // Degenerate: tweak instead.
    break;
  }
  case EditKind::BodyRewrite: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    unsigned FileIdx = FuncFile[FuncIdx];
    FuncModel &F = Funcs[FuncIdx];
    unsigned NumSegs = static_cast<unsigned>(Rand.nextInRange(2, 6));
    F.Segs.clear();
    for (unsigned S = 0; S != NumSegs; ++S)
      F.Segs.push_back(makeSegment(Rand, FileIdx, FuncIdx));
    break;
  }
  case EditKind::AddFunction: {
    unsigned FileIdx =
        static_cast<unsigned>(Rand.nextBelow(Files.size() - 1));
    FuncModel F;
    F.Name = "f" + std::to_string(FileIdx) + "_n" +
             std::to_string(Funcs.size());
    F.NumParams = static_cast<unsigned>(Rand.nextInRange(1, 3));
    F.SeedConst = Rand.nextInRange(0, 9);
    unsigned FuncIdx = static_cast<unsigned>(Funcs.size());
    Funcs.push_back(std::move(F));
    FuncFile.push_back(FileIdx);
    Files[FileIdx].Funcs.push_back(FuncIdx);
    FuncModel &Fn = Funcs[FuncIdx];
    unsigned NumSegs = static_cast<unsigned>(Rand.nextInRange(2, 4));
    for (unsigned S = 0; S != NumSegs; ++S)
      Fn.Segs.push_back(makeSegment(Rand, FileIdx, FuncIdx));
    break;
  }
  case EditKind::SignatureChange: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    FuncModel &F = Funcs[FuncIdx];
    F.NumParams = F.NumParams == 3 ? 1 : F.NumParams + 1;
    // Call sites re-render automatically from the model.
    break;
  }
  }
  return rerenderChanged(FS);
}

std::vector<std::string> ProjectModel::applyCommit(RNG &Rand,
                                                   VirtualFileSystem &FS) {
  // Realistic commit mix: mostly body-local edits, occasionally
  // structural/interface changes.
  unsigned NumEdits = static_cast<unsigned>(Rand.nextInRange(1, 3));
  std::vector<std::string> AllChanged;
  for (unsigned E = 0; E != NumEdits; ++E) {
    unsigned Roll = static_cast<unsigned>(Rand.nextBelow(100));
    EditKind Kind;
    if (Roll < 35)
      Kind = EditKind::ConstTweak;
    else if (Roll < 55)
      Kind = EditKind::StmtInsert;
    else if (Roll < 70)
      Kind = EditKind::CondFlip;
    else if (Roll < 80)
      Kind = EditKind::StmtDelete;
    else if (Roll < 90)
      Kind = EditKind::BodyRewrite;
    else if (Roll < 96)
      Kind = EditKind::AddFunction;
    else
      Kind = EditKind::SignatureChange;
    for (std::string &Path : applyEdit(Kind, Rand, FS))
      if (std::find(AllChanged.begin(), AllChanged.end(), Path) ==
          AllChanged.end())
        AllChanged.push_back(Path);
  }
  return AllChanged;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

unsigned ProjectModel::numFiles() const {
  return static_cast<unsigned>(Files.size());
}

unsigned ProjectModel::numFunctions() const {
  return static_cast<unsigned>(Funcs.size());
}

uint64_t ProjectModel::totalSourceBytes() const {
  uint64_t Sum = 0;
  for (unsigned FI = 0; FI != Files.size(); ++FI)
    Sum += renderFile(FI).size();
  return Sum;
}

unsigned ProjectModel::totalSourceLines() const {
  unsigned Lines = 0;
  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Text = renderFile(FI);
    Lines += static_cast<unsigned>(
        std::count(Text.begin(), Text.end(), '\n'));
  }
  return Lines;
}
