//===- workload/Workload.cpp - Synthetic project generator ---------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace sc;

std::vector<ProjectProfile> sc::standardProfiles() {
  return {
      // Name            Files MinF MaxF Imp MinS MaxS
      {"small_cli", 12, 3, 7, 2, 2, 5},
      {"json_lib", 30, 5, 10, 3, 2, 6},
      {"http_server", 60, 5, 11, 3, 2, 6},
      {"render_engine", 100, 6, 12, 4, 3, 7},
      {"monorepo", 180, 6, 13, 5, 3, 7},
  };
}

std::optional<ProjectProfile> sc::findProfileByName(const std::string &Name) {
  for (const ProjectProfile &P : standardProfiles())
    if (P.Name == Name)
      return P;
  return std::nullopt;
}

std::string sc::knownProfileNames() {
  std::string Names;
  for (const ProjectProfile &P : standardProfiles())
    Names += (Names.empty() ? "" : ", ") + P.Name;
  return Names;
}

ProjectProfile sc::profileByName(const std::string &Name) {
  if (std::optional<ProjectProfile> P = findProfileByName(Name))
    return *P;
  // A typo'd profile name used to trip an assert (NDEBUG builds then
  // silently used the wrong profile). It is a usage error; report it
  // like one.
  std::fprintf(stderr, "error: unknown profile '%s' (known: %s)\n",
               Name.c_str(), knownProfileNames().c_str());
  std::exit(1);
}

const char *sc::editKindName(EditKind K) {
  switch (K) {
  case EditKind::ConstTweak:
    return "const-tweak";
  case EditKind::CondFlip:
    return "cond-flip";
  case EditKind::StmtInsert:
    return "stmt-insert";
  case EditKind::StmtDelete:
    return "stmt-delete";
  case EditKind::BodyRewrite:
    return "body-rewrite";
  case EditKind::AddFunction:
    return "add-function";
  case EditKind::SignatureChange:
    return "signature-change";
  case EditKind::ImportChange:
    return "import-change";
  case EditKind::AddFile:
    return "add-file";
  case EditKind::DeleteFile:
    return "delete-file";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

ProjectModel ProjectModel::generate(const ProjectProfile &Profile,
                                    uint64_t Seed) {
  ProjectModel M;
  RNG Rand(Seed);

  unsigned NumFiles = std::max(2u, Profile.NumFiles);
  for (unsigned FI = 0; FI != NumFiles; ++FI) {
    FileModel File;
    bool IsMain = FI + 1 == NumFiles;
    File.Path = IsMain ? "main.mc" : "src" + std::to_string(FI) + ".mc";

    // Imports: sample from strictly earlier files (acyclic by layout).
    if (FI > 0) {
      unsigned Fanout = static_cast<unsigned>(
          Rand.nextInRange(IsMain ? 2 : 0,
                           std::min<int64_t>(Profile.MaxImportsPerFile, FI)));
      std::vector<unsigned> Candidates;
      for (unsigned J = 0; J != FI; ++J)
        Candidates.push_back(J);
      for (unsigned K = 0; K != Fanout && !Candidates.empty(); ++K) {
        size_t Pick = Rand.nextBelow(Candidates.size());
        File.Imports.push_back(Candidates[Pick]);
        Candidates.erase(Candidates.begin() +
                         static_cast<ptrdiff_t>(Pick));
      }
      std::sort(File.Imports.begin(), File.Imports.end());
    }

    // Module-private globals; roughly a third stay unused (globalopt
    // fodder).
    unsigned NumGlobals = static_cast<unsigned>(Rand.nextInRange(1, 3));
    for (unsigned G = 0; G != NumGlobals; ++G)
      File.GlobalInits.push_back(Rand.nextInRange(0, 99));

    M.Files.push_back(std::move(File));

    unsigned NumFuncs =
        IsMain ? 1
               : static_cast<unsigned>(
                     Rand.nextInRange(Profile.MinFuncsPerFile,
                                      Profile.MaxFuncsPerFile));
    for (unsigned K = 0; K != NumFuncs; ++K) {
      FuncModel F;
      F.Name = IsMain ? "main" : "f" + std::to_string(FI) + "_" +
                                     std::to_string(K);
      F.NumParams =
          IsMain ? 0 : static_cast<unsigned>(Rand.nextInRange(1, 3));
      F.SeedConst = Rand.nextInRange(0, 9);
      F.IsRecursive = !IsMain && Rand.chancePercent(7);
      unsigned FuncIdx = static_cast<unsigned>(M.Funcs.size());
      M.Funcs.push_back(std::move(F));
      M.FuncFile.push_back(FI);
      M.Files[FI].Funcs.push_back(FuncIdx);

      FuncModel &Fn = M.Funcs[FuncIdx];
      if (!Fn.IsRecursive) {
        unsigned NumSegs = static_cast<unsigned>(
            Rand.nextInRange(Profile.MinSegs,
                             IsMain ? Profile.MaxSegs + 2
                                    : Profile.MaxSegs));
        for (unsigned S = 0; S != NumSegs; ++S)
          Fn.Segs.push_back(M.makeSegment(Rand, FI, FuncIdx));
      }
    }
  }
  return M;
}

std::vector<unsigned> ProjectModel::callableFrom(unsigned FileIdx,
                                                 unsigned FuncIdx) const {
  // Imported functions plus same-file functions with a strictly
  // smaller index. Call edges therefore always point to smaller
  // function indices, which rules out unbounded mutual recursion by
  // construction (self-recursion uses its own bounded pattern).
  std::vector<unsigned> Result;
  for (unsigned ImportIdx : Files[FileIdx].Imports)
    for (unsigned Idx : Files[ImportIdx].Funcs)
      Result.push_back(Idx);
  for (unsigned Idx : Files[FileIdx].Funcs)
    if (Idx < FuncIdx)
      Result.push_back(Idx);
  return Result;
}

ProjectModel::SegModel ProjectModel::makeSegment(RNG &Rand, unsigned FileIdx,
                                                 unsigned FuncIdx) {
  SegModel S;
  S.Uid = NextUid++;
  unsigned Roll = static_cast<unsigned>(Rand.nextBelow(100));
  if (Roll < 30)
    S.K = SegModel::Kind::Arith;
  else if (Roll < 50)
    S.K = SegModel::Kind::LoopSum;
  else if (Roll < 62)
    S.K = SegModel::Kind::ArrayWork;
  else if (Roll < 78)
    S.K = SegModel::Kind::Branch;
  else if (Roll < 92)
    S.K = SegModel::Kind::CallMix;
  else
    S.K = SegModel::Kind::GlobalTouch;

  S.C1 = Rand.nextInRange(1, 12);
  S.C2 = Rand.nextInRange(0, 40);
  S.C3 = Rand.nextInRange(1, 7);
  S.Op = static_cast<unsigned>(Rand.nextBelow(4));

  switch (S.K) {
  case SegModel::Kind::LoopSum:
    // Mix small constant trips (unrollable) with larger ones.
    S.A = static_cast<unsigned>(Rand.chancePercent(40)
                                    ? Rand.nextInRange(2, 6)
                                    : Rand.nextInRange(8, 32));
    break;
  case SegModel::Kind::ArrayWork:
    S.A = static_cast<unsigned>(Rand.nextInRange(4, 16));
    break;
  case SegModel::Kind::CallMix: {
    std::vector<unsigned> Callable = callableFrom(FileIdx, FuncIdx);
    // Avoid self-calls from CallMix (recursion has its own pattern)
    // and calls to main.
    std::vector<unsigned> Filtered;
    for (unsigned Idx : Callable)
      if (Idx != FuncIdx && Funcs[Idx].Name != "main" &&
          !Files[FuncFile[Idx]].Deleted)
        Filtered.push_back(Idx);
    if (Filtered.empty()) {
      S.K = SegModel::Kind::Arith;
      break;
    }
    S.CalleeIdx = Filtered[Rand.nextBelow(Filtered.size())];
    break;
  }
  case SegModel::Kind::GlobalTouch:
    S.GlobalIdx = static_cast<unsigned>(
        Rand.nextBelow(Files[FileIdx].GlobalInits.size()));
    break;
  default:
    break;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string ProjectModel::renderCallArgs(const FuncModel &Callee,
                                         const FuncModel &Caller) const {
  std::ostringstream OS;
  for (unsigned P = 0; P != Callee.NumParams; ++P) {
    if (P)
      OS << ", ";
    if (Callee.IsRecursive && P == 0) {
      OS << "s % 11"; // Bounded recursion depth.
    } else if (P == 0) {
      OS << "s % " << (7 + Callee.NumParams);
    } else if (P - 1 < Caller.NumParams) {
      OS << "p" << (P - 1);
    } else {
      OS << static_cast<int>(P) * 3 + 1;
    }
  }
  return OS.str();
}

std::string ProjectModel::renderSegment(const SegModel &S, const FuncModel &F,
                                        unsigned FileIdx) const {
  std::ostringstream OS;
  std::string P0 = F.NumParams > 0 ? "p0" : "s";
  std::string P1 = F.NumParams > 1 ? "p1" : P0;

  switch (S.K) {
  case SegModel::Kind::Arith:
    switch (S.Op) {
    case 0:
      OS << "  s = s + (" << P0 << " * " << S.C1 << " + " << S.C2
         << ") / " << S.C3 << ";\n";
      break;
    case 1:
      // Repeated subexpression: CSE fodder.
      OS << "  s = s + " << P0 << " * " << S.C1 << " + " << P0 << " * "
         << S.C1 << " + " << S.C2 << ";\n";
      break;
    case 2:
      // Constant-foldable chain.
      OS << "  s = s + " << S.C1 << " * " << S.C3 << " + " << S.C2
         << " - " << S.C2 << " + " << P1 << ";\n";
      break;
    default:
      OS << "  s = s * 2 + (" << P1 << " % " << S.C3 << ") - " << S.C2
         << ";\n";
      break;
    }
    break;

  case SegModel::Kind::LoopSum:
    OS << "  for (var i" << S.Uid << " = 0; i" << S.Uid << " < " << S.A
       << "; i" << S.Uid << " = i" << S.Uid << " + 1) {\n";
    // One loop-invariant term (LICM fodder) plus an induction term.
    OS << "    s = s + i" << S.Uid << " * " << S.C1 << " + " << P0
       << " * " << S.C2 << ";\n";
    OS << "  }\n";
    break;

  case SegModel::Kind::ArrayWork:
    OS << "  var a" << S.Uid << "[" << S.A << "];\n";
    OS << "  for (var i" << S.Uid << " = 0; i" << S.Uid << " < " << S.A
       << "; i" << S.Uid << " = i" << S.Uid << " + 1) {\n";
    OS << "    a" << S.Uid << "[i" << S.Uid << "] = i" << S.Uid << " * "
       << S.C1 << " + " << S.C2 << ";\n";
    OS << "  }\n";
    OS << "  for (var j" << S.Uid << " = 0; j" << S.Uid << " < " << S.A
       << "; j" << S.Uid << " = j" << S.Uid << " + 1) {\n";
    OS << "    s = s + a" << S.Uid << "[j" << S.Uid << "];\n";
    OS << "  }\n";
    break;

  case SegModel::Kind::Branch: {
    const char *Cmp = S.Op == 0   ? "<"
                      : S.Op == 1 ? ">"
                      : S.Op == 2 ? "<="
                                  : "!=";
    if (S.C3 % 3 == 0) {
      // Tautology: SCCP/SimplifyCFG should erase the dead arm.
      OS << "  if (s == s) {\n    s = s + " << S.C2
         << ";\n  } else {\n    s = s * " << S.C1 << ";\n  }\n";
    } else {
      OS << "  if (" << P0 << " " << Cmp << " " << S.C1
         << ") {\n    s = s + " << S.C2 << ";\n  } else {\n    s = s - "
         << S.C3 << ";\n  }\n";
    }
    break;
  }

  case SegModel::Kind::CallMix: {
    assert(S.CalleeIdx != ~0u && "call segment without callee");
    const FuncModel &Callee = Funcs[S.CalleeIdx];
    OS << "  s = s + " << Callee.Name << "("
       << renderCallArgs(Callee, F) << ");\n";
    break;
  }

  case SegModel::Kind::GlobalTouch: {
    std::string G =
        "g" + std::to_string(FileIdx) + "_" + std::to_string(S.GlobalIdx);
    OS << "  " << G << " = " << G << " + " << S.C1 << ";\n";
    OS << "  s = s + " << G << " % " << (S.C3 + 1) << ";\n";
    break;
  }
  }
  return OS.str();
}

std::string ProjectModel::renderFunction(const FuncModel &F,
                                         unsigned FileIdx) const {
  std::ostringstream OS;
  OS << "fn " << F.Name << "(";
  for (unsigned P = 0; P != F.NumParams; ++P) {
    if (P)
      OS << ", ";
    OS << "p" << P << ": int";
  }
  OS << ") -> int {\n";

  if (F.IsRecursive) {
    OS << "  if (p0 <= 0) {\n    return " << F.SeedConst << ";\n  }\n";
    OS << "  return p0 + " << F.Name << "(p0 - 1";
    for (unsigned P = 1; P != F.NumParams; ++P)
      OS << ", p" << P;
    OS << ");\n";
    OS << "}\n";
    return OS.str();
  }

  OS << "  var s = " << F.SeedConst << ";\n";
  for (const SegModel &S : F.Segs)
    OS << renderSegment(S, F, FileIdx);
  OS << "  return s;\n";
  OS << "}\n";
  return OS.str();
}

bool ProjectModel::importUsed(unsigned FileIdx, unsigned ImportIdx) const {
  for (unsigned FuncIdx : Files[FileIdx].Funcs)
    for (const SegModel &S : Funcs[FuncIdx].Segs)
      if (S.CalleeIdx != ~0u && FuncFile[S.CalleeIdx] == ImportIdx)
        return true;
  return false;
}

std::vector<unsigned> ProjectModel::renderedImports(unsigned FileIdx) const {
  // Tight imports: an `import` line is emitted only when some call in
  // the file actually lands in that import (or the edge is forced —
  // the redundant-dep plant). The rendered text is therefore exactly
  // the dependency set the build system *should* track, which is what
  // lets clean scenarios demand zero verifier findings.
  const FileModel &File = Files[FileIdx];
  std::vector<unsigned> Result;
  for (unsigned ImportIdx : File.Imports) {
    bool Forced = std::find(File.ForcedImports.begin(),
                            File.ForcedImports.end(),
                            ImportIdx) != File.ForcedImports.end();
    if (Forced || importUsed(FileIdx, ImportIdx))
      Result.push_back(ImportIdx);
  }
  return Result;
}

std::string ProjectModel::renderFile(unsigned FileIdx) const {
  const FileModel &File = Files[FileIdx];
  if (File.Deleted)
    return "";
  std::ostringstream OS;
  OS << "// Generated file: " << File.Path << "\n";
  for (unsigned ImportIdx : renderedImports(FileIdx))
    OS << "import \"" << Files[ImportIdx].Path << "\";\n";
  for (size_t G = 0; G != File.GlobalInits.size(); ++G)
    OS << "global g" << FileIdx << "_" << G << " = "
       << File.GlobalInits[G] << ";\n";
  OS << "\n";
  for (unsigned FuncIdx : File.Funcs) {
    const FuncModel &F = Funcs[FuncIdx];
    if (F.Name == "main") {
      // main: aggregate calls across the project, then print.
      OS << "fn main() -> int {\n  var s = " << F.SeedConst << ";\n";
      for (const SegModel &S : F.Segs)
        OS << renderSegment(S, F, FileIdx);
      OS << "  print(s);\n  return s % 256;\n}\n";
    } else {
      OS << renderFunction(F, FileIdx);
    }
    OS << "\n";
  }
  return OS.str();
}

std::string ProjectModel::filePath(unsigned FileIdx) const {
  return Files[FileIdx].Path;
}

void ProjectModel::renderAll(VirtualFileSystem &FS) const {
  auto &Self = const_cast<ProjectModel &>(*this);
  Self.LastRendered.resize(Files.size());
  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Text = renderFile(FI);
    if (!Files[FI].Deleted)
      FS.writeFile(Files[FI].Path, Text);
    Self.LastRendered[FI] = std::move(Text);
  }
}

std::vector<std::string> ProjectModel::rerenderChanged(VirtualFileSystem &FS) {
  std::vector<std::string> Changed;
  LastRendered.resize(Files.size());
  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Text = renderFile(FI);
    if (Text == LastRendered[FI])
      continue;
    if (Files[FI].Deleted)
      FS.removeFile(Files[FI].Path); // Renders empty: file is gone.
    else
      FS.writeFile(Files[FI].Path, Text);
    LastRendered[FI] = std::move(Text);
    Changed.push_back(Files[FI].Path);
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Edits
//===----------------------------------------------------------------------===//

unsigned ProjectModel::pickEditableFunction(RNG &Rand) const {
  // Non-main, non-recursive functions with at least one segment,
  // living in a file that still exists.
  std::vector<unsigned> Candidates;
  for (unsigned I = 0; I != Funcs.size(); ++I)
    if (Funcs[I].Name != "main" && !Funcs[I].IsRecursive &&
        !Funcs[I].Segs.empty() && !Files[FuncFile[I]].Deleted)
      Candidates.push_back(I);
  assert(!Candidates.empty() && "project has no editable functions");
  return Candidates[Rand.nextBelow(Candidates.size())];
}

std::vector<unsigned> ProjectModel::liveFiles(bool IncludeMain) const {
  std::vector<unsigned> Result;
  for (unsigned FI = 0; FI != Files.size(); ++FI)
    if (!Files[FI].Deleted &&
        (IncludeMain || Files[FI].Path != "main.mc"))
      Result.push_back(FI);
  return Result;
}

std::vector<std::string> ProjectModel::applyEdit(EditKind Kind, RNG &Rand,
                                                 VirtualFileSystem &FS) {
  switch (Kind) {
  case EditKind::ConstTweak: {
    FuncModel &F = Funcs[pickEditableFunction(Rand)];
    SegModel &S = F.Segs[Rand.nextBelow(F.Segs.size())];
    S.C2 = S.C2 + Rand.nextInRange(1, 5);
    break;
  }
  case EditKind::CondFlip: {
    // Prefer a Branch segment; fall back to a const tweak.
    unsigned FuncIdx = pickEditableFunction(Rand);
    FuncModel &F = Funcs[FuncIdx];
    SegModel *Branch = nullptr;
    for (SegModel &S : F.Segs)
      if (S.K == SegModel::Kind::Branch) {
        Branch = &S;
        break;
      }
    if (Branch) {
      Branch->Op = (Branch->Op + 1) % 4;
      Branch->C1 += 1;
    } else {
      F.Segs[Rand.nextBelow(F.Segs.size())].C1 += 1;
    }
    break;
  }
  case EditKind::StmtInsert: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    unsigned FileIdx = FuncFile[FuncIdx];
    SegModel S = makeSegment(Rand, FileIdx, FuncIdx);
    FuncModel &F = Funcs[FuncIdx];
    size_t Pos = Rand.nextBelow(F.Segs.size() + 1);
    F.Segs.insert(F.Segs.begin() + static_cast<ptrdiff_t>(Pos),
                  std::move(S));
    break;
  }
  case EditKind::StmtDelete: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    FuncModel &F = Funcs[FuncIdx];
    if (F.Segs.size() > 1)
      F.Segs.erase(F.Segs.begin() +
                   static_cast<ptrdiff_t>(Rand.nextBelow(F.Segs.size())));
    else
      F.Segs[0].C2 += 1; // Degenerate: tweak instead.
    break;
  }
  case EditKind::BodyRewrite: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    unsigned FileIdx = FuncFile[FuncIdx];
    FuncModel &F = Funcs[FuncIdx];
    unsigned NumSegs = static_cast<unsigned>(Rand.nextInRange(2, 6));
    F.Segs.clear();
    for (unsigned S = 0; S != NumSegs; ++S)
      F.Segs.push_back(makeSegment(Rand, FileIdx, FuncIdx));
    break;
  }
  case EditKind::AddFunction: {
    std::vector<unsigned> Live = liveFiles(/*IncludeMain=*/false);
    assert(!Live.empty() && "no live file to add a function to");
    unsigned FileIdx = Live[Rand.nextBelow(Live.size())];
    FuncModel F;
    F.Name = "f" + std::to_string(FileIdx) + "_n" +
             std::to_string(Funcs.size());
    F.NumParams = static_cast<unsigned>(Rand.nextInRange(1, 3));
    F.SeedConst = Rand.nextInRange(0, 9);
    unsigned FuncIdx = static_cast<unsigned>(Funcs.size());
    Funcs.push_back(std::move(F));
    FuncFile.push_back(FileIdx);
    Files[FileIdx].Funcs.push_back(FuncIdx);
    FuncModel &Fn = Funcs[FuncIdx];
    unsigned NumSegs = static_cast<unsigned>(Rand.nextInRange(2, 4));
    for (unsigned S = 0; S != NumSegs; ++S)
      Fn.Segs.push_back(makeSegment(Rand, FileIdx, FuncIdx));
    break;
  }
  case EditKind::SignatureChange: {
    unsigned FuncIdx = pickEditableFunction(Rand);
    FuncModel &F = Funcs[FuncIdx];
    F.NumParams = F.NumParams == 3 ? 1 : F.NumParams + 1;
    // Call sites re-render automatically from the model.
    break;
  }
  case EditKind::ImportChange:
    // Real import churn skews toward additions (new code pulls in new
    // headers more often than cleanups drop them).
    return Rand.chancePercent(60) ? addImportEdge(Rand, FS)
                                  : removeImportEdge(Rand, FS);
  case EditKind::AddFile:
    return addNewFile(Rand, FS);
  case EditKind::DeleteFile:
    return deleteUnreferencedFile(Rand, FS);
  }
  return rerenderChanged(FS);
}

std::vector<std::string> ProjectModel::addImportEdge(RNG &Rand,
                                                     VirtualFileSystem &FS) {
  // Candidate edges keep the by-construction acyclicity: a file may
  // only import smaller indices. The new edge is immediately *used*
  // (a call segment into the imported file), so it renders.
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  for (unsigned FI : liveFiles(/*IncludeMain=*/true)) {
    if (Files[FI].Funcs.empty())
      continue;
    for (unsigned DI = 0; DI != FI; ++DI) {
      if (Files[DI].Deleted || Files[DI].Funcs.empty() ||
          Files[DI].Path == "main.mc")
        continue;
      if (std::find(Files[FI].Imports.begin(), Files[FI].Imports.end(),
                    DI) == Files[FI].Imports.end())
        Candidates.emplace_back(FI, DI);
    }
  }
  if (Candidates.empty()) {
    // Saturated import graph; degrade to a body edit so the scenario
    // still makes progress.
    return applyEdit(EditKind::ConstTweak, Rand, FS);
  }
  auto [FI, DI] = Candidates[Rand.nextBelow(Candidates.size())];
  Files[FI].Imports.push_back(DI);
  std::sort(Files[FI].Imports.begin(), Files[FI].Imports.end());

  // One call into the new import, appended to a random function.
  unsigned FuncIdx =
      Files[FI].Funcs[Rand.nextBelow(Files[FI].Funcs.size())];
  const std::vector<unsigned> &DeptFuncs = Files[DI].Funcs;
  SegModel S;
  S.Uid = NextUid++;
  S.K = SegModel::Kind::CallMix;
  S.C1 = Rand.nextInRange(1, 12);
  S.C2 = Rand.nextInRange(0, 40);
  S.C3 = Rand.nextInRange(1, 7);
  S.CalleeIdx = DeptFuncs[Rand.nextBelow(DeptFuncs.size())];
  Funcs[FuncIdx].Segs.push_back(S);
  return rerenderChanged(FS);
}

std::vector<std::string> ProjectModel::removeImportEdge(RNG &Rand,
                                                        VirtualFileSystem &FS) {
  // Only rendered edges count — removing a structurally-present but
  // unrendered import would change nothing the build system sees.
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned FI : liveFiles(/*IncludeMain=*/true))
    for (unsigned DI : renderedImports(FI))
      Edges.emplace_back(FI, DI);
  if (Edges.empty())
    return applyEdit(EditKind::ConstTweak, Rand, FS);
  auto [FI, DI] = Edges[Rand.nextBelow(Edges.size())];

  // Rewrite every call into the dropped import as plain arithmetic,
  // then drop the structural edge (forced or not) so later segment
  // generation cannot resurrect it.
  for (unsigned FuncIdx : Files[FI].Funcs)
    for (SegModel &S : Funcs[FuncIdx].Segs)
      if (S.CalleeIdx != ~0u && FuncFile[S.CalleeIdx] == DI) {
        S.K = SegModel::Kind::Arith;
        S.CalleeIdx = ~0u;
      }
  auto Erase = [DI = DI](std::vector<unsigned> &V) {
    V.erase(std::remove(V.begin(), V.end(), DI), V.end());
  };
  Erase(Files[FI].Imports);
  Erase(Files[FI].ForcedImports);
  return rerenderChanged(FS);
}

std::vector<std::string> ProjectModel::addNewFile(RNG &Rand,
                                                  VirtualFileSystem &FS) {
  // The new file lands at the end of the index space (so its imports
  // of existing files keep the smaller-index invariant) and nothing
  // imports it yet — exactly how a freshly `git add`ed file behaves.
  unsigned FI = static_cast<unsigned>(Files.size());
  FileModel File;
  File.Path = "src" + std::to_string(FI) + ".mc";

  std::vector<unsigned> Candidates = liveFiles(/*IncludeMain=*/false);
  unsigned Fanout =
      Candidates.empty()
          ? 0
          : static_cast<unsigned>(Rand.nextInRange(
                1, std::min<int64_t>(
                       3, static_cast<int64_t>(Candidates.size()))));
  for (unsigned K = 0; K != Fanout && !Candidates.empty(); ++K) {
    size_t Pick = Rand.nextBelow(Candidates.size());
    File.Imports.push_back(Candidates[Pick]);
    Candidates.erase(Candidates.begin() + static_cast<ptrdiff_t>(Pick));
  }
  std::sort(File.Imports.begin(), File.Imports.end());
  unsigned NumGlobals = static_cast<unsigned>(Rand.nextInRange(1, 2));
  for (unsigned G = 0; G != NumGlobals; ++G)
    File.GlobalInits.push_back(Rand.nextInRange(0, 99));
  Files.push_back(std::move(File));

  unsigned NumFuncs = static_cast<unsigned>(Rand.nextInRange(2, 4));
  for (unsigned K = 0; K != NumFuncs; ++K) {
    FuncModel F;
    F.Name = "f" + std::to_string(FI) + "_" + std::to_string(K);
    F.NumParams = static_cast<unsigned>(Rand.nextInRange(1, 3));
    F.SeedConst = Rand.nextInRange(0, 9);
    unsigned FuncIdx = static_cast<unsigned>(Funcs.size());
    Funcs.push_back(std::move(F));
    FuncFile.push_back(FI);
    Files[FI].Funcs.push_back(FuncIdx);
    FuncModel &Fn = Funcs[FuncIdx];
    unsigned NumSegs = static_cast<unsigned>(Rand.nextInRange(2, 5));
    for (unsigned S = 0; S != NumSegs; ++S)
      Fn.Segs.push_back(makeSegment(Rand, FI, FuncIdx));
  }
  return rerenderChanged(FS);
}

std::vector<std::string>
ProjectModel::deleteUnreferencedFile(RNG &Rand, VirtualFileSystem &FS) {
  // Only files no other live file structurally imports are deletable —
  // scenario deletes keep the project building (deleting an *imported*
  // file is the build system's missing-import error path, exercised by
  // the dedicated tests, not by clean scenario replay).
  std::vector<unsigned> Candidates;
  for (unsigned FI : liveFiles(/*IncludeMain=*/false)) {
    bool Referenced = false;
    for (unsigned Other : liveFiles(/*IncludeMain=*/true))
      if (Other != FI &&
          std::find(Files[Other].Imports.begin(),
                    Files[Other].Imports.end(),
                    FI) != Files[Other].Imports.end()) {
        Referenced = true;
        break;
      }
    if (!Referenced)
      Candidates.push_back(FI);
  }
  if (Candidates.empty())
    return applyEdit(EditKind::ConstTweak, Rand, FS);
  unsigned FI = Candidates[Rand.nextBelow(Candidates.size())];
  Files[FI].Deleted = true;
  return rerenderChanged(FS);
}

std::vector<std::string> ProjectModel::hotHeaderChurn(RNG &Rand,
                                                      VirtualFileSystem &FS) {
  // The "hot header": the live file with the most rendered importers.
  unsigned Hot = ~0u;
  size_t BestCount = 0;
  for (unsigned FI : liveFiles(/*IncludeMain=*/false)) {
    size_t Count = 0;
    for (unsigned Other : liveFiles(/*IncludeMain=*/true)) {
      if (Other == FI)
        continue;
      std::vector<unsigned> Rendered = renderedImports(Other);
      Count += std::count(Rendered.begin(), Rendered.end(), FI);
    }
    if (Hot == ~0u || Count > BestCount) {
      Hot = FI;
      BestCount = Count;
    }
  }
  if (Hot == ~0u)
    return applyEdit(EditKind::ConstTweak, Rand, FS);

  // Interface change on the hot file: one new function. Importers'
  // text does not change, but their ImportsEffectiveHash does — the
  // whole import cone recompiles from this one-file edit.
  FuncModel F;
  F.Name = "f" + std::to_string(Hot) + "_n" + std::to_string(Funcs.size());
  F.NumParams = static_cast<unsigned>(Rand.nextInRange(1, 3));
  F.SeedConst = Rand.nextInRange(0, 9);
  unsigned FuncIdx = static_cast<unsigned>(Funcs.size());
  Funcs.push_back(std::move(F));
  FuncFile.push_back(Hot);
  Files[Hot].Funcs.push_back(FuncIdx);
  FuncModel &Fn = Funcs[FuncIdx];
  unsigned NumSegs = static_cast<unsigned>(Rand.nextInRange(2, 4));
  for (unsigned S = 0; S != NumSegs; ++S)
    Fn.Segs.push_back(makeSegment(Rand, Hot, FuncIdx));
  return rerenderChanged(FS);
}

std::vector<std::string>
ProjectModel::branchSwitch(unsigned Percent, RNG &Rand,
                           VirtualFileSystem &FS) {
  // A branch switch dirties a broad slice of the tree at once; model
  // it as independent per-file body tweaks so the dirty set is wide
  // but each diff stays small.
  bool Touched = false;
  for (unsigned FI : liveFiles(/*IncludeMain=*/true)) {
    if (!Rand.chancePercent(Percent))
      continue;
    for (unsigned FuncIdx : Files[FI].Funcs) {
      FuncModel &F = Funcs[FuncIdx];
      if (F.IsRecursive || F.Segs.empty())
        continue;
      F.Segs[Rand.nextBelow(F.Segs.size())].C2 +=
          Rand.nextInRange(1, 5);
      Touched = true;
      break;
    }
  }
  if (!Touched)
    return applyEdit(EditKind::ConstTweak, Rand, FS);
  return rerenderChanged(FS);
}

std::vector<std::string>
ProjectModel::plantRedundantImport(RNG &Rand, VirtualFileSystem &FS) {
  // A forced import nobody calls into: rendered, tracked by the
  // ImportGraph, never read — the definition of a redundant edge.
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  for (unsigned FI : liveFiles(/*IncludeMain=*/true))
    for (unsigned DI = 0; DI != FI; ++DI) {
      if (Files[DI].Deleted || Files[DI].Path == "main.mc")
        continue;
      bool Structural =
          std::find(Files[FI].Imports.begin(), Files[FI].Imports.end(),
                    DI) != Files[FI].Imports.end();
      if (!Structural || !importUsed(FI, DI))
        Candidates.emplace_back(FI, DI);
    }
  if (Candidates.empty())
    return {};
  auto [FI, DI] = Candidates[Rand.nextBelow(Candidates.size())];
  if (std::find(Files[FI].Imports.begin(), Files[FI].Imports.end(), DI) ==
      Files[FI].Imports.end()) {
    Files[FI].Imports.push_back(DI);
    std::sort(Files[FI].Imports.begin(), Files[FI].Imports.end());
  }
  Files[FI].ForcedImports.push_back(DI);
  return rerenderChanged(FS);
}

std::vector<std::pair<std::string, std::string>>
ProjectModel::renderedImportEdges() const {
  std::vector<std::pair<std::string, std::string>> Edges;
  for (unsigned FI : liveFiles(/*IncludeMain=*/true))
    for (unsigned DI : renderedImports(FI))
      Edges.emplace_back(Files[FI].Path, Files[DI].Path);
  std::sort(Edges.begin(), Edges.end());
  return Edges;
}

std::vector<std::string> ProjectModel::applyCommit(RNG &Rand,
                                                   VirtualFileSystem &FS) {
  // Realistic commit mix: mostly body-local edits, occasionally
  // structural/interface changes.
  unsigned NumEdits = static_cast<unsigned>(Rand.nextInRange(1, 3));
  std::vector<std::string> AllChanged;
  for (unsigned E = 0; E != NumEdits; ++E) {
    unsigned Roll = static_cast<unsigned>(Rand.nextBelow(100));
    EditKind Kind;
    if (Roll < 35)
      Kind = EditKind::ConstTweak;
    else if (Roll < 55)
      Kind = EditKind::StmtInsert;
    else if (Roll < 70)
      Kind = EditKind::CondFlip;
    else if (Roll < 80)
      Kind = EditKind::StmtDelete;
    else if (Roll < 90)
      Kind = EditKind::BodyRewrite;
    else if (Roll < 96)
      Kind = EditKind::AddFunction;
    else
      Kind = EditKind::SignatureChange;
    for (std::string &Path : applyEdit(Kind, Rand, FS))
      if (std::find(AllChanged.begin(), AllChanged.end(), Path) ==
          AllChanged.end())
        AllChanged.push_back(Path);
  }
  return AllChanged;
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

unsigned ProjectModel::numFiles() const {
  return static_cast<unsigned>(Files.size());
}

unsigned ProjectModel::numFunctions() const {
  return static_cast<unsigned>(Funcs.size());
}

uint64_t ProjectModel::totalSourceBytes() const {
  uint64_t Sum = 0;
  for (unsigned FI = 0; FI != Files.size(); ++FI)
    Sum += renderFile(FI).size();
  return Sum;
}

unsigned ProjectModel::totalSourceLines() const {
  unsigned Lines = 0;
  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Text = renderFile(FI);
    Lines += static_cast<unsigned>(
        std::count(Text.begin(), Text.end(), '\n'));
  }
  return Lines;
}
