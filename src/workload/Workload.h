//===- workload/Workload.h - Synthetic project generator --------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of MiniC projects and incremental edits —
/// the substitute for the paper's real-world C++ evaluation projects
/// (see DESIGN.md). A project is held as a structured model; edits
/// mutate the model and the project re-renders to text, so the build
/// system sees exactly the files whose bytes changed, like a developer
/// saving from an editor.
///
/// The generated code deliberately exercises the whole pass pipeline:
/// foldable constants, repeated subexpressions (CSE), loop-invariant
/// terms (LICM), small constant-trip loops (unroll), tautological
/// branches (SCCP/SimplifyCFG), arrays (load-forward/DSE), globals
/// (globalopt), small helpers (inliner), and bounded recursion.
///
//===----------------------------------------------------------------------===//

#ifndef SC_WORKLOAD_WORKLOAD_H
#define SC_WORKLOAD_WORKLOAD_H

#include "support/FileSystem.h"
#include "support/RNG.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sc {

/// Shape parameters for a generated project, modeled on the file/
/// function statistics of typical open-source C++ projects.
struct ProjectProfile {
  std::string Name;
  unsigned NumFiles = 20;
  unsigned MinFuncsPerFile = 4;
  unsigned MaxFuncsPerFile = 9;
  unsigned MaxImportsPerFile = 3;
  unsigned MinSegs = 2; // Body segments per function.
  unsigned MaxSegs = 6;
};

/// The five evaluation profiles used by the benchmarks (E1-E9).
std::vector<ProjectProfile> standardProfiles();

/// Returns the profile with the given name, or nullopt if unknown.
std::optional<ProjectProfile> findProfileByName(const std::string &Name);

/// Comma-separated list of the standard profile names, for error text.
std::string knownProfileNames();

/// Returns the profile with the given name. An unknown name is a
/// usage error: prints `unknown profile '<Name>' (known: ...)` to
/// stderr and exits nonzero — callers that want to recover use
/// findProfileByName().
ProjectProfile profileByName(const std::string &Name);

/// Kinds of source edits the incremental-build experiments apply.
enum class EditKind : uint8_t {
  ConstTweak,      // Change a literal in one function body.
  CondFlip,        // Change a comparison operator/threshold.
  StmtInsert,      // Insert a statement group into a body.
  StmtDelete,      // Delete a statement group from a body.
  BodyRewrite,     // Regenerate one function body wholesale.
  AddFunction,     // Add a new function to a file (interface change).
  SignatureChange, // Change a function's arity (interface change).
  ImportChange,    // Add or remove one import edge (and its call).
  AddFile,         // Add a whole new source file (nothing imports it).
  DeleteFile,      // Delete an unreferenced source file.
};

const char *editKindName(EditKind K);

/// A generated project: structured model + deterministic rendering.
class ProjectModel {
public:
  /// Builds a project from a profile and seed (bit-reproducible).
  static ProjectModel generate(const ProjectProfile &Profile, uint64_t Seed);

  /// Renders every file into \p FS (paths like "src3.mc", "main.mc").
  void renderAll(VirtualFileSystem &FS) const;

  /// Applies one random edit of the given kind; returns the paths of
  /// files whose rendered text changed (usually one; signature changes
  /// can touch several). Also re-renders those files into \p FS.
  std::vector<std::string> applyEdit(EditKind Kind, RNG &Rand,
                                     VirtualFileSystem &FS);

  /// Applies a "commit": 1-3 random small edits (weighted toward
  /// body-local changes, occasionally interface-changing), mirroring
  /// the small diffs of real incremental builds. Returns changed
  /// paths.
  std::vector<std::string> applyCommit(RNG &Rand, VirtualFileSystem &FS);

  //===--- Scenario-level edits (workload/Scenario.h nodes) ------------------===//

  /// Interface-churns the project's hottest "header": adds a function
  /// to the live file with the most rendered importers, so its whole
  /// import cone recompiles from a one-file edit.
  std::vector<std::string> hotHeaderChurn(RNG &Rand, VirtualFileSystem &FS);

  /// Branch switch: touches roughly \p Percent percent of the live
  /// files at once (always at least one) — the many-file swap of
  /// `git checkout other-branch`.
  std::vector<std::string> branchSwitch(unsigned Percent, RNG &Rand,
                                        VirtualFileSystem &FS);

  /// Adds one import edge (plus a call through it, so the edge is
  /// rendered) / removes one rendered edge (rewriting its calls away).
  /// Also reachable randomly via EditKind::ImportChange.
  std::vector<std::string> addImportEdge(RNG &Rand, VirtualFileSystem &FS);
  std::vector<std::string> removeImportEdge(RNG &Rand, VirtualFileSystem &FS);

  /// Plants a genuine redundant dependency: one file gains a *forced*
  /// import it never calls into. The rendered `import` line enters the
  /// build's ImportGraph, the verifier sees it was never read, and a
  /// `dep-redundant:` finding must follow.
  std::vector<std::string> plantRedundantImport(RNG &Rand,
                                                VirtualFileSystem &FS);

  /// Every (importer path, imported path) pair currently rendered —
  /// the declared edges the build system will see. Sorted.
  std::vector<std::pair<std::string, std::string>> renderedImportEdges() const;

  //===--- Introspection -----------------------------------------------------===//

  unsigned numFiles() const;
  unsigned numFunctions() const;
  uint64_t totalSourceBytes() const;
  unsigned totalSourceLines() const;

  std::string renderFile(unsigned FileIdx) const;
  std::string filePath(unsigned FileIdx) const;

private:
  struct SegModel {
    enum class Kind : uint8_t {
      Arith,
      LoopSum,
      ArrayWork,
      Branch,
      CallMix,
      GlobalTouch,
    };
    Kind K = Kind::Arith;
    int64_t C1 = 1, C2 = 0, C3 = 1;
    unsigned A = 0;       // Loop bound / array size / param index.
    unsigned Op = 0;      // Template selector.
    unsigned CalleeIdx = ~0u;
    unsigned GlobalIdx = 0;
    unsigned Uid = 0;     // Unique id for local names.
  };

  struct FuncModel {
    std::string Name;
    unsigned NumParams = 1;
    bool IsRecursive = false;
    int64_t SeedConst = 0;
    std::vector<SegModel> Segs;
  };

  struct FileModel {
    std::string Path;
    std::vector<unsigned> Imports;     // File indices.
    // Subset of Imports rendered even when no call uses them (the
    // redundant-dependency plant). Everything else renders only while
    // actually called into — tight imports, so a clean project has
    // zero redundant edges by construction.
    std::vector<unsigned> ForcedImports;
    std::vector<int64_t> GlobalInits;  // g<file>_<k>.
    std::vector<unsigned> Funcs;       // Global function indices.
    // Deleted files stay in the model (indices are stable) but render
    // nothing and take no further part in edits.
    bool Deleted = false;
  };

  SegModel makeSegment(RNG &Rand, unsigned FileIdx, unsigned FuncIdx);
  std::string renderFunction(const FuncModel &F, unsigned FileIdx) const;
  std::string renderSegment(const SegModel &S, const FuncModel &F,
                            unsigned FileIdx) const;
  std::string renderCallArgs(const FuncModel &Callee,
                             const FuncModel &Caller) const;
  std::vector<unsigned> callableFrom(unsigned FileIdx, unsigned FuncIdx) const;
  unsigned pickEditableFunction(RNG &Rand) const;
  std::vector<std::string> rerenderChanged(VirtualFileSystem &FS);
  bool importUsed(unsigned FileIdx, unsigned ImportIdx) const;
  std::vector<unsigned> renderedImports(unsigned FileIdx) const;
  std::vector<unsigned> liveFiles(bool IncludeMain) const;
  std::vector<std::string> addNewFile(RNG &Rand, VirtualFileSystem &FS);
  std::vector<std::string> deleteUnreferencedFile(RNG &Rand,
                                                  VirtualFileSystem &FS);

  std::vector<FileModel> Files;
  std::vector<FuncModel> Funcs;
  std::vector<unsigned> FuncFile; // Function index -> file index.
  unsigned NextUid = 0;
  // Cache of the last rendering, for change detection.
  std::vector<std::string> LastRendered;
};

} // namespace sc

#endif // SC_WORKLOAD_WORKLOAD_H
