//===- workload/Scenario.h - Declarative workload scenarios -----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A declarative, seed-deterministic workload DSL (genny-style; see
/// SNIPPETS.md §3) plus the runner that replays a parsed scenario
/// against a workspace. A scenario is flat YAML-like text:
///
/// \code
///   # A morning of refactoring on the json_lib profile.
///   scenario: refactor-storm
///   profile: json_lib
///   seed: 42
///
///   phase: warmup repeat=2
///     commit count=3
///     body-tweak
///
///   phase: storm
///     choice:
///       3 commit
///       1 hot-header
///       1 import-change
///     branch-switch percent=40
///     add-file
///
///   phase: shakeout
///     delete-file
///     commit count=2
/// \endcode
///
/// Node vocabulary (docs/WORKLOADS.md has the full grammar): the seven
/// classic edit kinds by name (`const-tweak` ... `signature-change`),
/// `body-tweak` (random body-local edit), `commit` (1-3 weighted
/// edits), `import-add` / `import-remove` / `import-change`,
/// `add-file`, `delete-file`, `hot-header` (interface-churn the most
/// imported file), `branch-switch percent=N` (touch ~N% of files at
/// once), `plant kind=missing|redundant` (deliberately break the
/// dependency graph so the verifier must report it), and `choice:`
/// (weighted probabilistic pick among its indented children).
///
/// Determinism contract: the same spec text and seed produce the same
/// edit stream, the same rendered bytes, and the same build outcomes,
/// at any -j. Everything random flows from one RNG seeded with
/// `seed:`; node execution order is the textual order.
///
/// The runner builds after every phase iteration and fails the replay
/// on any dependency-verifier finding and on non-incremental
/// divergence (the incremental manifest must byte-match a scratch
/// build of the same tree — object hashes cover the serialized object
/// bytes, so equal manifests mean byte-identical artifacts).
///
//===----------------------------------------------------------------------===//

#ifndef SC_WORKLOAD_SCENARIO_H
#define SC_WORKLOAD_SCENARIO_H

#include "build_sys/BuildSystem.h"
#include "build_sys/DepVerifier.h"
#include "support/FileSystem.h"
#include "workload/Workload.h"

#include <functional>
#include <string>
#include <vector>

namespace sc {

/// One schedulable action in a scenario.
struct ScenarioNode {
  enum class Kind : uint8_t {
    ConstTweak,
    CondFlip,
    StmtInsert,
    StmtDelete,
    BodyRewrite,
    AddFunction,
    SignatureChange,
    BodyTweak,    // Random body-local edit kind.
    Commit,       // ProjectModel::applyCommit.
    ImportAdd,
    ImportRemove,
    ImportChange, // Random add-or-remove.
    AddFile,
    DeleteFile,
    HotHeader,    // Interface-churn the most-imported file.
    BranchSwitch, // Touch ~Percent% of the files at once.
    Plant,        // Deliberate dependency error (PlantMissing selects).
    Choice,       // Weighted pick among Children.
  };

  Kind K = Kind::Commit;
  unsigned Count = 1;        // count=N — run the node N times.
  unsigned Percent = 25;     // percent=N — BranchSwitch breadth.
  bool PlantMissing = true;  // kind=missing|redundant — Plant flavor.
  std::vector<unsigned> Weights;       // Choice only, parallel to...
  std::vector<ScenarioNode> Children;  // ...these.
};

const char *scenarioNodeName(ScenarioNode::Kind K);

struct ScenarioPhase {
  std::string Name;
  unsigned Repeat = 1;
  std::vector<ScenarioNode> Nodes;
};

struct Scenario {
  std::string Name;
  std::string Profile = "json_lib";
  uint64_t Seed = 1;
  std::vector<ScenarioPhase> Phases;
};

class ScenarioParser {
public:
  /// Parses \p Text into \p Out. On failure returns false and sets
  /// \p Error to "line N: what went wrong". Strict: unknown nodes,
  /// keys, or options are errors, not warnings — a typo'd scenario
  /// must not silently test something else.
  static bool parse(const std::string &Text, Scenario &Out,
                    std::string &Error);
};

/// Renders a scenario back to spec text (parse(render(S)) == S — the
/// round-trip the parser tests rely on).
std::string renderScenario(const Scenario &S);

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

/// What one externally-driven build (e.g. through the daemon) did;
/// the hook fills it from whatever transport it used.
struct ScenarioBuildResult {
  bool Ok = false;
  std::string Error;
  unsigned FilesCompiled = 0;
  unsigned FilesTotal = 0;
  unsigned DepsMissing = 0;
  unsigned DepsRedundant = 0;
  std::vector<std::string> Findings;
};

struct ScenarioRunOptions {
  unsigned Jobs = 1;
  unsigned OptLevel = 2;
  bool Stateful = true;
  std::string OutDir = "out";

  /// Cross-check dependencies after every successful build; any
  /// finding fails the replay.
  bool VerifyDeps = true;

  /// After every successful build, rebuild the same tree from scratch
  /// in a throwaway filesystem and require manifest equality (same
  /// TUs, same object hashes). Catches under-rebuilds the verifier's
  /// static view could miss.
  bool ScratchCompare = true;

  /// When set, replaces the in-process BuildDriver: called once per
  /// phase build (scworkload --via-daemon routes builds through a
  /// running scbuildd here). Verification and scratch comparison stay
  /// in-process either way.
  std::function<ScenarioBuildResult()> ExternalBuild;
};

/// One phase iteration's outcome ("<initial>" for the pre-phase
/// baseline build).
struct ScenarioPhaseOutcome {
  std::string Phase;
  unsigned Iteration = 0;
  std::vector<std::string> ChangedFiles;
  bool BuildOk = false;
  std::string BuildError;
  unsigned FilesCompiled = 0;
  unsigned FilesTotal = 0;
  unsigned DepsMissing = 0;
  unsigned DepsRedundant = 0;
  bool ScratchMatch = true;
  std::vector<std::string> Findings;
};

class ScenarioRunner {
public:
  ScenarioRunner(const Scenario &Sc, VirtualFileSystem &FS,
                 ScenarioRunOptions Opts);

  /// Replays the whole scenario: generate + initial build, then per
  /// phase iteration apply nodes and rebuild. Returns ok(). Stops at
  /// the first failed build (broken generated code is a runner bug);
  /// verifier findings and scratch divergence are recorded on the
  /// outcome and fail ok() without stopping the replay.
  bool run();

  bool ok() const;
  const std::vector<ScenarioPhaseOutcome> &outcomes() const {
    return Outcomes;
  }

  /// Flat log of every edit applied: "phase#iter node: changed,..." —
  /// the seed-determinism contract is that two runs of the same spec
  /// produce identical logs.
  const std::vector<std::string> &editLog() const { return EditLog; }

  /// The verdict as JSON (schema "scworkload-replay" v1); what
  /// `scworkload --report-json` writes and bench_check.py validates.
  std::string reportJson() const;

private:
  bool runNode(const ScenarioNode &N, RNG &Rand,
               const std::string &PhaseTag,
               std::vector<std::string> &Changed);
  ScenarioBuildResult buildOnce();
  bool scratchMatches(std::string &Detail);

  const Scenario Sc;
  VirtualFileSystem &FS;
  ScenarioRunOptions Opts;
  ProjectModel Model;
  // Accumulated fault injection from `plant kind=missing` nodes;
  // persisted to DepVerifier::plantPath(OutDir) so the in-process
  // build (and any external scbuild --verify-deps) picks it up.
  DepVerifyPlant Plant;
  std::unique_ptr<BuildDriver> Driver;
  std::vector<ScenarioPhaseOutcome> Outcomes;
  std::vector<std::string> EditLog;
  bool Failed = false;
};

} // namespace sc

#endif // SC_WORKLOAD_SCENARIO_H
