//===- workload/Scenario.cpp - Declarative workload scenarios ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Scenario.h"

#include "build_sys/Manifest.h"
#include "support/Trace.h" // jsonEscape

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

using namespace sc;

//===----------------------------------------------------------------------===//
// Node names
//===----------------------------------------------------------------------===//

const char *sc::scenarioNodeName(ScenarioNode::Kind K) {
  switch (K) {
  case ScenarioNode::Kind::ConstTweak:
    return "const-tweak";
  case ScenarioNode::Kind::CondFlip:
    return "cond-flip";
  case ScenarioNode::Kind::StmtInsert:
    return "stmt-insert";
  case ScenarioNode::Kind::StmtDelete:
    return "stmt-delete";
  case ScenarioNode::Kind::BodyRewrite:
    return "body-rewrite";
  case ScenarioNode::Kind::AddFunction:
    return "add-function";
  case ScenarioNode::Kind::SignatureChange:
    return "signature-change";
  case ScenarioNode::Kind::BodyTweak:
    return "body-tweak";
  case ScenarioNode::Kind::Commit:
    return "commit";
  case ScenarioNode::Kind::ImportAdd:
    return "import-add";
  case ScenarioNode::Kind::ImportRemove:
    return "import-remove";
  case ScenarioNode::Kind::ImportChange:
    return "import-change";
  case ScenarioNode::Kind::AddFile:
    return "add-file";
  case ScenarioNode::Kind::DeleteFile:
    return "delete-file";
  case ScenarioNode::Kind::HotHeader:
    return "hot-header";
  case ScenarioNode::Kind::BranchSwitch:
    return "branch-switch";
  case ScenarioNode::Kind::Plant:
    return "plant";
  case ScenarioNode::Kind::Choice:
    return "choice";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

// Every node a spec line can name. `choice` is deliberately absent:
// it has its own block syntax and cannot nest inside itself.
const struct {
  const char *Name;
  ScenarioNode::Kind K;
} NodeNames[] = {
    {"const-tweak", ScenarioNode::Kind::ConstTweak},
    {"cond-flip", ScenarioNode::Kind::CondFlip},
    {"stmt-insert", ScenarioNode::Kind::StmtInsert},
    {"stmt-delete", ScenarioNode::Kind::StmtDelete},
    {"body-rewrite", ScenarioNode::Kind::BodyRewrite},
    {"add-function", ScenarioNode::Kind::AddFunction},
    {"signature-change", ScenarioNode::Kind::SignatureChange},
    {"body-tweak", ScenarioNode::Kind::BodyTweak},
    {"commit", ScenarioNode::Kind::Commit},
    {"import-add", ScenarioNode::Kind::ImportAdd},
    {"import-remove", ScenarioNode::Kind::ImportRemove},
    {"import-change", ScenarioNode::Kind::ImportChange},
    {"add-file", ScenarioNode::Kind::AddFile},
    {"delete-file", ScenarioNode::Kind::DeleteFile},
    {"hot-header", ScenarioNode::Kind::HotHeader},
    {"branch-switch", ScenarioNode::Kind::BranchSwitch},
    {"plant", ScenarioNode::Kind::Plant},
};

bool allDigits(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
  return true;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (!allDigits(S) || S.size() > 19)
    return false;
  Out = 0;
  for (char C : S)
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  return true;
}

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok)
    Tokens.push_back(Tok);
  return Tokens;
}

/// Parses one node spec (`name [count=N] [percent=N] [kind=...]`)
/// starting at Tokens[Start]. On failure sets Error (without the
/// "line N:" prefix — the caller owns that).
bool parseNodeTokens(const std::vector<std::string> &Tokens, size_t Start,
                     ScenarioNode &N, std::string &Error) {
  const std::string &Name = Tokens[Start];
  bool Known = false;
  for (const auto &E : NodeNames)
    if (Name == E.Name) {
      N.K = E.K;
      Known = true;
      break;
    }
  if (!Known) {
    Error = "unknown node '" + Name + "'";
    return false;
  }
  for (size_t I = Start + 1; I != Tokens.size(); ++I) {
    const std::string &Tok = Tokens[I];
    size_t Eq = Tok.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Tok.size()) {
      Error = "malformed option '" + Tok + "' (expected key=value)";
      return false;
    }
    std::string Key = Tok.substr(0, Eq), Val = Tok.substr(Eq + 1);
    uint64_t V = 0;
    if (Key == "count") {
      if (!parseU64(Val, V) || V < 1 || V > 1000) {
        Error = "count must be an integer in [1, 1000], got '" + Val + "'";
        return false;
      }
      N.Count = static_cast<unsigned>(V);
    } else if (Key == "percent") {
      if (N.K != ScenarioNode::Kind::BranchSwitch) {
        Error = "option 'percent' only applies to branch-switch";
        return false;
      }
      if (!parseU64(Val, V) || V < 1 || V > 100) {
        Error = "percent must be an integer in [1, 100], got '" + Val + "'";
        return false;
      }
      N.Percent = static_cast<unsigned>(V);
    } else if (Key == "kind") {
      if (N.K != ScenarioNode::Kind::Plant) {
        Error = "option 'kind' only applies to plant";
        return false;
      }
      if (Val == "missing")
        N.PlantMissing = true;
      else if (Val == "redundant")
        N.PlantMissing = false;
      else {
        Error = "plant kind must be 'missing' or 'redundant', got '" + Val +
                "'";
        return false;
      }
    } else {
      Error = "unknown option '" + Key + "' for node '" + Name + "'";
      return false;
    }
  }
  return true;
}

} // namespace

bool ScenarioParser::parse(const std::string &Text, Scenario &Out,
                           std::string &Error) {
  Scenario S;
  S.Name.clear();
  ScenarioPhase *Phase = nullptr;
  ScenarioNode *Choice = nullptr; // Open choice block, inside *Phase.
  unsigned PhaseLine = 0, ChoiceLine = 0, LineNo = 0;

  auto fail = [&](unsigned At, const std::string &Msg) {
    Error = "line " + std::to_string(At) + ": " + Msg;
    return false;
  };
  // A choice block is closed by any non-weighted line (or EOF); an
  // empty one is an error reported against its opening line.
  auto closeChoice = [&]() {
    if (Choice && Choice->Children.empty())
      return fail(ChoiceLine,
                  "choice: needs at least one weighted child (e.g. `3 "
                  "commit`)");
    Choice = nullptr;
    return true;
  };
  auto closePhase = [&]() {
    if (!closeChoice())
      return false;
    if (Phase && Phase->Nodes.empty())
      return fail(PhaseLine, "phase '" + Phase->Name + "' has no nodes");
    Phase = nullptr;
    return true;
  };

  std::istringstream In(Text);
  std::string Raw;
  while (std::getline(In, Raw)) {
    ++LineNo;
    // `#` starts a comment anywhere on the line.
    size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.erase(Hash);
    std::vector<std::string> Tokens = splitTokens(Raw);
    if (Tokens.empty())
      continue;
    const std::string &Head = Tokens[0];

    if (allDigits(Head)) {
      // Weighted choice child: `<weight> <node> [options...]`.
      if (!Choice)
        return fail(LineNo, "weighted line outside a choice: block");
      uint64_t W = 0;
      if (!parseU64(Head, W) || W < 1 || W > 1000)
        return fail(LineNo, "choice weight must be an integer in [1, 1000]");
      if (Tokens.size() < 2)
        return fail(LineNo, "choice child needs a node after the weight");
      ScenarioNode Child;
      if (!parseNodeTokens(Tokens, 1, Child, Error))
        return fail(LineNo, Error);
      Choice->Weights.push_back(static_cast<unsigned>(W));
      Choice->Children.push_back(std::move(Child));
      continue;
    }

    if (Head == "scenario:" || Head == "profile:" || Head == "seed:") {
      if (!closeChoice())
        return false;
      if (Tokens.size() != 2)
        return fail(LineNo, "'" + Head + "' takes exactly one value");
      if (Head == "scenario:") {
        S.Name = Tokens[1];
      } else if (Head == "profile:") {
        if (!findProfileByName(Tokens[1]))
          return fail(LineNo, "unknown profile '" + Tokens[1] +
                                  "' (known: " + knownProfileNames() + ")");
        S.Profile = Tokens[1];
      } else {
        if (!parseU64(Tokens[1], S.Seed))
          return fail(LineNo, "seed must be a non-negative integer, got '" +
                                  Tokens[1] + "'");
      }
      continue;
    }

    if (Head == "phase:") {
      if (!closePhase())
        return false;
      if (Tokens.size() < 2 || Tokens[1].find('=') != std::string::npos)
        return fail(LineNo, "phase: needs a name");
      ScenarioPhase Ph;
      Ph.Name = Tokens[1];
      for (size_t I = 2; I != Tokens.size(); ++I) {
        const std::string &Tok = Tokens[I];
        size_t Eq = Tok.find('=');
        uint64_t V = 0;
        if (Eq != std::string::npos && Tok.substr(0, Eq) == "repeat") {
          if (!parseU64(Tok.substr(Eq + 1), V) || V < 1 || V > 1000)
            return fail(LineNo, "repeat must be an integer in [1, 1000]");
          Ph.Repeat = static_cast<unsigned>(V);
        } else {
          return fail(LineNo, "unknown phase option '" + Tok + "'");
        }
      }
      S.Phases.push_back(std::move(Ph));
      Phase = &S.Phases.back();
      PhaseLine = LineNo;
      continue;
    }

    if (Head == "choice:") {
      if (!closeChoice())
        return false;
      if (!Phase)
        return fail(LineNo, "choice: outside a phase");
      if (Tokens.size() != 1)
        return fail(LineNo, "choice: takes no options");
      ScenarioNode N;
      N.K = ScenarioNode::Kind::Choice;
      Phase->Nodes.push_back(std::move(N));
      Choice = &Phase->Nodes.back();
      ChoiceLine = LineNo;
      continue;
    }

    // Anything else must be a node line inside a phase.
    if (!closeChoice())
      return false;
    if (!Phase)
      return fail(LineNo, "node '" + Head + "' outside a phase");
    ScenarioNode N;
    if (!parseNodeTokens(Tokens, 0, N, Error))
      return fail(LineNo, Error);
    Phase->Nodes.push_back(std::move(N));
  }

  if (!closePhase())
    return false;
  if (S.Name.empty())
    return fail(LineNo ? LineNo : 1, "missing 'scenario:' name");
  Out = std::move(S);
  return true;
}

//===----------------------------------------------------------------------===//
// Renderer
//===----------------------------------------------------------------------===//

namespace {

std::string renderNodeLine(const ScenarioNode &N) {
  std::string R = scenarioNodeName(N.K);
  if (N.Count != 1)
    R += " count=" + std::to_string(N.Count);
  if (N.K == ScenarioNode::Kind::BranchSwitch && N.Percent != 25)
    R += " percent=" + std::to_string(N.Percent);
  if (N.K == ScenarioNode::Kind::Plant)
    R += N.PlantMissing ? " kind=missing" : " kind=redundant";
  return R;
}

} // namespace

std::string sc::renderScenario(const Scenario &S) {
  std::string R;
  R += "scenario: " + S.Name + "\n";
  R += "profile: " + S.Profile + "\n";
  R += "seed: " + std::to_string(S.Seed) + "\n";
  for (const ScenarioPhase &Ph : S.Phases) {
    R += "\nphase: " + Ph.Name;
    if (Ph.Repeat != 1)
      R += " repeat=" + std::to_string(Ph.Repeat);
    R += "\n";
    for (const ScenarioNode &N : Ph.Nodes) {
      if (N.K == ScenarioNode::Kind::Choice) {
        R += "  choice:\n";
        for (size_t I = 0; I != N.Children.size(); ++I)
          R += "    " + std::to_string(N.Weights[I]) + " " +
               renderNodeLine(N.Children[I]) + "\n";
      } else {
        R += "  " + renderNodeLine(N) + "\n";
      }
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Runner
//===----------------------------------------------------------------------===//

namespace {

BuildOptions driverOptions(const ScenarioRunOptions &Opts) {
  BuildOptions BO;
  BO.Jobs = Opts.Jobs;
  BO.OutDir = Opts.OutDir;
  BO.Compiler.Opt = Opts.OptLevel == 0   ? OptLevel::O0
                    : Opts.OptLevel == 1 ? OptLevel::O1
                                         : OptLevel::O2;
  // Replays use ExactSkip, not the paper's HeuristicSkip: the scratch
  // comparison demands byte-equality with a cold build, which exact
  // skipping guarantees (only unchanged functions skip, reproducing
  // their previous — ultimately cold-compiled — bytes). Heuristic
  // skipping promises behavioral equivalence only (DifferentialTest).
  BO.Compiler.Stateful.SkipMode = Opts.Stateful
                                      ? StatefulConfig::Mode::ExactSkip
                                      : StatefulConfig::Mode::Stateless;
  BO.VerifyDeps = Opts.VerifyDeps;
  return BO;
}

std::string firstLine(const std::string &S) {
  size_t NL = S.find('\n');
  return NL == std::string::npos ? S : S.substr(0, NL);
}

} // namespace

ScenarioRunner::ScenarioRunner(const Scenario &Sc_, VirtualFileSystem &FS_,
                               ScenarioRunOptions Opts_)
    : Sc(Sc_), FS(FS_), Opts(std::move(Opts_)) {}

bool ScenarioRunner::ok() const { return !Failed && !Outcomes.empty(); }

bool ScenarioRunner::run() {
  Outcomes.clear();
  EditLog.clear();
  Failed = false;
  Plant = DepVerifyPlant();

  std::optional<ProjectProfile> P = findProfileByName(Sc.Profile);
  if (!P) {
    ScenarioPhaseOutcome O;
    O.Phase = "<initial>";
    O.BuildError = "unknown profile '" + Sc.Profile +
                   "' (known: " + knownProfileNames() + ")";
    Outcomes.push_back(std::move(O));
    Failed = true;
    return false;
  }

  Model = ProjectModel::generate(*P, Sc.Seed);
  Model.renderAll(FS);
  // A stale plant from an earlier replay in the same tree must not
  // leak into this one (an empty plant removes the file).
  DepVerifier::savePlant(FS, Opts.OutDir, Plant);

  if (!Opts.ExternalBuild)
    Driver = std::make_unique<BuildDriver>(FS, driverOptions(Opts));

  auto buildAndRecord = [&](const std::string &Phase, unsigned Iter,
                            std::vector<std::string> Changed) {
    ScenarioPhaseOutcome O;
    O.Phase = Phase;
    O.Iteration = Iter;
    O.ChangedFiles = std::move(Changed);
    ScenarioBuildResult R = buildOnce();
    O.BuildOk = R.Ok;
    O.BuildError = R.Error;
    O.FilesCompiled = R.FilesCompiled;
    O.FilesTotal = R.FilesTotal;
    O.DepsMissing = R.DepsMissing;
    O.DepsRedundant = R.DepsRedundant;
    O.Findings = R.Findings;
    if (!R.Ok) {
      Failed = true;
    } else {
      if (!O.Findings.empty())
        Failed = true;
      if (Opts.ScratchCompare) {
        std::string Detail;
        if (!scratchMatches(Detail)) {
          O.ScratchMatch = false;
          O.Findings.push_back("scratch-divergence: " + Detail);
          Failed = true;
        }
      }
    }
    bool BuildOk = O.BuildOk;
    Outcomes.push_back(std::move(O));
    return BuildOk;
  };

  // One RNG drives every phase in textual order — the determinism
  // contract (same spec + seed => same edit stream at any -j).
  RNG Rand(Sc.Seed);
  if (!buildAndRecord("<initial>", 0, {}))
    return ok();
  for (const ScenarioPhase &Ph : Sc.Phases) {
    for (unsigned Iter = 1; Iter <= Ph.Repeat; ++Iter) {
      std::vector<std::string> Changed;
      std::string Tag = Ph.Name + "#" + std::to_string(Iter);
      for (const ScenarioNode &N : Ph.Nodes)
        runNode(N, Rand, Tag, Changed);
      std::sort(Changed.begin(), Changed.end());
      Changed.erase(std::unique(Changed.begin(), Changed.end()),
                    Changed.end());
      if (!buildAndRecord(Ph.Name, Iter, std::move(Changed)))
        return ok();
    }
  }
  return ok();
}

bool ScenarioRunner::runNode(const ScenarioNode &N, RNG &Rand,
                             const std::string &PhaseTag,
                             std::vector<std::string> &Changed) {
  using K = ScenarioNode::Kind;
  for (unsigned Rep = 0; Rep != N.Count; ++Rep) {
    if (N.K == K::Choice) {
      uint64_t Total = 0;
      for (unsigned W : N.Weights)
        Total += W;
      if (!Total)
        continue; // Parser forbids; belt and braces.
      uint64_t Roll = Rand.nextBelow(Total);
      size_t Pick = 0;
      while (Pick + 1 < N.Weights.size() && Roll >= N.Weights[Pick]) {
        Roll -= N.Weights[Pick];
        ++Pick;
      }
      runNode(N.Children[Pick], Rand, PhaseTag, Changed);
      continue;
    }

    std::vector<std::string> Files;
    std::string Extra;
    switch (N.K) {
    case K::ConstTweak:
      Files = Model.applyEdit(EditKind::ConstTweak, Rand, FS);
      break;
    case K::CondFlip:
      Files = Model.applyEdit(EditKind::CondFlip, Rand, FS);
      break;
    case K::StmtInsert:
      Files = Model.applyEdit(EditKind::StmtInsert, Rand, FS);
      break;
    case K::StmtDelete:
      Files = Model.applyEdit(EditKind::StmtDelete, Rand, FS);
      break;
    case K::BodyRewrite:
      Files = Model.applyEdit(EditKind::BodyRewrite, Rand, FS);
      break;
    case K::AddFunction:
      Files = Model.applyEdit(EditKind::AddFunction, Rand, FS);
      break;
    case K::SignatureChange:
      Files = Model.applyEdit(EditKind::SignatureChange, Rand, FS);
      break;
    case K::BodyTweak: {
      static const EditKind BodyKinds[] = {
          EditKind::ConstTweak, EditKind::CondFlip, EditKind::StmtInsert,
          EditKind::StmtDelete, EditKind::BodyRewrite};
      Files = Model.applyEdit(BodyKinds[Rand.nextBelow(5)], Rand, FS);
      break;
    }
    case K::Commit:
      Files = Model.applyCommit(Rand, FS);
      break;
    case K::ImportAdd:
      Files = Model.addImportEdge(Rand, FS);
      break;
    case K::ImportRemove:
      Files = Model.removeImportEdge(Rand, FS);
      break;
    case K::ImportChange:
      Files = Model.applyEdit(EditKind::ImportChange, Rand, FS);
      break;
    case K::AddFile:
      Files = Model.applyEdit(EditKind::AddFile, Rand, FS);
      break;
    case K::DeleteFile:
      Files = Model.applyEdit(EditKind::DeleteFile, Rand, FS);
      break;
    case K::HotHeader:
      Files = Model.hotHeaderChurn(Rand, FS);
      break;
    case K::BranchSwitch:
      Files = Model.branchSwitch(N.Percent, Rand, FS);
      break;
    case K::Plant:
      if (N.PlantMissing) {
        // Hide one genuinely-used edge from the verifier's view of the
        // import graph via the plant file; the next verified build must
        // report it as dep-missing.
        auto Edges = Model.renderedImportEdges();
        if (!Edges.empty()) {
          const auto &E = Edges[Rand.nextBelow(Edges.size())];
          Plant.DropEdges.push_back(E);
          DepVerifier::savePlant(FS, Opts.OutDir, Plant);
          Extra = E.first + " drops " + E.second;
        } else {
          Extra = "(no rendered edges to drop)";
        }
      } else {
        Files = Model.plantRedundantImport(Rand, FS);
      }
      break;
    case K::Choice:
      break; // Handled above.
    }

    std::string Line = PhaseTag + " " + scenarioNodeName(N.K) + ":";
    for (size_t I = 0; I != Files.size(); ++I)
      Line += (I ? "," : " ") + Files[I];
    if (!Extra.empty())
      Line += " " + Extra;
    EditLog.push_back(std::move(Line));
    Changed.insert(Changed.end(), Files.begin(), Files.end());
  }
  return true;
}

ScenarioBuildResult ScenarioRunner::buildOnce() {
  if (Opts.ExternalBuild) {
    ScenarioBuildResult R = Opts.ExternalBuild();
    if (R.Ok && Opts.VerifyDeps && R.Findings.empty()) {
      // The external transport (the daemon) does not run the verifier;
      // cross-check in-process against the model's declared edges.
      std::map<std::string, std::vector<std::string>> Declared;
      const std::string Prefix = Opts.OutDir + "/";
      for (const std::string &Path : FS.listFiles()) {
        if (Path.size() > 3 &&
            Path.compare(Path.size() - 3, 3, ".mc") == 0 &&
            Path.compare(0, Prefix.size(), Prefix) != 0)
          Declared[Path];
      }
      for (const auto &E : Model.renderedImportEdges())
        Declared[E.first].push_back(E.second);
      DepVerifyReport Rep = DepVerifier::verify(FS, Declared, &Plant);
      R.DepsMissing = Rep.NumMissing;
      R.DepsRedundant = Rep.NumRedundant;
      for (const DepFinding &F : Rep.Findings)
        R.Findings.push_back(F.reason());
    }
    return R;
  }

  BuildStats S = Driver->build();
  ScenarioBuildResult R;
  R.Ok = S.Success;
  R.Error = S.ErrorText;
  R.FilesCompiled = S.FilesCompiled;
  R.FilesTotal = S.FilesTotal;
  R.DepsMissing = S.DepsMissing;
  R.DepsRedundant = S.DepsRedundant;
  R.Findings = S.DepFindings;
  return R;
}

bool ScenarioRunner::scratchMatches(std::string &Detail) {
  // Copy everything except build outputs into a throwaway tree and
  // build it cold with the same options.
  InMemoryFileSystem Scratch;
  const std::string Prefix = Opts.OutDir + "/";
  for (const std::string &Path : FS.listFiles()) {
    if (Path.compare(0, Prefix.size(), Prefix) == 0)
      continue;
    if (std::optional<std::string> C = FS.readFile(Path))
      Scratch.writeFile(Path, *C);
  }
  BuildOptions BO = driverOptions(Opts);
  BO.VerifyDeps = false; // Divergence detection only.
  BuildDriver Fresh(Scratch, BO);
  BuildStats S = Fresh.build();
  if (!S.Success) {
    Detail = "scratch build failed: " + firstLine(S.ErrorText);
    return false;
  }

  const std::string MPath = Opts.OutDir + "/manifest.bin";
  BuildManifest Inc, Ref;
  if (!Inc.loadFromFile(FS, MPath)) {
    Detail = "incremental manifest unreadable";
    return false;
  }
  if (!Ref.loadFromFile(Scratch, MPath)) {
    Detail = "scratch manifest unreadable";
    return false;
  }
  if (Inc.entries().size() != Ref.entries().size()) {
    Detail = "manifest entry counts differ (" +
             std::to_string(Inc.entries().size()) + " incremental vs " +
             std::to_string(Ref.entries().size()) + " scratch)";
    return false;
  }
  for (const auto &[Path, E] : Inc.entries()) {
    const ManifestEntry *O = Ref.lookup(Path);
    if (!O) {
      Detail = "scratch build has no entry for " + Path;
      return false;
    }
    // ObjectHash covers the serialized object bytes, so equal hashes
    // for every TU mean byte-identical artifacts.
    if (O->ObjectHash != E.ObjectHash) {
      Detail = "object hash differs for " + Path;
      return false;
    }
  }
  return true;
}

std::string ScenarioRunner::reportJson() const {
  auto boolean = [](bool B) { return B ? "true" : "false"; };
  std::string J = "{\n";
  J += "  \"schema\": \"scworkload-replay\",\n";
  J += "  \"schema_version\": 1,\n";
  J += "  \"scenario\": \"" + jsonEscape(Sc.Name) + "\",\n";
  J += "  \"profile\": \"" + jsonEscape(Sc.Profile) + "\",\n";
  J += "  \"seed\": " + std::to_string(Sc.Seed) + ",\n";
  J += "  \"ok\": " + std::string(boolean(ok())) + ",\n";
  J += "  \"edits\": " + std::to_string(EditLog.size()) + ",\n";
  J += "  \"phases\": [";
  for (size_t I = 0; I != Outcomes.size(); ++I) {
    const ScenarioPhaseOutcome &O = Outcomes[I];
    J += I ? ",\n    " : "\n    ";
    J += "{\"phase\": \"" + jsonEscape(O.Phase) + "\"";
    J += ", \"iteration\": " + std::to_string(O.Iteration);
    J += ", \"changed_files\": " + std::to_string(O.ChangedFiles.size());
    J += ", \"build_ok\": " + std::string(boolean(O.BuildOk));
    J += ", \"files_compiled\": " + std::to_string(O.FilesCompiled);
    J += ", \"files_total\": " + std::to_string(O.FilesTotal);
    J += ", \"deps_missing\": " + std::to_string(O.DepsMissing);
    J += ", \"deps_redundant\": " + std::to_string(O.DepsRedundant);
    J += ", \"scratch_match\": " + std::string(boolean(O.ScratchMatch));
    J += ", \"findings\": " + std::to_string(O.Findings.size());
    J += "}";
  }
  J += "\n  ],\n";
  J += "  \"findings\": [";
  bool First = true;
  for (const ScenarioPhaseOutcome &O : Outcomes)
    for (const std::string &F : O.Findings) {
      J += First ? "" : ", ";
      J += "\"" + jsonEscape(F) + "\"";
      First = false;
    }
  J += "]\n}\n";
  return J;
}
