//===- support/Hashing.h - Stable 64-bit content hashing --------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable (process- and platform-independent) 64-bit hashing used for
/// content fingerprints persisted in the BuildStateDB. Based on FNV-1a
/// with a 64-bit mixing finalizer. Stability across runs matters:
/// fingerprints from a previous build must compare equal in the next
/// build, so std::hash (which may be seeded) is unsuitable.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_HASHING_H
#define SC_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sc {

/// FNV-1a offset basis / prime for 64-bit hashes.
inline constexpr uint64_t FNVOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t FNVPrime = 0x100000001b3ULL;

/// Final avalanche mix (from SplitMix64) to spread low-entropy inputs.
inline uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// Hashes a raw byte range with FNV-1a.
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = FNVOffsetBasis) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= FNVPrime;
  }
  return H;
}

/// Hashes a string view (content only, not the pointer).
inline uint64_t hashString(std::string_view S) {
  return hashBytes(S.data(), S.size());
}

/// Combines two hash values into one, order-sensitively.
inline uint64_t hashCombine(uint64_t A, uint64_t B) {
  return mix64(A ^ (B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2)));
}

/// Incremental hasher for building structural fingerprints.
///
/// Feed scalar values and strings in a canonical order; the resulting
/// digest is stable across runs and platforms.
class HashBuilder {
public:
  HashBuilder() = default;

  HashBuilder &addU64(uint64_t V) {
    unsigned char Buf[8];
    for (int I = 0; I != 8; ++I)
      Buf[I] = static_cast<unsigned char>(V >> (8 * I));
    State = hashBytes(Buf, sizeof(Buf), State);
    return *this;
  }

  HashBuilder &addI64(int64_t V) { return addU64(static_cast<uint64_t>(V)); }

  HashBuilder &addU32(uint32_t V) { return addU64(V); }

  HashBuilder &addBool(bool V) { return addU64(V ? 1 : 0); }

  /// Adds string content, length-prefixed so "ab"+"c" != "a"+"bc".
  HashBuilder &addString(std::string_view S) {
    addU64(S.size());
    State = hashBytes(S.data(), S.size(), State);
    return *this;
  }

  /// Returns the final mixed digest.
  uint64_t digest() const { return mix64(State); }

private:
  uint64_t State = FNVOffsetBasis;
};

} // namespace sc

#endif // SC_SUPPORT_HASHING_H
