//===- support/Socket.cpp - Unix-domain socket wrapper -------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sc;

// Linux spells write-side SIGPIPE suppression MSG_NOSIGNAL; the BSDs
// (including macOS) spell it SO_NOSIGPIPE on the socket instead. Cover
// both so a dead peer is always a send error, never a fatal signal.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace {

/// Best-effort SO_NOSIGPIPE for platforms without MSG_NOSIGNAL. On
/// Linux this is a no-op (the flag covers it); elsewhere it is the only
/// line of defense, applied to every socket we create or accept.
void suppressSigpipe(int FD) {
#ifdef SO_NOSIGPIPE
  int One = 1;
  ::setsockopt(FD, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof(One));
#else
  (void)FD;
#endif
}

bool fillAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string *Err) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long (" + std::to_string(Path.size()) +
             " bytes; Unix sockets allow " +
             std::to_string(sizeof(Addr.sun_path) - 1) + "): " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

using Clock = std::chrono::steady_clock;

/// Milliseconds from now until \p Deadline, clamped to >= 0. A
/// zero-initialized (epoch) deadline means "no deadline" and maps to
/// poll's infinite wait (-1).
int remainingMs(Clock::time_point Deadline) {
  if (Deadline == Clock::time_point())
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left > 0 ? static_cast<int>(Left) : 0;
}

/// Waits until \p FD is ready for \p Events (POLLIN / POLLOUT) or
/// \p Deadline passes. True on ready, false on timeout or error (with
/// errno left describing the failure for the caller).
bool waitReady(int FD, short Events, Clock::time_point Deadline,
               bool *TimedOut) {
  if (TimedOut)
    *TimedOut = false;
  pollfd P{FD, Events, 0};
  for (;;) {
    int R = ::poll(&P, 1, remainingMs(Deadline));
    if (R > 0)
      return true;
    if (R == 0) {
      if (TimedOut)
        *TimedOut = true;
      return false;
    }
    if (errno != EINTR)
      return false;
  }
}

/// Waits until \p FD is readable within \p TimeoutMs of *now* (a plain
/// single wait, for accept()).
bool waitReadable(int FD, unsigned TimeoutMs, bool *TimedOut) {
  return waitReady(FD, POLLIN,
                   Clock::now() + std::chrono::milliseconds(TimeoutMs),
                   TimedOut);
}

} // namespace

UnixSocket UnixSocket::listenOn(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Err))
    return UnixSocket();
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    if (Err)
      *Err = std::strerror(errno);
    return UnixSocket();
  }
  suppressSigpipe(FD);
  if (::bind(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(FD, 8) != 0) {
    if (Err)
      *Err = std::strerror(errno);
    ::close(FD);
    return UnixSocket();
  }
  return UnixSocket(FD);
}

UnixSocket UnixSocket::connectTo(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Err))
    return UnixSocket();
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    if (Err)
      *Err = std::strerror(errno);
    return UnixSocket();
  }
  suppressSigpipe(FD);
  int R;
  do
    R = ::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  while (R != 0 && errno == EINTR);
  if (R != 0) {
    if (Err)
      *Err = std::strerror(errno);
    ::close(FD);
    return UnixSocket();
  }
  return UnixSocket(FD);
}

UnixSocket::UnixSocket(UnixSocket &&Other) noexcept : FD(Other.FD) {
  Other.FD = -1;
}

UnixSocket &UnixSocket::operator=(UnixSocket &&Other) noexcept {
  if (this != &Other) {
    close();
    FD = Other.FD;
    Other.FD = -1;
  }
  return *this;
}

UnixSocket::~UnixSocket() { close(); }

void UnixSocket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
}

UnixSocket UnixSocket::accept(unsigned TimeoutMs, bool *TimedOut) {
  if (!waitReadable(FD, TimeoutMs, TimedOut))
    return UnixSocket();
  int Conn;
  do
    Conn = ::accept(FD, nullptr, nullptr);
  while (Conn < 0 && errno == EINTR);
  if (Conn < 0)
    return UnixSocket();
  suppressSigpipe(Conn);
  return UnixSocket(Conn);
}

bool UnixSocket::sendFrame(const std::string &Payload, unsigned TimeoutMs) {
  if (FD < 0 || Payload.size() > MaxFramePayload)
    return false;
  const uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Header[4] = {
      static_cast<unsigned char>(Len & 0xff),
      static_cast<unsigned char>((Len >> 8) & 0xff),
      static_cast<unsigned char>((Len >> 16) & 0xff),
      static_cast<unsigned char>((Len >> 24) & 0xff)};
  std::string Wire(reinterpret_cast<char *>(Header), 4);
  Wire += Payload;
  // One deadline for the whole frame (0 = none): a peer that stopped
  // draining its receive buffer fails the send instead of pinning the
  // writing thread forever. MSG_DONTWAIT keeps the send itself from
  // blocking past the poll — waitReady proved writability, so progress
  // of at least one byte is guaranteed whenever it returns true.
  const auto Deadline =
      TimeoutMs ? Clock::now() + std::chrono::milliseconds(TimeoutMs)
                : Clock::time_point();
  const int SendFlags = MSG_NOSIGNAL | (TimeoutMs ? MSG_DONTWAIT : 0);
  size_t Off = 0;
  while (Off != Wire.size()) {
    if (TimeoutMs && !waitReady(FD, POLLOUT, Deadline, nullptr))
      return false;
    ssize_t N = ::send(FD, Wire.data() + Off, Wire.size() - Off, SendFlags);
    if (N <= 0) {
      if (N < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool UnixSocket::readable(unsigned TimeoutMs) {
  if (FD < 0)
    return false;
  bool TimedOut = false;
  return waitReadable(FD, TimeoutMs, &TimedOut);
}

bool UnixSocket::recvFrame(std::string &Payload, unsigned TimeoutMs,
                           RecvStatus *Status) {
  auto Fail = [&](RecvStatus R) {
    if (Status)
      *Status = R;
    return false;
  };
  if (FD < 0)
    return Fail(RecvStatus::Disconnected);
  // One deadline for the *whole frame*: header and payload together
  // must arrive within TimeoutMs. Per-chunk waits would let a
  // slow-loris peer (one byte per poll interval) hold a server thread
  // indefinitely; a total deadline bounds the worst case exactly.
  const auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  bool TimedOut = false;
  auto ReadExactly = [&](char *Buf, size_t Want) {
    size_t Off = 0;
    while (Off != Want) {
      if (!waitReady(FD, POLLIN, Deadline, &TimedOut))
        return false;
      ssize_t N = ::recv(FD, Buf + Off, Want - Off, 0);
      if (N <= 0) {
        if (N < 0 && errno == EINTR)
          continue;
        return false; // Disconnect or hard error.
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  };
  unsigned char Header[4];
  if (!ReadExactly(reinterpret_cast<char *>(Header), 4))
    return Fail(TimedOut ? RecvStatus::TimedOut : RecvStatus::Disconnected);
  const uint32_t Len = static_cast<uint32_t>(Header[0]) |
                       (static_cast<uint32_t>(Header[1]) << 8) |
                       (static_cast<uint32_t>(Header[2]) << 16) |
                       (static_cast<uint32_t>(Header[3]) << 24);
  // Reject before resize(): a corrupt header must never drive an
  // allocation.
  if (Len > MaxFramePayload)
    return Fail(RecvStatus::ProtocolError);
  Payload.resize(Len);
  if (Len != 0 && !ReadExactly(Payload.data(), Len))
    return Fail(TimedOut ? RecvStatus::TimedOut : RecvStatus::Disconnected);
  if (Status)
    *Status = RecvStatus::Ok;
  return true;
}
