//===- support/Socket.cpp - Unix-domain socket wrapper -------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sc;

// Linux spells write-side SIGPIPE suppression MSG_NOSIGNAL; the BSDs
// (including macOS) spell it SO_NOSIGPIPE on the socket instead. Cover
// both so a dead peer is always a send error, never a fatal signal.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace {

/// Best-effort SO_NOSIGPIPE for platforms without MSG_NOSIGNAL. On
/// Linux this is a no-op (the flag covers it); elsewhere it is the only
/// line of defense, applied to every socket we create or accept.
void suppressSigpipe(int FD) {
#ifdef SO_NOSIGPIPE
  int One = 1;
  ::setsockopt(FD, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof(One));
#else
  (void)FD;
#endif
}

bool fillAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string *Err) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long (" + std::to_string(Path.size()) +
             " bytes; Unix sockets allow " +
             std::to_string(sizeof(Addr.sun_path) - 1) + "): " + Path;
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// Waits until \p FD is readable. True on ready, false on timeout or
/// error (with errno left describing the failure for the caller).
bool waitReadable(int FD, unsigned TimeoutMs, bool *TimedOut) {
  if (TimedOut)
    *TimedOut = false;
  pollfd P{FD, POLLIN, 0};
  for (;;) {
    int R = ::poll(&P, 1, static_cast<int>(TimeoutMs));
    if (R > 0)
      return true;
    if (R == 0) {
      if (TimedOut)
        *TimedOut = true;
      return false;
    }
    if (errno != EINTR)
      return false;
  }
}

} // namespace

UnixSocket UnixSocket::listenOn(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Err))
    return UnixSocket();
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    if (Err)
      *Err = std::strerror(errno);
    return UnixSocket();
  }
  suppressSigpipe(FD);
  if (::bind(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(FD, 8) != 0) {
    if (Err)
      *Err = std::strerror(errno);
    ::close(FD);
    return UnixSocket();
  }
  return UnixSocket(FD);
}

UnixSocket UnixSocket::connectTo(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Err))
    return UnixSocket();
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0) {
    if (Err)
      *Err = std::strerror(errno);
    return UnixSocket();
  }
  suppressSigpipe(FD);
  int R;
  do
    R = ::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  while (R != 0 && errno == EINTR);
  if (R != 0) {
    if (Err)
      *Err = std::strerror(errno);
    ::close(FD);
    return UnixSocket();
  }
  return UnixSocket(FD);
}

UnixSocket::UnixSocket(UnixSocket &&Other) noexcept : FD(Other.FD) {
  Other.FD = -1;
}

UnixSocket &UnixSocket::operator=(UnixSocket &&Other) noexcept {
  if (this != &Other) {
    close();
    FD = Other.FD;
    Other.FD = -1;
  }
  return *this;
}

UnixSocket::~UnixSocket() { close(); }

void UnixSocket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
}

UnixSocket UnixSocket::accept(unsigned TimeoutMs, bool *TimedOut) {
  if (!waitReadable(FD, TimeoutMs, TimedOut))
    return UnixSocket();
  int Conn;
  do
    Conn = ::accept(FD, nullptr, nullptr);
  while (Conn < 0 && errno == EINTR);
  if (Conn < 0)
    return UnixSocket();
  suppressSigpipe(Conn);
  return UnixSocket(Conn);
}

bool UnixSocket::sendFrame(const std::string &Payload) {
  if (FD < 0 || Payload.size() > MaxFramePayload)
    return false;
  const uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Header[4] = {
      static_cast<unsigned char>(Len & 0xff),
      static_cast<unsigned char>((Len >> 8) & 0xff),
      static_cast<unsigned char>((Len >> 16) & 0xff),
      static_cast<unsigned char>((Len >> 24) & 0xff)};
  std::string Wire(reinterpret_cast<char *>(Header), 4);
  Wire += Payload;
  size_t Off = 0;
  while (Off != Wire.size()) {
    ssize_t N = ::send(FD, Wire.data() + Off, Wire.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool UnixSocket::recvFrame(std::string &Payload, unsigned TimeoutMs,
                           RecvStatus *Status) {
  auto Fail = [&](RecvStatus R) {
    if (Status)
      *Status = R;
    return false;
  };
  if (FD < 0)
    return Fail(RecvStatus::Disconnected);
  bool TimedOut = false;
  auto ReadExactly = [&](char *Buf, size_t Want) {
    size_t Off = 0;
    while (Off != Want) {
      if (!waitReadable(FD, TimeoutMs, &TimedOut))
        return false;
      ssize_t N = ::recv(FD, Buf + Off, Want - Off, 0);
      if (N <= 0) {
        if (N < 0 && errno == EINTR)
          continue;
        return false; // Disconnect or hard error.
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  };
  unsigned char Header[4];
  if (!ReadExactly(reinterpret_cast<char *>(Header), 4))
    return Fail(TimedOut ? RecvStatus::TimedOut : RecvStatus::Disconnected);
  const uint32_t Len = static_cast<uint32_t>(Header[0]) |
                       (static_cast<uint32_t>(Header[1]) << 8) |
                       (static_cast<uint32_t>(Header[2]) << 16) |
                       (static_cast<uint32_t>(Header[3]) << 24);
  // Reject before resize(): a corrupt header must never drive an
  // allocation.
  if (Len > MaxFramePayload)
    return Fail(RecvStatus::ProtocolError);
  Payload.resize(Len);
  if (Len != 0 && !ReadExactly(Payload.data(), Len))
    return Fail(TimedOut ? RecvStatus::TimedOut : RecvStatus::Disconnected);
  if (Status)
    *Status = RecvStatus::Ok;
  return true;
}
