//===- support/ContentionStats.cpp - Lock contention counters ------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ContentionStats.h"

using namespace sc;

ContentionCounters &sc::constantUniquingContention() {
  static ContentionCounters C;
  return C;
}

ContentionCounters &sc::sharedUseContention() {
  static ContentionCounters C;
  return C;
}

ContentionCounters &sc::statefulPolicyContention() {
  static ContentionCounters C;
  return C;
}

ContentionCounters &sc::fingerprintMemoContention() {
  static ContentionCounters C;
  return C;
}

ContentionCounters &sc::stateDBContention() {
  static ContentionCounters C;
  return C;
}

ContentionCounters &sc::analysisSlotContention() {
  static ContentionCounters C;
  return C;
}
