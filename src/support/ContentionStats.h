//===- support/ContentionStats.h - Lock contention counters -----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters for contention on the compiler's hot shared
/// locks (constant uniquing, shared-value user lists, analysis slots,
/// state-DB shards, fingerprint memo). Acquisition sites are
/// instrumented with timedLock()/contendedHit(): the uncontended fast
/// path costs one relaxed increment, the contended path additionally
/// records the nanoseconds spent blocked.
///
/// The counters are cumulative for the process; BuildDriver snapshots
/// them before and after each build and publishes the DELTAS into the
/// build's MetricsRegistry as lock.* metrics (docs/OBSERVABILITY.md),
/// making lock contention a first-class, regression-trackable number.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_CONTENTIONSTATS_H
#define SC_SUPPORT_CONTENTIONSTATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace sc {

/// One instrumented lock family (all shards of one structure share a
/// counter group — per-shard attribution is not worth the memory).
struct ContentionCounters {
  std::atomic<uint64_t> Acquisitions{0}; ///< Total lock() calls.
  std::atomic<uint64_t> Contended{0};    ///< Calls that had to block/spin.
  std::atomic<uint64_t> WaitNs{0};       ///< Nanoseconds blocked (mutexes).
};

/// Plain-data snapshot of one counter group.
struct ContentionSnapshot {
  uint64_t Acquisitions = 0;
  uint64_t Contended = 0;
  uint64_t WaitNs = 0;
};

inline ContentionSnapshot snapshot(const ContentionCounters &C) {
  ContentionSnapshot S;
  S.Acquisitions = C.Acquisitions.load(std::memory_order_relaxed);
  S.Contended = C.Contended.load(std::memory_order_relaxed);
  S.WaitNs = C.WaitNs.load(std::memory_order_relaxed);
  return S;
}

//===--- Instrumented lock families ----------------------------------------===//
// Function-local statics so the groups are usable from any layer
// (including sc_ir, which sits below sc_support consumers) without
// init-order hazards.

ContentionCounters &constantUniquingContention(); ///< Module constant pools.
ContentionCounters &sharedUseContention();        ///< Shared-value user lists.
ContentionCounters &statefulPolicyContention();   ///< StatefulInstrumentation.
ContentionCounters &fingerprintMemoContention();  ///< Compiler FingerprintMemo.
ContentionCounters &stateDBContention();          ///< BuildStateDB shards.
ContentionCounters &analysisSlotContention();     ///< AnalysisManager slots.

/// Locks \p Mu with contention accounting: try_lock first (uncontended
/// fast path), and only on failure count the acquisition as contended
/// and time the blocking wait.
template <typename MutexT>
inline std::unique_lock<MutexT> timedLock(MutexT &Mu, ContentionCounters &C) {
  C.Acquisitions.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<MutexT> Lock(Mu, std::try_to_lock);
  if (Lock.owns_lock())
    return Lock;
  C.Contended.fetch_add(1, std::memory_order_relaxed);
  auto T0 = std::chrono::steady_clock::now();
  Lock.lock();
  auto T1 = std::chrono::steady_clock::now();
  C.WaitNs.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count(),
      std::memory_order_relaxed);
  return Lock;
}

} // namespace sc

#endif // SC_SUPPORT_CONTENTIONSTATS_H
