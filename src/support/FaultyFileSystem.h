//===- support/FaultyFileSystem.h - Fault-injecting VFS decorator -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the persistence layer: wraps any
/// VirtualFileSystem and fires a scheduled fault on the Nth matching
/// operation. Four fault classes model the real-world failure menagerie
/// a build directory sees:
///
///   torn    write stops halfway and reports failure (power loss /
///           partial flush without atomic rename)
///   enospc  write fails with nothing written (disk full); may be
///           sticky — every later write fails too
///   read    a read reports the file unreadable (bad sector, EIO)
///   crash   the process "dies" mid-operation: a half write is left
///           behind and CrashPoint is thrown (tests and scbuild catch
///           it at the top; nothing below may intercept it)
///
/// The invariant the robustness suite proves on top of this: every
/// injected fault yields a correct — possibly cold — next build, never
/// a miscompile.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_FAULTYFILESYSTEM_H
#define SC_SUPPORT_FAULTYFILESYSTEM_H

#include "support/FileSystem.h"

#include <optional>
#include <string>
#include <vector>

namespace sc {

/// Thrown by FaultyFileSystem to simulate the process dying inside a
/// filesystem operation. Deliberately NOT derived from std::exception:
/// generic error containment (e.g. the scheduler's per-TU catch) must
/// not swallow a simulated process death.
struct CrashPoint {
  std::string Op; // Which operation "died", for diagnostics.
};

class FaultyFileSystem : public VirtualFileSystem {
public:
  enum class Fault {
    TornWrite,  // Nth writeFile: half the bytes land, returns false.
    WriteError, // Nth writeFile: nothing lands, returns false (ENOSPC).
    ReadError,  // Nth readFile: returns nullopt.
    Crash,      // Nth mutating op: partial effect, throws CrashPoint.
  };

  explicit FaultyFileSystem(VirtualFileSystem &Base) : Base(Base) {}

  /// Schedules \p K to fire on the Nth (1-based) matching operation.
  /// \p Sticky keeps the fault firing on every later match too
  /// (modelling a persistently full disk). Multiple faults may be
  /// armed at once.
  void arm(Fault K, unsigned Nth, bool Sticky = false);

  /// Parses "torn:N" / "enospc:N" / "enospc*:N" (sticky) / "read:N" /
  /// "crash:N" and arms it. Returns false on a malformed spec.
  bool armSpec(const std::string &Spec);

  /// Operation counters (match the 1-based scheduling indices).
  unsigned readOps() const { return ReadCount; }
  unsigned writeOps() const { return WriteCount; }
  unsigned mutatingOps() const { return MutateCount; }
  unsigned faultsFired() const { return Fired; }

  //===--- VirtualFileSystem ---------------------------------------------===//

  std::optional<std::string> readFile(const std::string &Path) override;
  bool writeFile(const std::string &Path, const std::string &Content) override;
  bool exists(const std::string &Path) override;
  bool removeFile(const std::string &Path) override;
  std::vector<std::string> listFiles() override;
  bool renameFile(const std::string &From, const std::string &To) override;
  bool syncFile(const std::string &Path) override;
  bool createExclusive(const std::string &Path,
                       const std::string &Content) override;
  std::string lastError() const override;

private:
  struct Armed {
    Fault K;
    unsigned Nth;
    bool Sticky;
    bool Spent = false;
  };

  /// True when an armed fault of kind \p K matches operation index
  /// \p Count (consuming one-shot faults).
  bool fires(Fault K, unsigned Count);

  /// Throws CrashPoint when a crash is scheduled at mutating-op index
  /// \p Count.
  void maybeCrash(unsigned Count, const std::string &Op);

  VirtualFileSystem &Base;
  std::vector<Armed> Faults;
  unsigned ReadCount = 0;
  unsigned WriteCount = 0;
  unsigned MutateCount = 0;
  unsigned Fired = 0;
  std::string LastErr;
};

} // namespace sc

#endif // SC_SUPPORT_FAULTYFILESYSTEM_H
