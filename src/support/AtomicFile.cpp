//===- support/AtomicFile.cpp - Crash-safe whole-file writes -------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

using namespace sc;

std::string sc::atomicTempPath(const std::string &Path) {
  return Path + ".tmp";
}

bool sc::atomicWriteFile(VirtualFileSystem &FS, const std::string &Path,
                         const std::string &Content) {
  const std::string Tmp = atomicTempPath(Path);
  if (!FS.writeFile(Tmp, Content)) {
    FS.removeFile(Tmp); // Drop a torn temp; the destination is intact.
    return false;
  }
  if (!FS.syncFile(Tmp)) {
    FS.removeFile(Tmp);
    return false;
  }
  if (!FS.renameFile(Tmp, Path)) {
    FS.removeFile(Tmp);
    return false;
  }
  return true;
}
