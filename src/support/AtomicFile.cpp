//===- support/AtomicFile.cpp - Crash-safe whole-file writes -------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <atomic>
#include <cctype>

#include <unistd.h>

using namespace sc;

namespace {

/// Per-process attempt counter: combined with the PID it makes every
/// staged temp name unique, so a daemon and a CLI build (or two racing
/// builds) staging the same artifact can never rename each other's
/// half-written bytes into place.
std::atomic<uint64_t> NextAttempt{1};

/// True when [I, End) is one-or-more decimal digits ending exactly at
/// \p End.
bool isDigits(const std::string &S, size_t I, size_t End) {
  if (I >= End)
    return false;
  for (; I != End; ++I)
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
  return true;
}

} // namespace

std::string sc::atomicTempPath(const std::string &Path) {
  return Path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(NextAttempt.fetch_add(1, std::memory_order_relaxed));
}

bool sc::isAtomicTempPath(const std::string &Path) {
  // "<dest>.tmp.<pid>.<counter>", or the legacy fixed "<dest>.tmp".
  const std::string Mark = ".tmp";
  size_t Pos = Path.rfind(Mark);
  // The destination component must be non-empty: a path whose basename
  // *starts* with ".tmp" is a hidden file, not one of our temps.
  if (Pos == std::string::npos || Pos == 0 || Path[Pos - 1] == '/')
    return false;
  size_t After = Pos + Mark.size();
  if (After == Path.size())
    return true; // Legacy "<dest>.tmp" from older builds.
  if (Path[After] != '.')
    return false;
  size_t Dot = Path.find('.', After + 1);
  if (Dot == std::string::npos)
    return false;
  return isDigits(Path, After + 1, Dot) &&
         isDigits(Path, Dot + 1, Path.size());
}

bool sc::atomicWriteFile(VirtualFileSystem &FS, const std::string &Path,
                         const std::string &Content) {
  const std::string Tmp = atomicTempPath(Path);
  if (!FS.writeFile(Tmp, Content)) {
    FS.removeFile(Tmp); // Drop a torn temp; the destination is intact.
    return false;
  }
  if (!FS.syncFile(Tmp)) {
    FS.removeFile(Tmp);
    return false;
  }
  if (!FS.renameFile(Tmp, Path)) {
    FS.removeFile(Tmp);
    return false;
  }
  return true;
}

unsigned sc::sweepAtomicTemps(VirtualFileSystem &FS,
                              const std::string &DirPrefix) {
  const std::string Prefix = DirPrefix.empty() ? "" : DirPrefix + "/";
  unsigned Removed = 0;
  for (const std::string &Path : FS.listFiles()) {
    if (!Prefix.empty() && Path.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    if (isAtomicTempPath(Path) && FS.removeFile(Path))
      ++Removed;
  }
  return Removed;
}
