//===- support/TaskPool.h - Work-stealing thread pool -----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool shared by BOTH parallelism levels of a
/// build: TU-level compile jobs (build_sys/Scheduler) and function-
/// level pass tasks inside one compilation (pass/PassManager). One
/// pool per BuildDriver, sized by BuildOptions::Jobs.
///
/// Each worker owns a deque: it pushes/pops its own back (LIFO, cache-
/// warm) and steals from other workers' fronts (FIFO, oldest first).
/// parallelFor() never blocks the submitting thread on a free worker —
/// the caller claims and executes items itself while idle workers join
/// through stolen helper tasks. That makes nested parallelism (a
/// compile job fanning out per-function tasks) deadlock-free by
/// construction.
///
/// Threads waiting at a parallelFor barrier do not sleep while the
/// pool still has queued work: they steal and execute unrelated tasks
/// (bounded recursion depth) until their own loop completes. This is
/// what fuses the function-pass pipelines of different dirty TUs into
/// ONE shared frontier — a compile job whose intra-TU fan-out has a
/// straggler lends its thread to another TU's tasks instead of idling
/// at a per-TU barrier. Idle threads spin briefly, then park on a
/// condition variable (no busy-wait; see stats()).
///
/// The pool provides throughput only, never ordering: callers must be
/// correct under any execution interleaving. Determinism of compiler
/// output is guaranteed one level up (disjoint result slots, per-
/// function dormancy records, commutative stat merges).
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_TASKPOOL_H
#define SC_SUPPORT_TASKPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sc {

/// Point-in-time snapshot of a pool's scheduling counters. Deltas of
/// these are published per build as pool.* metrics (see
/// docs/OBSERVABILITY.md) and asserted on by tests (a drained pool must
/// park, not spin).
struct TaskPoolStats {
  uint64_t TasksExecuted = 0; ///< Tasks run to completion (any thread).
  uint64_t StealAttempts = 0; ///< Scans of other workers' deques.
  uint64_t Steals = 0;        ///< Tasks taken from another deque.
  uint64_t HelpedTasks = 0;   ///< Tasks run by a thread waiting at a
                              ///< parallelFor barrier (cross-TU help).
  uint64_t SpinIterations = 0; ///< Bounded pre-park spin iterations.
  uint64_t Parks = 0;          ///< Times a thread slept on the CV.
  uint64_t ParkWaitNs = 0;     ///< Total nanoseconds spent parked.
};

class TaskPool {
public:
  /// \p Concurrency is the total number of executing threads,
  /// including the calling thread: Concurrency - 1 workers are
  /// spawned. 0 is treated as 1 (fully sequential, no threads).
  explicit TaskPool(unsigned Concurrency);

  /// Drains nothing: outstanding async tasks must be waited for (or
  /// be helper tasks of an already-finished parallelFor, which are
  /// no-ops) before destruction.
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  /// Total executing threads (workers + the submitting thread).
  unsigned concurrency() const { return NumWorkers + 1; }

  /// Upper bound (exclusive) on the Slot values parallelFor passes to
  /// its body; size per-participant accumulators with this.
  unsigned maxSlots() const { return NumWorkers + 1; }

  /// Runs Body(I, Slot) for every I in [0, N) and blocks until all N
  /// executed. The calling thread participates; idle workers steal a
  /// share. Slot < maxSlots() identifies the participating executor of
  /// that invocation (stable within one parallelFor call), so bodies
  /// can accumulate into per-slot state without synchronization.
  /// Item execution order and the item->slot assignment are
  /// nondeterministic; bodies must only write disjoint or per-slot
  /// state. Safe to call from inside a task (nested parallelism).
  /// While waiting for stragglers the calling thread executes other
  /// queued pool tasks, so bodies of independent parallelFor calls
  /// must tolerate re-entrant execution on one thread.
  void parallelFor(size_t N,
                   const std::function<void(size_t, unsigned)> &Body);

  /// Enqueues a fire-and-forget task. Pair with wait().
  void async(std::function<void()> Fn);

  /// Blocks until every async task has finished; the calling thread
  /// executes queued tasks while it waits.
  void wait();

  /// Snapshot of the lifetime scheduling counters.
  TaskPoolStats stats() const;

private:
  struct WorkerState {
    std::mutex Mu;
    std::deque<std::function<void()>> Deque;
  };

  struct StatCounters {
    std::atomic<uint64_t> TasksExecuted{0};
    std::atomic<uint64_t> StealAttempts{0};
    std::atomic<uint64_t> Steals{0};
    std::atomic<uint64_t> HelpedTasks{0};
    std::atomic<uint64_t> SpinIterations{0};
    std::atomic<uint64_t> Parks{0};
    std::atomic<uint64_t> ParkWaitNs{0};
  };

  void workerLoop(unsigned Index);

  /// Pops from \p Index's own back, else steals from another front.
  /// Pass -1 for threads without a deque (the submitting thread).
  /// Returns an empty function when every deque is empty.
  std::function<void()> grabTask(int Index);

  /// Executes a dequeued task with pending-count bookkeeping and
  /// drain notification.
  void runTask(std::function<void()> &Fn);

  void enqueue(std::function<void()> Fn);

  unsigned NumWorkers = 0;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::vector<std::thread> Threads;

  std::mutex SleepMu;
  /// Single pool-wide CV: workers park on it, parallelFor barriers and
  /// wait() park on it; enqueue and completion events notify it.
  std::condition_variable SleepCv;
  std::atomic<bool> Stopping{false};
  /// Tasks sitting in deques (not yet claimed by a thread).
  std::atomic<size_t> NumQueued{0};
  /// Queued + currently-executing tasks (drives wait()).
  std::atomic<size_t> NumPending{0};
  std::atomic<unsigned> NextVictim{0};
  StatCounters Stats;
};

} // namespace sc

#endif // SC_SUPPORT_TASKPOOL_H
