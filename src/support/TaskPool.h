//===- support/TaskPool.h - Work-stealing thread pool -----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool shared by BOTH parallelism levels of a
/// build: TU-level compile jobs (build_sys/Scheduler) and function-
/// level pass tasks inside one compilation (pass/PassManager). One
/// pool per BuildDriver, sized by BuildOptions::Jobs.
///
/// Each worker owns a deque: it pushes/pops its own back (LIFO, cache-
/// warm) and steals from other workers' fronts (FIFO, oldest first).
/// parallelFor() never blocks the submitting thread on a free worker —
/// the caller claims and executes items itself while idle workers join
/// through stolen helper tasks. That makes nested parallelism (a
/// compile job fanning out per-function tasks) deadlock-free by
/// construction, and it is what keeps every core busy when a build has
/// one huge dirty TU: the single compile job occupies one worker and
/// the remaining workers steal its function tasks.
///
/// The pool provides throughput only, never ordering: callers must be
/// correct under any execution interleaving. Determinism of compiler
/// output is guaranteed one level up (disjoint result slots, per-
/// function dormancy records, commutative stat merges).
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_TASKPOOL_H
#define SC_SUPPORT_TASKPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sc {

class TaskPool {
public:
  /// \p Concurrency is the total number of executing threads,
  /// including the calling thread: Concurrency - 1 workers are
  /// spawned. 0 is treated as 1 (fully sequential, no threads).
  explicit TaskPool(unsigned Concurrency);

  /// Drains nothing: outstanding async tasks must be waited for (or
  /// be helper tasks of an already-finished parallelFor, which are
  /// no-ops) before destruction.
  ~TaskPool();

  TaskPool(const TaskPool &) = delete;
  TaskPool &operator=(const TaskPool &) = delete;

  /// Total executing threads (workers + the submitting thread).
  unsigned concurrency() const { return NumWorkers + 1; }

  /// Upper bound (exclusive) on the Slot values parallelFor passes to
  /// its body; size per-participant accumulators with this.
  unsigned maxSlots() const { return NumWorkers + 1; }

  /// Runs Body(I, Slot) for every I in [0, N) and blocks until all N
  /// executed. The calling thread participates; idle workers steal a
  /// share. Slot < maxSlots() identifies the participating executor of
  /// that invocation (stable within one parallelFor call), so bodies
  /// can accumulate into per-slot state without synchronization.
  /// Item execution order and the item->slot assignment are
  /// nondeterministic; bodies must only write disjoint or per-slot
  /// state. Safe to call from inside a task (nested parallelism).
  void parallelFor(size_t N,
                   const std::function<void(size_t, unsigned)> &Body);

  /// Enqueues a fire-and-forget task. Pair with wait().
  void async(std::function<void()> Fn);

  /// Blocks until every async task has finished; the calling thread
  /// executes queued tasks while it waits.
  void wait();

private:
  struct WorkerState {
    std::mutex Mu;
    std::deque<std::function<void()>> Deque;
  };

  void workerLoop(unsigned Index);

  /// Pops from \p Index's own back, else steals from another front.
  /// Returns an empty function when every deque is empty.
  std::function<void()> grabTask(unsigned Index);

  void enqueue(std::function<void()> Fn);

  unsigned NumWorkers = 0;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  std::vector<std::thread> Threads;

  std::mutex SleepMu;
  std::condition_variable SleepCv;
  std::condition_variable DrainCv;
  std::atomic<bool> Stopping{false};
  /// Tasks sitting in deques (not yet claimed by a thread).
  std::atomic<size_t> NumQueued{0};
  /// Queued + currently-executing tasks (drives wait()).
  std::atomic<size_t> NumPending{0};
  std::atomic<unsigned> NextVictim{0};
};

} // namespace sc

#endif // SC_SUPPORT_TASKPOOL_H
