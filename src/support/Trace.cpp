//===- support/Trace.cpp - Build-telemetry span recorder -----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <cstdio>

using namespace sc;

std::string sc::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

namespace {

/// Monotonically increasing id distinguishing recorder instances, so a
/// thread_local cache entry can never match a recorder reallocated at
/// the address of a destroyed one.
std::atomic<uint64_t> NextEpoch{1};

/// One event as a Chrome trace-event JSON object (ts/dur in
/// microseconds relative to \p BaseNs). Shared by the whole-build
/// toChromeJson() merge and the streaming flush() path, so both sinks
/// emit byte-identical event objects.
std::string chromeEventJson(const TraceEvent &E, uint64_t BaseNs) {
  char Num[64];
  const uint64_t RelNs = E.StartNs >= BaseNs ? E.StartNs - BaseNs : 0;
  std::string Obj = "{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
                    jsonEscape(E.Category) + "\"";
  if (E.K == TraceEvent::Kind::Span) {
    std::snprintf(Num, sizeof(Num), "%.3f",
                  static_cast<double>(RelNs) / 1000.0);
    Obj += ",\"ph\":\"X\",\"ts\":";
    Obj += Num;
    std::snprintf(Num, sizeof(Num), "%.3f",
                  static_cast<double>(E.DurNs) / 1000.0);
    Obj += ",\"dur\":";
    Obj += Num;
  } else {
    std::snprintf(Num, sizeof(Num), "%.3f",
                  static_cast<double>(RelNs) / 1000.0);
    Obj += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    Obj += Num;
  }
  Obj += ",\"pid\":1,\"tid\":" + std::to_string(E.Tid);
  if (!E.ArgsJson.empty())
    Obj += ",\"args\":" + E.ArgsJson;
  Obj += "}";
  return Obj;
}

std::string threadNameJson(uint32_t Tid, const std::string &Name) {
  return "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(Tid) + ",\"args\":{\"name\":\"" + jsonEscape(Name) +
         "\"}}";
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceSink / FileTraceSink
//===----------------------------------------------------------------------===//

TraceSink::~TraceSink() = default;

FileTraceSink::FileTraceSink(std::string HostPath) {
  F = std::fopen(HostPath.c_str(), "wb");
  if (F)
    std::fputs("[", F);
}

FileTraceSink::~FileTraceSink() { close(); }

bool FileTraceSink::event(const std::string &EventJson) {
  if (!F)
    return false;
  if (std::fputs(AnyEvent ? ",\n" : "\n", F) < 0 ||
      std::fputs(EventJson.c_str(), F) < 0)
    return false;
  AnyEvent = true;
  // Flush per event: the file must be loadable while the daemon lives,
  // and trace volume is a few events per request, not per instruction.
  std::fflush(F);
  return true;
}

bool FileTraceSink::close() {
  if (!F)
    return true;
  bool OK = std::fputs("\n]\n", F) >= 0;
  OK = std::fclose(F) == 0 && OK;
  F = nullptr;
  return OK;
}

TraceRecorder::TraceRecorder(bool StartEnabled, size_t PerThreadCapacity)
    : Enabled(StartEnabled),
      Capacity(std::max<size_t>(16, PerThreadCapacity)), BaseNs(nowNanos()),
      Epoch(NextEpoch.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::ThreadLog &TraceRecorder::logForThisThread() {
  // Fast path: this thread already resolved its log for this recorder.
  static thread_local const TraceRecorder *CachedOwner = nullptr;
  static thread_local uint64_t CachedEpoch = 0;
  static thread_local ThreadLog *CachedLog = nullptr;
  if (CachedOwner == this && CachedEpoch == Epoch)
    return *CachedLog;

  std::lock_guard<std::mutex> Lock(Mu);
  ThreadLog *&Slot = ByThread[std::this_thread::get_id()];
  if (!Slot) {
    Logs.push_back(std::make_unique<ThreadLog>());
    Slot = Logs.back().get();
    Slot->Tid = static_cast<uint32_t>(Logs.size() - 1);
    Slot->Name = "thread-" + std::to_string(Slot->Tid);
    Slot->Ring.reserve(std::min<size_t>(Capacity, 1024));
  }
  CachedOwner = this;
  CachedEpoch = Epoch;
  CachedLog = Slot;
  return *Slot;
}

void TraceRecorder::append(TraceEvent E) {
  ThreadLog &TL = logForThisThread();
  // Only this thread and the merge/clear paths ever take RingMu, so
  // this lock is uncontended unless the trace is being snapshotted
  // mid-build — recording threads never serialize on each other.
  std::lock_guard<std::mutex> Lock(TL.RingMu);
  if (TL.Ring.size() < Capacity) {
    TL.Ring.push_back(std::move(E));
    return;
  }
  // Ring full: overwrite the oldest event and count the loss.
  TL.Ring[TL.Next] = std::move(E);
  TL.Next = (TL.Next + 1) % Capacity;
  TL.Dropped.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::span(const char *Category, std::string Name,
                         uint64_t StartNs, uint64_t EndNs,
                         std::string ArgsJson) {
  if (!enabled())
    return;
  TraceEvent E;
  E.K = TraceEvent::Kind::Span;
  E.Category = Category;
  E.Name = std::move(Name);
  E.StartNs = StartNs;
  E.DurNs = EndNs >= StartNs ? EndNs - StartNs : 0;
  E.ArgsJson = std::move(ArgsJson);
  append(std::move(E));
}

void TraceRecorder::instant(const char *Category, std::string Name,
                            std::string ArgsJson) {
  if (!enabled())
    return;
  TraceEvent E;
  E.K = TraceEvent::Kind::Instant;
  E.Category = Category;
  E.Name = std::move(Name);
  E.StartNs = nowNanos();
  E.ArgsJson = std::move(ArgsJson);
  append(std::move(E));
}

void TraceRecorder::setThreadName(std::string Name) {
  ThreadLog &TL = logForThisThread();
  std::lock_guard<std::mutex> Lock(Mu);
  TL.Name = std::move(Name);
}

std::vector<std::pair<std::string, uint64_t>>
TraceRecorder::droppedByThread() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Logs.size());
  for (const auto &TL : Logs)
    Out.emplace_back(TL->Name, TL->Dropped.load(std::memory_order_relaxed));
  return Out;
}

void TraceRecorder::pushCurrentSpan(const char *Category,
                                    const std::string &Name) {
  ThreadLog &TL = logForThisThread();
  std::lock_guard<std::mutex> Lock(TL.RingMu);
  TL.SpanStack.emplace_back(Category, &Name);
}

void TraceRecorder::popCurrentSpan() {
  ThreadLog &TL = logForThisThread();
  std::lock_guard<std::mutex> Lock(TL.RingMu);
  if (!TL.SpanStack.empty())
    TL.SpanStack.pop_back();
}

std::vector<std::string> TraceRecorder::sampleStacks() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  for (const auto &TL : Logs) {
    std::lock_guard<std::mutex> RingLock(TL->RingMu);
    if (TL->SpanStack.empty())
      continue;
    std::string Stack;
    for (const auto &Frame : TL->SpanStack) {
      if (!Stack.empty())
        Stack += ';';
      Stack += *Frame.second;
    }
    Out.push_back(std::move(Stack));
  }
  return Out;
}

uint64_t TraceRecorder::droppedEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const auto &TL : Logs)
    Total += TL->Dropped.load(std::memory_order_relaxed);
  return Total;
}

size_t TraceRecorder::numEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t Total = 0;
  for (const auto &TL : Logs) {
    std::lock_guard<std::mutex> RingLock(TL->RingMu);
    Total += TL->Ring.size();
  }
  return Total;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &TL : Logs) {
      std::lock_guard<std::mutex> RingLock(TL->RingMu);
      // Ring order: oldest first is [Next, end) then [0, Next).
      const size_t N = TL->Ring.size();
      const size_t First = N == Capacity ? TL->Next : 0;
      for (size_t I = 0; I != N; ++I) {
        TraceEvent E = TL->Ring[(First + I) % (N ? N : 1)];
        E.Tid = TL->Tid;
        Out.push_back(std::move(E));
      }
    }
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.StartNs < B.StartNs;
                   });
  return Out;
}

std::string TraceRecorder::toChromeJson() const {
  std::vector<TraceEvent> Events = snapshot();

  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Emit = [&](const std::string &Obj) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n";
    Out += Obj;
  };

  // Thread-name metadata so chrome://tracing labels the lanes.
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"stateful-compiler build\"}}");
    for (const auto &TL : Logs)
      Emit(threadNameJson(TL->Tid, TL->Name));
    // Ring-overwrite accounting: a lane that dropped events says so in
    // the trace itself, so a truncated trace never looks complete.
    for (const auto &TL : Logs) {
      const uint64_t D = TL->Dropped.load(std::memory_order_relaxed);
      if (D)
        Emit("{\"name\":\"trace_dropped_events\",\"ph\":\"M\",\"pid\":1,"
             "\"tid\":" +
             std::to_string(TL->Tid) + ",\"args\":{\"dropped\":" +
             std::to_string(D) + "}}");
    }
  }

  for (const TraceEvent &E : Events)
    Emit(chromeEventJson(E, BaseNs));
  Out += "\n]}\n";
  return Out;
}

void TraceRecorder::setSink(TraceSink *S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sink = S;
}

size_t TraceRecorder::flush() {
  // Drain under the locks, serialize and emit outside them: the sink
  // may do file I/O, and recording threads must not block on it.
  std::vector<TraceEvent> Events;
  std::vector<std::string> Metadata;
  TraceSink *S;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    S = Sink;
    if (!S)
      return 0;
    if (!AnnouncedProcess) {
      Metadata.push_back(
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"stateful-compiler build\"}}");
      AnnouncedProcess = true;
    }
    for (const auto &TL : Logs) {
      std::string &Sent = AnnouncedThreads[TL->Tid];
      if (Sent != TL->Name) {
        Sent = TL->Name;
        Metadata.push_back(threadNameJson(TL->Tid, TL->Name));
      }
      std::lock_guard<std::mutex> RingLock(TL->RingMu);
      const size_t N = TL->Ring.size();
      const size_t First = N == Capacity ? TL->Next : 0;
      for (size_t I = 0; I != N; ++I) {
        TraceEvent E = std::move(TL->Ring[(First + I) % (N ? N : 1)]);
        E.Tid = TL->Tid;
        Events.push_back(std::move(E));
      }
      TL->Ring.clear();
      TL->Next = 0;
    }
  }
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.StartNs < B.StartNs;
                   });
  for (const std::string &M : Metadata)
    S->event(M);
  for (const TraceEvent &E : Events)
    S->event(chromeEventJson(E, BaseNs));
  return Events.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &TL : Logs) {
    std::lock_guard<std::mutex> RingLock(TL->RingMu);
    TL->Ring.clear();
    TL->Next = 0;
    TL->Dropped.store(0, std::memory_order_relaxed);
  }
}
