//===- support/FileLock.h - Advisory lock over a VFS ------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Advisory whole-directory lock for the build's state directory: two
/// scbuild processes over the same project must not interleave writes
/// to state.db / manifest.bin / objects. The lock is a file created
/// with create-exclusive semantics (O_CREAT|O_EXCL on real
/// filesystems); acquisition retries with exponential backoff up to a
/// timeout, after which the caller is expected to degrade to a
/// read-only (nothing persisted) build rather than corrupt shared
/// state.
///
/// The lock is advisory: it protects cooperating builds, not hostile
/// writers. A process that dies without running destructors leaves the
/// file behind; the lock content records the owner's PID plus a
/// per-acquisition token. When acquisition times out, acquire() probes
/// the recorded owner with `kill(pid, 0)`: if that process is
/// verifiably gone (ESRCH) the stale lock is reclaimed instead of
/// degrading the build to read-only. A live owner (or an
/// unreadable/foreign lock file, where liveness cannot be proven) is
/// never reclaimed.
///
/// Reclaim protocol: the stale file is first *captured* by an atomic
/// rename to a waiter-unique aside name — of N waiters racing to
/// reclaim the same corpse, exactly one rename succeeds and the rest
/// stay unlocked — then its content is re-verified against the probed
/// content (a mismatch means a new live holder took the path between
/// probe and rename; its lock is handed back untouched) before the
/// winner deletes it and re-creates the path as its own. release()
/// likewise removes the lock file only after checking it still holds
/// this acquisition's content, so no step of the protocol ever unlinks
/// another process's live lock.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_FILELOCK_H
#define SC_SUPPORT_FILELOCK_H

#include "support/FileSystem.h"

#include <optional>
#include <string>

namespace sc {

/// RAII advisory file lock. Move-only; releases (removes the lock
/// file) on destruction when held.
class FileLock {
public:
  /// Attempts to create \p Path exclusively, retrying with doubling
  /// backoff (starting at \p BackoffMs, capped at 8x) until
  /// \p TimeoutMs elapses. Returns a lock that may or may not be
  /// held(); a zero timeout means exactly one attempt. A non-empty
  /// \p Tag is recorded in the lock content (e.g. "daemon") so other
  /// processes probing the lock can describe its owner.
  static FileLock acquire(VirtualFileSystem &FS, const std::string &Path,
                          unsigned TimeoutMs, unsigned BackoffMs = 10,
                          const std::string &Tag = std::string());

  /// What a lock file at \p Path says about its owner, without trying
  /// to acquire anything. Lets a CLI build recognize "a live daemon
  /// owns this directory" up front and print a purposeful diagnostic
  /// instead of timing out against a lock that will never be released.
  struct OwnerInfo {
    long Pid = 0;        // 0 when the content is not in our format.
    bool Alive = false;  // kill(pid, 0) liveness (false when Pid == 0).
    std::string Tag;     // "daemon" for scbuildd; empty for plain builds.
  };

  /// Reads and parses the lock file. std::nullopt when no lock file
  /// exists (or it vanished mid-read).
  static std::optional<OwnerInfo> probe(VirtualFileSystem &FS,
                                        const std::string &Path);

  FileLock() = default;
  FileLock(FileLock &&Other) noexcept;
  FileLock &operator=(FileLock &&Other) noexcept;
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;
  ~FileLock();

  bool held() const { return FS != nullptr; }
  const std::string &path() const { return Path; }

  /// True when this lock was obtained by reclaiming a dead owner's
  /// stale lock file (callers surface this as a build warning).
  bool reclaimedStale() const { return Reclaimed; }

  /// The dead owner's PID when reclaimedStale().
  long reclaimedPid() const { return ReclaimedOwner; }

  /// Removes the lock file now if it is still ours (idempotent).
  void release();

private:
  FileLock(VirtualFileSystem *FS, std::string Path, std::string Content)
      : FS(FS), Path(std::move(Path)), Content(std::move(Content)) {}

  VirtualFileSystem *FS = nullptr; // Null when not held.
  std::string Path;
  std::string Content; // What we wrote; release() removes only a match.
  bool Reclaimed = false;
  long ReclaimedOwner = 0;
};

} // namespace sc

#endif // SC_SUPPORT_FILELOCK_H
