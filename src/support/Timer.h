//===- support/Timer.h - Wall-clock phase timers ----------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulating wall-clock timers for compile-phase and per-pass timing.
/// All durations are reported in microseconds (double) for stable
/// arithmetic when aggregating thousands of short pass executions.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_TIMER_H
#define SC_SUPPORT_TIMER_H

#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace sc {

/// Returns a monotonic timestamp in nanoseconds.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulating wall-clock timer. Supports repeated start/stop cycles.
class Timer {
public:
  void start() {
    assert(!Running && "timer already running");
    Running = true;
    StartNs = nowNanos();
  }

  void stop() {
    assert(Running && "timer is not running");
    TotalNs += nowNanos() - StartNs;
    Running = false;
  }

  /// Total accumulated time in microseconds.
  double micros() const { return static_cast<double>(TotalNs) / 1000.0; }

  /// Total accumulated time in milliseconds.
  double millis() const { return static_cast<double>(TotalNs) / 1.0e6; }

  uint64_t nanos() const { return TotalNs; }

  /// Folds another (stopped) timer's accumulated time into this one.
  void accumulate(const Timer &Other) { TotalNs += Other.TotalNs; }

  /// Folds raw nanoseconds into this timer. Used by the parallel pass
  /// engine to merge per-worker duration accumulators after a barrier.
  void addNanos(uint64_t Ns) { TotalNs += Ns; }

  void reset() {
    TotalNs = 0;
    Running = false;
  }

private:
  uint64_t TotalNs = 0;
  uint64_t StartNs = 0;
  bool Running = false;
};

/// RAII helper that runs a Timer for the current scope.
class ScopedTimer {
public:
  explicit ScopedTimer(Timer &T) : T(T) { T.start(); }
  ~ScopedTimer() { T.stop(); }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Timer &T;
};

/// Named timer group, e.g. one Timer per compile phase or per pass.
class TimerGroup {
public:
  Timer &get(const std::string &Name) { return Timers[Name]; }

  const std::map<std::string, Timer> &timers() const { return Timers; }

  /// Sum of all member timers, in microseconds.
  double totalMicros() const {
    double Sum = 0;
    for (const auto &[Name, T] : Timers)
      Sum += T.micros();
    return Sum;
  }

  void reset() { Timers.clear(); }

private:
  std::map<std::string, Timer> Timers;
};

} // namespace sc

#endif // SC_SUPPORT_TIMER_H
