//===- support/Metrics.h - Typed counter/gauge registry ---------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small typed metrics registry: named monotonic counters and
/// last/max gauges, created on first use and safe to update from any
/// thread. The build driver dumps the registry into the JSON build
/// report (see build_sys/BuildReport.h and docs/OBSERVABILITY.md);
/// benches and tests read individual metrics back by name.
///
/// Like TraceRecorder, every producer holds a `MetricsRegistry *` that
/// defaults to null, so unobserved builds pay one pointer test per
/// would-be update. Metric objects live as long as the registry and
/// are never removed, so call sites may cache `Counter *` / `Gauge *`
/// across updates.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_METRICS_H
#define SC_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sc {

/// Monotonic event counter.
class Counter {
public:
  void add(uint64_t Delta = 1) { V.fetch_add(Delta, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Point-in-time measurement; set() overwrites, max() keeps the peak.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }

  /// Raises the gauge to \p X if it exceeds the current value.
  void max(double X) {
    double Cur = V.load(std::memory_order_relaxed);
    while (X > Cur &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed))
      ;
  }

  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Thread-safe name -> metric registry. Creation takes a lock; updates
/// on the returned objects are lock-free.
class MetricsRegistry {
public:
  /// Returns the counter named \p Name, creating it on first use.
  Counter &counter(const std::string &Name);

  /// Returns the gauge named \p Name, creating it on first use.
  Gauge &gauge(const std::string &Name);

  /// Snapshot of all metrics, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  /// The registry as one JSON object:
  ///   {"counters":{...},"gauges":{...}}
  /// Keys are sorted so output is deterministic.
  std::string toJson() const;

private:
  mutable std::mutex Mu;
  // Node-based maps: references stay valid as the maps grow.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
};

} // namespace sc

#endif // SC_SUPPORT_METRICS_H
