//===- support/Metrics.h - Typed counter/gauge registry ---------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small typed metrics registry: named monotonic counters and
/// last/max gauges, created on first use and safe to update from any
/// thread. The build driver dumps the registry into the JSON build
/// report (see build_sys/BuildReport.h and docs/OBSERVABILITY.md);
/// benches and tests read individual metrics back by name.
///
/// Like TraceRecorder, every producer holds a `MetricsRegistry *` that
/// defaults to null, so unobserved builds pay one pointer test per
/// would-be update. Metric objects live as long as the registry and
/// are never removed, so call sites may cache `Counter *` / `Gauge *`
/// across updates.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_METRICS_H
#define SC_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sc {

/// Monotonic event counter.
class Counter {
public:
  void add(uint64_t Delta = 1) { V.fetch_add(Delta, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Point-in-time measurement; set() overwrites, max() keeps the peak.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }

  /// Raises the gauge to \p X if it exceeds the current value.
  void max(double X) {
    double Cur = V.load(std::memory_order_relaxed);
    while (X > Cur &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed))
      ;
  }

  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Thread-safe name -> metric registry. Creation takes a lock; updates
/// on the returned objects are lock-free.
class MetricsRegistry {
public:
  /// Returns the counter named \p Name, creating it on first use.
  Counter &counter(const std::string &Name);

  /// Returns the gauge named \p Name, creating it on first use.
  Gauge &gauge(const std::string &Name);

  /// Snapshot of all metrics, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  /// The registry as one JSON object:
  ///   {"counters":{...},"gauges":{...}}
  /// Keys are sorted so output is deterministic.
  std::string toJson() const;

private:
  mutable std::mutex Mu;
  // Node-based maps: references stay valid as the maps grow.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
};

/// Renders a MetricsRegistry in the Prometheus text exposition format
/// (version 0.0.4), the lingua franca of fleet scrapers. Both daemons
/// serve it over their `metrics` verbs and dump it with
/// `--metrics-out`; `scbuild daemon-top` parses it back. The exporter
/// is stateless — all functions are pure so live (socket) and offline
/// (--report-json) views render identically from the same registry.
///
/// Name mapping (documented in docs/OBSERVABILITY.md): every internal
/// dotted name gains the `scbuild_` prefix, dots become underscores,
/// counters gain the conventional `_total` suffix:
///   build.remote_hits  -> scbuild_build_remote_hits_total   (counter)
///   daemon.queue_depth -> scbuild_daemon_queue_depth        (gauge)
class MetricsTextExporter {
public:
  /// The exported (Prometheus) name for internal metric \p Name.
  /// Characters outside [a-zA-Z0-9_] become '_'.
  static std::string exportedName(const std::string &Name, bool IsCounter);

  /// The whole registry as Prometheus text exposition: one `# TYPE`
  /// line per metric, counters first, each group sorted by name, and a
  /// trailing newline. Deterministic for a given snapshot.
  static std::string render(const MetricsRegistry &R);

  /// Parses text produced by render() (or any simple Prometheus
  /// exposition) back into name -> value samples, skipping comment
  /// lines and anything it cannot parse. Used by `scbuild daemon-top`.
  static std::vector<std::pair<std::string, double>>
  parse(const std::string &Text);
};

} // namespace sc

#endif // SC_SUPPORT_METRICS_H
