//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the frontend, printers, and the build
/// system's dependency scanner.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_STRINGUTILS_H
#define SC_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace sc {

/// Splits \p S on \p Sep; empty pieces are kept.
inline std::vector<std::string> splitString(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Parts.emplace_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

inline bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

inline bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

/// Strips leading and trailing spaces, tabs, and newlines.
inline std::string_view trim(std::string_view S) {
  const char *WS = " \t\r\n";
  size_t B = S.find_first_not_of(WS);
  if (B == std::string_view::npos)
    return std::string_view();
  size_t E = S.find_last_not_of(WS);
  return S.substr(B, E - B + 1);
}

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
inline std::string joinStrings(const std::vector<std::string> &Items,
                               std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Items.size(); ++I) {
    if (I)
      Out += Sep;
    Out += Items[I];
  }
  return Out;
}

} // namespace sc

#endif // SC_SUPPORT_STRINGUTILS_H
