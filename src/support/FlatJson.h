//===- support/FlatJson.h - Flat-JSON wire codec helpers --------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-rolled flat-JSON codec shared by every socket protocol in
/// the project (the build daemon `scbuildd` and the object-cache daemon
/// `sccached`). A wire message is a single-level JSON object whose
/// values are strings, integers, booleans, or arrays of integers —
/// enough for the protocols, small enough to hand-roll, and readable
/// with `socat` when debugging. Decoders built on parseFlatObject()
/// skip unknown keys, so every protocol can grow without breaking
/// older peers.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_FLATJSON_H
#define SC_SUPPORT_FLATJSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sc {

/// Appends \p S to \p Out as a quoted, escaped JSON string literal.
inline void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

/// Cursor over a JSON text. Parse failures set Bad; every accessor is a
/// no-op once Bad, so callers check once at the end.
struct JsonCursor {
  const std::string &S;
  size_t I = 0;
  bool Bad = false;

  explicit JsonCursor(const std::string &S) : S(S) {}

  void ws() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\n' ||
                            S[I] == '\r'))
      ++I;
  }
  bool eat(char C) {
    ws();
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  void expect(char C) {
    if (!eat(C))
      Bad = true;
  }
  char peek() {
    ws();
    return I < S.size() ? S[I] : '\0';
  }

  std::string parseString() {
    std::string Out;
    expect('"');
    while (!Bad && I < S.size() && S[I] != '"') {
      char C = S[I++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (I >= S.size()) {
        Bad = true;
        break;
      }
      char E = S[I++];
      switch (E) {
      case '"':  Out += '"';  break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/';  break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'u': {
        if (I + 4 > S.size()) {
          Bad = true;
          break;
        }
        unsigned V = 0;
        for (int K = 0; K != 4; ++K) {
          char H = S[I++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            Bad = true;
        }
        // The encoder only emits \u00XX control escapes; anything else
        // is clamped into one byte, which is fine for these protocols.
        Out += static_cast<char>(V & 0xff);
        break;
      }
      default:
        Bad = true;
      }
    }
    expect('"');
    return Out;
  }

  int64_t parseInt() {
    ws();
    bool Neg = eat('-');
    ws();
    if (I >= S.size() || S[I] < '0' || S[I] > '9') {
      Bad = true;
      return 0;
    }
    uint64_t V = 0;
    while (I < S.size() && S[I] >= '0' && S[I] <= '9')
      V = V * 10 + static_cast<uint64_t>(S[I++] - '0');
    return Neg ? -static_cast<int64_t>(V) : static_cast<int64_t>(V);
  }

  /// Unsigned 64-bit variant (counters, byte sizes); a leading '-'
  /// marks the document malformed.
  uint64_t parseU64() {
    ws();
    if (I < S.size() && S[I] == '-') {
      Bad = true;
      return 0;
    }
    return static_cast<uint64_t>(parseInt());
  }

  bool parseBool() {
    ws();
    if (S.compare(I, 4, "true") == 0) {
      I += 4;
      return true;
    }
    if (S.compare(I, 5, "false") == 0) {
      I += 5;
      return false;
    }
    Bad = true;
    return false;
  }

  std::vector<int64_t> parseIntArray() {
    std::vector<int64_t> Out;
    expect('[');
    if (eat(']'))
      return Out;
    do
      Out.push_back(parseInt());
    while (!Bad && eat(','));
    expect(']');
    return Out;
  }

  /// Skips one value of any supported shape (for unknown keys).
  void skipValue() {
    char C = peek();
    if (C == '"')
      parseString();
    else if (C == '[')
      parseIntArray();
    else if (C == 't' || C == 'f')
      parseBool();
    else
      parseInt();
  }
};

/// Walks a flat object, invoking \p OnKey(cursor, key) per entry.
/// Returns false when the document is malformed.
template <typename Fn> bool parseFlatObject(const std::string &Json, Fn OnKey) {
  JsonCursor C(Json);
  C.expect('{');
  if (!C.eat('}')) {
    do {
      std::string Key = C.parseString();
      C.expect(':');
      if (C.Bad)
        break;
      OnKey(C, Key);
    } while (!C.Bad && C.eat(','));
    C.expect('}');
  }
  return !C.Bad;
}

} // namespace sc

#endif // SC_SUPPORT_FLATJSON_H
