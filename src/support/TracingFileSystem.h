//===- support/TracingFileSystem.h - Access-tracing VFS decorator -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read-access tracing for the build-dependency verifier: wraps any
/// VirtualFileSystem (same decorator pattern as FaultyFileSystem) and
/// records which files each *scope* — in practice, each translation
/// unit being resolved — actually touched. The DepVerifier
/// (build_sys/DepVerifier.h) cross-checks these recorded accesses
/// against the ImportGraph's tracked edges, so a dependency the build
/// system forgot (under-rebuild) or invented (over-rebuild) becomes a
/// reportable finding instead of a silently wrong incremental build.
///
/// Only observing operations are recorded (readFile, exists); writes
/// pass through untouched. Recording is mutex-guarded so a traced
/// filesystem may safely back a parallel build.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_TRACINGFILESYSTEM_H
#define SC_SUPPORT_TRACINGFILESYSTEM_H

#include "support/FileSystem.h"

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace sc {

class TracingFileSystem : public VirtualFileSystem {
public:
  explicit TracingFileSystem(VirtualFileSystem &Base) : Base(Base) {}

  /// Attributes subsequent accesses to \p Scope (typically a TU path).
  /// The empty scope collects accesses made outside any attribution.
  void setScope(std::string Scope);

  /// Drops every recorded access (scopes included).
  void clearTrace();

  /// Paths read under \p Scope, sorted (set iteration order).
  std::vector<std::string> readsFor(const std::string &Scope) const;

  /// Every (scope -> read paths) pair recorded so far.
  std::map<std::string, std::set<std::string>> readsByScope() const;

  /// Total read/exists operations observed (not deduplicated).
  uint64_t tracedOps() const;

  /// Distinct paths read across all scopes.
  uint64_t distinctPathsTraced() const;

  //===--- VirtualFileSystem ---------------------------------------------===//

  std::optional<std::string> readFile(const std::string &Path) override;
  bool writeFile(const std::string &Path, const std::string &Content) override;
  bool exists(const std::string &Path) override;
  bool removeFile(const std::string &Path) override;
  std::vector<std::string> listFiles() override;
  bool renameFile(const std::string &From, const std::string &To) override;
  bool syncFile(const std::string &Path) override;
  bool createExclusive(const std::string &Path,
                       const std::string &Content) override;
  std::string lastError() const override;

private:
  void record(const std::string &Path);

  VirtualFileSystem &Base;
  mutable std::mutex Mu;
  std::string Scope;
  std::map<std::string, std::set<std::string>> Reads;
  uint64_t Ops = 0;
};

} // namespace sc

#endif // SC_SUPPORT_TRACINGFILESYSTEM_H
