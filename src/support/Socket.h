//===- support/Socket.h - Unix-domain socket wrapper ------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small RAII wrapper over Unix-domain stream sockets, used by the
/// build daemon (`scbuildd`) and its clients. On top of the raw socket
/// it provides the one framing primitive the daemon protocol needs:
/// length-prefixed messages (4-byte little-endian length + payload), so
/// higher layers exchange complete JSON documents and never parse out
/// of a partial read.
///
/// All operations are blocking with explicit millisecond timeouts
/// (poll(2) before accept/read), so a stuck peer can never wedge the
/// daemon's accept loop or a client waiting on a dead daemon.
///
/// Multi-client-server hardening (the sccached daemon serves many
/// concurrent peers, any of which may die mid-frame):
///
///  * SIGPIPE is suppressed on writes — MSG_NOSIGNAL where the
///    platform has it, SO_NOSIGPIPE on the socket otherwise — so a
///    peer that disconnects mid-response surfaces as a send error on
///    that one connection, never a process-fatal signal.
///  * Short reads/writes and EINTR are retried everywhere (send,
///    recv, poll, accept, connect); a signal-heavy host cannot tear a
///    frame.
///  * A frame header announcing more than MaxFramePayload bytes is
///    rejected as a protocol error *before* any allocation is
///    attempted — a corrupt or malicious peer cannot OOM the server —
///    and recvFrame() distinguishes that verdict from a plain
///    disconnect via its optional status out-param.
///  * Timeouts are *total deadlines per frame*, not per-chunk waits: a
///    slow-loris peer that dribbles one byte per poll interval cannot
///    pin a server thread past TimeoutMs. sendFrame() optionally takes
///    the same deadline, so a peer that stops draining its receive
///    buffer surfaces as a send failure instead of wedging the writer.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_SOCKET_H
#define SC_SUPPORT_SOCKET_H

#include <cstdint>
#include <string>

namespace sc {

/// RAII Unix-domain stream socket (listener or connection). Move-only.
class UnixSocket {
public:
  /// Largest accepted frame payload; a peer announcing more is treated
  /// as protocol corruption and disconnected.
  static constexpr uint32_t MaxFramePayload = 64u << 20;

  /// Binds and listens on \p Path (an absolute or cwd-relative host
  /// path; Unix sockets cap paths at ~107 bytes). The path must not be
  /// in use — callers remove a stale socket file first, *after* proving
  /// via the build lock that no live daemon owns it. On failure returns
  /// an invalid socket and sets \p Err.
  static UnixSocket listenOn(const std::string &Path, std::string *Err);

  /// Connects to a listening socket. Returns an invalid socket when
  /// nothing is listening (the caller's cue to fall back or
  /// auto-start); \p Err carries the errno text.
  static UnixSocket connectTo(const std::string &Path, std::string *Err);

  UnixSocket() = default;
  UnixSocket(UnixSocket &&Other) noexcept;
  UnixSocket &operator=(UnixSocket &&Other) noexcept;
  UnixSocket(const UnixSocket &) = delete;
  UnixSocket &operator=(const UnixSocket &) = delete;
  ~UnixSocket();

  bool valid() const { return FD >= 0; }

  /// Accepts one pending connection, waiting at most \p TimeoutMs.
  /// Returns an invalid socket on timeout (\p TimedOut set true) or
  /// error (\p TimedOut false).
  UnixSocket accept(unsigned TimeoutMs, bool *TimedOut);

  /// Why recvFrame() returned false (RecvStatus::Ok accompanies true).
  enum class RecvStatus {
    Ok,            ///< A complete frame was received.
    Disconnected,  ///< Peer closed or hard I/O error mid-frame.
    TimedOut,      ///< No (further) bytes within TimeoutMs.
    ProtocolError, ///< Header announced more than MaxFramePayload.
  };

  /// Sends one length-prefixed frame. Returns false when the peer is
  /// gone or the write fails (SIGPIPE is suppressed — see file
  /// comment). With \p TimeoutMs nonzero, the whole frame must drain
  /// into the socket within that many milliseconds — a peer that
  /// stopped reading surfaces as failure instead of blocking the
  /// writer forever. 0 keeps the historical block-until-sent behavior.
  bool sendFrame(const std::string &Payload, unsigned TimeoutMs = 0);

  /// Waits until a read would not block (bytes pending or EOF), at most
  /// \p TimeoutMs. Lets a server slice its wait for a client's first
  /// byte (checking a stop flag between slices) without risking a
  /// partial-frame read: no bytes are consumed here.
  bool readable(unsigned TimeoutMs);

  /// Receives one length-prefixed frame. \p TimeoutMs is a *total
  /// deadline* for the whole frame (header + payload): a peer that
  /// sends half a frame and stalls — or trickles bytes slower than the
  /// deadline — gets RecvStatus::TimedOut, never an unbounded wait.
  /// Returns false on timeout, disconnect, or a frame announcing more
  /// than MaxFramePayload bytes (rejected before any allocation);
  /// \p Status, when non-null, says which.
  bool recvFrame(std::string &Payload, unsigned TimeoutMs,
                 RecvStatus *Status = nullptr);

  void close();

private:
  explicit UnixSocket(int FD) : FD(FD) {}

  int FD = -1;
};

} // namespace sc

#endif // SC_SUPPORT_SOCKET_H
