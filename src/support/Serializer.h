//===- support/Serializer.h - Versioned binary serialization ----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple little-endian binary writer/reader used to persist the
/// BuildStateDB, object files, and build manifests. The reader is
/// defensive: every accessor reports failure instead of reading out of
/// bounds, so a truncated or corrupted state file degrades to a cold
/// build rather than a crash (a key robustness requirement for a
/// stateful compiler whose cache may be damaged between builds).
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_SERIALIZER_H
#define SC_SUPPORT_SERIALIZER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sc {

/// Append-only binary encoder.
class BinaryWriter {
public:
  void writeU8(uint8_t V) { Buffer.push_back(V); }

  void writeU32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeU64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }

  /// Writes an unsigned LEB128-style varint (compact for small values).
  void writeVarU64(uint64_t V) {
    while (V >= 0x80) {
      Buffer.push_back(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    Buffer.push_back(static_cast<uint8_t>(V));
  }

  /// Writes a length-prefixed string.
  void writeString(std::string_view S) {
    writeVarU64(S.size());
    Buffer.insert(Buffer.end(), S.begin(), S.end());
  }

  void writeBytes(const void *Data, size_t Size) {
    const auto *P = static_cast<const uint8_t *>(Data);
    Buffer.insert(Buffer.end(), P, P + Size);
  }

  const std::vector<uint8_t> &data() const { return Buffer; }
  size_t size() const { return Buffer.size(); }

private:
  std::vector<uint8_t> Buffer;
};

/// Bounds-checked binary decoder. After any failed read, failed() stays
/// true and subsequent reads return zero values.
class BinaryReader {
public:
  BinaryReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit BinaryReader(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Size(Buf.size()) {}

  bool failed() const { return Failed; }
  bool atEnd() const { return Pos == Size; }
  size_t position() const { return Pos; }

  uint8_t readU8() {
    if (!ensure(1))
      return 0;
    return Data[Pos++];
  }

  uint32_t readU32() {
    if (!ensure(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }

  uint64_t readU64() {
    if (!ensure(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }

  int64_t readI64() { return static_cast<int64_t>(readU64()); }

  uint64_t readVarU64() {
    uint64_t V = 0;
    unsigned Shift = 0;
    for (;;) {
      if (!ensure(1) || Shift >= 64)
        return fail();
      uint8_t B = Data[Pos++];
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        return V;
      Shift += 7;
    }
  }

  /// Advances past \p N bytes without copying them.
  void skip(uint64_t N) {
    if (!ensure(N))
      return;
    Pos += N;
  }

  std::string readString() {
    uint64_t Len = readVarU64();
    if (!ensure(Len))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }

private:
  bool ensure(uint64_t N) {
    if (Failed || N > Size - Pos) {
      Failed = true;
      return false;
    }
    return true;
  }

  uint64_t fail() {
    Failed = true;
    return 0;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace sc

#endif // SC_SUPPORT_SERIALIZER_H
