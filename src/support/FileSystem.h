//===- support/FileSystem.h - Virtual filesystem abstraction ----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Filesystem abstraction used by the build system, the driver, and the
/// BuildStateDB. Benchmarks run against the in-memory implementation so
/// measured build times reflect compilation work, not disk jitter; the
/// on-disk implementation backs the examples and persistence tests.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_FILESYSTEM_H
#define SC_SUPPORT_FILESYSTEM_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sc {

/// Abstract file storage with string paths and whole-file granularity.
class VirtualFileSystem {
public:
  virtual ~VirtualFileSystem();

  /// Returns the file content, or std::nullopt if the file is missing.
  virtual std::optional<std::string> readFile(const std::string &Path) = 0;

  /// Creates or overwrites \p Path. Returns false on I/O failure.
  virtual bool writeFile(const std::string &Path,
                         const std::string &Content) = 0;

  virtual bool exists(const std::string &Path) = 0;

  /// Removes a file if present; returns true if it was removed.
  virtual bool removeFile(const std::string &Path) = 0;

  /// Lists all file paths, sorted lexicographically for determinism.
  virtual std::vector<std::string> listFiles() = 0;
};

/// Heap-backed filesystem; the default substrate for benchmarks/tests.
class InMemoryFileSystem : public VirtualFileSystem {
public:
  std::optional<std::string> readFile(const std::string &Path) override;
  bool writeFile(const std::string &Path, const std::string &Content) override;
  bool exists(const std::string &Path) override;
  bool removeFile(const std::string &Path) override;
  std::vector<std::string> listFiles() override;

  /// Total bytes stored across all files (for overhead accounting).
  uint64_t totalBytes() const;

private:
  std::map<std::string, std::string> Files;
};

/// Filesystem rooted at a real directory; paths are relative to Root.
class RealFileSystem : public VirtualFileSystem {
public:
  explicit RealFileSystem(std::string Root);

  std::optional<std::string> readFile(const std::string &Path) override;
  bool writeFile(const std::string &Path, const std::string &Content) override;
  bool exists(const std::string &Path) override;
  bool removeFile(const std::string &Path) override;
  std::vector<std::string> listFiles() override;

  const std::string &root() const { return Root; }

private:
  std::string absolute(const std::string &Path) const;

  std::string Root;
};

} // namespace sc

#endif // SC_SUPPORT_FILESYSTEM_H
