//===- support/FileSystem.h - Virtual filesystem abstraction ----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Filesystem abstraction used by the build system, the driver, and the
/// BuildStateDB. Benchmarks run against the in-memory implementation so
/// measured build times reflect compilation work, not disk jitter; the
/// on-disk implementation backs the examples and persistence tests.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_FILESYSTEM_H
#define SC_SUPPORT_FILESYSTEM_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sc {

/// Abstract file storage with string paths and whole-file granularity.
class VirtualFileSystem {
public:
  virtual ~VirtualFileSystem();

  /// Returns the file content, or std::nullopt if the file is missing.
  virtual std::optional<std::string> readFile(const std::string &Path) = 0;

  /// Creates or overwrites \p Path. Returns false on I/O failure.
  virtual bool writeFile(const std::string &Path,
                         const std::string &Content) = 0;

  virtual bool exists(const std::string &Path) = 0;

  /// Removes a file if present; returns true if it was removed.
  virtual bool removeFile(const std::string &Path) = 0;

  /// Lists all file paths, sorted lexicographically for determinism.
  virtual std::vector<std::string> listFiles() = 0;

  /// Atomically replaces \p To with \p From (the crash-safe commit step
  /// of atomicWriteFile). The default is a non-atomic read/write/remove
  /// emulation; implementations backed by a real filesystem override it
  /// with an O_ATOMIC rename so a crash can never expose a half-written
  /// destination.
  virtual bool renameFile(const std::string &From, const std::string &To);

  /// Flushes \p Path to stable storage (fsync). No-op (success) for
  /// memory-backed implementations.
  virtual bool syncFile(const std::string &Path);

  /// Creates \p Path with \p Content only if it does not already exist;
  /// returns false when it does (or on I/O failure). The advisory-lock
  /// primitive: real filesystems implement it with O_CREAT|O_EXCL.
  virtual bool createExclusive(const std::string &Path,
                               const std::string &Content);

  /// Human-readable description of the most recent failure (errno text
  /// for real filesystems, the injected fault for FaultyFileSystem).
  /// Empty when unknown.
  virtual std::string lastError() const;
};

/// Heap-backed filesystem; the default substrate for benchmarks/tests.
class InMemoryFileSystem : public VirtualFileSystem {
public:
  std::optional<std::string> readFile(const std::string &Path) override;
  bool writeFile(const std::string &Path, const std::string &Content) override;
  bool exists(const std::string &Path) override;
  bool removeFile(const std::string &Path) override;
  std::vector<std::string> listFiles() override;
  bool renameFile(const std::string &From, const std::string &To) override;
  bool createExclusive(const std::string &Path,
                       const std::string &Content) override;

  /// Total bytes stored across all files (for overhead accounting).
  uint64_t totalBytes() const;

private:
  std::map<std::string, std::string> Files;
};

/// Filesystem rooted at a real directory; paths are relative to Root.
class RealFileSystem : public VirtualFileSystem {
public:
  explicit RealFileSystem(std::string Root);

  std::optional<std::string> readFile(const std::string &Path) override;
  bool writeFile(const std::string &Path, const std::string &Content) override;
  bool exists(const std::string &Path) override;
  bool removeFile(const std::string &Path) override;
  std::vector<std::string> listFiles() override;
  bool renameFile(const std::string &From, const std::string &To) override;
  bool syncFile(const std::string &Path) override;
  bool createExclusive(const std::string &Path,
                       const std::string &Content) override;
  std::string lastError() const override;

  const std::string &root() const { return Root; }

private:
  std::string absolute(const std::string &Path) const;

  std::string Root;
  mutable std::string LastErr;
};

} // namespace sc

#endif // SC_SUPPORT_FILESYSTEM_H
