//===- support/FileSystem.cpp - Virtual filesystem implementations -------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FileSystem.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace sc;

namespace fs = std::filesystem;

VirtualFileSystem::~VirtualFileSystem() = default;

//===----------------------------------------------------------------------===//
// InMemoryFileSystem
//===----------------------------------------------------------------------===//

std::optional<std::string>
InMemoryFileSystem::readFile(const std::string &Path) {
  auto It = Files.find(Path);
  if (It == Files.end())
    return std::nullopt;
  return It->second;
}

bool InMemoryFileSystem::writeFile(const std::string &Path,
                                   const std::string &Content) {
  Files[Path] = Content;
  return true;
}

bool InMemoryFileSystem::exists(const std::string &Path) {
  return Files.count(Path) != 0;
}

bool InMemoryFileSystem::removeFile(const std::string &Path) {
  return Files.erase(Path) != 0;
}

std::vector<std::string> InMemoryFileSystem::listFiles() {
  std::vector<std::string> Paths;
  Paths.reserve(Files.size());
  for (const auto &[Path, Content] : Files)
    Paths.push_back(Path);
  return Paths;
}

uint64_t InMemoryFileSystem::totalBytes() const {
  uint64_t Sum = 0;
  for (const auto &[Path, Content] : Files)
    Sum += Content.size();
  return Sum;
}

//===----------------------------------------------------------------------===//
// RealFileSystem
//===----------------------------------------------------------------------===//

RealFileSystem::RealFileSystem(std::string Root) : Root(std::move(Root)) {
  std::error_code EC;
  fs::create_directories(this->Root, EC);
}

std::string RealFileSystem::absolute(const std::string &Path) const {
  return (fs::path(Root) / Path).string();
}

std::optional<std::string> RealFileSystem::readFile(const std::string &Path) {
  std::ifstream In(absolute(Path), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool RealFileSystem::writeFile(const std::string &Path,
                               const std::string &Content) {
  fs::path Abs(absolute(Path));
  std::error_code EC;
  if (Abs.has_parent_path())
    fs::create_directories(Abs.parent_path(), EC);
  std::ofstream Out(Abs, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out.write(Content.data(), static_cast<std::streamsize>(Content.size()));
  return static_cast<bool>(Out);
}

bool RealFileSystem::exists(const std::string &Path) {
  std::error_code EC;
  return fs::exists(absolute(Path), EC);
}

bool RealFileSystem::removeFile(const std::string &Path) {
  std::error_code EC;
  return fs::remove(absolute(Path), EC);
}

std::vector<std::string> RealFileSystem::listFiles() {
  std::vector<std::string> Paths;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    Paths.push_back(fs::relative(It->path(), Root, EC).string());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
