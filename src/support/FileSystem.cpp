//===- support/FileSystem.cpp - Virtual filesystem implementations -------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FileSystem.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace sc;

namespace fs = std::filesystem;

VirtualFileSystem::~VirtualFileSystem() = default;

bool VirtualFileSystem::renameFile(const std::string &From,
                                   const std::string &To) {
  std::optional<std::string> Content = readFile(From);
  if (!Content)
    return false;
  if (!writeFile(To, *Content))
    return false;
  removeFile(From);
  return true;
}

bool VirtualFileSystem::syncFile(const std::string &) { return true; }

bool VirtualFileSystem::createExclusive(const std::string &Path,
                                        const std::string &Content) {
  if (exists(Path))
    return false;
  return writeFile(Path, Content);
}

std::string VirtualFileSystem::lastError() const { return std::string(); }

//===----------------------------------------------------------------------===//
// InMemoryFileSystem
//===----------------------------------------------------------------------===//

std::optional<std::string>
InMemoryFileSystem::readFile(const std::string &Path) {
  auto It = Files.find(Path);
  if (It == Files.end())
    return std::nullopt;
  return It->second;
}

bool InMemoryFileSystem::writeFile(const std::string &Path,
                                   const std::string &Content) {
  Files[Path] = Content;
  return true;
}

bool InMemoryFileSystem::exists(const std::string &Path) {
  return Files.count(Path) != 0;
}

bool InMemoryFileSystem::removeFile(const std::string &Path) {
  return Files.erase(Path) != 0;
}

std::vector<std::string> InMemoryFileSystem::listFiles() {
  std::vector<std::string> Paths;
  Paths.reserve(Files.size());
  for (const auto &[Path, Content] : Files)
    Paths.push_back(Path);
  return Paths;
}

bool InMemoryFileSystem::renameFile(const std::string &From,
                                    const std::string &To) {
  auto It = Files.find(From);
  if (It == Files.end())
    return false;
  Files[To] = std::move(It->second);
  Files.erase(From);
  return true;
}

bool InMemoryFileSystem::createExclusive(const std::string &Path,
                                         const std::string &Content) {
  return Files.emplace(Path, Content).second;
}

uint64_t InMemoryFileSystem::totalBytes() const {
  uint64_t Sum = 0;
  for (const auto &[Path, Content] : Files)
    Sum += Content.size();
  return Sum;
}

//===----------------------------------------------------------------------===//
// RealFileSystem
//===----------------------------------------------------------------------===//

RealFileSystem::RealFileSystem(std::string Root) : Root(std::move(Root)) {
  std::error_code EC;
  fs::create_directories(this->Root, EC);
}

std::string RealFileSystem::absolute(const std::string &Path) const {
  return (fs::path(Root) / Path).string();
}

std::optional<std::string> RealFileSystem::readFile(const std::string &Path) {
  std::ifstream In(absolute(Path), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool RealFileSystem::writeFile(const std::string &Path,
                               const std::string &Content) {
  fs::path Abs(absolute(Path));
  std::error_code EC;
  if (Abs.has_parent_path())
    fs::create_directories(Abs.parent_path(), EC);
  errno = 0;
  std::ofstream Out(Abs, std::ios::binary | std::ios::trunc);
  if (!Out) {
    LastErr = std::strerror(errno);
    return false;
  }
  Out.write(Content.data(), static_cast<std::streamsize>(Content.size()));
  if (!Out) {
    LastErr = std::strerror(errno ? errno : EIO);
    return false;
  }
  return true;
}

bool RealFileSystem::exists(const std::string &Path) {
  std::error_code EC;
  return fs::exists(absolute(Path), EC);
}

bool RealFileSystem::removeFile(const std::string &Path) {
  std::error_code EC;
  return fs::remove(absolute(Path), EC);
}

bool RealFileSystem::renameFile(const std::string &From,
                                const std::string &To) {
  std::error_code EC;
  fs::rename(absolute(From), absolute(To), EC);
  if (EC) {
    LastErr = EC.message();
    return false;
  }
  return true;
}

bool RealFileSystem::syncFile(const std::string &Path) {
  // fsync the file, then its directory so the entry itself is durable.
  int FD = ::open(absolute(Path).c_str(), O_RDONLY);
  if (FD < 0) {
    LastErr = std::strerror(errno);
    return false;
  }
  bool OK = ::fsync(FD) == 0;
  if (!OK)
    LastErr = std::strerror(errno);
  ::close(FD);
  fs::path Parent = fs::path(absolute(Path)).parent_path();
  int DirFD = ::open(Parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFD >= 0) {
    ::fsync(DirFD); // Best effort; some filesystems reject dir fsync.
    ::close(DirFD);
  }
  return OK;
}

bool RealFileSystem::createExclusive(const std::string &Path,
                                     const std::string &Content) {
  fs::path Abs(absolute(Path));
  std::error_code EC;
  if (Abs.has_parent_path())
    fs::create_directories(Abs.parent_path(), EC);
  int FD = ::open(Abs.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (FD < 0) {
    LastErr = std::strerror(errno);
    return false;
  }
  size_t Off = 0;
  bool OK = true;
  while (Off != Content.size()) {
    ssize_t N = ::write(FD, Content.data() + Off, Content.size() - Off);
    if (N <= 0) {
      LastErr = std::strerror(errno);
      OK = false;
      break;
    }
    Off += static_cast<size_t>(N);
  }
  ::close(FD);
  return OK;
}

std::string RealFileSystem::lastError() const { return LastErr; }

std::vector<std::string> RealFileSystem::listFiles() {
  std::vector<std::string> Paths;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    Paths.push_back(fs::relative(It->path(), Root, EC).string());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
