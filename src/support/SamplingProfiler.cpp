//===- support/SamplingProfiler.cpp - Wall-time sampling overlay ---------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SamplingProfiler.h"

#include <chrono>

using namespace sc;

SamplingProfiler::SamplingProfiler(TraceRecorder &R, unsigned Hz)
    : R(R), Hz(Hz),
      PeriodNs(Hz ? 1000000000ull / Hz : 0) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::start() {
  if (!Hz || Thread.joinable())
    return;
  StopFlag.store(false, std::memory_order_relaxed);
  R.setSamplingEnabled(true);
  Thread = std::thread([this] { run(); });
}

void SamplingProfiler::run() {
  const auto Period = std::chrono::nanoseconds(PeriodNs);
  while (!StopFlag.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(Period);
    if (StopFlag.load(std::memory_order_relaxed))
      break;
    for (std::string &Stack : R.sampleStacks()) {
      ++StackSamples[std::move(Stack)];
      Samples.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SamplingProfiler::stop() {
  if (!Thread.joinable())
    return;
  StopFlag.store(true, std::memory_order_relaxed);
  Thread.join();
  R.setSamplingEnabled(false);
  // Fold the aggregate into the trace. Name = leaf frame (what was
  // actually on-CPU), args carry the full stack and its weight.
  for (const auto &KV : StackSamples) {
    const std::string &Stack = KV.first;
    const size_t Leaf = Stack.rfind(';');
    std::string Name =
        Leaf == std::string::npos ? Stack : Stack.substr(Leaf + 1);
    std::string Args = "{\"stack\":\"" + jsonEscape(Stack) +
                       "\",\"samples\":" + std::to_string(KV.second) +
                       ",\"weight_ns\":" +
                       std::to_string(KV.second * PeriodNs) + "}";
    R.instant("sample", std::move(Name), std::move(Args));
  }
  StackSamples.clear();
}
