//===- support/FaultyFileSystem.cpp - Fault-injecting VFS decorator ------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultyFileSystem.h"

#include <cstdlib>

using namespace sc;

void FaultyFileSystem::arm(Fault K, unsigned Nth, bool Sticky) {
  Faults.push_back({K, Nth, Sticky});
}

bool FaultyFileSystem::armSpec(const std::string &Spec) {
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos || Colon + 1 == Spec.size())
    return false;
  std::string Name = Spec.substr(0, Colon);
  bool Sticky = !Name.empty() && Name.back() == '*';
  if (Sticky)
    Name.pop_back();
  char *End = nullptr;
  unsigned long Nth = std::strtoul(Spec.c_str() + Colon + 1, &End, 10);
  if (*End != '\0' || Nth == 0)
    return false;
  Fault K;
  if (Name == "torn")
    K = Fault::TornWrite;
  else if (Name == "enospc")
    K = Fault::WriteError;
  else if (Name == "read")
    K = Fault::ReadError;
  else if (Name == "crash")
    K = Fault::Crash;
  else
    return false;
  arm(K, static_cast<unsigned>(Nth), Sticky);
  return true;
}

bool FaultyFileSystem::fires(Fault K, unsigned Count) {
  for (Armed &A : Faults) {
    if (A.K != K || A.Spent)
      continue;
    if (A.Sticky ? Count >= A.Nth : Count == A.Nth) {
      if (!A.Sticky)
        A.Spent = true;
      ++Fired;
      return true;
    }
  }
  return false;
}

void FaultyFileSystem::maybeCrash(unsigned Count, const std::string &Op) {
  if (fires(Fault::Crash, Count))
    throw CrashPoint{Op};
}

std::optional<std::string>
FaultyFileSystem::readFile(const std::string &Path) {
  ++ReadCount;
  if (fires(Fault::ReadError, ReadCount)) {
    LastErr = "injected read error on '" + Path + "'";
    return std::nullopt;
  }
  return Base.readFile(Path);
}

bool FaultyFileSystem::writeFile(const std::string &Path,
                                 const std::string &Content) {
  ++WriteCount;
  ++MutateCount;
  // A crash mid-write is the adversarial case: half the bytes land,
  // then the process dies.
  for (Armed &A : Faults) {
    if (A.K != Fault::Crash || A.Spent || MutateCount != A.Nth)
      continue;
    A.Spent = true;
    ++Fired;
    Base.writeFile(Path, Content.substr(0, Content.size() / 2));
    throw CrashPoint{"writeFile('" + Path + "')"};
  }
  if (fires(Fault::TornWrite, WriteCount)) {
    LastErr = "injected torn write on '" + Path + "'";
    Base.writeFile(Path, Content.substr(0, Content.size() / 2));
    return false;
  }
  if (fires(Fault::WriteError, WriteCount)) {
    LastErr = "injected ENOSPC on '" + Path + "'";
    return false;
  }
  return Base.writeFile(Path, Content);
}

bool FaultyFileSystem::exists(const std::string &Path) {
  return Base.exists(Path);
}

bool FaultyFileSystem::removeFile(const std::string &Path) {
  ++MutateCount;
  maybeCrash(MutateCount, "removeFile('" + Path + "')");
  return Base.removeFile(Path);
}

std::vector<std::string> FaultyFileSystem::listFiles() {
  return Base.listFiles();
}

bool FaultyFileSystem::renameFile(const std::string &From,
                                  const std::string &To) {
  ++MutateCount;
  maybeCrash(MutateCount, "renameFile('" + From + "' -> '" + To + "')");
  return Base.renameFile(From, To);
}

bool FaultyFileSystem::syncFile(const std::string &Path) {
  return Base.syncFile(Path);
}

bool FaultyFileSystem::createExclusive(const std::string &Path,
                                       const std::string &Content) {
  ++MutateCount;
  maybeCrash(MutateCount, "createExclusive('" + Path + "')");
  return Base.createExclusive(Path, Content);
}

std::string FaultyFileSystem::lastError() const {
  return LastErr.empty() ? Base.lastError() : LastErr;
}
