//===- support/AtomicFile.h - Crash-safe whole-file writes ------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one durable-write primitive every persistent artifact (state DB,
/// manifest, object files) goes through: write a sibling temp file,
/// fsync it, then rename it over the destination. A crash or I/O error
/// at any point leaves the destination either fully old or fully new —
/// never torn — so readers need no recovery logic beyond their normal
/// checksum validation.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_ATOMICFILE_H
#define SC_SUPPORT_ATOMICFILE_H

#include "support/FileSystem.h"

#include <string>

namespace sc {

/// Atomically replaces \p Path with \p Content via write-temp -> fsync
/// -> rename. On failure the destination is untouched and the temp file
/// is removed (best effort). Returns false on any I/O failure; consult
/// FS.lastError() for the cause.
bool atomicWriteFile(VirtualFileSystem &FS, const std::string &Path,
                     const std::string &Content);

/// A fresh sibling temp path for staging \p Path:
/// `<path>.tmp.<pid>.<counter>`. Unique per process *and* per call, so
/// two processes (daemon + CLI) or two attempts staging the same
/// artifact can never collide on the temp name and rename each other's
/// half-written bytes into place.
std::string atomicTempPath(const std::string &Path);

/// True when \p Path looks like an atomicTempPath product (including
/// the legacy fixed `<path>.tmp` form older builds staged through).
bool isAtomicTempPath(const std::string &Path);

/// Removes orphaned staging temps under `DirPrefix/` (all files when
/// \p DirPrefix is empty) — the debris a crash between write and rename
/// leaves behind, which would otherwise leak forever. Callers must hold
/// the build lock: unique names protect concurrent *writers*, but a
/// sweep could still reap a temp an unlocked writer is about to rename.
/// Returns the number of files removed.
unsigned sweepAtomicTemps(VirtualFileSystem &FS,
                          const std::string &DirPrefix);

} // namespace sc

#endif // SC_SUPPORT_ATOMICFILE_H
