//===- support/AtomicFile.h - Crash-safe whole-file writes ------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one durable-write primitive every persistent artifact (state DB,
/// manifest, object files) goes through: write a sibling temp file,
/// fsync it, then rename it over the destination. A crash or I/O error
/// at any point leaves the destination either fully old or fully new —
/// never torn — so readers need no recovery logic beyond their normal
/// checksum validation.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_ATOMICFILE_H
#define SC_SUPPORT_ATOMICFILE_H

#include "support/FileSystem.h"

#include <string>

namespace sc {

/// Atomically replaces \p Path with \p Content via write-temp -> fsync
/// -> rename. On failure the destination is untouched and the temp file
/// is removed (best effort). Returns false on any I/O failure; consult
/// FS.lastError() for the cause.
bool atomicWriteFile(VirtualFileSystem &FS, const std::string &Path,
                     const std::string &Content);

/// The sibling temp path atomicWriteFile stages through (exposed so
/// cleanup and tests agree on the name).
std::string atomicTempPath(const std::string &Path);

} // namespace sc

#endif // SC_SUPPORT_ATOMICFILE_H
