//===- support/SamplingProfiler.h - Wall-time sampling overlay --*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A statistical where-does-wall-time-go overlay on TraceRecorder:
/// a background thread wakes `--profile-sample-hz` times per second,
/// snapshots every recording thread's current-span stack (maintained
/// by TraceSpan only while sampling is enabled), and aggregates the
/// observations into weighted stack records. stop() folds the
/// aggregate into the recorder as instant events (category "sample",
/// see docs/OBSERVABILITY.md for the event shape) so they merge into
/// the same trace file the spans land in and `scbuild analyze` can
/// attribute wall time to stacks even when span volume was dropped.
///
/// Cost model: off (the default) the overlay adds one relaxed atomic
/// load per recorded span and nothing else — asserted by the
/// zero-overhead benchmarks in bench_e8_micro. On, the sampler is one
/// thread doing O(live threads) work per tick; recording threads only
/// ever take their own (uncontended) ring lock a moment longer.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_SAMPLINGPROFILER_H
#define SC_SUPPORT_SAMPLINGPROFILER_H

#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

namespace sc {

class SamplingProfiler {
public:
  /// \p Hz = 0 disables the profiler entirely: start()/stop() become
  /// no-ops and the recorder's sampling flag is never raised.
  SamplingProfiler(TraceRecorder &R, unsigned Hz);
  ~SamplingProfiler();

  /// Spawns the sampler thread and enables span-stack maintenance.
  void start();

  /// Stops sampling, restores the recorder's sampling flag, and emits
  /// one "sample" instant event per distinct observed stack with
  /// args {"stack": "a;b;c", "samples": N, "weight_ns": N * period}.
  /// Idempotent; also called by the destructor.
  void stop();

  bool running() const { return Thread.joinable(); }
  uint64_t samplesTaken() const {
    return Samples.load(std::memory_order_relaxed);
  }

  SamplingProfiler(const SamplingProfiler &) = delete;
  SamplingProfiler &operator=(const SamplingProfiler &) = delete;

private:
  void run();

  TraceRecorder &R;
  const unsigned Hz;
  const uint64_t PeriodNs;
  std::thread Thread;
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Samples{0};
  // Written only by the sampler thread; read after join() in stop().
  std::map<std::string, uint64_t> StackSamples;
};

} // namespace sc

#endif // SC_SUPPORT_SAMPLINGPROFILER_H
