//===- support/Trace.h - Build-telemetry span recorder ----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The build telemetry recorder: a per-thread span/instant-event log
/// merged into Chrome trace-event JSON (loadable by chrome://tracing
/// and Perfetto) at build end. One recorder serves one build process;
/// every layer that wants to emit events holds a `TraceRecorder *`
/// that is null (or disabled) by default, so an untraced build pays a
/// single pointer/flag test per would-be event and nothing else.
///
/// Concurrency model: each recording thread owns a private event ring,
/// registered once under the registry mutex and thereafter written
/// under a per-ring lock that only its owning thread and the merge
/// paths ever take — recording threads never contend with one another,
/// and snapshot()/numEvents()/clear() are safe to call while workers
/// are still recording. Rings are bounded; when one fills, the oldest
/// events are overwritten (the tail of a build matters more than its
/// start) and the drop is counted. Merging (snapshot / toChromeJson)
/// tags each event with its thread id and sorts by start timestamp.
///
/// Event vocabulary (see docs/OBSERVABILITY.md for the full schema):
///   * spans  ("ph":"X") — build phases, per-TU compiles, per-pass
///     executions, state-DB load/save;
///   * instants ("ph":"i") — skipped passes carrying the dormancy
///     verdict, state salvage, lock reclaim.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_TRACE_H
#define SC_SUPPORT_TRACE_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sc {

/// Escapes \p S for embedding inside a JSON string literal.
std::string jsonEscape(const std::string &S);

/// Destination for streamed trace events (daemon mode): instead of
/// buffering a whole build's events until toChromeJson(), a recorder
/// with a sink drains its rings on every flush() and the sink appends
/// them to wherever they live — so a long-lived process's trace is
/// bounded by the ring capacity between flushes, never by process
/// lifetime. Each call receives one complete Chrome-trace event object
/// (metadata rows included); the sink owns the surrounding framing.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Appends one serialized trace-event JSON object. Returns false on
  /// a sink I/O failure (the recorder keeps going; streaming telemetry
  /// is best-effort).
  virtual bool event(const std::string &EventJson) = 0;
};

/// TraceSink appending to a host file in Chrome's *JSON array* trace
/// format: `[\n {event},\n {event}, ...` — readable by Perfetto and
/// chrome://tracing even while the daemon is still running (both
/// tolerate a truncated array), and terminated into strictly valid
/// JSON by close(). One sink serves one file for the process lifetime.
class FileTraceSink : public TraceSink {
public:
  /// Opens (truncates) \p HostPath. ok() reports whether it opened.
  explicit FileTraceSink(std::string HostPath);
  ~FileTraceSink() override;

  bool ok() const { return F != nullptr; }
  bool event(const std::string &EventJson) override;

  /// Writes the closing bracket and closes the file; the result is
  /// strictly valid JSON (an array of events). Idempotent.
  bool close();

private:
  std::FILE *F = nullptr;
  bool AnyEvent = false;
};

/// One recorded telemetry event. Category pointers must have static
/// lifetime (string literals); names and args are owned.
struct TraceEvent {
  enum class Kind : uint8_t {
    Span,    // "ph":"X" — complete event with duration.
    Instant, // "ph":"i" — point-in-time marker.
  };

  Kind K = Kind::Span;
  uint32_t Tid = 0;    // Filled in when logs are merged.
  uint64_t StartNs = 0; // Monotonic (nowNanos) timestamp.
  uint64_t DurNs = 0;   // Spans only.
  const char *Category = "";
  std::string Name;
  std::string ArgsJson; // Preformatted JSON object text, or empty.
};

/// Contention-free-per-thread span recorder; see the file comment.
class TraceRecorder {
public:
  /// \p PerThreadCapacity bounds each thread's ring; a build emits one
  /// span per executed pass, so the default comfortably holds the
  /// largest bench project and drops (counted) beyond that.
  explicit TraceRecorder(bool StartEnabled = true,
                         size_t PerThreadCapacity = 1u << 16);

  /// Cheap gate for call sites: a disabled recorder records nothing
  /// and every record call returns after this one relaxed load.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool E) { Enabled.store(E, std::memory_order_relaxed); }

  /// Records a complete span [StartNs, EndNs] on the calling thread.
  void span(const char *Category, std::string Name, uint64_t StartNs,
            uint64_t EndNs, std::string ArgsJson = std::string());

  /// Records an instant event stamped now on the calling thread.
  void instant(const char *Category, std::string Name,
               std::string ArgsJson = std::string());

  /// Names the calling thread in the emitted trace (default thread-N).
  void setThreadName(std::string Name);

  /// Total events overwritten because a thread ring filled.
  uint64_t droppedEvents() const;

  /// Per-thread drop counts (thread name -> events overwritten),
  /// including zero entries, in tid order. The build driver folds the
  /// nonzero ones into the merged trace metadata and --report-json so
  /// a truncated trace never silently looks complete.
  std::vector<std::pair<std::string, uint64_t>> droppedByThread() const;

  //===--- Sampling-profiler support --------------------------------------===//
  //
  // When sampling is on, every live TraceSpan additionally maintains a
  // per-thread current-span stack that SamplingProfiler snapshots at
  // its tick rate. Off (the default) the only added cost per span is
  // one relaxed load; a disabled recorder pays nothing at all — the
  // zero-overhead assertions in bench_e8_micro hold either way.

  bool samplingEnabled() const {
    return Sampling.load(std::memory_order_relaxed);
  }
  void setSamplingEnabled(bool S) {
    Sampling.store(S, std::memory_order_relaxed);
  }

  /// Pushes a frame onto the calling thread's current-span stack.
  /// \p Name must stay valid (and unmutated) until the matching pop —
  /// TraceSpan guarantees this by being immovable and popping before
  /// it moves its name out.
  void pushCurrentSpan(const char *Category, const std::string &Name);
  void popCurrentSpan();

  /// One rendered stack per thread with at least one live span:
  /// outermost-first span names joined with ';'
  /// (e.g. "build;compile:util.mc;frontend:util.mc"). Safe to call
  /// from the sampler thread while workers record.
  std::vector<std::string> sampleStacks() const;

  /// Events currently held across all thread rings.
  size_t numEvents() const;

  /// Merged copy of all thread logs: tid-tagged, sorted by StartNs.
  std::vector<TraceEvent> snapshot() const;

  /// The merged log as a Chrome trace-event JSON document: a
  /// {"traceEvents":[...]} object with thread-name metadata, ts/dur in
  /// microseconds relative to recorder creation.
  std::string toChromeJson() const;

  /// Drops all recorded events (thread registrations survive).
  void clear();

  /// Attaches a streaming sink. The recorder does not take ownership;
  /// the sink must outlive the recorder or be detached (nullptr) first.
  void setSink(TraceSink *S);

  /// Drains every thread ring into the sink (tid-tagged, sorted by
  /// start time, with thread-name metadata rows emitted the first time
  /// each thread — or a renamed thread — appears) and clears the rings.
  /// Returns the number of events emitted; 0 (and no clear) without a
  /// sink. The daemon calls this after each request, bounding memory
  /// for arbitrarily long-lived processes.
  size_t flush();

private:
  struct ThreadLog {
    uint32_t Tid = 0;
    std::string Name;
    std::mutex RingMu; // Owner thread vs. merge/clear; never contended
                       // between recording threads.
    std::vector<TraceEvent> Ring;
    size_t Next = 0;                   // Overwrite cursor once full.
    std::atomic<uint64_t> Dropped{0};
    /// Live (RAII) spans on this thread, outermost first; pointers
    /// into the owning TraceSpans. Guarded by RingMu: the owner
    /// pushes/pops, the sampler reads.
    std::vector<std::pair<const char *, const std::string *>> SpanStack;
  };

  /// The calling thread's log, registering it on first use. The fast
  /// path is two thread_local compares (owner pointer + epoch).
  ThreadLog &logForThisThread();

  void append(TraceEvent E);

  std::atomic<bool> Enabled;
  std::atomic<bool> Sampling{false};
  const size_t Capacity;
  const uint64_t BaseNs;  // Trace epoch: ts 0 in the emitted JSON.
  const uint64_t Epoch;   // Unique per recorder instance; guards the
                          // thread_local cache against stale owners.

  mutable std::mutex Mu;  // Guards Logs/ByThread (registration+merge).
  std::vector<std::unique_ptr<ThreadLog>> Logs;
  std::map<std::thread::id, ThreadLog *> ByThread;

  TraceSink *Sink = nullptr;            // Guarded by Mu.
  std::map<uint32_t, std::string> AnnouncedThreads; // Tid -> last name
                                                    // sent to the sink.
  bool AnnouncedProcess = false;
};

/// RAII span: records [construction, destruction] on the calling
/// thread. A null (or disabled-at-construction) recorder makes it a
/// no-op; callers building dynamic names should gate the string
/// construction on `R && R->enabled()` themselves.
class TraceSpan {
public:
  TraceSpan(TraceRecorder *R, const char *Category, std::string Name)
      : R(R && R->enabled() ? R : nullptr), Category(Category) {
    if (this->R) {
      this->Name = std::move(Name);
      StartNs = nowNanos();
      if (this->R->samplingEnabled()) {
        // The stack frame points at this->Name; valid because the
        // span is immovable and pops before the name moves out.
        this->R->pushCurrentSpan(Category, this->Name);
        Pushed = true;
      }
    }
  }

  /// Attaches a preformatted JSON args object to the span.
  void args(std::string ArgsJson) {
    if (R)
      Args = std::move(ArgsJson);
  }

  ~TraceSpan() {
    if (R) {
      if (Pushed)
        R->popCurrentSpan();
      R->span(Category, std::move(Name), StartNs, nowNanos(),
              std::move(Args));
    }
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  TraceRecorder *R;
  const char *Category;
  std::string Name;
  std::string Args;
  uint64_t StartNs = 0;
  bool Pushed = false;
};

/// Sampling-stack frame for retroactively-recorded spans. Much of the
/// hot path measures a window with nowNanos() and calls span() after
/// the fact — it never constructs a TraceSpan, so the sampling
/// profiler would not see those windows at all. A SampleFrame placed
/// over the measured window puts the frame on the thread's
/// current-span stack while sampling is on; when sampling is off the
/// whole object is one relaxed load and two branches, keeping the
/// bench_e8_micro zero-overhead assertions intact.
///
/// enter() switches the frame in place (pop + push), which suits
/// linear phase code: one SampleFrame per region sequence, re-entered
/// at each boundary, and the destructor unwinds whatever is live —
/// including on early returns.
///
/// \p Name lifetimes follow pushCurrentSpan: the string must stay
/// valid until the frame exits (call sites use locals or immortal
/// constants).
class SampleFrame {
public:
  SampleFrame(TraceRecorder *R, const char *Category)
      : R(R && R->enabled() && R->samplingEnabled() ? R : nullptr),
        Category(Category) {}
  SampleFrame(TraceRecorder *R, const char *Category, const std::string &Name)
      : SampleFrame(R, Category) {
    enter(Name);
  }

  /// Replaces the live frame (if any) with \p Name.
  void enter(const std::string &Name) {
    if (!R)
      return;
    if (Live)
      R->popCurrentSpan();
    R->pushCurrentSpan(Category, Name);
    Live = true;
  }

  /// Pops the live frame, if any. Idempotent.
  void exit() {
    if (R && Live) {
      R->popCurrentSpan();
      Live = false;
    }
  }

  ~SampleFrame() { exit(); }

  SampleFrame(const SampleFrame &) = delete;
  SampleFrame &operator=(const SampleFrame &) = delete;

private:
  TraceRecorder *R;
  const char *Category;
  bool Live = false;
};

} // namespace sc

#endif // SC_SUPPORT_TRACE_H
