//===- support/FileLock.cpp - Advisory lock over a VFS -------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FileLock.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include <signal.h>
#include <unistd.h>

using namespace sc;

namespace {

/// Per-acquisition token appended to the lock content so every lock
/// file this process writes is distinguishable — from other processes
/// (by PID) and from other acquisitions in this process (by token).
/// Ownership checks compare whole content, never just the PID.
std::atomic<uint64_t> NextToken{1};

/// Parses "pid N #token [tag]" lock-file content. Returns 0 when the
/// content is not in our format or the PID is non-positive — an
/// unparseable lock is treated as a live foreign lock, never reclaimed.
/// (PID 0 and negative PIDs address process groups in kill(); probing
/// them would be both meaningless and dangerous.)
long parseOwnerPid(const std::string &Content) {
  if (Content.compare(0, 4, "pid ") != 0)
    return 0;
  char *End = nullptr;
  long Pid = std::strtol(Content.c_str() + 4, &End, 10);
  if (End == Content.c_str() + 4 || Pid <= 0)
    return 0;
  return Pid;
}

/// Extracts the optional tag trailing the "#token" field. Content
/// shape: "pid N #T[ tag]\n".
std::string parseOwnerTag(const std::string &Content) {
  size_t Hash = Content.find('#');
  if (Hash == std::string::npos)
    return std::string();
  size_t Space = Content.find(' ', Hash);
  if (Space == std::string::npos)
    return std::string();
  size_t End = Content.find_last_not_of(" \n");
  if (End == std::string::npos || End < Space + 1)
    return std::string();
  return Content.substr(Space + 1, End - Space);
}

/// True only when \p Pid verifiably does not exist. EPERM means the
/// process exists but is not ours — alive, don't touch its lock.
bool ownerIsDead(long Pid) {
  if (::kill(static_cast<pid_t>(Pid), 0) == 0)
    return false;
  return errno == ESRCH;
}

} // namespace

std::optional<FileLock::OwnerInfo>
FileLock::probe(VirtualFileSystem &FS, const std::string &Path) {
  std::optional<std::string> Content = FS.readFile(Path);
  if (!Content)
    return std::nullopt;
  OwnerInfo Info;
  Info.Pid = parseOwnerPid(*Content);
  Info.Alive = Info.Pid != 0 && !ownerIsDead(Info.Pid);
  Info.Tag = parseOwnerTag(*Content);
  return Info;
}

FileLock FileLock::acquire(VirtualFileSystem &FS, const std::string &Path,
                           unsigned TimeoutMs, unsigned BackoffMs,
                           const std::string &Tag) {
  const uint64_t Token = NextToken.fetch_add(1, std::memory_order_relaxed);
  const std::string Content = "pid " + std::to_string(::getpid()) + " #" +
                              std::to_string(Token) +
                              (Tag.empty() ? "" : " " + Tag) + "\n";
  using Clock = std::chrono::steady_clock;
  const auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  unsigned Backoff = BackoffMs ? BackoffMs : 1;
  const unsigned MaxBackoff = Backoff * 8;
  for (;;) {
    if (FS.createExclusive(Path, Content))
      return FileLock(&FS, Path, Content);
    if (Clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    Backoff = std::min(Backoff * 2, MaxBackoff);
  }

  // Timed out. If the lock file names a provably dead owner, reclaim
  // it. The reclaim must never unlink a file it has not exclusively
  // captured — a remove+create sequence would let one waiter unlink a
  // lock another waiter just reclaimed and re-created (both would then
  // hold "exclusive" locks). So capture-by-rename first: moving the
  // file aside to a name unique to this acquisition is atomic, fails
  // for every racer but one once the file is gone, and transfers the
  // file wholly to the winner before anything is deleted.
  std::optional<std::string> Existing = FS.readFile(Path);
  if (!Existing)
    // Owner released between our last attempt and now: one more try.
    return FS.createExclusive(Path, Content) ? FileLock(&FS, Path, Content)
                                             : FileLock();
  long Owner = parseOwnerPid(*Existing);
  if (Owner == 0 || !ownerIsDead(Owner))
    return FileLock();
  const std::string Aside = Path + ".reclaim." + std::to_string(::getpid()) +
                            "." + std::to_string(Token);
  if (!FS.renameFile(Path, Aside))
    // Another reclaimer captured the file first (or the path vanished);
    // stay unlocked and let the build degrade read-only as before.
    return FileLock();
  // Re-verify the captured file is the one we probed. If the content
  // changed between probe and rename, the stale lock was already
  // reclaimed and the path re-created by a new *live* holder — hand the
  // file back (create-exclusive, so a third waiter that took the path
  // meanwhile is never clobbered) and stand down.
  std::optional<std::string> Captured = FS.readFile(Aside);
  if (!Captured || *Captured != *Existing) {
    if (Captured)
      FS.createExclusive(Path, *Captured);
    FS.removeFile(Aside);
    return FileLock();
  }
  FS.removeFile(Aside);
  if (!FS.createExclusive(Path, Content))
    return FileLock();
  FileLock Lock(&FS, Path, Content);
  Lock.Reclaimed = true;
  Lock.ReclaimedOwner = Owner;
  return Lock;
}

FileLock::FileLock(FileLock &&Other) noexcept
    : FS(Other.FS), Path(std::move(Other.Path)),
      Content(std::move(Other.Content)), Reclaimed(Other.Reclaimed),
      ReclaimedOwner(Other.ReclaimedOwner) {
  Other.FS = nullptr;
}

FileLock &FileLock::operator=(FileLock &&Other) noexcept {
  if (this != &Other) {
    release();
    FS = Other.FS;
    Path = std::move(Other.Path);
    Content = std::move(Other.Content);
    Reclaimed = Other.Reclaimed;
    ReclaimedOwner = Other.ReclaimedOwner;
    Other.FS = nullptr;
  }
  return *this;
}

FileLock::~FileLock() {
  try {
    release();
  } catch (...) {
    // A simulated crash (CrashPoint) during the destructor's unlock
    // must not escape a noexcept destructor. The lock file stays
    // behind — exactly what a process dying mid-exit leaves — and the
    // next build times out on it and degrades to read-only.
    FS = nullptr;
  }
}

void FileLock::release() {
  if (FS) {
    // Ownership check: the path could in principle hold another
    // process's lock by now (crash → reclaim → re-create shuffles);
    // never unlink a file that verifiably is not ours. An unreadable
    // file is still removed — it is almost certainly ours, and leaving
    // it behind would wedge every later build behind a lock whose
    // owner is alive.
    std::optional<std::string> Cur = FS->readFile(Path);
    if (!Cur || *Cur == Content)
      FS->removeFile(Path);
  }
  FS = nullptr;
}
