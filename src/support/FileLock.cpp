//===- support/FileLock.cpp - Advisory lock over a VFS -------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FileLock.h"

#include <chrono>
#include <thread>

#include <unistd.h>

using namespace sc;

FileLock FileLock::acquire(VirtualFileSystem &FS, const std::string &Path,
                           unsigned TimeoutMs, unsigned BackoffMs) {
  const std::string Content = "pid " + std::to_string(::getpid()) + "\n";
  using Clock = std::chrono::steady_clock;
  const auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  unsigned Backoff = BackoffMs ? BackoffMs : 1;
  const unsigned MaxBackoff = Backoff * 8;
  for (;;) {
    if (FS.createExclusive(Path, Content))
      return FileLock(&FS, Path);
    if (Clock::now() >= Deadline)
      return FileLock();
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    Backoff = std::min(Backoff * 2, MaxBackoff);
  }
}

FileLock::FileLock(FileLock &&Other) noexcept
    : FS(Other.FS), Path(std::move(Other.Path)) {
  Other.FS = nullptr;
}

FileLock &FileLock::operator=(FileLock &&Other) noexcept {
  if (this != &Other) {
    release();
    FS = Other.FS;
    Path = std::move(Other.Path);
    Other.FS = nullptr;
  }
  return *this;
}

FileLock::~FileLock() {
  try {
    release();
  } catch (...) {
    // A simulated crash (CrashPoint) during the destructor's unlock
    // must not escape a noexcept destructor. The lock file stays
    // behind — exactly what a process dying mid-exit leaves — and the
    // next build times out on it and degrades to read-only.
    FS = nullptr;
  }
}

void FileLock::release() {
  if (FS)
    FS->removeFile(Path);
  FS = nullptr;
}
