//===- support/FileLock.cpp - Advisory lock over a VFS -------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FileLock.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include <signal.h>
#include <unistd.h>

using namespace sc;

namespace {

/// Parses "pid N" lock-file content. Returns 0 when the content is not
/// in our format or the PID is non-positive — an unparseable lock is
/// treated as a live foreign lock, never reclaimed. (PID 0 and
/// negative PIDs address process groups in kill(); probing them would
/// be both meaningless and dangerous.)
long parseOwnerPid(const std::string &Content) {
  if (Content.compare(0, 4, "pid ") != 0)
    return 0;
  char *End = nullptr;
  long Pid = std::strtol(Content.c_str() + 4, &End, 10);
  if (End == Content.c_str() + 4 || Pid <= 0)
    return 0;
  return Pid;
}

/// True only when \p Pid verifiably does not exist. EPERM means the
/// process exists but is not ours — alive, don't touch its lock.
bool ownerIsDead(long Pid) {
  if (::kill(static_cast<pid_t>(Pid), 0) == 0)
    return false;
  return errno == ESRCH;
}

} // namespace

FileLock FileLock::acquire(VirtualFileSystem &FS, const std::string &Path,
                           unsigned TimeoutMs, unsigned BackoffMs) {
  const std::string Content = "pid " + std::to_string(::getpid()) + "\n";
  using Clock = std::chrono::steady_clock;
  const auto Deadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
  unsigned Backoff = BackoffMs ? BackoffMs : 1;
  const unsigned MaxBackoff = Backoff * 8;
  for (;;) {
    if (FS.createExclusive(Path, Content))
      return FileLock(&FS, Path);
    if (Clock::now() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
    Backoff = std::min(Backoff * 2, MaxBackoff);
  }

  // Timed out. If the lock file names a provably dead owner, reclaim
  // it: remove the stale file and take the lock ourselves. Two waiters
  // may race here — both remove, but create-exclusive arbitrates and
  // exactly one wins; the loser stays unlocked (read-only build), the
  // same degradation as before reclaim existed.
  std::optional<std::string> Existing = FS.readFile(Path);
  if (!Existing)
    // Owner released between our last attempt and now: one more try.
    return FS.createExclusive(Path, Content) ? FileLock(&FS, Path)
                                             : FileLock();
  long Owner = parseOwnerPid(*Existing);
  if (Owner == 0 || !ownerIsDead(Owner))
    return FileLock();
  FS.removeFile(Path);
  if (!FS.createExclusive(Path, Content))
    return FileLock();
  FileLock Lock(&FS, Path);
  Lock.Reclaimed = true;
  Lock.ReclaimedOwner = Owner;
  return Lock;
}

FileLock::FileLock(FileLock &&Other) noexcept
    : FS(Other.FS), Path(std::move(Other.Path)), Reclaimed(Other.Reclaimed),
      ReclaimedOwner(Other.ReclaimedOwner) {
  Other.FS = nullptr;
}

FileLock &FileLock::operator=(FileLock &&Other) noexcept {
  if (this != &Other) {
    release();
    FS = Other.FS;
    Path = std::move(Other.Path);
    Reclaimed = Other.Reclaimed;
    ReclaimedOwner = Other.ReclaimedOwner;
    Other.FS = nullptr;
  }
  return *this;
}

FileLock::~FileLock() {
  try {
    release();
  } catch (...) {
    // A simulated crash (CrashPoint) during the destructor's unlock
    // must not escape a noexcept destructor. The lock file stays
    // behind — exactly what a process dying mid-exit leaves — and the
    // next build times out on it and degrades to read-only.
    FS = nullptr;
  }
}

void FileLock::release() {
  if (FS)
    FS->removeFile(Path);
  FS = nullptr;
}
