//===- support/TaskPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TaskPool.h"

#include <cassert>
#include <chrono>

using namespace sc;

namespace {

/// Index of the worker deque owned by the current thread, or -1 on
/// threads that are not pool workers (the submitting thread).
thread_local int CurrentWorkerIndex = -1;

/// Depth of nested "help" execution on this thread: tasks executed
/// while waiting at a parallelFor barrier stack on the waiter's
/// frame, so bound the recursion to keep stack growth finite.
thread_local unsigned HelpDepth = 0;
constexpr unsigned MaxHelpDepth = 32;

/// Iterations of the bounded spin prelude before a thread parks. Kept
/// small: spinning only pays when a producer is about to enqueue, and
/// it actively hurts on oversubscribed machines.
constexpr unsigned SpinLimit = 16;

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

TaskPool::TaskPool(unsigned Concurrency) {
  NumWorkers = Concurrency > 1 ? Concurrency - 1 : 0;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.push_back(std::make_unique<WorkerState>());
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMu);
    Stopping.store(true, std::memory_order_relaxed);
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

TaskPoolStats TaskPool::stats() const {
  TaskPoolStats S;
  S.TasksExecuted = Stats.TasksExecuted.load(std::memory_order_relaxed);
  S.StealAttempts = Stats.StealAttempts.load(std::memory_order_relaxed);
  S.Steals = Stats.Steals.load(std::memory_order_relaxed);
  S.HelpedTasks = Stats.HelpedTasks.load(std::memory_order_relaxed);
  S.SpinIterations = Stats.SpinIterations.load(std::memory_order_relaxed);
  S.Parks = Stats.Parks.load(std::memory_order_relaxed);
  S.ParkWaitNs = Stats.ParkWaitNs.load(std::memory_order_relaxed);
  return S;
}

void TaskPool::enqueue(std::function<void()> Fn) {
  assert(NumWorkers > 0 && "enqueue on a sequential pool");
  // Round-robin across worker deques so queued work spreads out even
  // before anyone steals.
  unsigned W = NextVictim.fetch_add(1, std::memory_order_relaxed) % NumWorkers;
  {
    std::lock_guard<std::mutex> Lock(Workers[W]->Mu);
    Workers[W]->Deque.push_back(std::move(Fn));
  }
  NumQueued.fetch_add(1, std::memory_order_release);
  NumPending.fetch_add(1, std::memory_order_release);
  SleepCv.notify_one();
}

std::function<void()> TaskPool::grabTask(int Index) {
  // Own deque first (back = most recently pushed, cache-warm) ...
  if (Index >= 0) {
    WorkerState &Own = *Workers[Index];
    std::lock_guard<std::mutex> Lock(Own.Mu);
    if (!Own.Deque.empty()) {
      auto Fn = std::move(Own.Deque.back());
      Own.Deque.pop_back();
      NumQueued.fetch_sub(1, std::memory_order_relaxed);
      return Fn;
    }
  }
  // ... then steal the oldest task from someone else.
  Stats.StealAttempts.fetch_add(1, std::memory_order_relaxed);
  unsigned First = Index >= 0 ? static_cast<unsigned>(Index) + 1 : 0;
  unsigned Count = Index >= 0 ? NumWorkers - 1 : NumWorkers;
  for (unsigned K = 0; K != Count; ++K) {
    WorkerState &Victim = *Workers[(First + K) % NumWorkers];
    std::lock_guard<std::mutex> Lock(Victim.Mu);
    if (!Victim.Deque.empty()) {
      auto Fn = std::move(Victim.Deque.front());
      Victim.Deque.pop_front();
      NumQueued.fetch_sub(1, std::memory_order_relaxed);
      Stats.Steals.fetch_add(1, std::memory_order_relaxed);
      return Fn;
    }
  }
  return {};
}

void TaskPool::runTask(std::function<void()> &Fn) {
  Fn();
  Stats.TasksExecuted.fetch_add(1, std::memory_order_relaxed);
  if (NumPending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last pending task: wake wait() callers (and anything else parked).
    std::lock_guard<std::mutex> Lock(SleepMu);
    SleepCv.notify_all();
  }
}

void TaskPool::workerLoop(unsigned Index) {
  CurrentWorkerIndex = static_cast<int>(Index);
  for (;;) {
    if (std::function<void()> Fn = grabTask(static_cast<int>(Index))) {
      runTask(Fn);
      continue;
    }
    // Bounded spin prelude: a producer mid-enqueue beats a park/unpark
    // round trip, but never burn more than SpinLimit iterations.
    unsigned Spins = 0;
    while (Spins != SpinLimit &&
           NumQueued.load(std::memory_order_acquire) == 0 &&
           !Stopping.load(std::memory_order_relaxed)) {
      ++Spins;
      std::this_thread::yield();
    }
    if (Spins != 0)
      Stats.SpinIterations.fetch_add(Spins, std::memory_order_relaxed);
    if (NumQueued.load(std::memory_order_acquire) != 0)
      continue;
    Stats.Parks.fetch_add(1, std::memory_order_relaxed);
    uint64_t T0 = nowNs();
    {
      std::unique_lock<std::mutex> Lock(SleepMu);
      SleepCv.wait(Lock, [this] {
        return Stopping.load(std::memory_order_relaxed) ||
               NumQueued.load(std::memory_order_acquire) != 0;
      });
    }
    Stats.ParkWaitNs.fetch_add(nowNs() - T0, std::memory_order_relaxed);
    if (Stopping.load(std::memory_order_relaxed))
      return;
  }
}

void TaskPool::async(std::function<void()> Fn) {
  if (NumWorkers == 0) {
    Fn(); // Sequential pool: run in place.
    return;
  }
  enqueue(std::move(Fn));
}

void TaskPool::wait() {
  if (NumWorkers == 0)
    return;
  // Help drain instead of blocking a thread that could be working.
  while (NumPending.load(std::memory_order_acquire) != 0) {
    if (std::function<void()> Fn = grabTask(CurrentWorkerIndex)) {
      runTask(Fn);
      continue;
    }
    // Everything is claimed; wait for the executing threads to finish.
    Stats.Parks.fetch_add(1, std::memory_order_relaxed);
    uint64_t T0 = nowNs();
    {
      std::unique_lock<std::mutex> Lock(SleepMu);
      SleepCv.wait(Lock, [this] {
        return NumPending.load(std::memory_order_acquire) == 0 ||
               NumQueued.load(std::memory_order_acquire) != 0;
      });
    }
    Stats.ParkWaitNs.fetch_add(nowNs() - T0, std::memory_order_relaxed);
  }
}

void TaskPool::parallelFor(size_t N,
                           const std::function<void(size_t, unsigned)> &Body) {
  if (N == 0)
    return;
  if (NumWorkers == 0 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I, 0);
    return;
  }

  // Shared claim state. Helpers keep it alive via shared_ptr: a helper
  // dequeued after this call returned finds Next >= N and never touches
  // Body (which may be dead by then).
  struct State {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::atomic<unsigned> Participants{0};
    size_t N = 0;
    const std::function<void(size_t, unsigned)> *Body = nullptr;
  };
  auto S = std::make_shared<State>();
  S->N = N;
  S->Body = &Body;

  auto Claim = [this](const std::shared_ptr<State> &St) {
    // Claim the slot lazily: a helper that arrives after all items are
    // taken must not consume a slot id.
    size_t I = St->Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= St->N)
      return;
    unsigned Slot = St->Participants.fetch_add(1, std::memory_order_relaxed);
    size_t Completed = 0;
    do {
      (*St->Body)(I, Slot);
      ++Completed;
      I = St->Next.fetch_add(1, std::memory_order_relaxed);
    } while (I < St->N);
    size_t D = St->Done.fetch_add(Completed, std::memory_order_acq_rel) +
               Completed;
    if (D == St->N) {
      // Wake every parked thread: the barrier owner checks its own
      // St->Done, workers re-check the queue. Taking SleepMu closes
      // the check-then-sleep race with a waiter about to park.
      std::lock_guard<std::mutex> Lock(SleepMu);
      SleepCv.notify_all();
    }
  };

  // One helper per worker (capped by the item count); idle workers
  // pick them up or steal them from busy workers' deques.
  size_t NumHelpers = std::min<size_t>(NumWorkers, N - 1);
  for (size_t H = 0; H != NumHelpers; ++H)
    enqueue([S, Claim] { Claim(S); });

  // The submitting thread is participant zero-or-later and typically
  // executes the lion's share.
  Claim(S);

  // Barrier with work-stealing: while stragglers finish our items, run
  // OTHER queued pool tasks (function-pass tasks from a different TU,
  // another TU's compile job) instead of sleeping. This removes the
  // per-TU barrier from the build's critical path — the pool sees one
  // cross-TU task frontier. Depth-bounded so pathological nesting
  // cannot grow the stack without limit.
  const bool CanHelp = HelpDepth < MaxHelpDepth;
  while (S->Done.load(std::memory_order_acquire) != S->N) {
    if (CanHelp) {
      if (std::function<void()> Fn = grabTask(CurrentWorkerIndex)) {
        ++HelpDepth;
        runTask(Fn);
        --HelpDepth;
        Stats.HelpedTasks.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    // Nothing stealable (or too deep): bounded spin, then park until
    // our loop completes or (if we may help) new work shows up.
    unsigned Spins = 0;
    while (Spins != SpinLimit &&
           S->Done.load(std::memory_order_acquire) != S->N &&
           !(CanHelp && NumQueued.load(std::memory_order_acquire) != 0)) {
      ++Spins;
      std::this_thread::yield();
    }
    if (Spins != 0)
      Stats.SpinIterations.fetch_add(Spins, std::memory_order_relaxed);
    if (S->Done.load(std::memory_order_acquire) == S->N)
      break;
    if (CanHelp && NumQueued.load(std::memory_order_acquire) != 0)
      continue;
    Stats.Parks.fetch_add(1, std::memory_order_relaxed);
    uint64_t T0 = nowNs();
    {
      std::unique_lock<std::mutex> Lock(SleepMu);
      SleepCv.wait(Lock, [&] {
        return S->Done.load(std::memory_order_acquire) == S->N ||
               (CanHelp && NumQueued.load(std::memory_order_acquire) != 0);
      });
    }
    Stats.ParkWaitNs.fetch_add(nowNs() - T0, std::memory_order_relaxed);
  }
}
