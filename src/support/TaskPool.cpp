//===- support/TaskPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TaskPool.h"

#include <cassert>

using namespace sc;

TaskPool::TaskPool(unsigned Concurrency) {
  NumWorkers = Concurrency > 1 ? Concurrency - 1 : 0;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.push_back(std::make_unique<WorkerState>());
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepMu);
    Stopping.store(true, std::memory_order_relaxed);
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void TaskPool::enqueue(std::function<void()> Fn) {
  assert(NumWorkers > 0 && "enqueue on a sequential pool");
  // Round-robin across worker deques so queued work spreads out even
  // before anyone steals.
  unsigned W = NextVictim.fetch_add(1, std::memory_order_relaxed) % NumWorkers;
  {
    std::lock_guard<std::mutex> Lock(Workers[W]->Mu);
    Workers[W]->Deque.push_back(std::move(Fn));
  }
  NumQueued.fetch_add(1, std::memory_order_release);
  NumPending.fetch_add(1, std::memory_order_release);
  SleepCv.notify_one();
}

std::function<void()> TaskPool::grabTask(unsigned Index) {
  // Own deque first (back = most recently pushed, cache-warm) ...
  {
    WorkerState &Own = *Workers[Index];
    std::lock_guard<std::mutex> Lock(Own.Mu);
    if (!Own.Deque.empty()) {
      auto Fn = std::move(Own.Deque.back());
      Own.Deque.pop_back();
      NumQueued.fetch_sub(1, std::memory_order_relaxed);
      return Fn;
    }
  }
  // ... then steal the oldest task from someone else.
  for (unsigned K = 1; K != NumWorkers; ++K) {
    WorkerState &Victim = *Workers[(Index + K) % NumWorkers];
    std::lock_guard<std::mutex> Lock(Victim.Mu);
    if (!Victim.Deque.empty()) {
      auto Fn = std::move(Victim.Deque.front());
      Victim.Deque.pop_front();
      NumQueued.fetch_sub(1, std::memory_order_relaxed);
      return Fn;
    }
  }
  return {};
}

void TaskPool::workerLoop(unsigned Index) {
  for (;;) {
    if (std::function<void()> Fn = grabTask(Index)) {
      Fn();
      if (NumPending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> Lock(SleepMu);
        DrainCv.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMu);
    SleepCv.wait(Lock, [this] {
      return Stopping.load(std::memory_order_relaxed) ||
             NumQueued.load(std::memory_order_acquire) != 0;
    });
    if (Stopping.load(std::memory_order_relaxed))
      return;
  }
}

void TaskPool::async(std::function<void()> Fn) {
  if (NumWorkers == 0) {
    Fn(); // Sequential pool: run in place.
    return;
  }
  enqueue(std::move(Fn));
}

void TaskPool::wait() {
  if (NumWorkers == 0)
    return;
  // Help drain instead of blocking a thread that could be working.
  while (NumPending.load(std::memory_order_acquire) != 0) {
    std::function<void()> Fn;
    for (unsigned W = 0; W != NumWorkers && !Fn; ++W) {
      std::lock_guard<std::mutex> Lock(Workers[W]->Mu);
      if (!Workers[W]->Deque.empty()) {
        Fn = std::move(Workers[W]->Deque.front());
        Workers[W]->Deque.pop_front();
      }
    }
    if (Fn) {
      NumQueued.fetch_sub(1, std::memory_order_relaxed);
      Fn();
      if (NumPending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        return;
      continue;
    }
    // Everything is claimed; wait for the executing threads to finish.
    std::unique_lock<std::mutex> Lock(SleepMu);
    DrainCv.wait(Lock, [this] {
      return NumPending.load(std::memory_order_acquire) == 0 ||
             NumQueued.load(std::memory_order_acquire) != 0;
    });
  }
}

void TaskPool::parallelFor(size_t N,
                           const std::function<void(size_t, unsigned)> &Body) {
  if (N == 0)
    return;
  if (NumWorkers == 0 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I, 0);
    return;
  }

  // Shared claim state. Helpers keep it alive via shared_ptr: a helper
  // dequeued after this call returned finds Next >= N and never touches
  // Body (which may be dead by then).
  struct State {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::atomic<unsigned> Participants{0};
    size_t N = 0;
    const std::function<void(size_t, unsigned)> *Body = nullptr;
    std::mutex Mu;
    std::condition_variable Cv;
  };
  auto S = std::make_shared<State>();
  S->N = N;
  S->Body = &Body;

  auto Claim = [](const std::shared_ptr<State> &St) {
    // Claim the slot lazily: a helper that arrives after all items are
    // taken must not consume a slot id.
    size_t I = St->Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= St->N)
      return;
    unsigned Slot = St->Participants.fetch_add(1, std::memory_order_relaxed);
    size_t Completed = 0;
    do {
      (*St->Body)(I, Slot);
      ++Completed;
      I = St->Next.fetch_add(1, std::memory_order_relaxed);
    } while (I < St->N);
    size_t D = St->Done.fetch_add(Completed, std::memory_order_acq_rel) +
               Completed;
    if (D == St->N) {
      std::lock_guard<std::mutex> Lock(St->Mu);
      St->Cv.notify_all();
    }
  };

  // One helper per worker (capped by the item count); idle workers
  // pick them up or steal them from busy workers' deques.
  size_t NumHelpers = std::min<size_t>(NumWorkers, N - 1);
  for (size_t H = 0; H != NumHelpers; ++H)
    enqueue([S, Claim] { Claim(S); });

  // The submitting thread is participant zero-or-later and typically
  // executes the lion's share.
  Claim(S);

  std::unique_lock<std::mutex> Lock(S->Mu);
  S->Cv.wait(Lock, [&] {
    return S->Done.load(std::memory_order_acquire) == S->N;
  });
}
