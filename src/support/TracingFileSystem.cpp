//===- support/TracingFileSystem.cpp - Access-tracing VFS decorator -------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TracingFileSystem.h"

namespace sc {

void TracingFileSystem::setScope(std::string S) {
  std::lock_guard<std::mutex> L(Mu);
  Scope = std::move(S);
}

void TracingFileSystem::clearTrace() {
  std::lock_guard<std::mutex> L(Mu);
  Reads.clear();
  Ops = 0;
}

std::vector<std::string>
TracingFileSystem::readsFor(const std::string &S) const {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Reads.find(S);
  if (It == Reads.end())
    return {};
  return std::vector<std::string>(It->second.begin(), It->second.end());
}

std::map<std::string, std::set<std::string>>
TracingFileSystem::readsByScope() const {
  std::lock_guard<std::mutex> L(Mu);
  return Reads;
}

uint64_t TracingFileSystem::tracedOps() const {
  std::lock_guard<std::mutex> L(Mu);
  return Ops;
}

uint64_t TracingFileSystem::distinctPathsTraced() const {
  std::lock_guard<std::mutex> L(Mu);
  std::set<std::string> All;
  for (const auto &[S, Paths] : Reads)
    All.insert(Paths.begin(), Paths.end());
  return All.size();
}

void TracingFileSystem::record(const std::string &Path) {
  std::lock_guard<std::mutex> L(Mu);
  ++Ops;
  Reads[Scope].insert(Path);
}

std::optional<std::string> TracingFileSystem::readFile(const std::string &P) {
  record(P);
  return Base.readFile(P);
}

bool TracingFileSystem::writeFile(const std::string &P,
                                  const std::string &C) {
  return Base.writeFile(P, C);
}

bool TracingFileSystem::exists(const std::string &P) {
  record(P);
  return Base.exists(P);
}

bool TracingFileSystem::removeFile(const std::string &P) {
  return Base.removeFile(P);
}

std::vector<std::string> TracingFileSystem::listFiles() {
  return Base.listFiles();
}

bool TracingFileSystem::renameFile(const std::string &From,
                                   const std::string &To) {
  return Base.renameFile(From, To);
}

bool TracingFileSystem::syncFile(const std::string &P) {
  return Base.syncFile(P);
}

bool TracingFileSystem::createExclusive(const std::string &P,
                                        const std::string &C) {
  return Base.createExclusive(P, C);
}

std::string TracingFileSystem::lastError() const { return Base.lastError(); }

} // namespace sc
