//===- support/Casting.h - LLVM-style RTTI helpers --------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's isa<>/cast<>/dyn_cast<> templates.
/// A class hierarchy opts in by providing a `static bool classof(const
/// Base *)` on each derived class, typically dispatching on a Kind enum
/// stored in the base class.
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_CASTING_H
#define SC_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace sc {

/// Returns true if \p Val is an instance of \p To (or a subclass).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Returns true if \p Val is an instance of any of the listed classes.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates a null pointer (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val && isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace sc

#endif // SC_SUPPORT_CASTING_H
