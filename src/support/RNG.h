//===- support/RNG.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic RNG. All workload generation and edit
/// models derive from an explicit seed so experiments are reproducible
/// bit-for-bit across runs and machines (std::mt19937 distributions are
/// not specified to be portable, so we implement our own).
///
//===----------------------------------------------------------------------===//

#ifndef SC_SUPPORT_RNG_H
#define SC_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace sc {

/// Deterministic, portable pseudo-random number generator (SplitMix64).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow() requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T> const T &pick(const std::vector<T> &V) {
    assert(!V.empty() && "pick() from an empty vector");
    return V[nextBelow(V.size())];
  }

  /// Forks an independent child generator (stable given call order).
  RNG fork() { return RNG(next()); }

private:
  uint64_t State;
};

} // namespace sc

#endif // SC_SUPPORT_RNG_H
