//===- support/Metrics.cpp - Typed counter/gauge registry ----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Trace.h" // jsonEscape

#include <cstdio>
#include <cstdlib>

using namespace sc;

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &KV : Counters)
    Out.emplace_back(KV.first, KV.second->value());
  return Out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Gauges.size());
  for (const auto &KV : Gauges)
    Out.emplace_back(KV.first, KV.second->value());
  return Out;
}

std::string MetricsRegistry::toJson() const {
  auto Cs = counters();
  auto Gs = gauges();

  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &KV : Cs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(KV.first) + "\":" + std::to_string(KV.second);
  }
  Out += "},\"gauges\":{";
  First = true;
  char Num[64];
  for (const auto &KV : Gs) {
    if (!First)
      Out += ",";
    First = false;
    std::snprintf(Num, sizeof(Num), "%.6g", KV.second);
    Out += "\"" + jsonEscape(KV.first) + "\":";
    Out += Num;
  }
  Out += "}}";
  return Out;
}

//===----------------------------------------------------------------------===//
// MetricsTextExporter
//===----------------------------------------------------------------------===//

std::string MetricsTextExporter::exportedName(const std::string &Name,
                                              bool IsCounter) {
  std::string Out = "scbuild_";
  Out.reserve(Out.size() + Name.size() + 6);
  for (char C : Name) {
    const bool OK = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_';
    Out += OK ? C : '_';
  }
  if (IsCounter)
    Out += "_total";
  return Out;
}

std::string MetricsTextExporter::render(const MetricsRegistry &R) {
  std::string Out;
  for (const auto &KV : R.counters()) {
    const std::string N = exportedName(KV.first, /*IsCounter=*/true);
    Out += "# TYPE " + N + " counter\n";
    Out += N + " " + std::to_string(KV.second) + "\n";
  }
  char Num[64];
  for (const auto &KV : R.gauges()) {
    const std::string N = exportedName(KV.first, /*IsCounter=*/false);
    Out += "# TYPE " + N + " gauge\n";
    std::snprintf(Num, sizeof(Num), "%.10g", KV.second);
    Out += N + " ";
    Out += Num;
    Out += "\n";
  }
  return Out;
}

std::vector<std::pair<std::string, double>>
MetricsTextExporter::parse(const std::string &Text) {
  std::vector<std::pair<std::string, double>> Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty() || Line[0] == '#')
      continue;
    const size_t Sp = Line.find(' ');
    if (Sp == std::string::npos || Sp == 0)
      continue;
    char *EndPtr = nullptr;
    const double V = std::strtod(Line.c_str() + Sp + 1, &EndPtr);
    if (EndPtr == Line.c_str() + Sp + 1)
      continue; // No numeric value; not a sample line.
    Out.emplace_back(Line.substr(0, Sp), V);
  }
  return Out;
}
