//===- support/Metrics.cpp - Typed counter/gauge registry ----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Trace.h" // jsonEscape

#include <cstdio>

using namespace sc;

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &KV : Counters)
    Out.emplace_back(KV.first, KV.second->value());
  return Out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Gauges.size());
  for (const auto &KV : Gauges)
    Out.emplace_back(KV.first, KV.second->value());
  return Out;
}

std::string MetricsRegistry::toJson() const {
  auto Cs = counters();
  auto Gs = gauges();

  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &KV : Cs) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(KV.first) + "\":" + std::to_string(KV.second);
  }
  Out += "},\"gauges\":{";
  First = true;
  char Num[64];
  for (const auto &KV : Gs) {
    if (!First)
      Out += ",";
    First = false;
    std::snprintf(Num, sizeof(Num), "%.6g", KV.second);
    Out += "\"" + jsonEscape(KV.first) + "\":";
    Out += Num;
  }
  Out += "}}";
  return Out;
}
