//===- ir/IR.h - Core IR: values, instructions, functions -------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's SSA intermediate representation. Design points:
///
///  * LLVM-style class hierarchy with `classof`-based RTTI.
///  * Explicit def-use tracking: every Value records its user
///    instructions, enabling replaceAllUsesWith and cheap deadness
///    checks in the optimizer.
///  * BasicBlocks are not Values; terminators reference successor
///    blocks directly and predecessor lists are maintained
///    automatically as terminators are inserted, removed, or edited.
///  * Calls reference callees by symbol name, so a function compiles
///    independently of its callees (essential for per-TU incremental
///    compilation); the inliner resolves names within a module.
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_IR_H
#define SC_IR_IR_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sc {

class BasicBlock;
class Function;
class Instruction;
class Module;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

/// Base of the IR value hierarchy (everything an operand can name).
class Value {
public:
  enum class Kind : uint8_t {
    Argument,
    ConstantInt,
    GlobalVariable,
    // Instructions — keep contiguous; see isInstructionKind().
    Binary,
    Cmp,
    Select,
    Alloca,
    Load,
    Store,
    Gep,
    Call,
    Phi,
    Br,
    CondBr,
    Ret,
  };

  virtual ~Value() = default;

  Kind kind() const { return K; }
  IRType type() const { return Ty; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Instructions currently using this value (one entry per operand
  /// slot, so a user appears once per use).
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUses() const { return !Users.empty(); }
  size_t numUses() const { return Users.size(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  static bool isInstructionKind(Kind K) {
    return K >= Kind::Binary && K <= Kind::Ret;
  }

  /// Constants and globals are the only values whose user lists can be
  /// mutated from concurrently-optimized functions (instructions and
  /// arguments belong to exactly one function); their list updates go
  /// through a striped lock so function-level pass parallelism is
  /// race-free. Consumers of a shared value's user list must be
  /// order-insensitive — the list order is not deterministic under
  /// parallel optimization (only the set is).
  bool isSharedAcrossFunctions() const {
    return K == Kind::ConstantInt || K == Kind::GlobalVariable;
  }

protected:
  Value(Kind K, IRType Ty) : K(K), Ty(Ty) {}

private:
  friend class Instruction;

  void addUser(Instruction *I);
  void removeUser(Instruction *I);

  const Kind K;
  IRType Ty;
  std::string Name;
  std::vector<Instruction *> Users;
};

//===----------------------------------------------------------------------===//
// Non-instruction values
//===----------------------------------------------------------------------===//

/// Formal parameter of a Function.
class Argument : public Value {
public:
  Argument(IRType Ty, std::string Name, unsigned Index)
      : Value(Kind::Argument, Ty), Index(Index) {
    setName(std::move(Name));
  }

  unsigned index() const { return Index; }

  static bool classof(const Value *V) { return V->kind() == Kind::Argument; }

private:
  unsigned Index;
};

/// Integer constant (i64 or i1). Uniqued per Module.
class ConstantInt : public Value {
public:
  ConstantInt(IRType Ty, int64_t V) : Value(Kind::ConstantInt, Ty), Val(V) {
    assert((Ty == IRType::I64 || Ty == IRType::I1) &&
           "constants must be integers");
    assert((Ty != IRType::I1 || V == 0 || V == 1) && "i1 must be 0 or 1");
  }

  int64_t value() const { return Val; }
  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }

  static bool classof(const Value *V) {
    return V->kind() == Kind::ConstantInt;
  }

private:
  int64_t Val;
};

/// Module-level mutable storage: an array of i64 cells. Scalars use
/// Size == 1 and are loaded/stored through the global's address.
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string Name, uint64_t Size, int64_t Init)
      : Value(Kind::GlobalVariable, IRType::Ptr), Size(Size), Init(Init) {
    setName(std::move(Name));
  }

  uint64_t size() const { return Size; }
  int64_t initValue() const { return Init; }

  static bool classof(const Value *V) {
    return V->kind() == Kind::GlobalVariable;
  }

private:
  uint64_t Size;
  int64_t Init;
};

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

/// Base class for all instructions. Owns no memory; owned by its block.
class Instruction : public Value {
public:
  ~Instruction() override { dropAllOperands(); }

  BasicBlock *parent() const { return Parent; }
  Function *function() const;

  size_t numOperands() const { return Operands.size(); }

  Value *operand(size_t I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  void setOperand(size_t I, Value *V);

  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces every operand equal to \p Old with \p New.
  void replaceUsesOfWith(Value *Old, Value *New);

  /// Removes this instruction's operand uses (pre-deletion step).
  void dropAllOperands();

  bool isTerminator() const {
    return kind() == Kind::Br || kind() == Kind::CondBr || kind() == Kind::Ret;
  }

  /// True if the instruction writes memory or has other side effects
  /// (and so must not be removed even when unused).
  bool hasSideEffects() const;

  /// True if the instruction reads memory (loads, calls).
  bool mayReadMemory() const;

  /// Number of successor blocks (terminators only; 0 otherwise).
  unsigned numSuccessors() const;
  BasicBlock *successor(unsigned I) const;
  void setSuccessor(unsigned I, BasicBlock *BB);

  static bool classof(const Value *V) { return isInstructionKind(V->kind()); }

protected:
  Instruction(Kind K, IRType Ty) : Value(K, Ty) {}

  void addOperand(Value *V) {
    assert(V && "null operand");
    Operands.push_back(V);
    V->addUser(this);
  }

  /// Removes the operand slot at \p I entirely (shrinks the operand
  /// list). Only Phi uses this; other opcodes have fixed arity.
  void removeOperandSlot(size_t I) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I]->removeUser(this);
    Operands.erase(Operands.begin() + static_cast<ptrdiff_t>(I));
  }

private:
  friend class BasicBlock;

  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
  // Successor blocks for terminators (parallel to nothing; Br has 1,
  // CondBr has 2 in [true, false] order).
  std::vector<BasicBlock *> Successors;

protected:
  void addSuccessor(BasicBlock *BB) { Successors.push_back(BB); }
};

/// Integer arithmetic opcodes. Division semantics are total: x/0 == 0
/// and x%0 == 0, and INT64_MIN / -1 wraps — matched exactly by the
/// constant folder and the VM so optimization never changes behavior.
enum class BinOp : uint8_t { Add, Sub, Mul, SDiv, SRem };

const char *binOpName(BinOp Op);

class BinaryInst : public Instruction {
public:
  BinaryInst(BinOp Op, Value *LHS, Value *RHS)
      : Instruction(Kind::Binary, IRType::I64), Op(Op) {
    assert(LHS->type() == IRType::I64 && RHS->type() == IRType::I64 &&
           "binary operands must be i64");
    addOperand(LHS);
    addOperand(RHS);
  }

  BinOp op() const { return Op; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  bool isCommutative() const { return Op == BinOp::Add || Op == BinOp::Mul; }

  static bool classof(const Value *V) { return V->kind() == Kind::Binary; }

private:
  BinOp Op;
};

/// Comparison predicates (signed).
enum class CmpPred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE };

const char *cmpPredName(CmpPred P);

/// Returns the predicate with operands swapped (e.g. SLT -> SGT).
CmpPred swapCmpPred(CmpPred P);

/// Returns the logical negation (e.g. SLT -> SGE).
CmpPred invertCmpPred(CmpPred P);

class CmpInst : public Instruction {
public:
  CmpInst(CmpPred Pred, Value *LHS, Value *RHS)
      : Instruction(Kind::Cmp, IRType::I1), Pred(Pred) {
    assert(LHS->type() == RHS->type() && "cmp operands must share a type");
    assert((LHS->type() == IRType::I64 || LHS->type() == IRType::I1) &&
           "cmp operands must be integers");
    addOperand(LHS);
    addOperand(RHS);
  }

  CmpPred pred() const { return Pred; }
  void setPred(CmpPred P) { Pred = P; }
  Value *lhs() const { return operand(0); }
  Value *rhs() const { return operand(1); }

  static bool classof(const Value *V) { return V->kind() == Kind::Cmp; }

private:
  CmpPred Pred;
};

/// `select cond, a, b` — value form of an if/else.
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Kind::Select, TrueV->type()) {
    assert(Cond->type() == IRType::I1 && "select condition must be i1");
    assert(TrueV->type() == FalseV->type() && "select arms must share a type");
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *cond() const { return operand(0); }
  Value *trueValue() const { return operand(1); }
  Value *falseValue() const { return operand(2); }

  static bool classof(const Value *V) { return V->kind() == Kind::Select; }
};

/// Stack allocation of \p NumCells i64 cells; yields the cell address.
class AllocaInst : public Instruction {
public:
  explicit AllocaInst(uint64_t NumCells)
      : Instruction(Kind::Alloca, IRType::Ptr), NumCells(NumCells) {
    assert(NumCells > 0 && "alloca of zero cells");
  }

  uint64_t numCells() const { return NumCells; }
  bool isScalar() const { return NumCells == 1; }

  static bool classof(const Value *V) { return V->kind() == Kind::Alloca; }

private:
  uint64_t NumCells;
};

class LoadInst : public Instruction {
public:
  explicit LoadInst(Value *Ptr) : Instruction(Kind::Load, IRType::I64) {
    assert(Ptr->type() == IRType::Ptr && "load needs a pointer");
    addOperand(Ptr);
  }

  Value *pointer() const { return operand(0); }

  static bool classof(const Value *V) { return V->kind() == Kind::Load; }
};

class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr) : Instruction(Kind::Store, IRType::Void) {
    assert(Val->type() == IRType::I64 && "only i64 is storable");
    assert(Ptr->type() == IRType::Ptr && "store needs a pointer");
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *value() const { return operand(0); }
  Value *pointer() const { return operand(1); }

  static bool classof(const Value *V) { return V->kind() == Kind::Store; }
};

/// Cell-granular address arithmetic: `gep base, index` == base + index.
class GepInst : public Instruction {
public:
  GepInst(Value *Base, Value *Index) : Instruction(Kind::Gep, IRType::Ptr) {
    assert(Base->type() == IRType::Ptr && "gep base must be a pointer");
    assert(Index->type() == IRType::I64 && "gep index must be i64");
    addOperand(Base);
    addOperand(Index);
  }

  Value *base() const { return operand(0); }
  Value *index() const { return operand(1); }

  static bool classof(const Value *V) { return V->kind() == Kind::Gep; }
};

/// Direct call by symbol name. The callee may live in another module
/// (resolved at link time) or be the `print` intrinsic.
class CallInst : public Instruction {
public:
  CallInst(std::string Callee, IRType RetTy, const std::vector<Value *> &Args)
      : Instruction(Kind::Call, RetTy), Callee(std::move(Callee)) {
    for (Value *A : Args)
      addOperand(A);
  }

  const std::string &callee() const { return Callee; }
  size_t numArgs() const { return numOperands(); }
  Value *arg(size_t I) const { return operand(I); }

  static bool classof(const Value *V) { return V->kind() == Kind::Call; }

private:
  std::string Callee;
};

/// SSA phi node; incoming blocks are stored parallel to operands.
class PhiInst : public Instruction {
public:
  explicit PhiInst(IRType Ty) : Instruction(Kind::Phi, Ty) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    assert(V->type() == type() && "phi incoming type mismatch");
    addOperand(V);
    Incoming.push_back(BB);
  }

  size_t numIncoming() const { return Incoming.size(); }
  Value *incomingValue(size_t I) const { return operand(I); }
  BasicBlock *incomingBlock(size_t I) const { return Incoming[I]; }
  void setIncomingValue(size_t I, Value *V) { setOperand(I, V); }
  void setIncomingBlock(size_t I, BasicBlock *BB) { Incoming[I] = BB; }

  /// Returns the value for \p BB, or null if \p BB is not incoming.
  Value *incomingValueFor(const BasicBlock *BB) const {
    for (size_t I = 0; I != Incoming.size(); ++I)
      if (Incoming[I] == BB)
        return incomingValue(I);
    return nullptr;
  }

  /// Removes the \p I-th incoming entry.
  void removeIncoming(size_t I);

  /// Removes every entry whose incoming block is \p BB.
  void removeIncomingBlock(BasicBlock *BB);

  static bool classof(const Value *V) { return V->kind() == Kind::Phi; }

private:
  std::vector<BasicBlock *> Incoming;
};

class BrInst : public Instruction {
public:
  explicit BrInst(BasicBlock *Target) : Instruction(Kind::Br, IRType::Void) {
    assert(Target && "branch to null block");
    addSuccessor(Target);
  }

  BasicBlock *target() const { return successor(0); }

  static bool classof(const Value *V) { return V->kind() == Kind::Br; }
};

class CondBrInst : public Instruction {
public:
  CondBrInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB)
      : Instruction(Kind::CondBr, IRType::Void) {
    assert(Cond->type() == IRType::I1 && "branch condition must be i1");
    assert(TrueBB && FalseBB && "branch to null block");
    addOperand(Cond);
    addSuccessor(TrueBB);
    addSuccessor(FalseBB);
  }

  Value *cond() const { return operand(0); }
  BasicBlock *trueTarget() const { return successor(0); }
  BasicBlock *falseTarget() const { return successor(1); }

  static bool classof(const Value *V) { return V->kind() == Kind::CondBr; }
};

class RetInst : public Instruction {
public:
  /// \p Val may be null for `ret void`.
  explicit RetInst(Value *Val) : Instruction(Kind::Ret, IRType::Void) {
    if (Val)
      addOperand(Val);
  }

  bool hasValue() const { return numOperands() != 0; }
  Value *value() const { return hasValue() ? operand(0) : nullptr; }

  static bool classof(const Value *V) { return V->kind() == Kind::Ret; }
};

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

/// A straight-line instruction sequence ending in a terminator.
/// Predecessor edges are maintained automatically as terminators are
/// inserted/erased/retargeted.
class BasicBlock {
public:
  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Function *parent() const { return Parent; }

  //===--- Instruction list ------------------------------------------------===//

  size_t size() const { return Insts.size(); }
  bool empty() const { return Insts.empty(); }

  Instruction *inst(size_t I) const { return Insts[I].get(); }
  Instruction *front() const { return Insts.front().get(); }
  Instruction *back() const { return Insts.back().get(); }

  /// The block's terminator, or null if the block is not yet terminated.
  Instruction *terminator() const {
    return (!Insts.empty() && Insts.back()->isTerminator()) ? back() : nullptr;
  }

  /// Appends \p I (takes ownership). Updates successor pred-lists if
  /// \p I is a terminator.
  Instruction *push_back(std::unique_ptr<Instruction> I);

  /// Inserts \p I before position \p Pos (takes ownership).
  Instruction *insertBefore(size_t Pos, std::unique_ptr<Instruction> I);

  /// Unlinks and destroys the instruction at position \p Pos. The
  /// instruction must have no remaining users.
  void erase(size_t Pos);

  /// Unlinks and destroys \p I (must belong to this block, be unused).
  void erase(Instruction *I);

  /// Removes the instruction at \p Pos and returns ownership without
  /// destroying it (used by code motion, e.g. LICM and inlining).
  std::unique_ptr<Instruction> take(size_t Pos);

  /// Returns the position of \p I; asserts membership.
  size_t indexOf(const Instruction *I) const;

  //===--- CFG -------------------------------------------------------------===//

  const std::vector<BasicBlock *> &predecessors() const { return Preds; }

  /// Number of distinct predecessor blocks.
  size_t numDistinctPredecessors() const;

  std::vector<BasicBlock *> successors() const;

  /// Iterates phis (always a prefix of the block).
  std::vector<PhiInst *> phis() const;

  /// Retargets \p From's terminator edge(s) pointing at this block to
  /// point at \p To, updating phi incoming blocks of \p To.
  void replaceSuccessor(BasicBlock *OldSucc, BasicBlock *NewSucc);

private:
  friend class Function;
  friend class Instruction;

  static void linkEdges(Instruction *Term, BasicBlock *From);
  static void unlinkEdges(Instruction *Term, BasicBlock *From);

  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;
};

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

class Function {
public:
  Function(std::string Name, IRType RetTy,
           const std::vector<std::pair<std::string, IRType>> &Params);

  /// Drops every instruction's operands before the blocks are
  /// destroyed: instruction destructors unregister from their
  /// operands' user lists, which would otherwise touch already-freed
  /// values (cross-block references, constants, globals).
  ~Function();

  const std::string &name() const { return Name; }
  IRType returnType() const { return RetTy; }

  Module *parent() const { return Parent; }

  size_t numArgs() const { return Args.size(); }
  Argument *arg(size_t I) const { return Args[I].get(); }

  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *block(size_t I) const { return Blocks[I].get(); }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string BlockName);

  /// Unlinks and destroys \p BB. The block must have no predecessors
  /// (or only itself) and its instructions no external users.
  void eraseBlock(BasicBlock *BB);

  size_t indexOfBlock(const BasicBlock *BB) const;

  /// Moves \p BB to position \p To in the block order (layout only).
  void moveBlock(size_t From, size_t To);

  /// Total instruction count across all blocks.
  size_t instructionCount() const;

  /// Iteration helpers used pervasively by passes.
  template <typename Fn> void forEachInstruction(Fn F) const {
    for (const auto &BB : Blocks)
      for (size_t I = 0; I != BB->size(); ++I)
        F(BB->inst(I));
  }

private:
  friend class Module;

  std::string Name;
  IRType RetTy;
  Module *Parent = nullptr;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

/// One translation unit's worth of IR.
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Uniqued integer constant of the given type. Thread-safe: function
  /// passes running on parallel workers materialize constants through
  /// this entry point (the pool is locked internally; uniquing keeps
  /// constant pointer identity independent of creation order, so
  /// parallel optimization stays deterministic). The rest of Module's
  /// mutation API (globals, functions) is single-threaded by contract:
  /// it is only called from IR generation and module passes.
  ConstantInt *getConstant(IRType Ty, int64_t V);
  ConstantInt *getI64(int64_t V) { return getConstant(IRType::I64, V); }
  ConstantInt *getBool(bool B) { return getConstant(IRType::I1, B ? 1 : 0); }

  GlobalVariable *createGlobal(std::string GName, uint64_t Size, int64_t Init);
  GlobalVariable *getGlobal(const std::string &GName) const;
  /// Removes \p G from the module; it must have no remaining uses.
  void eraseGlobal(GlobalVariable *G);
  size_t numGlobals() const { return Globals.size(); }
  GlobalVariable *global(size_t I) const { return Globals[I].get(); }

  Function *
  createFunction(std::string FName, IRType RetTy,
                 const std::vector<std::pair<std::string, IRType>> &Params);
  Function *getFunction(const std::string &FName) const;
  size_t numFunctions() const { return Functions.size(); }
  Function *function(size_t I) const { return Functions[I].get(); }

private:
  std::string Name;
  // Constant uniquing is sharded by (type, value) so concurrent
  // function-pass chains materializing constants rarely collide on one
  // mutex. Pointer identity is still creation-order independent: a key
  // always lands in the same shard and is uniqued there.
  static constexpr size_t NumConstantShards = 8;
  struct ConstantShard {
    std::vector<std::unique_ptr<ConstantInt>> Pool;
    std::map<std::pair<uint8_t, int64_t>, ConstantInt *> Index;
    std::mutex Mu; // Guards the two members above.
  };
  // Declaration order doubles as (reverse) destruction order:
  // Functions must be destroyed first because their instructions
  // unregister from the user lists of constants and globals.
  ConstantShard ConstantShards[NumConstantShards];
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace sc

#endif // SC_IR_IR_H
