//===- ir/Verifier.cpp - IR well-formedness checks --------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"

#include <algorithm>
#include <map>
#include <set>

using namespace sc;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {
    for (size_t I = 0; I != F.numBlocks(); ++I)
      BlockIndex[F.block(I)] = I;
  }

  bool run() {
    size_t Before = Errors.size();
    if (F.numBlocks() == 0) {
      report("function has no blocks");
      return false;
    }
    checkBlocks();
    checkEdges();
    if (Errors.size() == Before) {
      // Dominance analysis assumes a structurally sane CFG; only run it
      // when the earlier checks passed.
      computeDominators();
      checkDominance();
    }
    return Errors.size() == Before;
  }

private:
  void report(const std::string &Msg) {
    Errors.push_back("fn @" + F.name() + ": " + Msg);
  }

  void reportIn(const BasicBlock *BB, const std::string &Msg) {
    report("block b" + std::to_string(BlockIndex[BB]) + ": " + Msg);
  }

  //===--- Per-block structure ---------------------------------------------===//

  void checkBlocks() {
    for (size_t B = 0; B != F.numBlocks(); ++B) {
      const BasicBlock *BB = F.block(B);
      if (BB->empty()) {
        reportIn(BB, "block is empty");
        continue;
      }
      if (!BB->terminator())
        reportIn(BB, "block does not end with a terminator");

      bool SeenNonPhi = false;
      for (size_t I = 0; I != BB->size(); ++I) {
        const Instruction *Inst = BB->inst(I);
        if (Inst->isTerminator() && I + 1 != BB->size())
          reportIn(BB, "terminator in the middle of a block");
        if (isa<PhiInst>(Inst)) {
          if (SeenNonPhi)
            reportIn(BB, "phi after a non-phi instruction");
        } else {
          SeenNonPhi = true;
        }
        checkInstTypes(BB, Inst);
      }
    }
  }

  void checkInstTypes(const BasicBlock *BB, const Instruction *Inst) {
    auto Expect = [&](bool Cond, const char *Msg) {
      if (!Cond)
        reportIn(BB, Msg);
    };

    switch (Inst->kind()) {
    case Value::Kind::Binary:
      Expect(Inst->operand(0)->type() == IRType::I64 &&
                 Inst->operand(1)->type() == IRType::I64,
             "binary operands must be i64");
      break;
    case Value::Kind::Cmp:
      Expect(Inst->operand(0)->type() == Inst->operand(1)->type(),
             "cmp operand types differ");
      break;
    case Value::Kind::Select:
      Expect(Inst->operand(0)->type() == IRType::I1,
             "select condition must be i1");
      Expect(Inst->operand(1)->type() == Inst->type() &&
                 Inst->operand(2)->type() == Inst->type(),
             "select arm types differ from result");
      break;
    case Value::Kind::Load:
      Expect(Inst->operand(0)->type() == IRType::Ptr,
             "load pointer operand must be ptr");
      break;
    case Value::Kind::Store:
      Expect(Inst->operand(0)->type() == IRType::I64,
             "store value must be i64");
      Expect(Inst->operand(1)->type() == IRType::Ptr,
             "store pointer operand must be ptr");
      break;
    case Value::Kind::Gep:
      Expect(Inst->operand(0)->type() == IRType::Ptr, "gep base must be ptr");
      Expect(Inst->operand(1)->type() == IRType::I64,
             "gep index must be i64");
      break;
    case Value::Kind::CondBr:
      Expect(Inst->operand(0)->type() == IRType::I1,
             "condbr condition must be i1");
      break;
    case Value::Kind::Ret: {
      auto *R = cast<RetInst>(Inst);
      if (F.returnType() == IRType::Void)
        Expect(!R->hasValue(), "ret with value in a void function");
      else
        Expect(R->hasValue() && R->value()->type() == F.returnType(),
               "ret value type differs from function return type");
      break;
    }
    case Value::Kind::Phi: {
      auto *P = cast<PhiInst>(Inst);
      for (size_t I = 0; I != P->numIncoming(); ++I)
        Expect(P->incomingValue(I)->type() == P->type(),
               "phi incoming value type differs from phi type");
      break;
    }
    default:
      break;
    }
  }

  //===--- CFG edge consistency ----------------------------------------------===//

  void checkEdges() {
    // Successor edges derived from terminators must match the stored
    // predecessor lists exactly (as multisets).
    std::map<const BasicBlock *, std::vector<const BasicBlock *>>
        ExpectedPreds;
    for (size_t B = 0; B != F.numBlocks(); ++B) {
      const BasicBlock *BB = F.block(B);
      const Instruction *Term = BB->terminator();
      if (!Term)
        continue;
      for (unsigned I = 0; I != Term->numSuccessors(); ++I) {
        const BasicBlock *Succ = Term->successor(I);
        if (!BlockIndex.count(Succ)) {
          reportIn(BB, "successor block is not in this function");
          continue;
        }
        ExpectedPreds[Succ].push_back(BB);
      }
    }
    for (size_t B = 0; B != F.numBlocks(); ++B) {
      const BasicBlock *BB = F.block(B);
      std::vector<const BasicBlock *> Stored(BB->predecessors().begin(),
                                             BB->predecessors().end());
      std::vector<const BasicBlock *> Expected = ExpectedPreds[BB];
      std::sort(Stored.begin(), Stored.end());
      std::sort(Expected.begin(), Expected.end());
      if (Stored != Expected)
        reportIn(BB, "stored predecessor list disagrees with CFG edges");

      // Phi incoming blocks must cover the distinct predecessors.
      std::vector<const BasicBlock *> Distinct = Expected;
      Distinct.erase(std::unique(Distinct.begin(), Distinct.end()),
                     Distinct.end());
      for (const PhiInst *P : BB->phis()) {
        std::vector<const BasicBlock *> In;
        for (size_t I = 0; I != P->numIncoming(); ++I)
          In.push_back(P->incomingBlock(I));
        std::sort(In.begin(), In.end());
        std::vector<const BasicBlock *> InDistinct = In;
        InDistinct.erase(std::unique(InDistinct.begin(), InDistinct.end()),
                         InDistinct.end());
        if (InDistinct != Distinct)
          reportIn(BB, "phi incoming blocks do not match predecessors");
      }
    }
  }

  //===--- Dominance ----------------------------------------------------------===//

  void computeDominators() {
    size_t N = F.numBlocks();
    // Dom[b] as a bitset over block indices; standard iterative dataflow.
    std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
    Dom[0].assign(N, false);
    Dom[0][0] = true;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t B = 1; B != N; ++B) {
        std::vector<bool> NewDom(N, true);
        bool HasPred = false;
        for (const BasicBlock *Pred : F.block(B)->predecessors()) {
          HasPred = true;
          const auto &PD = Dom[BlockIndex[Pred]];
          for (size_t I = 0; I != N; ++I)
            NewDom[I] = NewDom[I] && PD[I];
        }
        if (!HasPred) // Unreachable block: dominated by everything (top).
          NewDom.assign(N, true);
        NewDom[B] = true;
        if (NewDom != Dom[B]) {
          Dom[B] = std::move(NewDom);
          Changed = true;
        }
      }
    }
    Dominators = std::move(Dom);

    Reachable.assign(N, false);
    std::vector<size_t> Work{0};
    Reachable[0] = true;
    while (!Work.empty()) {
      size_t B = Work.back();
      Work.pop_back();
      for (const BasicBlock *Succ : F.block(B)->successors()) {
        size_t S = BlockIndex[Succ];
        if (!Reachable[S]) {
          Reachable[S] = true;
          Work.push_back(S);
        }
      }
    }
  }

  bool dominates(size_t A, size_t B) const { return Dominators[B][A]; }

  void checkDominance() {
    for (size_t B = 0; B != F.numBlocks(); ++B) {
      if (!Reachable[B])
        continue; // Unreachable code is exempt (it will be deleted).
      const BasicBlock *BB = F.block(B);
      for (size_t I = 0; I != BB->size(); ++I) {
        const Instruction *Inst = BB->inst(I);
        for (size_t OpIdx = 0; OpIdx != Inst->numOperands(); ++OpIdx) {
          const Value *Op = Inst->operand(OpIdx);
          const auto *Def = dyn_cast<Instruction>(Op);
          if (!Def)
            continue; // Constants, arguments, globals always dominate.
          if (!Def->parent() || Def->function() != &F) {
            reportIn(BB, "operand defined outside this function");
            continue;
          }
          size_t DefBlock = BlockIndex.at(Def->parent());
          if (auto *P = dyn_cast<PhiInst>(Inst)) {
            // A phi use must be available at the end of the incoming
            // block, not at the phi itself.
            size_t InBlock = BlockIndex.at(P->incomingBlock(OpIdx));
            if (!Reachable[InBlock])
              continue;
            if (!dominates(DefBlock, InBlock))
              reportIn(BB, "phi incoming value does not dominate its edge");
            continue;
          }
          if (DefBlock == B) {
            if (BB->indexOf(Def) >= I)
              reportIn(BB, "use of '" + printValueRef(*Op) +
                               "' before its definition");
          } else if (!dominates(DefBlock, B)) {
            reportIn(BB, "operand definition does not dominate its use");
          }
        }
      }
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
  std::map<const BasicBlock *, size_t> BlockIndex;
  std::vector<std::vector<bool>> Dominators;
  std::vector<bool> Reachable;
};

} // namespace

bool sc::verifyFunction(const Function &F, std::vector<std::string> &Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool sc::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  bool OK = true;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    OK &= verifyFunction(*M.function(I), Errors);
  return OK;
}
