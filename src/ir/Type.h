//===- ir/Type.h - IR type system -------------------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR's small fixed type lattice. Memory is modeled as arrays of
/// 64-bit cells, so pointers are untyped cell addresses.
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_TYPE_H
#define SC_IR_TYPE_H

#include <cstdint>

namespace sc {

/// IR value types. I1 is produced by comparisons and consumed by
/// conditional branches and selects; I64 is the universal integer.
enum class IRType : uint8_t {
  Void,
  I1,
  I64,
  Ptr,
};

inline const char *irTypeName(IRType T) {
  switch (T) {
  case IRType::Void:
    return "void";
  case IRType::I1:
    return "i1";
  case IRType::I64:
    return "i64";
  case IRType::Ptr:
    return "ptr";
  }
  return "?";
}

} // namespace sc

#endif // SC_IR_TYPE_H
