//===- ir/IRBuilder.h - Convenience instruction factory ---------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appends instructions at the end of a designated insertion block.
/// Used by IR generation and by tests that construct IR by hand.
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_IRBUILDER_H
#define SC_IR_IRBUILDER_H

#include "ir/IR.h"

#include <memory>

namespace sc {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *BB) { Block = BB; }
  BasicBlock *insertBlock() const { return Block; }

  /// True when the current block already ends in a terminator (the
  /// IR generator uses this to avoid emitting dead instructions).
  bool isTerminated() const { return Block && Block->terminator(); }

  Module &module() { return M; }

  //===--- Constants --------------------------------------------------------===//

  ConstantInt *i64(int64_t V) { return M.getI64(V); }
  ConstantInt *boolean(bool B) { return M.getBool(B); }

  //===--- Arithmetic and logic ---------------------------------------------===//

  Value *createBinary(BinOp Op, Value *LHS, Value *RHS) {
    return insert(std::make_unique<BinaryInst>(Op, LHS, RHS));
  }
  Value *createAdd(Value *L, Value *R) {
    return createBinary(BinOp::Add, L, R);
  }
  Value *createSub(Value *L, Value *R) {
    return createBinary(BinOp::Sub, L, R);
  }
  Value *createMul(Value *L, Value *R) {
    return createBinary(BinOp::Mul, L, R);
  }
  Value *createSDiv(Value *L, Value *R) {
    return createBinary(BinOp::SDiv, L, R);
  }
  Value *createSRem(Value *L, Value *R) {
    return createBinary(BinOp::SRem, L, R);
  }

  Value *createCmp(CmpPred Pred, Value *LHS, Value *RHS) {
    return insert(std::make_unique<CmpInst>(Pred, LHS, RHS));
  }

  Value *createSelect(Value *Cond, Value *TrueV, Value *FalseV) {
    return insert(std::make_unique<SelectInst>(Cond, TrueV, FalseV));
  }

  /// Logical negation of an i1 as `cmp eq x, false`.
  Value *createNot(Value *V) {
    return createCmp(CmpPred::EQ, V, boolean(false));
  }

  /// Integer negation as `sub 0, x`.
  Value *createNeg(Value *V) { return createSub(i64(0), V); }

  //===--- Memory ------------------------------------------------------------===//

  Value *createAlloca(uint64_t NumCells, std::string Name = std::string()) {
    Value *V = insert(std::make_unique<AllocaInst>(NumCells));
    if (!Name.empty())
      V->setName(std::move(Name));
    return V;
  }

  Value *createLoad(Value *Ptr) {
    return insert(std::make_unique<LoadInst>(Ptr));
  }

  Value *createStore(Value *Val, Value *Ptr) {
    return insert(std::make_unique<StoreInst>(Val, Ptr));
  }

  Value *createGep(Value *Base, Value *Index) {
    return insert(std::make_unique<GepInst>(Base, Index));
  }

  //===--- Calls and control flow -------------------------------------------===//

  Value *createCall(std::string Callee, IRType RetTy,
                    const std::vector<Value *> &Args) {
    return insert(std::make_unique<CallInst>(std::move(Callee), RetTy, Args));
  }

  PhiInst *createPhi(IRType Ty) {
    return static_cast<PhiInst *>(insert(std::make_unique<PhiInst>(Ty)));
  }

  void createBr(BasicBlock *Target) {
    insert(std::make_unique<BrInst>(Target));
  }

  void createCondBr(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    insert(std::make_unique<CondBrInst>(Cond, TrueBB, FalseBB));
  }

  void createRet(Value *V) { insert(std::make_unique<RetInst>(V)); }
  void createRetVoid() { insert(std::make_unique<RetInst>(nullptr)); }

private:
  Instruction *insert(std::unique_ptr<Instruction> I) {
    assert(Block && "no insertion block set");
    return Block->push_back(std::move(I));
  }

  Module &M;
  BasicBlock *Block = nullptr;
};

} // namespace sc

#endif // SC_IR_IRBUILDER_H
