//===- ir/IRTextParser.cpp - Parse printed IR back ---------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRTextParser.h"

#include "support/StringUtils.h"

#include <cstdlib>
#include <map>
#include <optional>

using namespace sc;

namespace {

/// Pending phi-incoming entry to patch once all values exist.
struct PendingIncoming {
  PhiInst *Phi = nullptr;
  std::string ValueRef;
  std::string BlockLabel;
};

class TextParser {
public:
  TextParser(const std::string &Text, const std::string &ModuleName,
             std::vector<std::string> &Errors)
      : Errors(Errors) {
    M = std::make_unique<Module>(ModuleName);
    Lines = splitString(Text, '\n');
  }

  std::unique_ptr<Module> run() {
    while (LineNo < Lines.size()) {
      std::string_view Line = stripComment(Lines[LineNo]);
      if (Line.empty()) {
        ++LineNo;
        continue;
      }
      if (startsWith(Line, "global ")) {
        parseGlobal(Line);
        ++LineNo;
        continue;
      }
      if (startsWith(Line, "fn ")) {
        if (!parseFunction())
          return nullptr;
        continue;
      }
      error("expected 'global' or 'fn'");
      return nullptr;
    }
    return Errors.empty() ? std::move(M) : nullptr;
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("line " + std::to_string(LineNo + 1) + ": " + Msg);
  }

  static std::string_view stripComment(std::string_view Line) {
    size_t Pos = Line.find(';');
    if (Pos != std::string_view::npos)
      Line = Line.substr(0, Pos);
    return trim(Line);
  }

  //===--- Globals -----------------------------------------------------------===//

  void parseGlobal(std::string_view Line) {
    // global @name = N   |   global @name[N]
    Line = trim(Line.substr(7));
    if (Line.empty() || Line[0] != '@') {
      error("expected '@name' in global declaration");
      return;
    }
    size_t NameEnd = Line.find_first_of(" =[");
    std::string Name(Line.substr(1, NameEnd - 1));
    std::string_view Rest = NameEnd == std::string_view::npos
                                ? std::string_view()
                                : trim(Line.substr(NameEnd));
    if (startsWith(Rest, "[")) {
      uint64_t Size = std::strtoull(std::string(Rest.substr(1)).c_str(),
                                    nullptr, 10);
      if (Size == 0) {
        error("bad global array size");
        return;
      }
      M->createGlobal(Name, Size, 0);
      return;
    }
    int64_t Init = 0;
    if (startsWith(Rest, "="))
      Init = std::strtoll(std::string(trim(Rest.substr(1))).c_str(), nullptr,
                          10);
    M->createGlobal(Name, 1, Init);
  }

  //===--- Types and refs -----------------------------------------------------===//

  std::optional<IRType> parseType(std::string_view S) {
    if (S == "void")
      return IRType::Void;
    if (S == "i1")
      return IRType::I1;
    if (S == "i64")
      return IRType::I64;
    if (S == "ptr")
      return IRType::Ptr;
    return std::nullopt;
  }

  /// Resolves an operand reference. \p Hint types bare integers.
  Value *resolveRef(std::string_view Ref, IRType Hint = IRType::I64) {
    Ref = trim(Ref);
    if (Ref.empty()) {
      error("empty operand");
      return nullptr;
    }
    if (Ref == "true")
      return M->getBool(true);
    if (Ref == "false")
      return M->getBool(false);
    if (Ref[0] == '@') {
      if (GlobalVariable *G = M->getGlobal(std::string(Ref.substr(1))))
        return G;
      error("unknown global '" + std::string(Ref) + "'");
      return nullptr;
    }
    if (Ref[0] == '%') {
      auto It = Values.find(std::string(Ref.substr(1)));
      if (It != Values.end())
        return It->second;
      error("unknown value '" + std::string(Ref) + "'");
      return nullptr;
    }
    // Integer constant.
    return M->getConstant(Hint,
                          std::strtoll(std::string(Ref).c_str(), nullptr, 10));
  }

  //===--- Functions -----------------------------------------------------------===//

  bool parseFunction() {
    // fn @name(i64 %a, i1 %b) -> i64 {
    std::string_view Line = stripComment(Lines[LineNo]);
    size_t Open = Line.find('(');
    size_t Close = Line.find(')');
    size_t Arrow = Line.find("->");
    size_t Brace = Line.rfind('{');
    if (Open == std::string_view::npos || Close == std::string_view::npos ||
        Arrow == std::string_view::npos || Brace == std::string_view::npos) {
      error("malformed function header");
      return false;
    }
    std::string_view NamePart = trim(Line.substr(3, Open - 3));
    if (NamePart.empty() || NamePart[0] != '@') {
      error("expected '@name' in function header");
      return false;
    }
    std::string Name(NamePart.substr(1));

    std::vector<std::pair<std::string, IRType>> Params;
    std::string_view ParamsText = Line.substr(Open + 1, Close - Open - 1);
    if (!trim(ParamsText).empty()) {
      for (const std::string &Piece : splitString(ParamsText, ',')) {
        auto Words = splitString(std::string(trim(Piece)), ' ');
        if (Words.size() != 2 || Words[1].empty() || Words[1][0] != '%') {
          error("malformed parameter '" + Piece + "'");
          return false;
        }
        auto Ty = parseType(Words[0]);
        if (!Ty) {
          error("unknown parameter type '" + Words[0] + "'");
          return false;
        }
        Params.emplace_back(Words[1].substr(1), *Ty);
      }
    }
    auto RetTy =
        parseType(trim(Line.substr(Arrow + 2, Brace - Arrow - 2)));
    if (!RetTy) {
      error("unknown return type");
      return false;
    }

    Function *F = M->createFunction(Name, *RetTy, Params);
    Values.clear();
    BlocksByLabel.clear();
    PendingPhis.clear();
    for (size_t I = 0; I != F->numArgs(); ++I)
      Values[F->arg(I)->name()] = F->arg(I);
    ++LineNo;

    // First pass over the body: create blocks so branches can resolve.
    for (size_t Probe = LineNo; Probe < Lines.size(); ++Probe) {
      std::string_view L = stripComment(Lines[Probe]);
      if (L == "}")
        break;
      if (!L.empty() && endsWith(L, ":")) {
        std::string Label(L.substr(0, L.size() - 1));
        BlocksByLabel[Label] = F->createBlock(Label);
      }
    }

    BasicBlock *Current = nullptr;
    for (; LineNo < Lines.size(); ++LineNo) {
      std::string_view L = stripComment(Lines[LineNo]);
      if (L.empty())
        continue;
      if (L == "}") {
        ++LineNo;
        patchPhis();
        return Errors.empty();
      }
      if (endsWith(L, ":")) {
        Current = BlocksByLabel[std::string(L.substr(0, L.size() - 1))];
        continue;
      }
      if (!Current) {
        error("instruction outside of a block");
        return false;
      }
      if (!parseInstruction(L, Current))
        return false;
    }
    error("missing '}' at end of function");
    return false;
  }

  void patchPhis() {
    for (const PendingIncoming &P : PendingPhis) {
      Value *V = resolveRef(P.ValueRef, P.Phi->type());
      auto BlockIt = BlocksByLabel.find(P.BlockLabel);
      if (!V || BlockIt == BlocksByLabel.end()) {
        error("bad phi incoming [" + P.ValueRef + ", " + P.BlockLabel + "]");
        continue;
      }
      P.Phi->addIncoming(V, BlockIt->second);
    }
  }

  //===--- Instructions ---------------------------------------------------------===//

  bool parseInstruction(std::string_view L, BasicBlock *BB) {
    std::string ResultName;
    size_t Eq = L.find('=');
    // Careful: "cmp eq" contains '='; only treat '=' preceded by a
    // value name at line start as an assignment.
    if (!L.empty() && L[0] == '%' && Eq != std::string_view::npos) {
      ResultName = std::string(trim(L.substr(1, Eq - 1)));
      L = trim(L.substr(Eq + 1));
    }

    auto Words = splitString(std::string(L), ' ');
    const std::string &Op = Words[0];
    std::string_view Rest = trim(L.substr(Op.size()));

    auto Operands = [&](IRType Hint) {
      std::vector<Value *> Ops;
      for (const std::string &Piece : splitString(Rest, ','))
        Ops.push_back(resolveRef(Piece, Hint));
      return Ops;
    };

    Instruction *Result = nullptr;

    if (Op == "add" || Op == "sub" || Op == "mul" || Op == "sdiv" ||
        Op == "srem") {
      BinOp B = Op == "add"    ? BinOp::Add
                : Op == "sub"  ? BinOp::Sub
                : Op == "mul"  ? BinOp::Mul
                : Op == "sdiv" ? BinOp::SDiv
                               : BinOp::SRem;
      auto Ops = Operands(IRType::I64);
      if (Ops.size() != 2 || !Ops[0] || !Ops[1])
        return fail("binary needs two operands");
      Result = BB->push_back(std::make_unique<BinaryInst>(B, Ops[0], Ops[1]));
    } else if (Op == "cmp") {
      // cmp <pred> [i1] a, b
      auto Pieces = splitString(std::string(Rest), ' ');
      if (Pieces.size() < 2)
        return fail("malformed cmp");
      CmpPred Pred;
      if (Pieces[0] == "eq")
        Pred = CmpPred::EQ;
      else if (Pieces[0] == "ne")
        Pred = CmpPred::NE;
      else if (Pieces[0] == "slt")
        Pred = CmpPred::SLT;
      else if (Pieces[0] == "sle")
        Pred = CmpPred::SLE;
      else if (Pieces[0] == "sgt")
        Pred = CmpPred::SGT;
      else if (Pieces[0] == "sge")
        Pred = CmpPred::SGE;
      else
        return fail("unknown cmp predicate '" + Pieces[0] + "'");
      Rest = trim(Rest.substr(Pieces[0].size()));
      IRType Hint = IRType::I64;
      if (startsWith(Rest, "i1 ")) {
        Hint = IRType::I1;
        Rest = trim(Rest.substr(3));
      }
      std::vector<Value *> Ops;
      for (const std::string &Piece : splitString(Rest, ','))
        Ops.push_back(resolveRef(Piece, Hint));
      if (Ops.size() != 2 || !Ops[0] || !Ops[1])
        return fail("cmp needs two operands");
      Result = BB->push_back(std::make_unique<CmpInst>(Pred, Ops[0], Ops[1]));
    } else if (Op == "select") {
      // select <ty> c, a, b
      auto Pieces = splitString(std::string(Rest), ' ');
      auto Ty = parseType(Pieces.empty() ? "" : Pieces[0]);
      if (!Ty)
        return fail("select needs a type");
      Rest = trim(Rest.substr(Pieces[0].size()));
      auto Parts = splitString(Rest, ',');
      if (Parts.size() != 3)
        return fail("select needs three operands");
      Value *C = resolveRef(Parts[0], IRType::I1);
      Value *T = resolveRef(Parts[1], *Ty);
      Value *E = resolveRef(Parts[2], *Ty);
      if (!C || !T || !E)
        return false;
      Result = BB->push_back(std::make_unique<SelectInst>(C, T, E));
    } else if (Op == "alloca") {
      uint64_t Cells =
          std::strtoull(std::string(Rest).c_str(), nullptr, 10);
      if (Cells == 0)
        return fail("bad alloca size");
      Result = BB->push_back(std::make_unique<AllocaInst>(Cells));
    } else if (Op == "load") {
      Value *Ptr = resolveRef(Rest, IRType::Ptr);
      if (!Ptr)
        return false;
      Result = BB->push_back(std::make_unique<LoadInst>(Ptr));
    } else if (Op == "store") {
      auto Ops = Operands(IRType::I64);
      if (Ops.size() != 2 || !Ops[0] || !Ops[1])
        return fail("store needs two operands");
      Result = BB->push_back(std::make_unique<StoreInst>(Ops[0], Ops[1]));
    } else if (Op == "gep") {
      auto Ops = Operands(IRType::I64);
      if (Ops.size() != 2 || !Ops[0] || !Ops[1])
        return fail("gep needs two operands");
      Result = BB->push_back(std::make_unique<GepInst>(Ops[0], Ops[1]));
    } else if (Op == "call") {
      // call @name(a, b) -> ty
      size_t Open = Rest.find('(');
      size_t Close = Rest.rfind(')');
      size_t Arrow = Rest.rfind("->");
      if (Open == std::string_view::npos || Close == std::string_view::npos ||
          Arrow == std::string_view::npos || Rest[0] != '@')
        return fail("malformed call");
      std::string Callee(trim(Rest.substr(1, Open - 1)));
      auto RetTy = parseType(trim(Rest.substr(Arrow + 2)));
      if (!RetTy)
        return fail("unknown call return type");
      std::vector<Value *> Args;
      std::string_view ArgsText = Rest.substr(Open + 1, Close - Open - 1);
      if (!trim(ArgsText).empty())
        for (const std::string &Piece : splitString(ArgsText, ',')) {
          Value *A = resolveRef(Piece, IRType::I64);
          if (!A)
            return false;
          Args.push_back(A);
        }
      Result =
          BB->push_back(std::make_unique<CallInst>(Callee, *RetTy, Args));
    } else if (Op == "phi") {
      // phi <ty> [v, b], [v, b]...
      auto Pieces = splitString(std::string(Rest), ' ');
      auto Ty = parseType(Pieces.empty() ? "" : Pieces[0]);
      if (!Ty)
        return fail("phi needs a type");
      Rest = trim(Rest.substr(Pieces[0].size()));
      auto *Phi = new PhiInst(*Ty);
      Result = BB->push_back(std::unique_ptr<Instruction>(Phi));
      // Parse "[v, b]" groups.
      size_t Pos = 0;
      std::string RestStr(Rest);
      while ((Pos = RestStr.find('[', Pos)) != std::string::npos) {
        size_t End = RestStr.find(']', Pos);
        if (End == std::string::npos)
          return fail("unterminated phi incoming");
        auto Parts = splitString(RestStr.substr(Pos + 1, End - Pos - 1), ',');
        if (Parts.size() != 2)
          return fail("malformed phi incoming");
        PendingPhis.push_back(
            {Phi, std::string(trim(Parts[0])), std::string(trim(Parts[1]))});
        Pos = End + 1;
      }
    } else if (Op == "br") {
      auto It = BlocksByLabel.find(std::string(trim(Rest)));
      if (It == BlocksByLabel.end())
        return fail("unknown branch target");
      Result = BB->push_back(std::make_unique<BrInst>(It->second));
    } else if (Op == "condbr") {
      auto Parts = splitString(Rest, ',');
      if (Parts.size() != 3)
        return fail("condbr needs cond and two targets");
      Value *C = resolveRef(Parts[0], IRType::I1);
      auto TIt = BlocksByLabel.find(std::string(trim(Parts[1])));
      auto FIt = BlocksByLabel.find(std::string(trim(Parts[2])));
      if (!C || TIt == BlocksByLabel.end() || FIt == BlocksByLabel.end())
        return fail("bad condbr operands");
      Result = BB->push_back(
          std::make_unique<CondBrInst>(C, TIt->second, FIt->second));
    } else if (Op == "ret") {
      Value *V = nullptr;
      if (!trim(Rest).empty()) {
        V = resolveRef(Rest, IRType::I64);
        if (!V)
          return false;
      }
      Result = BB->push_back(std::make_unique<RetInst>(V));
    } else {
      return fail("unknown opcode '" + Op + "'");
    }

    if (!ResultName.empty() && Result)
      Values[ResultName] = Result;
    return true;
  }

  bool fail(const std::string &Msg) {
    error(Msg);
    return false;
  }

  std::vector<std::string> &Errors;
  std::unique_ptr<Module> M;
  std::vector<std::string> Lines;
  size_t LineNo = 0;
  std::map<std::string, Value *> Values;
  std::map<std::string, BasicBlock *> BlocksByLabel;
  std::vector<PendingIncoming> PendingPhis;
};

} // namespace

std::unique_ptr<Module> sc::parseIRText(const std::string &Text,
                                        const std::string &ModuleName,
                                        std::vector<std::string> &Errors) {
  return TextParser(Text, ModuleName, Errors).run();
}
