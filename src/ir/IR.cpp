//===- ir/IR.cpp - Core IR implementation ----------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/ContentionStats.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace sc;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

namespace {
// Striped spinlocks guarding the user lists of values shared across
// functions (constants, globals). Instruction results and arguments are
// only ever used from their owning function, which the parallel pass
// engine runs on exactly one thread at a time, so they take no lock.
// The critical sections are a handful of pointer moves; a spinlock
// beats a mutex here and keeps Value allocation-free. The spin is
// bounded: after a short burst the holder is either descheduled or on
// another core doing real work, and yielding beats burning the CPU —
// unbounded spinning is catastrophic when threads outnumber cores.
struct SpinLock {
  std::atomic_flag F = ATOMIC_FLAG_INIT;
  void lock() {
    ContentionCounters &C = sharedUseContention();
    C.Acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!F.test_and_set(std::memory_order_acquire))
      return;
    C.Contended.fetch_add(1, std::memory_order_relaxed);
    unsigned Spins = 0;
    while (F.test_and_set(std::memory_order_acquire))
      if (++Spins >= 32) {
        Spins = 0;
        std::this_thread::yield();
      }
  }
  void unlock() { F.clear(std::memory_order_release); }
};

SpinLock SharedUseLocks[64];

SpinLock &lockFor(const Value *V) {
  return SharedUseLocks[(reinterpret_cast<uintptr_t>(V) >> 4) & 63];
}
} // namespace

void Value::addUser(Instruction *I) {
  if (isSharedAcrossFunctions()) {
    SpinLock &L = lockFor(this);
    L.lock();
    Users.push_back(I);
    L.unlock();
    return;
  }
  Users.push_back(I);
}

void Value::removeUser(Instruction *I) {
  if (isSharedAcrossFunctions()) {
    SpinLock &L = lockFor(this);
    L.lock();
    auto It = std::find(Users.begin(), Users.end(), I);
    assert(It != Users.end() && "removing a non-existent user");
    *It = Users.back();
    Users.pop_back();
    L.unlock();
    return;
  }
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing a non-existent user");
  // Order is irrelevant: swap-and-pop.
  *It = Users.back();
  Users.pop_back();
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  assert(New->type() == type() && "RAUW type mismatch");
  // Users mutates as we rewrite; iterate over a snapshot.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *User : Snapshot)
    User->replaceUsesOfWith(this, New);
  assert(Users.empty() && "RAUW left dangling uses");
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

Function *Instruction::function() const {
  return Parent ? Parent->parent() : nullptr;
}

void Instruction::setOperand(size_t I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::replaceUsesOfWith(Value *Old, Value *New) {
  for (size_t I = 0; I != Operands.size(); ++I)
    if (Operands[I] == Old)
      setOperand(I, New);
}

void Instruction::dropAllOperands() {
  for (Value *Op : Operands)
    Op->removeUser(this);
  Operands.clear();
}

bool Instruction::hasSideEffects() const {
  switch (kind()) {
  case Kind::Store:
  case Kind::Call: // Conservative: any call may write memory or print.
  case Kind::Br:
  case Kind::CondBr:
  case Kind::Ret:
    return true;
  default:
    return false;
  }
}

bool Instruction::mayReadMemory() const {
  return kind() == Kind::Load || kind() == Kind::Call;
}

unsigned Instruction::numSuccessors() const {
  return static_cast<unsigned>(Successors.size());
}

BasicBlock *Instruction::successor(unsigned I) const {
  assert(I < Successors.size() && "successor index out of range");
  return Successors[I];
}

void Instruction::setSuccessor(unsigned I, BasicBlock *BB) {
  assert(I < Successors.size() && "successor index out of range");
  assert(BB && "null successor");
  if (Parent) {
    // Maintain predecessor lists when the instruction is in a block.
    BasicBlock *Old = Successors[I];
    auto It = std::find(Old->Preds.begin(), Old->Preds.end(), Parent);
    assert(It != Old->Preds.end() && "stale predecessor list");
    Old->Preds.erase(It);
    BB->Preds.push_back(Parent);
  }
  Successors[I] = BB;
}

const char *sc::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::SDiv:
    return "sdiv";
  case BinOp::SRem:
    return "srem";
  }
  return "?";
}

const char *sc::cmpPredName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::SLT:
    return "slt";
  case CmpPred::SLE:
    return "sle";
  case CmpPred::SGT:
    return "sgt";
  case CmpPred::SGE:
    return "sge";
  }
  return "?";
}

CmpPred sc::swapCmpPred(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return CmpPred::EQ;
  case CmpPred::NE:
    return CmpPred::NE;
  case CmpPred::SLT:
    return CmpPred::SGT;
  case CmpPred::SLE:
    return CmpPred::SGE;
  case CmpPred::SGT:
    return CmpPred::SLT;
  case CmpPred::SGE:
    return CmpPred::SLE;
  }
  return P;
}

CmpPred sc::invertCmpPred(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return CmpPred::NE;
  case CmpPred::NE:
    return CmpPred::EQ;
  case CmpPred::SLT:
    return CmpPred::SGE;
  case CmpPred::SLE:
    return CmpPred::SGT;
  case CmpPred::SGT:
    return CmpPred::SLE;
  case CmpPred::SGE:
    return CmpPred::SLT;
  }
  return P;
}

//===----------------------------------------------------------------------===//
// PhiInst
//===----------------------------------------------------------------------===//

void PhiInst::removeIncoming(size_t I) {
  assert(I < Incoming.size() && "incoming index out of range");
  removeOperandSlot(I);
  Incoming.erase(Incoming.begin() + static_cast<ptrdiff_t>(I));
}

void PhiInst::removeIncomingBlock(BasicBlock *BB) {
  for (size_t I = Incoming.size(); I-- > 0;)
    if (Incoming[I] == BB)
      removeIncoming(I);
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

void BasicBlock::linkEdges(Instruction *Term, BasicBlock *From) {
  for (unsigned I = 0; I != Term->numSuccessors(); ++I)
    Term->successor(I)->Preds.push_back(From);
}

void BasicBlock::unlinkEdges(Instruction *Term, BasicBlock *From) {
  for (unsigned I = 0; I != Term->numSuccessors(); ++I) {
    auto &Preds = Term->successor(I)->Preds;
    auto It = std::find(Preds.begin(), Preds.end(), From);
    assert(It != Preds.end() && "stale predecessor list");
    Preds.erase(It);
  }
}

Instruction *BasicBlock::push_back(std::unique_ptr<Instruction> I) {
  assert(!terminator() && "appending past a terminator");
  Instruction *Raw = I.get();
  Raw->Parent = this;
  Insts.push_back(std::move(I));
  if (Raw->isTerminator())
    linkEdges(Raw, this);
  return Raw;
}

Instruction *BasicBlock::insertBefore(size_t Pos,
                                      std::unique_ptr<Instruction> I) {
  assert(Pos <= Insts.size() && "insert position out of range");
  assert(!I->isTerminator() && "use push_back for terminators");
  Instruction *Raw = I.get();
  Raw->Parent = this;
  Insts.insert(Insts.begin() + static_cast<ptrdiff_t>(Pos), std::move(I));
  return Raw;
}

void BasicBlock::erase(size_t Pos) {
  assert(Pos < Insts.size() && "erase position out of range");
  Instruction *I = Insts[Pos].get();
  assert(!I->hasUses() && "erasing an instruction that still has users");
  if (I->isTerminator())
    unlinkEdges(I, this);
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Pos));
}

void BasicBlock::erase(Instruction *I) { erase(indexOf(I)); }

std::unique_ptr<Instruction> BasicBlock::take(size_t Pos) {
  assert(Pos < Insts.size() && "take position out of range");
  Instruction *I = Insts[Pos].get();
  if (I->isTerminator())
    unlinkEdges(I, this);
  std::unique_ptr<Instruction> Owned = std::move(Insts[Pos]);
  Owned->Parent = nullptr;
  Insts.erase(Insts.begin() + static_cast<ptrdiff_t>(Pos));
  return Owned;
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Pos = 0; Pos != Insts.size(); ++Pos)
    if (Insts[Pos].get() == I)
      return Pos;
  assert(false && "instruction not in this block");
  return ~size_t(0);
}

size_t BasicBlock::numDistinctPredecessors() const {
  std::vector<BasicBlock *> Sorted = Preds;
  std::sort(Sorted.begin(), Sorted.end());
  return static_cast<size_t>(
      std::unique(Sorted.begin(), Sorted.end()) - Sorted.begin());
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  if (Instruction *Term = terminator())
    for (unsigned I = 0; I != Term->numSuccessors(); ++I)
      Succs.push_back(Term->successor(I));
  return Succs;
}

std::vector<PhiInst *> BasicBlock::phis() const {
  std::vector<PhiInst *> Result;
  for (const auto &I : Insts) {
    auto *Phi = dyn_cast<PhiInst>(I.get());
    if (!Phi)
      break;
    Result.push_back(Phi);
  }
  return Result;
}

void BasicBlock::replaceSuccessor(BasicBlock *OldSucc, BasicBlock *NewSucc) {
  Instruction *Term = terminator();
  assert(Term && "block has no terminator");
  for (unsigned I = 0; I != Term->numSuccessors(); ++I)
    if (Term->successor(I) == OldSucc)
      Term->setSuccessor(I, NewSucc);
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(std::string Name, IRType RetTy,
                   const std::vector<std::pair<std::string, IRType>> &Params)
    : Name(std::move(Name)), RetTy(RetTy) {
  for (size_t I = 0; I != Params.size(); ++I)
    Args.push_back(std::make_unique<Argument>(
        Params[I].second, Params[I].first, static_cast<unsigned>(I)));
}

Function::~Function() {
  for (const auto &BB : Blocks)
    for (size_t I = 0; I != BB->size(); ++I)
      BB->inst(I)->dropAllOperands();
}

BasicBlock *Function::createBlock(std::string BlockName) {
  auto BB = std::make_unique<BasicBlock>(std::move(BlockName));
  BB->Parent = this;
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

void Function::eraseBlock(BasicBlock *BB) {
  // Erase instructions bottom-up so intra-block uses disappear before
  // their definitions; drop operands first to release cross-references.
  for (size_t I = BB->size(); I-- > 0;) {
    Instruction *Inst = BB->inst(I);
    if (Inst->isTerminator())
      BasicBlock::unlinkEdges(Inst, BB);
    Inst->dropAllOperands();
  }
  for (size_t I = BB->size(); I-- > 0;) {
    assert(!BB->inst(I)->hasUses() &&
           "erasing a block whose instructions still have users");
    BB->Insts.pop_back();
  }
  size_t Index = indexOfBlock(BB);
  Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(Index));
}

size_t Function::indexOfBlock(const BasicBlock *BB) const {
  for (size_t I = 0; I != Blocks.size(); ++I)
    if (Blocks[I].get() == BB)
      return I;
  assert(false && "block not in this function");
  return ~size_t(0);
}

void Function::moveBlock(size_t From, size_t To) {
  assert(From < Blocks.size() && To < Blocks.size() && "index out of range");
  if (From == To)
    return;
  auto Owned = std::move(Blocks[From]);
  Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(From));
  Blocks.insert(Blocks.begin() + static_cast<ptrdiff_t>(To), std::move(Owned));
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

ConstantInt *Module::getConstant(IRType Ty, int64_t V) {
  // Locked: function passes running concurrently materialize constants.
  // Uniquing makes the resulting pointer independent of call order, so
  // parallel creation cannot perturb output. The key picks the shard,
  // so the same constant always uniques in the same shard and distinct
  // hot constants spread across independent mutexes.
  auto Key = std::make_pair(static_cast<uint8_t>(Ty), V);
  uint64_t H = (static_cast<uint64_t>(V) ^ (static_cast<uint64_t>(Ty) << 56)) *
               0x9E3779B97F4A7C15ull;
  ConstantShard &Shard = ConstantShards[(H >> 32) % NumConstantShards];
  auto Lock = timedLock(Shard.Mu, constantUniquingContention());
  auto It = Shard.Index.find(Key);
  if (It != Shard.Index.end())
    return It->second;
  Shard.Pool.push_back(std::make_unique<ConstantInt>(Ty, V));
  Shard.Index[Key] = Shard.Pool.back().get();
  return Shard.Pool.back().get();
}

GlobalVariable *Module::createGlobal(std::string GName, uint64_t Size,
                                     int64_t Init) {
  assert(!getGlobal(GName) && "duplicate global");
  Globals.push_back(
      std::make_unique<GlobalVariable>(std::move(GName), Size, Init));
  return Globals.back().get();
}

void Module::eraseGlobal(GlobalVariable *G) {
  assert(!G->hasUses() && "erasing a global that still has uses");
  for (size_t I = 0; I != Globals.size(); ++I)
    if (Globals[I].get() == G) {
      Globals.erase(Globals.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
  assert(false && "global not in this module");
}

GlobalVariable *Module::getGlobal(const std::string &GName) const {
  for (const auto &G : Globals)
    if (G->name() == GName)
      return G.get();
  return nullptr;
}

Function *Module::createFunction(
    std::string FName, IRType RetTy,
    const std::vector<std::pair<std::string, IRType>> &Params) {
  assert(!getFunction(FName) && "duplicate function");
  Functions.push_back(
      std::make_unique<Function>(std::move(FName), RetTy, Params));
  Functions.back()->Parent = this;
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &FName) const {
  for (const auto &F : Functions)
    if (F->name() == FName)
      return F.get();
  return nullptr;
}
