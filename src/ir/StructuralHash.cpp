//===- ir/StructuralHash.cpp - Function fingerprints ------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralHash.h"

#include "support/Hashing.h"

#include <map>

using namespace sc;

namespace {

/// Stable per-value identifiers within a function: arguments first,
/// then instructions in layout order.
class ValueNumbering {
public:
  explicit ValueNumbering(const Function &F) {
    uint64_t Next = 0;
    for (size_t I = 0; I != F.numArgs(); ++I)
      Ids[F.arg(I)] = Next++;
    F.forEachInstruction([&](Instruction *Inst) { Ids[Inst] = Next++; });
  }

  void hashOperand(HashBuilder &H, const Value *V) const {
    if (const auto *C = dyn_cast<ConstantInt>(V)) {
      H.addU32(1);
      H.addU32(static_cast<uint32_t>(C->type()));
      H.addI64(C->value());
      return;
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      H.addU32(2);
      H.addString(G->name());
      return;
    }
    H.addU32(3);
    H.addU64(Ids.at(V));
  }

private:
  std::map<const Value *, uint64_t> Ids;
};

} // namespace

uint64_t sc::structuralHash(const Function &F) {
  HashBuilder H;
  H.addString(F.name());
  H.addU32(static_cast<uint32_t>(F.returnType()));
  H.addU64(F.numArgs());
  for (size_t I = 0; I != F.numArgs(); ++I)
    H.addU32(static_cast<uint32_t>(F.arg(I)->type()));

  ValueNumbering Ids(F);
  std::map<const BasicBlock *, uint64_t> BlockIds;
  for (size_t B = 0; B != F.numBlocks(); ++B)
    BlockIds[F.block(B)] = B;

  H.addU64(F.numBlocks());
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    const BasicBlock *BB = F.block(B);
    H.addU64(BB->size());
    for (size_t I = 0; I != BB->size(); ++I) {
      const Instruction *Inst = BB->inst(I);
      H.addU32(static_cast<uint32_t>(Inst->kind()));
      H.addU32(static_cast<uint32_t>(Inst->type()));

      // Opcode-specific immediates.
      if (const auto *Bin = dyn_cast<BinaryInst>(Inst))
        H.addU32(static_cast<uint32_t>(Bin->op()));
      else if (const auto *Cmp = dyn_cast<CmpInst>(Inst))
        H.addU32(static_cast<uint32_t>(Cmp->pred()));
      else if (const auto *Alloca = dyn_cast<AllocaInst>(Inst))
        H.addU64(Alloca->numCells());
      else if (const auto *Call = dyn_cast<CallInst>(Inst))
        H.addString(Call->callee());

      H.addU64(Inst->numOperands());
      for (size_t Op = 0; Op != Inst->numOperands(); ++Op)
        Ids.hashOperand(H, Inst->operand(Op));

      if (const auto *Phi = dyn_cast<PhiInst>(Inst))
        for (size_t In = 0; In != Phi->numIncoming(); ++In)
          H.addU64(BlockIds.at(Phi->incomingBlock(In)));

      for (unsigned S = 0; S != Inst->numSuccessors(); ++S)
        H.addU64(BlockIds.at(Inst->successor(S)));
    }
  }
  return H.digest();
}

uint64_t sc::structuralHash(const Module &M) {
  HashBuilder H;
  H.addString(M.name());
  H.addU64(M.numGlobals());
  for (size_t I = 0; I != M.numGlobals(); ++I) {
    const GlobalVariable *G = M.global(I);
    H.addString(G->name());
    H.addU64(G->size());
    H.addI64(G->initValue());
  }
  H.addU64(M.numFunctions());
  for (size_t I = 0; I != M.numFunctions(); ++I)
    H.addU64(structuralHash(*M.function(I)));
  return H.digest();
}
