//===- ir/IRPrinter.cpp - Textual IR output --------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <map>
#include <sstream>

using namespace sc;

namespace {

/// Per-function printing context: value slots and block labels.
class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) {
    for (size_t I = 0; I != F.numBlocks(); ++I)
      BlockLabels[F.block(I)] = "b" + std::to_string(I);
    unsigned Slot = 0;
    F.forEachInstruction([&](Instruction *Inst) {
      if (Inst->type() != IRType::Void)
        Slots[Inst] = Slot++;
    });
  }

  std::string ref(const Value *V) const {
    if (auto *C = dyn_cast<ConstantInt>(V)) {
      if (C->type() == IRType::I1)
        return C->isZero() ? "false" : "true";
      return std::to_string(C->value());
    }
    if (isa<GlobalVariable>(V))
      return "@" + V->name();
    if (isa<Argument>(V))
      return "%" + V->name();
    auto It = Slots.find(cast<Instruction>(V));
    if (It != Slots.end())
      return "%t" + std::to_string(It->second);
    return "%?";
  }

  std::string label(const BasicBlock *BB) const {
    auto It = BlockLabels.find(BB);
    return It != BlockLabels.end() ? It->second : "b?";
  }

  void print(std::ostringstream &OS) const {
    OS << "fn @" << F.name() << "(";
    for (size_t I = 0; I != F.numArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << irTypeName(F.arg(I)->type()) << " %" << F.arg(I)->name();
    }
    OS << ") -> " << irTypeName(F.returnType()) << " {\n";
    for (size_t B = 0; B != F.numBlocks(); ++B) {
      const BasicBlock *BB = F.block(B);
      OS << label(BB) << ":";
      // Annotate with the semantic name, but only when it adds
      // information; this keeps print(parse(print(M))) a fixed point.
      if (!BB->name().empty() && BB->name() != label(BB))
        OS << "  ; " << BB->name();
      OS << "\n";
      for (size_t I = 0; I != BB->size(); ++I)
        printInst(OS, BB->inst(I));
    }
    OS << "}\n";
  }

private:
  void printInst(std::ostringstream &OS, const Instruction *Inst) const {
    OS << "  ";
    if (Inst->type() != IRType::Void)
      OS << ref(Inst) << " = ";

    switch (Inst->kind()) {
    case Value::Kind::Binary: {
      auto *B = cast<BinaryInst>(Inst);
      OS << binOpName(B->op()) << " " << ref(B->lhs()) << ", "
         << ref(B->rhs());
      break;
    }
    case Value::Kind::Cmp: {
      auto *C = cast<CmpInst>(Inst);
      OS << "cmp " << cmpPredName(C->pred()) << " ";
      // i1 comparisons need a type marker so the parser can rebuild
      // constant operand types; i64 is the default.
      if (C->lhs()->type() == IRType::I1)
        OS << "i1 ";
      OS << ref(C->lhs()) << ", " << ref(C->rhs());
      break;
    }
    case Value::Kind::Select: {
      auto *S = cast<SelectInst>(Inst);
      OS << "select " << irTypeName(S->type()) << " " << ref(S->cond()) << ", "
         << ref(S->trueValue()) << ", " << ref(S->falseValue());
      break;
    }
    case Value::Kind::Alloca:
      OS << "alloca " << cast<AllocaInst>(Inst)->numCells();
      break;
    case Value::Kind::Load:
      OS << "load " << ref(cast<LoadInst>(Inst)->pointer());
      break;
    case Value::Kind::Store: {
      auto *S = cast<StoreInst>(Inst);
      OS << "store " << ref(S->value()) << ", " << ref(S->pointer());
      break;
    }
    case Value::Kind::Gep: {
      auto *G = cast<GepInst>(Inst);
      OS << "gep " << ref(G->base()) << ", " << ref(G->index());
      break;
    }
    case Value::Kind::Call: {
      auto *C = cast<CallInst>(Inst);
      OS << "call @" << C->callee() << "(";
      for (size_t I = 0; I != C->numArgs(); ++I) {
        if (I)
          OS << ", ";
        OS << ref(C->arg(I));
      }
      OS << ") -> " << irTypeName(C->type());
      break;
    }
    case Value::Kind::Phi: {
      auto *P = cast<PhiInst>(Inst);
      OS << "phi " << irTypeName(P->type());
      for (size_t I = 0; I != P->numIncoming(); ++I) {
        OS << (I ? ", " : " ") << "[" << ref(P->incomingValue(I)) << ", "
           << label(P->incomingBlock(I)) << "]";
      }
      break;
    }
    case Value::Kind::Br:
      OS << "br " << label(cast<BrInst>(Inst)->target());
      break;
    case Value::Kind::CondBr: {
      auto *CB = cast<CondBrInst>(Inst);
      OS << "condbr " << ref(CB->cond()) << ", " << label(CB->trueTarget())
         << ", " << label(CB->falseTarget());
      break;
    }
    case Value::Kind::Ret: {
      auto *R = cast<RetInst>(Inst);
      OS << "ret";
      if (R->hasValue())
        OS << " " << ref(R->value());
      break;
    }
    default:
      OS << "<unknown>";
      break;
    }
    OS << "\n";
  }

  const Function &F;
  std::map<const Instruction *, unsigned> Slots;
  std::map<const BasicBlock *, std::string> BlockLabels;
};

} // namespace

std::string sc::printFunction(const Function &F) {
  std::ostringstream OS;
  FunctionPrinter(F).print(OS);
  return OS.str();
}

std::string sc::printModule(const Module &M) {
  std::ostringstream OS;
  for (size_t I = 0; I != M.numGlobals(); ++I) {
    const GlobalVariable *G = M.global(I);
    if (G->size() == 1)
      OS << "global @" << G->name() << " = " << G->initValue() << "\n";
    else
      OS << "global @" << G->name() << "[" << G->size() << "]\n";
  }
  if (M.numGlobals())
    OS << "\n";
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    if (I)
      OS << "\n";
    OS << printFunction(*M.function(I));
  }
  return OS.str();
}

std::string sc::printValueRef(const Value &V) {
  if (auto *C = dyn_cast<ConstantInt>(&V)) {
    if (C->type() == IRType::I1)
      return C->isZero() ? "false" : "true";
    return std::to_string(C->value());
  }
  if (isa<GlobalVariable>(&V))
    return "@" + V.name();
  if (isa<Argument>(&V))
    return "%" + V.name();
  return V.name().empty() ? "%?" : "%" + V.name();
}
