//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation run after IR generation and (in tests and
/// assert-enabled pipelines) after every transform pass. Catching a
/// malformed CFG at the pass that produced it is the main debugging
/// tool for the optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_VERIFIER_H
#define SC_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace sc {

/// Verifies one function. Appends human-readable problem descriptions
/// to \p Errors; returns true when the function is well-formed.
///
/// Checks:
///  * every reachable block ends in exactly one terminator;
///  * phis form a prefix of their block and their incoming blocks
///    match the predecessor multiset;
///  * operand types satisfy each opcode's contract;
///  * predecessor lists agree with the successor edges;
///  * every operand is defined in this function (or is a constant,
///    argument, or global) and definitions dominate uses.
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies every function in \p M.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

} // namespace sc

#endif // SC_IR_VERIFIER_H
