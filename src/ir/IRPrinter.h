//===- ir/IRPrinter.h - Textual IR output -----------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints IR in a stable textual syntax that IRTextParser can read
/// back, giving a lossless round-trip used heavily by the test suite:
///
/// \code
///   global @g = 7
///   global @buf[16]
///   fn @max(i64 %a, i64 %b) -> i64 {
///   entry:
///     %t0 = cmp sgt %a, %b
///     condbr %t0, bb1, bb2
///   ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_IRPRINTER_H
#define SC_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace sc {

/// Renders one function. Temporary values get %tN slot names; blocks
/// print under their (uniqued) names.
std::string printFunction(const Function &F);

/// Renders a whole module: globals first, then functions in order.
std::string printModule(const Module &M);

/// Renders a single value reference as it would appear as an operand.
std::string printValueRef(const Value &V);

} // namespace sc

#endif // SC_IR_IRPRINTER_H
