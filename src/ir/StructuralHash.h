//===- ir/StructuralHash.h - Function fingerprints --------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes a stable 64-bit structural fingerprint of a Function. The
/// stateful compiler fingerprints each function's pre-optimization IR;
/// between builds, an equal fingerprint means the function's semantics
/// are unchanged (whitespace/comment edits don't perturb it), while a
/// differing fingerprint marks the function as modified. Fingerprints
/// are persisted in the BuildStateDB, so they must be stable across
/// processes and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_STRUCTURALHASH_H
#define SC_IR_STRUCTURALHASH_H

#include "ir/IR.h"

#include <cstdint>

namespace sc {

/// Returns the structural fingerprint of \p F. Instruction order,
/// opcodes, operand wiring, CFG shape, constants, referenced global
/// names, and callee names all contribute; value names do not.
uint64_t structuralHash(const Function &F);

/// Combined fingerprint over every function and global of \p M.
uint64_t structuralHash(const Module &M);

} // namespace sc

#endif // SC_IR_STRUCTURALHASH_H
