//===- ir/IRTextParser.h - Parse printed IR back ----------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by IRPrinter back into a Module,
/// giving the test suite a lossless IR round-trip and a convenient way
/// to write pass unit tests as text.
///
/// Limitation (by construction of the printer's output): a non-phi
/// instruction may only reference values defined earlier in layout
/// order; phis may forward-reference freely.
///
//===----------------------------------------------------------------------===//

#ifndef SC_IR_IRTEXTPARSER_H
#define SC_IR_IRTEXTPARSER_H

#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace sc {

/// Parses \p Text into a Module named \p ModuleName. On failure
/// returns null and appends messages to \p Errors.
std::unique_ptr<Module> parseIRText(const std::string &Text,
                                    const std::string &ModuleName,
                                    std::vector<std::string> &Errors);

} // namespace sc

#endif // SC_IR_IRTEXTPARSER_H
