//===- build_sys/BuildSystem.h - Incremental build system -------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The from-scratch incremental build system (DESIGN.md §inventory):
/// the stateful layer *above* the compiler that the paper's end-to-end
/// measurements run through. One BuildDriver owns a project rooted in a
/// VirtualFileSystem and, per build() call:
///
///  1. scans every `.mc` source for its import directives and exported
///     interface (cached by content hash — the daemon scan cache);
///  2. assembles the import DAG and rejects cycles;
///  3. computes the dirty set: a file recompiles iff its content hash
///     changed, the *effective interface* of something it imports
///     changed (interface hashes propagate transitively, so a
///     body-only edit never dirties importers), or its cached object
///     is missing/corrupt;
///  4. compiles dirty files in topological order on `Jobs` worker
///     threads (the BuildStateDB is internally synchronized);
///  5. links all objects into one executable program image; and
///  6. persists the object cache, build manifest, and compiler state
///     under `<OutDir>/` so the next build — in this process or a
///     fresh one — starts warm.
///
/// Every persistent artifact is integrity-checked; damage degrades to
/// recompilation, never to a wrong program.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_BUILDSYSTEM_H
#define SC_BUILD_SYS_BUILDSYSTEM_H

#include "driver/Compiler.h"
#include "support/FileSystem.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sc {

class BuildDriverImpl;

/// Configuration for one BuildDriver.
struct BuildOptions {
  /// Per-TU compiler configuration (opt level, skip policy, reuse).
  CompilerOptions Compiler;

  /// Total concurrency: one work-stealing pool of this many threads
  /// (including the calling thread; 1 = fully in-thread) is shared by
  /// TU-level compile jobs AND intra-TU function-pass tasks. The
  /// linked program and the persisted compiler state are
  /// byte-identical for any Jobs value.
  unsigned Jobs = 1;

  /// Directory (inside the project filesystem) holding objects, the
  /// build manifest, and the persisted compiler state.
  std::string OutDir = "out";

  /// Milliseconds to wait (with doubling backoff) for the advisory
  /// build lock `<OutDir>/.lock` when another build holds it. On
  /// timeout the build degrades to read-only: it compiles and links
  /// correctly in memory but persists nothing (BuildStats::ReadOnly).
  unsigned LockTimeoutMs = 2000;

  /// Initial lock-retry backoff in milliseconds (doubles, capped 8x).
  unsigned LockBackoffMs = 5;

  /// The caller already holds the advisory build lock for OutDir and
  /// keeps it across build() calls (the daemon holds it for its whole
  /// lifetime). build() then neither acquires nor releases the lock,
  /// and never degrades to read-only over it.
  bool ExternalLock = false;

  /// Sampling-profiler rate (Hz) for the wall-time overlay
  /// (support/SamplingProfiler.h): each build() spawns a sampler that
  /// snapshots per-thread current-span stacks and folds weighted
  /// aggregates into the trace and the history ledger. 0 (default)
  /// disables it entirely — no sampler thread, no span-stack
  /// maintenance. Requires an enabled Compiler.Trace recorder.
  unsigned ProfileSampleHz = 0;

  /// Maximum records retained in the build-history ledger
  /// `<OutDir>/history.jsonl` (see build_sys/History.h). Every build
  /// exit appends one record; when the ledger exceeds this, the oldest
  /// records are dropped in the same atomic rewrite. 0 disables the
  /// ledger entirely.
  unsigned HistoryLimit = 512;

  /// After a successful link, cross-check the dependencies each TU
  /// *actually used* (traced file reads during interface resolution)
  /// against the edges the ImportGraph tracks, via
  /// build_sys/DepVerifier.h. Findings — missing deps (read but not
  /// tracked: under-rebuild risk) and redundant deps (tracked but
  /// never read: over-rebuild) — land in BuildStats::DepFindings with
  /// stable `dep-missing:` / `dep-redundant:` reason codes. Purely
  /// observational: never changes what gets built.
  bool VerifyDeps = false;

  /// Host path of an `sccached` socket to use as a shared remote
  /// object-cache tier; empty (the default) disables the tier.
  /// Tiering per TU: local miss -> remote fetch (verify, admit
  /// locally, skip the recompile) -> on remote miss compile and
  /// publish; local hits are touched remotely (published when absent)
  /// so a warm builder keeps the fleet cache populated. Any remote
  /// failure — dead daemon, protocol error — degrades the build to
  /// local-only with a single warning; it never fails the build.
  std::string RemoteCache;
};

/// Everything one build() call did, and how long each phase took.
struct BuildStats {
  bool Success = false;
  std::string ErrorText; // Rendered diagnostics when !Success.

  /// Non-fatal degradations the user should know about: persistence
  /// failures (state not saved — next build is colder than it should
  /// be), lock contention (read-only fallback), and state-DB salvage.
  std::vector<std::string> Warnings;

  /// True when the advisory build lock could not be acquired: the
  /// build ran correctly in memory but persisted nothing.
  bool ReadOnly = false;

  /// State-DB segment salvage from the initial load (first build of a
  /// driver only): TUs whose dormancy records survived a damaged
  /// store, and TUs dropped to cold compilation.
  uint64_t StateTUsSalvaged = 0;
  uint64_t StateTUsDropped = 0;

  unsigned FilesCompiled = 0; // Dirty files recompiled this build.
  unsigned FilesTotal = 0;    // Source files in the project.

  /// The files this build decided to recompile (TU keys, scan order).
  /// Recorded in the history ledger so cross-build analysis can tell
  /// "the same TU keeps recompiling" from "everything was dirty".
  std::vector<std::string> DirtyTUs;

  //===--- History ledger (build_sys/History.h) ---------------------------===//

  /// Id of the history record this build appended; 0 when the ledger
  /// is disabled or the append failed.
  uint64_t BuildId = 0;

  /// Damaged (torn/corrupt) trailing ledger records skipped while
  /// loading history for this build's append. Nonzero means a prior
  /// writer died mid-append; earlier records were preserved.
  uint64_t HistoryRecordsSkipped = 0;

  /// Trace-ring overwrites during this build (TraceRecorder drops).
  /// Nonzero means the emitted trace is truncated; surfaced as one
  /// build warning and under "trace" in --report-json.
  uint64_t TraceEventsDropped = 0;

  //===--- Warm-cache counters (daemon observability) ---------------------===//

  /// Interface scans actually performed this build (scan-cache misses).
  /// A warm no-op rebuild in a resident driver performs zero.
  uint64_t InterfaceScans = 0;

  /// Interface scans answered from the content-hash cache this build.
  uint64_t ScanCacheHits = 0;

  /// Object files deserialized from bytes this build (parsed-object
  /// cache misses). A warm rebuild re-hashes bytes but re-parses none.
  uint64_t ObjectsParsed = 0;

  /// Orphaned atomic-write temp files swept at build start (debris of
  /// a crashed previous build).
  unsigned TempFilesSwept = 0;

  //===--- Remote object-cache tier (BuildOptions::RemoteCache) -----------===//

  /// Dirty TUs whose object was fetched (verified) from sccached
  /// instead of recompiled.
  uint64_t RemoteHits = 0;

  /// Dirty TUs the remote cache did not have (compiled locally, then
  /// published).
  uint64_t RemoteMisses = 0;

  /// Objects published to the remote cache this build (after a
  /// compile, or for a locally-clean TU the remote was missing).
  uint64_t RemotePuts = 0;

  /// Remote operations that failed. The first failure disables the
  /// tier for this driver's lifetime (local-only, one warning), so in
  /// practice this is 0 or 1 per build.
  uint64_t RemoteErrors = 0;

  //===--- Dependency verifier (BuildOptions::VerifyDeps) -----------------===//

  /// TUs whose declared-vs-actual dependency sets were cross-checked.
  unsigned DepsTUsChecked = 0;

  /// Edges a TU actually read but the import graph does not track.
  unsigned DepsMissing = 0;

  /// Edges the import graph tracks but the TU never read.
  unsigned DepsRedundant = 0;

  /// One stable reason line per finding (`dep-missing: ...` /
  /// `dep-redundant: ...`), sorted; empty when the check passed or
  /// VerifyDeps was off.
  std::vector<std::string> DepFindings;

  //===--- Phase timers (wall clock, microseconds) -----------------------===//

  double ScanUs = 0;    // Listing, scanning, DAG, dirty set.
  double CompileUs = 0; // Compiling dirty files (wall, not CPU-sum).
  double LinkUs = 0;    // Object loading + symbol resolution.
  double StateIOUs = 0; // Manifest + state DB load/save.
  double TotalUs = 0;   // The whole build() call.

  /// Per-phase compile time summed over recompiled TUs (CPU-sum; under
  /// Jobs>1 this exceeds CompileUs).
  PhaseTimings CompilePhases;

  /// Pass-skip counters summed over recompiled TUs.
  StatefulStats Skip;

  /// Serialized size of the compiler state after this build (0 when
  /// running stateless).
  uint64_t StateDBBytes = 0;

  /// Total bytes of all linked object files.
  uint64_t ObjectBytes = 0;
};

/// Drives incremental builds of one project. Long-lived: in-memory
/// caches (scan results, parsed objects, compiler state) persist
/// across build() calls, which is what makes a warm no-op rebuild
/// nearly free — the "build daemon" usage mode.
class BuildDriver {
public:
  BuildDriver(VirtualFileSystem &FS, BuildOptions Options);
  ~BuildDriver();

  BuildDriver(const BuildDriver &) = delete;
  BuildDriver &operator=(const BuildDriver &) = delete;

  /// Runs one incremental build: scan, dirty set, compile, link,
  /// persist. Always safe to call again after a failure.
  BuildStats build();

  /// Drops every build artifact (objects, manifest, state DB) and all
  /// in-memory caches; the next build() is cold.
  void clean();

  /// The linked program of the most recent successful build; null
  /// before the first success.
  const MModule *program() const;

  /// The compiler state shared by every TU compilation.
  const BuildStateDB &stateDB() const;

  const BuildOptions &options() const;

private:
  std::unique_ptr<BuildDriverImpl> Impl;
};

} // namespace sc

#endif // SC_BUILD_SYS_BUILDSYSTEM_H
