//===- build_sys/DepVerifier.h - Build-dependency error detection -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects build-dependency errors the way "Detecting Build Dependency
/// Errors in Incremental Builds" (arXiv 2404.13295) frames them: the
/// build system *declares* a dependency graph (our ImportGraph), the
/// compilation *actually* touches files (observed through a
/// TracingFileSystem), and any disagreement is a bug with a concrete
/// failure mode —
///
///   missing dep    a TU uses a file the graph does not track. An edit
///                  to that file will not recompile the TU:
///                  **under-rebuild**, i.e. a silently stale binary.
///   redundant dep  the graph tracks a file the TU never uses. Edits
///                  to it recompile the TU for nothing: **over-rebuild**.
///
/// Findings carry stable reason codes so scripts can match them:
///
///   dep-missing: <TU> reads '<path>' (calls '<sym>') but the import
///                graph does not track it
///   dep-redundant: <TU> imports '<path>' but never reads it
///
/// In a project that compiles cleanly, MiniC's semantics make a
/// *natural* missing dep impossible (Sema rejects calls it cannot
/// resolve), so the verifier also supports a fault-injection plant
/// file — `<OutDir>/verify.plant` — that drops or adds declared edges
/// before the cross-check. scworkload's `plant` scenario node writes
/// it; `scbuild --verify-deps` auto-loads it. This is the same
/// hidden-hook idiom as `scbuild --inject-fault`.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_DEPVERIFIER_H
#define SC_BUILD_SYS_DEPVERIFIER_H

#include "support/FileSystem.h"

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace sc {

/// One declared-vs-actual disagreement.
struct DepFinding {
  enum class Kind { Missing, Redundant };

  Kind K = Kind::Missing;
  std::string TU;   // The translation unit with the bad edge.
  std::string Path; // The dependency in question.
  std::string Via;  // Missing only: the symbol that needed Path.

  /// The stable reason line (see file comment).
  std::string reason() const;
};

/// Result of one verification pass.
struct DepVerifyReport {
  std::vector<DepFinding> Findings; // Sorted by reason text.
  unsigned TUsChecked = 0;          // TUs cross-checked.
  unsigned FilesTraced = 0;         // Distinct files the tracer saw read.
  unsigned NumMissing = 0;
  unsigned NumRedundant = 0;

  bool clean() const { return Findings.empty(); }
};

/// Fault-injection edits applied to the *declared* graph before the
/// cross-check (the actual accesses are never faked). Dropping a
/// genuinely used edge manufactures a missing dep; adding an unused
/// one manufactures a redundant dep.
struct DepVerifyPlant {
  std::vector<std::pair<std::string, std::string>> DropEdges; // (TU, dep)
  std::vector<std::pair<std::string, std::string>> AddEdges;  // (TU, dep)

  bool empty() const { return DropEdges.empty() && AddEdges.empty(); }
};

class DepVerifier {
public:
  /// Cross-checks every TU in \p Declared (path -> tracked direct
  /// deps, i.e. the ImportGraph edges the build system will react to)
  /// against the files the TU's compilation actually needs, observed
  /// by re-resolving its external calls through a TracingFileSystem
  /// over \p FS. \p Plant (optional) perturbs the declared edges
  /// first. Deterministic: TUs in sorted order, findings sorted.
  static DepVerifyReport
  verify(VirtualFileSystem &FS,
         const std::map<std::string, std::vector<std::string>> &Declared,
         const DepVerifyPlant *Plant = nullptr);

  /// `<OutDir>/verify.plant`.
  static std::string plantPath(const std::string &OutDir);

  /// Loads the plant file if present and well-formed; nullopt when
  /// absent. A malformed file yields an *empty* plant plus \p Error.
  static std::optional<DepVerifyPlant>
  loadPlant(VirtualFileSystem &FS, const std::string &OutDir,
            std::string *Error = nullptr);

  /// Writes (or, for an empty plant, removes) the plant file.
  static bool savePlant(VirtualFileSystem &FS, const std::string &OutDir,
                        const DepVerifyPlant &Plant);
};

} // namespace sc

#endif // SC_BUILD_SYS_DEPVERIFIER_H
