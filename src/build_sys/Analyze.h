//===- build_sys/Analyze.h - Cross-build critical-path analyzer -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `scbuild analyze`: answers "why was this build slow?" and "what got
/// slower?" from the history ledger (build_sys/History.h) alone — no
/// live process, no trace file in hand. For one build it renders the
/// critical path scan -> compile -> slowest TU -> slowest pass -> link
/// with per-node self/total times, the top-N bottleneck TUs and
/// passes, lock-wait and pool attribution, and (when the build ran
/// under --profile-sample-hz) the heaviest sampled stacks. With
/// `--against=ID` it also diffs two builds into new/slower/faster/
/// fixed nodes carrying stable reason codes, in the spirit of
/// `scbuild --explain`.
///
/// Output is a human table or, with `--json`, the versioned
/// `scbuild-analyze` document defined in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_ANALYZE_H
#define SC_BUILD_SYS_ANALYZE_H

#include "support/FileSystem.h"

#include <cstdint>
#include <string>

namespace sc {

/// Stable reason codes attached to diff entries (documented, tested,
/// and never renamed — only added to):
///   node-new     the node exists in this build but not the baseline
///   node-slower  the node exceeds the baseline beyond the thresholds
///   node-faster  the node undercuts the baseline beyond the thresholds
///   node-fixed   the node existed in the baseline but not this build

struct AnalyzeOptions {
  uint64_t BuildId = 0;   ///< 0 = the latest record.
  uint64_t AgainstId = 0; ///< 0 = no regression diff.
  unsigned TopN = 5;      ///< Bottleneck list depth.
  bool Json = false;      ///< scbuild-analyze JSON instead of tables.
};

struct AnalyzeResult {
  bool OK = false;
  std::string Error; ///< Human diagnostic when !OK.
  std::string Text;  ///< Rendered report when OK.
};

/// Runs the analysis over the ledger at \p HistoryPath.
AnalyzeResult analyzeHistory(VirtualFileSystem &FS,
                             const std::string &HistoryPath,
                             const AnalyzeOptions &Opt);

} // namespace sc

#endif // SC_BUILD_SYS_ANALYZE_H
