//===- build_sys/History.h - Cross-build history ledger ---------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The build-history ledger: an append-only `<OutDir>/history.jsonl`
/// holding one checksummed JSON record per build exit — success,
/// failure, and read-only degrade alike — so "are rebuilds getting
/// slower?" and "why was THIS build slow?" survive the process that
/// could have answered them. `scbuild analyze` (build_sys/Analyze.h)
/// consumes the ledger; docs/OBSERVABILITY.md documents the record
/// schema and its versioning policy.
///
/// Durability model: the VFS has no append primitive, so an append is
/// load + concat + atomicWriteFile — the same temp+fsync+rename path
/// every other artifact takes, which also gives `--history-limit`
/// truncation for free (drop the oldest lines in the same rewrite).
/// Each line carries a content checksum (`"crc"`); loading skips and
/// counts lines that are torn, truncated, or fail their checksum, so
/// a writer that died mid-rename can never poison earlier records.
/// Ledger I/O is observation, not build state: any failure costs one
/// warning and a counter, never the build.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_HISTORY_H
#define SC_BUILD_SYS_HISTORY_H

#include "support/FileSystem.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sc {

struct BuildStats;

/// Current ledger record schema. Additive fields do not bump this
/// (loaders skip unknown keys); removing or re-typing a field does.
inline constexpr uint64_t HistorySchemaVersion = 1;

/// Wall-clock duration of one TU's compile (from its trace span).
struct HistoryTU {
  std::string Name; // TU key, e.g. "util.mc".
  uint64_t DurUs = 0;
};

/// One pass's aggregate across every function it ran on this build.
struct HistoryPass {
  std::string Name;
  uint64_t DurUs = 0;
  uint64_t Count = 0; // Executions summed into DurUs.
};

/// One sampling-profiler aggregate (present when the build ran under
/// --profile-sample-hz): a current-span stack and its observed weight.
struct HistorySample {
  std::string Stack; // Outermost-first span names joined with ';'.
  uint64_t Samples = 0;
  uint64_t WeightNs = 0;
};

/// One build, as the ledger remembers it.
struct HistoryRecord {
  uint64_t SchemaVersion = HistorySchemaVersion;
  uint64_t BuildId = 0; // Monotone per ledger; assigned by append().
  uint64_t UnixMs = 0;  // Wall-clock build end.

  bool Success = false;
  bool ReadOnly = false;
  unsigned FilesCompiled = 0;
  unsigned FilesTotal = 0;
  std::vector<std::string> DirtyTUs;

  // Phase wall times, microseconds (mirrors BuildStats).
  uint64_t ScanUs = 0;
  uint64_t CompileUs = 0;
  uint64_t LinkUs = 0;
  uint64_t StateIOUs = 0;
  uint64_t TotalUs = 0;

  std::vector<HistoryTU> TUs;         // Slowest first, capped.
  std::vector<HistoryPass> Passes;    // Aggregate per pass name.
  std::vector<HistorySample> Samples; // Profiler aggregates, capped.

  // Metrics snapshot at build exit (build.* / lock.* / pool.* /
  // daemon.* / cache.* — whatever the registry holds).
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;

  uint64_t TraceEventsDropped = 0;
  uint64_t WarningsCount = 0;
  std::string Error; // Empty on success.
};

/// load() result: the surviving records plus how many damaged lines
/// were skipped to get them.
struct HistoryLoadResult {
  std::vector<HistoryRecord> Records; // File (= BuildId) order.
  uint64_t Skipped = 0;
};

/// Static codec + ledger I/O. All functions are pure over their VFS.
class BuildHistory {
public:
  /// One record as its ledger line (no trailing newline), checksum
  /// included: `{...,"crc":"<16 hex>"}` where the crc covers every
  /// byte before the `,"crc"` suffix. Each line is standalone valid
  /// JSON, so `python3 -c 'json.loads(line)'` works per line.
  static std::string serializeRecord(const HistoryRecord &R);

  /// Parses and checksum-verifies one ledger line. False (and \p Out
  /// untouched beyond scratch) for torn/corrupt/mismatched lines.
  static bool parseRecord(const std::string &Line, HistoryRecord &Out);

  /// Loads the ledger at \p Path; a missing file is an empty ledger.
  /// Damaged lines anywhere are skipped and counted, never fatal.
  static HistoryLoadResult load(VirtualFileSystem &FS,
                                const std::string &Path);

  /// Appends \p R, assigning it the next BuildId (last valid + 1) and
  /// retaining at most \p Limit records (oldest dropped) in one atomic
  /// rewrite. \p SkippedOut (optional) reports damaged lines dropped.
  /// Returns false when the rewrite itself failed.
  static bool append(VirtualFileSystem &FS, const std::string &Path,
                     HistoryRecord &R, unsigned Limit,
                     uint64_t *SkippedOut = nullptr);
};

/// Assembles a record from one finished build: the stats, a metrics
/// snapshot, and the build's trace events (only those with
/// StartNs >= \p BuildStartNs — a resident daemon's recorder holds
/// older builds' events too) aggregated into per-TU durations,
/// per-pass totals, and profiler samples.
HistoryRecord makeHistoryRecord(const BuildStats &S,
                                const MetricsRegistry *Metrics,
                                const std::vector<TraceEvent> &Events,
                                uint64_t BuildStartNs, uint64_t UnixMs);

} // namespace sc

#endif // SC_BUILD_SYS_HISTORY_H
