//===- build_sys/DaemonClient.h - Build-daemon client -----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the build-daemon protocol (see Daemon.h): connect to
/// `<OutDir>/.daemon.sock`, send one DaemonRequest, stream the response
/// frames to callbacks until the terminating `exit` frame. `scbuild
/// --daemon` is a thin wrapper over this class; tests drive it
/// directly.
///
/// The daemon is a shared service and may answer `busy` under load
/// (admission control) or vanish mid-request (drain, crash). The
/// requestWithRetry() entry point owns that client-side contract:
/// bounded attempts with doubling backoff + jitter, honoring the
/// daemon's suggested retry-after, before giving up so the caller can
/// fall back to an in-process build.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_DAEMONCLIENT_H
#define SC_BUILD_SYS_DAEMONCLIENT_H

#include "build_sys/Daemon.h"
#include "support/Socket.h"

#include <functional>
#include <string>

namespace sc {

class DaemonClient {
public:
  /// roundTrip()/requestWithRetry() results below 0. Any value >= 0 is
  /// the exit code from the daemon's exit frame.
  static constexpr int TransportError = -1; ///< Connect/send/recv failed.
  static constexpr int BusyRejected = -2;   ///< Daemon answered `busy`.

  /// Client-side retry contract for requestWithRetry().
  struct RetryPolicy {
    /// Total connection attempts (first try included). 1 = no retry.
    unsigned Attempts = 4;
    /// Backoff before the second attempt; doubles each retry.
    unsigned InitialBackoffMs = 25;
    /// Backoff ceiling (post-doubling, pre-jitter).
    unsigned MaxBackoffMs = 1000;
    /// Retry on `busy` frames (admission control). Off = surface the
    /// rejection to the caller after one attempt.
    bool RetryBusy = true;
    /// Retry on transport errors (daemon draining/crashed). The
    /// reconnect fails fast when nothing listens anymore.
    bool RetryTransport = true;
    /// Test hook: fixed jitter seed for reproducible backoff; 0 seeds
    /// from the clock.
    unsigned JitterSeed = 0;
    /// Test/observability hook: invoked before each sleep with
    /// (attempt index, sleep ms).
    std::function<void(unsigned, unsigned)> OnBackoff;
  };

  /// Connects to the daemon socket at \p SocketHostPath. The result is
  /// disconnected (no error text — "no daemon running" is an expected,
  /// quiet condition the caller falls back from) when nothing listens.
  static DaemonClient connect(const std::string &SocketHostPath);

  bool connected() const { return Sock.valid(); }

  /// Sends \p Req and streams response frames: `out` frame text to
  /// \p OnOut, `err` frame text to \p OnErr, until the `exit` frame,
  /// whose full content (code + counters) is copied to \p Exit when
  /// non-null. Returns the exit code from the frame, TransportError on
  /// a transport/protocol failure (\p Err describes it), or
  /// BusyRejected when the daemon bounced the request under load (the
  /// busy frame — queue depth, suggested retry-after — is copied to
  /// \p Exit). One request per connection: the client is disconnected
  /// afterwards.
  int roundTrip(const DaemonRequest &Req,
                const std::function<void(const std::string &)> &OnOut,
                const std::function<void(const std::string &)> &OnErr,
                DaemonFrame *Exit = nullptr, std::string *Err = nullptr,
                unsigned FrameTimeoutMs = 600000);

  /// The full client contract: connect + roundTrip, retrying `busy`
  /// rejections and transport failures per \p Policy with doubling
  /// backoff + jitter (a busy frame's retry-after suggestion, when
  /// larger, wins over the computed backoff). Returns the first
  /// successful exit code, or the last failure (TransportError /
  /// BusyRejected) once attempts are exhausted — the caller's cue to
  /// fall back to an in-process build.
  static int requestWithRetry(
      const std::string &SocketHostPath, const DaemonRequest &Req,
      const std::function<void(const std::string &)> &OnOut,
      const std::function<void(const std::string &)> &OnErr,
      const RetryPolicy &Policy, DaemonFrame *Exit = nullptr,
      std::string *Err = nullptr, unsigned FrameTimeoutMs = 600000);

private:
  DaemonClient() = default;
  explicit DaemonClient(UnixSocket S) : Sock(std::move(S)) {}

  UnixSocket Sock;
};

} // namespace sc

#endif // SC_BUILD_SYS_DAEMONCLIENT_H
