//===- build_sys/DaemonClient.h - Build-daemon client -----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the build-daemon protocol (see Daemon.h): connect to
/// `<OutDir>/.daemon.sock`, send one DaemonRequest, stream the response
/// frames to callbacks until the terminating `exit` frame. `scbuild
/// --daemon` is a thin wrapper over this class; tests drive it
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_DAEMONCLIENT_H
#define SC_BUILD_SYS_DAEMONCLIENT_H

#include "build_sys/Daemon.h"
#include "support/Socket.h"

#include <functional>
#include <string>

namespace sc {

class DaemonClient {
public:
  /// Connects to the daemon socket at \p SocketHostPath. The result is
  /// disconnected (no error text — "no daemon running" is an expected,
  /// quiet condition the caller falls back from) when nothing listens.
  static DaemonClient connect(const std::string &SocketHostPath);

  bool connected() const { return Sock.valid(); }

  /// Sends \p Req and streams response frames: `out` frame text to
  /// \p OnOut, `err` frame text to \p OnErr, until the `exit` frame,
  /// whose full content (code + counters) is copied to \p Exit when
  /// non-null. Returns the exit code from the frame, or -1 on a
  /// transport/protocol failure (\p Err describes it). One request per
  /// connection: the client is disconnected afterwards.
  int roundTrip(const DaemonRequest &Req,
                const std::function<void(const std::string &)> &OnOut,
                const std::function<void(const std::string &)> &OnErr,
                DaemonFrame *Exit = nullptr, std::string *Err = nullptr,
                unsigned FrameTimeoutMs = 600000);

private:
  DaemonClient() = default;
  explicit DaemonClient(UnixSocket S) : Sock(std::move(S)) {}

  UnixSocket Sock;
};

} // namespace sc

#endif // SC_BUILD_SYS_DAEMONCLIENT_H
