//===- build_sys/Analyze.cpp - Cross-build critical-path analyzer --------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Analyze.h"

#include "build_sys/History.h"
#include "support/FlatJson.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace sc;

namespace {

std::string ms(uint64_t Us) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", static_cast<double>(Us) / 1000.0);
  return Buf;
}

std::string pct(uint64_t Part, uint64_t Whole) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%",
                Whole ? 100.0 * static_cast<double>(Part) /
                            static_cast<double>(Whole)
                      : 0.0);
  return Buf;
}

/// One node on the critical path. Total covers the node and what runs
/// under it; self is total minus the slowest attributed child (the
/// coordination/everything-else share).
struct PathNode {
  std::string Node;
  uint64_t SelfUs = 0;
  uint64_t TotalUs = 0;
};

std::vector<PathNode> criticalPath(const HistoryRecord &R) {
  std::vector<PathNode> Path;
  Path.push_back({"scan", R.ScanUs, R.ScanUs});
  const uint64_t SlowTU = R.TUs.empty() ? 0 : R.TUs.front().DurUs;
  Path.push_back(
      {"compile", R.CompileUs > SlowTU ? R.CompileUs - SlowTU : 0,
       R.CompileUs});
  if (!R.TUs.empty())
    Path.push_back({"tu:" + R.TUs.front().Name, SlowTU, SlowTU});
  if (!R.Passes.empty())
    Path.push_back({"pass:" + R.Passes.front().Name, R.Passes.front().DurUs,
                    R.Passes.front().DurUs});
  Path.push_back({"link", R.LinkUs, R.LinkUs});
  Path.push_back({"state_io", R.StateIOUs, R.StateIOUs});
  return Path;
}

/// A named duration for diffing (TU or pass nodes).
struct DiffEntry {
  std::string Node;
  std::string Reason;
  uint64_t Us = 0;        // This build (0 for node-fixed).
  uint64_t AgainstUs = 0; // Baseline (0 for node-new).
};

/// Slower/faster thresholds: relative 20% AND absolute 500us, so
/// micro-jitter on fast nodes never reads as a regression.
bool slower(uint64_t A, uint64_t B) {
  return A > B + B / 5 && A > B + 500;
}

void diffNamed(const std::string &Prefix,
               const std::vector<std::pair<std::string, uint64_t>> &Now,
               const std::vector<std::pair<std::string, uint64_t>> &Base,
               std::vector<DiffEntry> &Out) {
  std::map<std::string, uint64_t> B(Base.begin(), Base.end());
  std::map<std::string, uint64_t> A(Now.begin(), Now.end());
  for (const auto &KV : A) {
    auto It = B.find(KV.first);
    if (It == B.end()) {
      Out.push_back({Prefix + KV.first, "node-new", KV.second, 0});
    } else if (slower(KV.second, It->second)) {
      Out.push_back({Prefix + KV.first, "node-slower", KV.second, It->second});
    } else if (slower(It->second, KV.second)) {
      Out.push_back({Prefix + KV.first, "node-faster", KV.second, It->second});
    }
  }
  for (const auto &KV : B)
    if (!A.count(KV.first))
      Out.push_back({Prefix + KV.first, "node-fixed", 0, KV.second});
}

std::vector<DiffEntry> diffRecords(const HistoryRecord &Now,
                                   const HistoryRecord &Base) {
  std::vector<DiffEntry> Out;
  auto Phase = [&](const char *Name, uint64_t A, uint64_t B) {
    if (slower(A, B))
      Out.push_back({std::string("phase:") + Name, "node-slower", A, B});
    else if (slower(B, A))
      Out.push_back({std::string("phase:") + Name, "node-faster", A, B});
  };
  Phase("scan", Now.ScanUs, Base.ScanUs);
  Phase("compile", Now.CompileUs, Base.CompileUs);
  Phase("link", Now.LinkUs, Base.LinkUs);
  Phase("state_io", Now.StateIOUs, Base.StateIOUs);
  Phase("total", Now.TotalUs, Base.TotalUs);

  std::vector<std::pair<std::string, uint64_t>> NowTUs, BaseTUs;
  for (const HistoryTU &T : Now.TUs)
    NowTUs.emplace_back(T.Name, T.DurUs);
  for (const HistoryTU &T : Base.TUs)
    BaseTUs.emplace_back(T.Name, T.DurUs);
  diffNamed("tu:", NowTUs, BaseTUs, Out);

  std::vector<std::pair<std::string, uint64_t>> NowP, BaseP;
  for (const HistoryPass &P : Now.Passes)
    NowP.emplace_back(P.Name, P.DurUs);
  for (const HistoryPass &P : Base.Passes)
    BaseP.emplace_back(P.Name, P.DurUs);
  diffNamed("pass:", NowP, BaseP, Out);

  // Heaviest movement first; ties by node name for determinism.
  std::sort(Out.begin(), Out.end(), [](const DiffEntry &A, const DiffEntry &B) {
    const uint64_t DA =
        A.Us > A.AgainstUs ? A.Us - A.AgainstUs : A.AgainstUs - A.Us;
    const uint64_t DB =
        B.Us > B.AgainstUs ? B.Us - B.AgainstUs : B.AgainstUs - B.Us;
    return DA != DB ? DA > DB : A.Node < B.Node;
  });
  return Out;
}

/// Lock families by wait time, heaviest first, from the record's
/// counter snapshot (cumulative for the recording process).
std::vector<std::pair<std::string, uint64_t>>
lockWaits(const HistoryRecord &R) {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (const auto &KV : R.Counters) {
    const std::string &K = KV.first;
    if (K.compare(0, 5, "lock.") == 0 &&
        K.size() > 8 + 5 && K.compare(K.size() - 8, 8, ".wait_ns") == 0 &&
        KV.second)
      Out.emplace_back(K.substr(5, K.size() - 5 - 8), KV.second);
  }
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return A.second != B.second ? A.second > B.second : A.first < B.first;
  });
  return Out;
}

uint64_t counterOr0(const HistoryRecord &R, const char *Name) {
  auto It = R.Counters.find(Name);
  return It == R.Counters.end() ? 0 : It->second;
}

std::string renderJson(const HistoryRecord &R, const HistoryRecord *Base,
                       unsigned TopN) {
  std::string J = "{\n";
  J += "  \"schema\": \"scbuild-analyze\",\n";
  J += "  \"schema_version\": 1,\n";
  J += "  \"build\": " + std::to_string(R.BuildId) + ",\n";
  if (Base)
    J += "  \"against\": " + std::to_string(Base->BuildId) + ",\n";
  J += std::string("  \"success\": ") + (R.Success ? "true" : "false") +
       ",\n";
  J += "  \"files\": {\"compiled\": " + std::to_string(R.FilesCompiled) +
       ", \"total\": " + std::to_string(R.FilesTotal) + "},\n";
  J += "  \"total_us\": " + std::to_string(R.TotalUs) + ",\n";

  J += "  \"critical_path\": [";
  bool First = true;
  for (const PathNode &N : criticalPath(R)) {
    if (!First)
      J += ", ";
    First = false;
    J += "{\"node\": ";
    appendJsonString(J, N.Node);
    J += ", \"self_us\": " + std::to_string(N.SelfUs) +
         ", \"total_us\": " + std::to_string(N.TotalUs) + "}";
  }
  J += "],\n";

  if (!R.TUs.empty()) {
    J += "  \"slowest_tu\": {\"name\": ";
    appendJsonString(J, R.TUs.front().Name);
    J += ", \"us\": " + std::to_string(R.TUs.front().DurUs) + "},\n";
  } else {
    J += "  \"slowest_tu\": null,\n";
  }
  if (!R.Passes.empty()) {
    J += "  \"slowest_pass\": {\"name\": ";
    appendJsonString(J, R.Passes.front().Name);
    J += ", \"us\": " + std::to_string(R.Passes.front().DurUs) + "},\n";
  } else {
    J += "  \"slowest_pass\": null,\n";
  }

  J += "  \"bottleneck_tus\": [";
  for (size_t I = 0; I != R.TUs.size() && I != TopN; ++I) {
    if (I)
      J += ", ";
    J += "{\"name\": ";
    appendJsonString(J, R.TUs[I].Name);
    J += ", \"us\": " + std::to_string(R.TUs[I].DurUs) + "}";
  }
  J += "],\n";

  J += "  \"bottleneck_passes\": [";
  for (size_t I = 0; I != R.Passes.size() && I != TopN; ++I) {
    if (I)
      J += ", ";
    J += "{\"name\": ";
    appendJsonString(J, R.Passes[I].Name);
    J += ", \"us\": " + std::to_string(R.Passes[I].DurUs) +
         ", \"count\": " + std::to_string(R.Passes[I].Count) + "}";
  }
  J += "],\n";

  J += "  \"lock_wait_ns\": {";
  First = true;
  for (const auto &KV : lockWaits(R)) {
    if (!First)
      J += ", ";
    First = false;
    appendJsonString(J, KV.first);
    J += ": " + std::to_string(KV.second);
  }
  J += "},\n";

  J += "  \"pool\": {\"tasks_executed\": " +
       std::to_string(counterOr0(R, "pool.tasks_executed")) +
       ", \"steals\": " + std::to_string(counterOr0(R, "pool.steals")) +
       ", \"helped_tasks\": " +
       std::to_string(counterOr0(R, "pool.helped_tasks")) +
       ", \"parks\": " + std::to_string(counterOr0(R, "pool.parks")) +
       ", \"park_wait_ns\": " +
       std::to_string(counterOr0(R, "pool.park_wait_ns")) + "},\n";

  J += "  \"samples\": [";
  for (size_t I = 0; I != R.Samples.size() && I != TopN; ++I) {
    if (I)
      J += ", ";
    J += "{\"stack\": ";
    appendJsonString(J, R.Samples[I].Stack);
    J += ", \"samples\": " + std::to_string(R.Samples[I].Samples) +
         ", \"weight_ns\": " + std::to_string(R.Samples[I].WeightNs) + "}";
  }
  J += "],\n";

  J += "  \"trace\": {\"events_dropped\": " +
       std::to_string(R.TraceEventsDropped) + "}";

  if (Base) {
    J += ",\n  \"diff\": {\"against\": " + std::to_string(Base->BuildId) +
         ", \"changes\": [";
    First = true;
    for (const DiffEntry &D : diffRecords(R, *Base)) {
      if (!First)
        J += ", ";
      First = false;
      J += "{\"node\": ";
      appendJsonString(J, D.Node);
      J += ", \"reason\": ";
      appendJsonString(J, D.Reason);
      J += ", \"us\": " + std::to_string(D.Us) +
           ", \"against_us\": " + std::to_string(D.AgainstUs) + "}";
    }
    J += "]}";
  }
  J += "\n}\n";
  return J;
}

std::string renderHuman(const HistoryRecord &R, const HistoryRecord *Base,
                        unsigned TopN) {
  std::string O;
  const char *Kind = R.FilesCompiled == R.FilesTotal && R.FilesTotal
                         ? "full"
                         : (R.FilesCompiled ? "incremental" : "no-op");
  O += "build " + std::to_string(R.BuildId) + " (" + Kind + ", " +
       (R.Success ? "ok" : "FAILED") + (R.ReadOnly ? ", read-only" : "") +
       ") — " + std::to_string(R.FilesCompiled) + "/" +
       std::to_string(R.FilesTotal) + " files compiled, total " +
       ms(R.TotalUs) + " ms\n";
  if (!R.Error.empty())
    O += "  error: " + R.Error.substr(0, 200) + "\n";

  O += "\ncritical path (self / total, share of build):\n";
  for (const PathNode &N : criticalPath(R)) {
    char Line[256];
    std::snprintf(Line, sizeof(Line), "  %-28s %9s ms / %9s ms  %s\n",
                  N.Node.c_str(), ms(N.SelfUs).c_str(), ms(N.TotalUs).c_str(),
                  pct(N.TotalUs, R.TotalUs).c_str());
    O += Line;
  }

  if (!R.TUs.empty()) {
    O += "\nbottleneck TUs (share of compile):\n";
    for (size_t I = 0; I != R.TUs.size() && I != TopN; ++I) {
      char Line[256];
      std::snprintf(Line, sizeof(Line), "  %-28s %9s ms  %s\n",
                    R.TUs[I].Name.c_str(), ms(R.TUs[I].DurUs).c_str(),
                    pct(R.TUs[I].DurUs, R.CompileUs).c_str());
      O += Line;
    }
  }
  if (!R.Passes.empty()) {
    O += "\nbottleneck passes (CPU-sum over functions):\n";
    for (size_t I = 0; I != R.Passes.size() && I != TopN; ++I) {
      char Line[256];
      std::snprintf(Line, sizeof(Line), "  %-28s %9s ms  x%llu\n",
                    R.Passes[I].Name.c_str(), ms(R.Passes[I].DurUs).c_str(),
                    static_cast<unsigned long long>(R.Passes[I].Count));
      O += Line;
    }
  }

  const auto Waits = lockWaits(R);
  if (!Waits.empty()) {
    O += "\nlock wait (cumulative for the recording process):\n";
    for (size_t I = 0; I != Waits.size() && I != TopN; ++I) {
      char Line[256];
      std::snprintf(Line, sizeof(Line), "  %-28s %9s ms\n",
                    Waits[I].first.c_str(),
                    ms(Waits[I].second / 1000).c_str());
      O += Line;
    }
  }
  if (const uint64_t Tasks = counterOr0(R, "pool.tasks_executed")) {
    O += "\npool: " + std::to_string(Tasks) + " tasks, " +
         std::to_string(counterOr0(R, "pool.steals")) + " steals, " +
         std::to_string(counterOr0(R, "pool.parks")) + " parks (" +
         ms(counterOr0(R, "pool.park_wait_ns") / 1000) + " ms parked)\n";
  }
  if (!R.Samples.empty()) {
    O += "\nsampled stacks (heaviest first):\n";
    for (size_t I = 0; I != R.Samples.size() && I != TopN; ++I) {
      char Line[512];
      std::snprintf(Line, sizeof(Line), "  %9s ms  %s\n",
                    ms(R.Samples[I].WeightNs / 1000).c_str(),
                    R.Samples[I].Stack.c_str());
      O += Line;
    }
  }
  if (R.TraceEventsDropped)
    O += "\nwarning: the trace behind this record dropped " +
         std::to_string(R.TraceEventsDropped) +
         " event(s); TU/pass attribution is incomplete\n";

  if (Base) {
    O += "\nvs build " + std::to_string(Base->BuildId) + " (" +
         ms(Base->TotalUs) + " ms -> " + ms(R.TotalUs) + " ms):\n";
    const auto Changes = diffRecords(R, *Base);
    if (Changes.empty()) {
      O += "  no significant changes\n";
    } else {
      for (const DiffEntry &D : Changes) {
        char Line[256];
        std::snprintf(Line, sizeof(Line), "  %-12s %-28s %9s ms -> %9s ms\n",
                      D.Reason.c_str(), D.Node.c_str(),
                      ms(D.AgainstUs).c_str(), ms(D.Us).c_str());
        O += Line;
      }
    }
  }
  return O;
}

} // namespace

AnalyzeResult sc::analyzeHistory(VirtualFileSystem &FS,
                                 const std::string &HistoryPath,
                                 const AnalyzeOptions &Opt) {
  AnalyzeResult Res;
  HistoryLoadResult Ledger = BuildHistory::load(FS, HistoryPath);
  if (Ledger.Records.empty()) {
    Res.Error = Ledger.Skipped
                    ? "history at '" + HistoryPath +
                          "' holds only damaged records (" +
                          std::to_string(Ledger.Skipped) + " skipped)"
                    : "no build history at '" + HistoryPath +
                          "' — run a build first";
    return Res;
  }

  auto Find = [&](uint64_t Id) -> const HistoryRecord * {
    for (const HistoryRecord &R : Ledger.Records)
      if (R.BuildId == Id)
        return &R;
    return nullptr;
  };

  const HistoryRecord *R =
      Opt.BuildId ? Find(Opt.BuildId) : &Ledger.Records.back();
  if (!R) {
    Res.Error = "build " + std::to_string(Opt.BuildId) + " is not in '" +
                HistoryPath + "' (ledger holds " +
                std::to_string(Ledger.Records.front().BuildId) + ".." +
                std::to_string(Ledger.Records.back().BuildId) + ")";
    return Res;
  }
  const HistoryRecord *Base = nullptr;
  if (Opt.AgainstId) {
    Base = Find(Opt.AgainstId);
    if (!Base) {
      Res.Error = "baseline build " + std::to_string(Opt.AgainstId) +
                  " is not in '" + HistoryPath + "'";
      return Res;
    }
  }

  Res.OK = true;
  Res.Text = Opt.Json ? renderJson(*R, Base, Opt.TopN)
                      : renderHuman(*R, Base, Opt.TopN);
  return Res;
}
