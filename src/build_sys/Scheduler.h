//===- build_sys/Scheduler.h - Parallel compile scheduler -------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the dirty set through the compiler on `Jobs` worker threads.
/// Jobs arrive already topologically ordered; because a TU's compile
/// inputs are its source plus *scanned* import interfaces (never
/// another TU's compile output), jobs are mutually independent and the
/// scheduler is a deterministic work queue: results land in job order,
/// every worker owns a private Compiler, and the shared BuildStateDB
/// is internally synchronized. The linked program is byte-identical
/// for any Jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_SCHEDULER_H
#define SC_BUILD_SYS_SCHEDULER_H

#include "driver/Compiler.h"

#include <string>
#include <vector>

namespace sc {

class BuildStateDB;

/// One dirty translation unit ready to compile.
struct CompileJob {
  std::string Path;
  const std::string *Source = nullptr;  // Owned by the build driver.
  ModuleInterface Imports;              // Resolved direct-import sigs.
};

/// Compiles \p Jobs with \p NumThreads workers (1 = in the calling
/// thread). Returns one CompileResult per job, in job order. \p DB may
/// be null for stateless configurations.
std::vector<CompileResult> compileInParallel(const std::vector<CompileJob> &Jobs,
                                             const CompilerOptions &Options,
                                             BuildStateDB *DB,
                                             unsigned NumThreads);

} // namespace sc

#endif // SC_BUILD_SYS_SCHEDULER_H
