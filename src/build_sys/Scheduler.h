//===- build_sys/Scheduler.h - Parallel compile scheduler -------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the dirty set through the compiler on a work-stealing task
/// pool. Jobs arrive already topologically ordered; because a TU's
/// compile inputs are its source plus *scanned* import interfaces
/// (never another TU's compile output), jobs are mutually independent:
/// results land in job order, every participating thread owns a
/// private Compiler, and the shared BuildStateDB is internally
/// synchronized. The linked program is byte-identical for any
/// concurrency level.
///
/// When CompilerOptions::Workers points at the same pool, the two
/// parallelism levels compose: a build with one huge dirty TU no
/// longer serializes on a single worker — the TU occupies one thread
/// and the others steal its per-function pass tasks.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_SCHEDULER_H
#define SC_BUILD_SYS_SCHEDULER_H

#include "driver/Compiler.h"

#include <string>
#include <vector>

namespace sc {

class BuildStateDB;
class TaskPool;

/// One dirty translation unit ready to compile.
struct CompileJob {
  std::string Path;
  const std::string *Source = nullptr;  // Owned by the build driver.
  ModuleInterface Imports;              // Resolved direct-import sigs.
};

/// Compiles \p Jobs on \p Pool (the calling thread participates).
/// Returns one CompileResult per job, in job order. \p DB may be null
/// for stateless configurations. Pass the same pool in
/// \p Options.Workers to enable intra-TU function-task stealing.
std::vector<CompileResult> compileInParallel(const std::vector<CompileJob> &Jobs,
                                             const CompilerOptions &Options,
                                             BuildStateDB *DB, TaskPool &Pool);

/// Convenience overload owning a transient pool of \p NumThreads
/// (1 = in the calling thread, no threads spawned).
std::vector<CompileResult> compileInParallel(const std::vector<CompileJob> &Jobs,
                                             const CompilerOptions &Options,
                                             BuildStateDB *DB,
                                             unsigned NumThreads);

} // namespace sc

#endif // SC_BUILD_SYS_SCHEDULER_H
