//===- build_sys/ImportGraph.cpp - Import DAG + dirty propagation --------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/ImportGraph.h"

#include "support/Hashing.h"

#include <cassert>

using namespace sc;

ImportGraph
ImportGraph::build(const std::map<std::string, const ScanResult *> &Scans) {
  ImportGraph G;
  for (const auto &[Path, Scan] : Scans) {
    Node N;
    for (const std::string &Dep : Scan->Imports) {
      // An unresolved import is the importer's problem, not the whole
      // project's: park it on the node so the driver can fail exactly
      // the TUs that depend on the absent file.
      if (Scans.count(Dep))
        N.Imports.push_back(Dep);
      else
        N.Missing.push_back(Dep);
    }
    G.HasMissing = G.HasMissing || !N.Missing.empty();
    G.Nodes.emplace(Path, std::move(N));
  }

  // Iterative three-color DFS: detects cycles and emits a postorder
  // (dependencies first). Roots are visited in lexicographic order
  // (std::map iteration), so the result is deterministic.
  enum : uint8_t { White, Grey, Black };
  std::map<std::string, uint8_t> Color;
  for (const auto &[Path, N] : G.Nodes)
    Color[Path] = White;

  struct Frame {
    const std::string *Path;
    size_t NextImport = 0;
  };
  for (const auto &[Root, RootNode] : G.Nodes) {
    if (Color[Root] != White)
      continue;
    std::vector<Frame> Stack{{&Root, 0}};
    Color[Root] = Grey;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      Node &N = G.Nodes.at(*F.Path);
      if (F.NextImport == N.Imports.size()) {
        Color[*F.Path] = Black;
        G.Topo.push_back(*F.Path);
        Stack.pop_back();
        continue;
      }
      const std::string &Dep = N.Imports[F.NextImport++];
      uint8_t &C = Color[Dep];
      if (C == White) {
        C = Grey;
        Stack.push_back({&G.Nodes.find(Dep)->first, 0});
      } else if (C == Grey) {
        // Dep is on the stack: report the cycle Dep -> ... -> Dep.
        std::string Cycle = Dep;
        for (size_t I = Stack.size(); I-- != 0;) {
          Cycle += " -> " + *Stack[I].Path;
          if (*Stack[I].Path == Dep)
            break;
        }
        G.ErrorText = "import cycle: " + Cycle;
        return G;
      }
    }
  }

  // Effective hashes in topological order: every import's value is
  // final before its importers fold it in.
  for (const std::string &Path : G.Topo) {
    Node &N = G.Nodes.at(Path);
    const ScanResult *Scan = Scans.at(Path);
    HashBuilder Own, Deps;
    Own.addU64(Scan->InterfaceHash);
    Deps.addU64(N.Imports.size() + N.Missing.size());
    for (const std::string &Dep : N.Imports) {
      uint64_t DepEff = G.Nodes.at(Dep).Effective;
      Own.addU64(DepEff);
      Deps.addString(Dep);
      Deps.addU64(DepEff);
    }
    // A missing import folds a sentinel into both hashes: when the
    // file later *appears*, the importer's ImportsEffectiveHash flips
    // from "missing:<dep>" to the real effective value, so TUs whose
    // resolution previously failed are rebuilt on file appearance —
    // not just on content change.
    for (const std::string &Dep : N.Missing) {
      Own.addString("missing:" + Dep);
      Deps.addString("missing:" + Dep);
    }
    N.Effective = Own.digest();
    N.ImportsEffective = Deps.digest();
  }
  return G;
}

const std::vector<std::string> &
ImportGraph::imports(const std::string &Path) const {
  auto It = Nodes.find(Path);
  assert(It != Nodes.end() && "unknown file");
  return It->second.Imports;
}

const std::vector<std::string> &
ImportGraph::missingImports(const std::string &Path) const {
  auto It = Nodes.find(Path);
  assert(It != Nodes.end() && "unknown file");
  return It->second.Missing;
}

uint64_t ImportGraph::effectiveInterfaceHash(const std::string &Path) const {
  auto It = Nodes.find(Path);
  assert(It != Nodes.end() && "unknown file");
  return It->second.Effective;
}

uint64_t ImportGraph::importsEffectiveHash(const std::string &Path) const {
  auto It = Nodes.find(Path);
  assert(It != Nodes.end() && "unknown file");
  return It->second.ImportsEffective;
}
