//===- build_sys/BuildReport.h - Machine-readable build report --*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON build report emitted by `scbuild --report-json=FILE`: one
/// object per build carrying everything BuildStats knows plus the
/// metrics registry. The schema is versioned ("schema" and
/// "schema_version" keys); see docs/OBSERVABILITY.md for the stability
/// policy (additive changes bump nothing; renames/removals bump the
/// version).
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_BUILDREPORT_H
#define SC_BUILD_SYS_BUILDREPORT_H

#include "build_sys/BuildSystem.h"

#include <string>

namespace sc {

class MetricsRegistry;

/// Current report schema version (see docs/OBSERVABILITY.md).
constexpr uint32_t BuildReportSchemaVersion = 1;

/// Renders \p S (and, when non-null, \p Metrics) as the versioned
/// build-report JSON document. Deterministic: keys are fixed, metric
/// keys are sorted.
std::string buildReportJson(const BuildStats &S,
                            const MetricsRegistry *Metrics);

} // namespace sc

#endif // SC_BUILD_SYS_BUILDREPORT_H
