//===- build_sys/ObjectCache.h - Object store + parsed cache ----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-TU object files under `<OutDir>/<source>.o`, fronted by an
/// in-memory parsed-object cache (the build daemon's second cache):
/// clean files contribute their previous object to the link without a
/// deserialization, and repeated rebuilds without edits deserialize
/// nothing at all.
///
/// Integrity: a caller asks for an object *by expected content hash*
/// (recorded in the build manifest). A missing, vandalized, or
/// re-written object file fails the hash check and simply reports a
/// miss — the build system then recompiles the TU. Stale or corrupt
/// objects can therefore never reach the linker.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_OBJECTCACHE_H
#define SC_BUILD_SYS_OBJECTCACHE_H

#include "codegen/ObjectFile.h"
#include "support/FileSystem.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sc {

class ObjectCache {
public:
  ObjectCache(VirtualFileSystem &FS, std::string OutDir);

  /// `<OutDir>/<source>.o`.
  std::string objectPath(const std::string &SourcePath) const;

  /// Serializes and writes \p Object for \p SourcePath (atomically:
  /// temp + rename, so a crash never leaves a torn object), retaining
  /// the parsed form in memory. When the write fails (disk full, torn,
  /// read-only mode) the entry is kept memory-only: this build still
  /// links correctly and the next process recompiles the TU (manifest
  /// hash mismatch). Returns the object-byte hash to record in the
  /// manifest. When \p BytesOut is non-null it receives the serialized
  /// bytes (so a remote-cache publish needs no second serialization).
  /// Thread-safe (workers store concurrently).
  uint64_t store(const std::string &SourcePath, MModule Object,
                 std::string *BytesOut = nullptr);

  /// Admits bytes fetched from the remote cache tier: verifies
  /// hash(Bytes) == ExpectedDigest, decodes, writes the object file,
  /// and retains the parsed form — all exactly like a local compile's
  /// store(), except deserializations() is NOT bumped: that counter
  /// means "parsed-object-cache miss", and a remote arrival is
  /// accounted by the driver as a RemoteHit instead. False (nothing
  /// admitted) on hash mismatch or undecodable bytes.
  bool storeFetched(const std::string &SourcePath, std::string Bytes,
                    uint64_t ExpectedDigest);

  /// Copies the serialized bytes whose hash is \p ExpectedHash into
  /// \p Out — from disk when the on-disk bytes verify, else by
  /// re-serializing the memory entry. False when neither source
  /// matches. For publishing an already-built TU to the remote cache.
  bool serializedBytes(const std::string &SourcePath, uint64_t ExpectedHash,
                       std::string &Out);

  /// Returns the cached object for \p SourcePath iff the on-disk bytes
  /// hash to \p ExpectedHash (deserializing at most once per distinct
  /// byte content); null on any mismatch, damage, or absence.
  /// Memory-only entries (failed/suppressed writes) are served from
  /// memory when the hash matches. The pointer stays valid until the
  /// entry is stored over, invalidated, or the cache is cleared.
  const MModule *load(const std::string &SourcePath, uint64_t ExpectedHash);

  /// In read-only mode (another process holds the build lock) store()
  /// keeps entries memory-only and invalidate() leaves files on disk.
  void setWritable(bool W) { Writable = W; }

  /// True when every store() since the last reset hit the filesystem
  /// successfully; cleared by store() failures. For surfacing
  /// persistence warnings.
  bool allStoresPersisted() const;
  void resetStoreStatus();

  /// Serialized size of the most recently stored/loaded object.
  uint64_t objectBytes(const std::string &SourcePath) const;

  /// Total object deserializations performed by load() since
  /// construction — the parsed-object cache's miss counter. A warm
  /// rebuild serves every clean TU from memory and adds zero.
  uint64_t deserializations() const;

  /// load() misses split by cause, so callers (and the remote cache
  /// tier) can tell a cold cache from a vandalized one:
  /// loadsNotFound() counts absent object files; loadsCorrupt()
  /// counts files that existed but failed the hash check or did not
  /// decode — those TUs were quarantined (recompiled), never linked.
  uint64_t loadsNotFound() const;
  uint64_t loadsCorrupt() const;

  /// Drops \p SourcePath's memory entry and deletes its object file.
  void invalidate(const std::string &SourcePath);

  /// Drops only the in-memory entries (files stay).
  void clearMemory();

private:
  struct Cached {
    uint64_t Hash = 0;     // Hash of the serialized bytes.
    uint64_t Bytes = 0;    // Serialized size.
    bool MemOnly = false;  // Not on disk (failed or suppressed write).
    MModule Object;
  };

  VirtualFileSystem &FS;
  std::string OutDir;
  bool Writable = true;
  mutable std::mutex Mu;
  std::map<std::string, Cached> Mem;
  bool StoresPersisted = true;  // Guarded by Mu.
  uint64_t Deserializations = 0; // Guarded by Mu.
  uint64_t NotFoundLoads = 0;    // Guarded by Mu.
  uint64_t CorruptLoads = 0;     // Guarded by Mu.
};

} // namespace sc

#endif // SC_BUILD_SYS_OBJECTCACHE_H
