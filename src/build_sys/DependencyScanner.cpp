//===- build_sys/DependencyScanner.cpp - Import/interface scanner --------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/DependencyScanner.h"

#include "driver/Compiler.h"
#include "support/Hashing.h"

using namespace sc;

uint64_t sc::hashInterface(const ModuleInterface &Interface) {
  HashBuilder H;
  H.addU64(Interface.size());
  for (const FunctionSignature &Sig : Interface) {
    H.addString(Sig.Name);
    H.addU32(static_cast<uint32_t>(Sig.ReturnType));
    H.addU64(Sig.ParamTypes.size());
    for (TypeName T : Sig.ParamTypes)
      H.addU32(static_cast<uint32_t>(T));
  }
  return H.digest();
}

const ScanResult &DependencyScanner::scan(const std::string &Path,
                                          const std::string &Content) {
  (void)Path;
  uint64_t Key = hashString(Content);
  auto It = Cache.find(Key);
  if (It != Cache.end()) {
    ++Hits;
    return It->second;
  }
  ++Misses;

  ScanResult R;
  R.ContentHash = Key;
  if (auto Scanned = Compiler::scanInterface(Content)) {
    R.Ok = true;
    R.Interface = std::move(Scanned->first);
    R.Imports = std::move(Scanned->second);
    R.InterfaceHash = hashInterface(R.Interface);
  } else {
    // Syntax errors: no usable interface. Tie the interface hash to
    // the broken content so importers re-examine once it changes.
    R.InterfaceHash = Key;
  }
  return Cache.emplace(Key, std::move(R)).first->second;
}

void DependencyScanner::trim(size_t MaxEntries) {
  // Edited files retire their old entries, so a long-lived daemon
  // accumulates dead ones; dropping everything is fine — the next
  // build re-scans only what it actually reads.
  if (Cache.size() > MaxEntries)
    Cache.clear();
}

void DependencyScanner::clear() {
  Cache.clear();
  Hits = Misses = 0;
}
