//===- build_sys/History.cpp - Cross-build history ledger ----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/History.h"

#include "build_sys/BuildSystem.h"
#include "support/AtomicFile.h"
#include "support/FlatJson.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace sc;

namespace {

// Record-size caps: the ledger is a log, not a trace archive. A build
// with more TUs/samples than this keeps the slowest/heaviest ones.
constexpr size_t MaxRecordTUs = 50;
constexpr size_t MaxRecordSamples = 32;

std::string hex16(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

//===--- Nested-JSON parsing on top of JsonCursor -------------------------===//
//
// Ledger records are nested (objects and arrays of objects), which the
// flat wire codec deliberately does not cover; these helpers add the
// recursive cases. Unknown keys are skipped, so records can grow
// additively without a schema bump.

double parseNumber(JsonCursor &C) {
  C.ws();
  const char *Start = C.S.c_str() + C.I;
  char *End = nullptr;
  const double V = std::strtod(Start, &End);
  if (End == Start) {
    C.Bad = true;
    return 0;
  }
  C.I += static_cast<size_t>(End - Start);
  return V;
}

void skipAnyValue(JsonCursor &C);

template <typename Fn> void parseObjectKeys(JsonCursor &C, Fn OnKey) {
  C.expect('{');
  if (C.eat('}'))
    return;
  do {
    std::string Key = C.parseString();
    C.expect(':');
    if (C.Bad)
      return;
    OnKey(Key);
  } while (!C.Bad && C.eat(','));
  C.expect('}');
}

template <typename Fn> void parseArrayElems(JsonCursor &C, Fn OnElem) {
  C.expect('[');
  if (C.eat(']'))
    return;
  do
    OnElem();
  while (!C.Bad && C.eat(','));
  C.expect(']');
}

void skipAnyValue(JsonCursor &C) {
  switch (C.peek()) {
  case '"':
    C.parseString();
    break;
  case '{':
    parseObjectKeys(C, [&](const std::string &) { skipAnyValue(C); });
    break;
  case '[':
    parseArrayElems(C, [&] { skipAnyValue(C); });
    break;
  case 't':
  case 'f':
    C.parseBool();
    break;
  default:
    parseNumber(C);
  }
}

uint64_t parseU64Number(JsonCursor &C) {
  const double V = parseNumber(C);
  return V > 0 ? static_cast<uint64_t>(V) : 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string BuildHistory::serializeRecord(const HistoryRecord &R) {
  std::string O = "{\"schema\":\"scbuild-history\",\"schema_version\":" +
                  std::to_string(R.SchemaVersion) +
                  ",\"build\":" + std::to_string(R.BuildId) +
                  ",\"unix_ms\":" + std::to_string(R.UnixMs);
  O += std::string(",\"success\":") + (R.Success ? "true" : "false");
  O += std::string(",\"read_only\":") + (R.ReadOnly ? "true" : "false");
  O += ",\"files\":{\"compiled\":" + std::to_string(R.FilesCompiled) +
       ",\"total\":" + std::to_string(R.FilesTotal) + "}";

  O += ",\"dirty\":[";
  for (size_t I = 0; I != R.DirtyTUs.size(); ++I) {
    if (I)
      O += ",";
    appendJsonString(O, R.DirtyTUs[I]);
  }
  O += "]";

  O += ",\"phases_us\":{\"scan\":" + std::to_string(R.ScanUs) +
       ",\"compile\":" + std::to_string(R.CompileUs) +
       ",\"link\":" + std::to_string(R.LinkUs) +
       ",\"state_io\":" + std::to_string(R.StateIOUs) +
       ",\"total\":" + std::to_string(R.TotalUs) + "}";

  O += ",\"tus\":[";
  for (size_t I = 0; I != R.TUs.size(); ++I) {
    if (I)
      O += ",";
    O += "{\"name\":";
    appendJsonString(O, R.TUs[I].Name);
    O += ",\"us\":" + std::to_string(R.TUs[I].DurUs) + "}";
  }
  O += "]";

  O += ",\"passes\":[";
  for (size_t I = 0; I != R.Passes.size(); ++I) {
    if (I)
      O += ",";
    O += "{\"name\":";
    appendJsonString(O, R.Passes[I].Name);
    O += ",\"us\":" + std::to_string(R.Passes[I].DurUs) +
         ",\"count\":" + std::to_string(R.Passes[I].Count) + "}";
  }
  O += "]";

  O += ",\"samples\":[";
  for (size_t I = 0; I != R.Samples.size(); ++I) {
    if (I)
      O += ",";
    O += "{\"stack\":";
    appendJsonString(O, R.Samples[I].Stack);
    O += ",\"samples\":" + std::to_string(R.Samples[I].Samples) +
         ",\"weight_ns\":" + std::to_string(R.Samples[I].WeightNs) + "}";
  }
  O += "]";

  O += ",\"counters\":{";
  bool First = true;
  for (const auto &KV : R.Counters) {
    if (!First)
      O += ",";
    First = false;
    appendJsonString(O, KV.first);
    O += ":" + std::to_string(KV.second);
  }
  O += "},\"gauges\":{";
  First = true;
  char Num[64];
  for (const auto &KV : R.Gauges) {
    if (!First)
      O += ",";
    First = false;
    appendJsonString(O, KV.first);
    std::snprintf(Num, sizeof(Num), "%.10g", KV.second);
    O += ":";
    O += Num;
  }
  O += "}";

  O += ",\"trace\":{\"events_dropped\":" +
       std::to_string(R.TraceEventsDropped) + "}";
  O += ",\"warnings\":" + std::to_string(R.WarningsCount);
  if (!R.Error.empty()) {
    O += ",\"error\":";
    appendJsonString(O, R.Error);
  }

  // Checksum covers every byte emitted so far; the line stays valid
  // JSON so per-line consumers (python3, jq) need no special casing.
  O += ",\"crc\":\"" + hex16(HashBuilder().addString(O).digest()) + "\"}";
  return O;
}

bool BuildHistory::parseRecord(const std::string &Line, HistoryRecord &Out) {
  const size_t Pos = Line.rfind(",\"crc\":\"");
  // 8 = strlen(",\"crc\":\""), 16 hex digits, then "\"}".
  if (Pos == std::string::npos || Line.size() != Pos + 8 + 16 + 2 ||
      Line.compare(Line.size() - 2, 2, "\"}") != 0)
    return false;
  const std::string Body = Line.substr(0, Pos);
  if (hex16(HashBuilder().addString(Body).digest()) != Line.substr(Pos + 8, 16))
    return false;

  const std::string Doc = Body + "}";
  HistoryRecord R;
  bool SchemaOK = false;
  JsonCursor C(Doc);
  parseObjectKeys(C, [&](const std::string &Key) {
    if (Key == "schema")
      SchemaOK = C.parseString() == "scbuild-history";
    else if (Key == "schema_version")
      R.SchemaVersion = parseU64Number(C);
    else if (Key == "build")
      R.BuildId = parseU64Number(C);
    else if (Key == "unix_ms")
      R.UnixMs = parseU64Number(C);
    else if (Key == "success")
      R.Success = C.parseBool();
    else if (Key == "read_only")
      R.ReadOnly = C.parseBool();
    else if (Key == "files")
      parseObjectKeys(C, [&](const std::string &K) {
        if (K == "compiled")
          R.FilesCompiled = static_cast<unsigned>(parseU64Number(C));
        else if (K == "total")
          R.FilesTotal = static_cast<unsigned>(parseU64Number(C));
        else
          skipAnyValue(C);
      });
    else if (Key == "dirty")
      parseArrayElems(C, [&] { R.DirtyTUs.push_back(C.parseString()); });
    else if (Key == "phases_us")
      parseObjectKeys(C, [&](const std::string &K) {
        if (K == "scan")
          R.ScanUs = parseU64Number(C);
        else if (K == "compile")
          R.CompileUs = parseU64Number(C);
        else if (K == "link")
          R.LinkUs = parseU64Number(C);
        else if (K == "state_io")
          R.StateIOUs = parseU64Number(C);
        else if (K == "total")
          R.TotalUs = parseU64Number(C);
        else
          skipAnyValue(C);
      });
    else if (Key == "tus")
      parseArrayElems(C, [&] {
        HistoryTU T;
        parseObjectKeys(C, [&](const std::string &K) {
          if (K == "name")
            T.Name = C.parseString();
          else if (K == "us")
            T.DurUs = parseU64Number(C);
          else
            skipAnyValue(C);
        });
        R.TUs.push_back(std::move(T));
      });
    else if (Key == "passes")
      parseArrayElems(C, [&] {
        HistoryPass P;
        parseObjectKeys(C, [&](const std::string &K) {
          if (K == "name")
            P.Name = C.parseString();
          else if (K == "us")
            P.DurUs = parseU64Number(C);
          else if (K == "count")
            P.Count = parseU64Number(C);
          else
            skipAnyValue(C);
        });
        R.Passes.push_back(std::move(P));
      });
    else if (Key == "samples")
      parseArrayElems(C, [&] {
        HistorySample Smp;
        parseObjectKeys(C, [&](const std::string &K) {
          if (K == "stack")
            Smp.Stack = C.parseString();
          else if (K == "samples")
            Smp.Samples = parseU64Number(C);
          else if (K == "weight_ns")
            Smp.WeightNs = parseU64Number(C);
          else
            skipAnyValue(C);
        });
        R.Samples.push_back(std::move(Smp));
      });
    else if (Key == "counters")
      parseObjectKeys(C, [&](const std::string &K) {
        R.Counters[K] = parseU64Number(C);
      });
    else if (Key == "gauges")
      parseObjectKeys(C,
                      [&](const std::string &K) { R.Gauges[K] = parseNumber(C); });
    else if (Key == "trace")
      parseObjectKeys(C, [&](const std::string &K) {
        if (K == "events_dropped")
          R.TraceEventsDropped = parseU64Number(C);
        else
          skipAnyValue(C);
      });
    else if (Key == "warnings")
      R.WarningsCount = parseU64Number(C);
    else if (Key == "error")
      R.Error = C.parseString();
    else
      skipAnyValue(C);
  });
  if (C.Bad || !SchemaOK)
    return false;
  Out = std::move(R);
  return true;
}

//===----------------------------------------------------------------------===//
// Ledger I/O
//===----------------------------------------------------------------------===//

namespace {

/// Splits the ledger into lines, keeping each valid line's raw text
/// (old records are preserved byte-for-byte across rewrites) and its
/// parsed form; damaged lines are counted.
struct LedgerScan {
  std::vector<std::string> RawLines;
  std::vector<HistoryRecord> Records;
  uint64_t Skipped = 0;
  uint64_t LastId = 0;
};

LedgerScan scanLedger(VirtualFileSystem &FS, const std::string &Path) {
  LedgerScan Out;
  std::optional<std::string> Content = FS.readFile(Path);
  if (!Content)
    return Out;
  size_t Pos = 0;
  while (Pos < Content->size()) {
    size_t End = Content->find('\n', Pos);
    if (End == std::string::npos)
      End = Content->size();
    std::string Line = Content->substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty())
      continue;
    HistoryRecord R;
    if (!BuildHistory::parseRecord(Line, R)) {
      ++Out.Skipped;
      continue;
    }
    Out.LastId = std::max(Out.LastId, R.BuildId);
    Out.RawLines.push_back(std::move(Line));
    Out.Records.push_back(std::move(R));
  }
  return Out;
}

} // namespace

HistoryLoadResult BuildHistory::load(VirtualFileSystem &FS,
                                     const std::string &Path) {
  LedgerScan Scan = scanLedger(FS, Path);
  HistoryLoadResult Out;
  Out.Records = std::move(Scan.Records);
  Out.Skipped = Scan.Skipped;
  return Out;
}

bool BuildHistory::append(VirtualFileSystem &FS, const std::string &Path,
                          HistoryRecord &R, unsigned Limit,
                          uint64_t *SkippedOut) {
  LedgerScan Scan = scanLedger(FS, Path);
  if (SkippedOut)
    *SkippedOut = Scan.Skipped;
  if (R.BuildId == 0)
    R.BuildId = Scan.LastId + 1;
  Scan.RawLines.push_back(serializeRecord(R));
  // --history-limit: drop the oldest records in the same rewrite.
  const size_t Keep = Limit ? Limit : 1;
  if (Scan.RawLines.size() > Keep)
    Scan.RawLines.erase(Scan.RawLines.begin(),
                        Scan.RawLines.end() - static_cast<long>(Keep));
  std::string Content;
  for (const std::string &Line : Scan.RawLines) {
    Content += Line;
    Content += '\n';
  }
  return atomicWriteFile(FS, Path, Content);
}

//===----------------------------------------------------------------------===//
// Record assembly from one finished build
//===----------------------------------------------------------------------===//

HistoryRecord sc::makeHistoryRecord(const BuildStats &S,
                                    const MetricsRegistry *Metrics,
                                    const std::vector<TraceEvent> &Events,
                                    uint64_t BuildStartNs, uint64_t UnixMs) {
  HistoryRecord R;
  R.UnixMs = UnixMs;
  R.Success = S.Success;
  R.ReadOnly = S.ReadOnly;
  R.FilesCompiled = S.FilesCompiled;
  R.FilesTotal = S.FilesTotal;
  R.DirtyTUs = S.DirtyTUs;
  R.ScanUs = static_cast<uint64_t>(S.ScanUs);
  R.CompileUs = static_cast<uint64_t>(S.CompileUs);
  R.LinkUs = static_cast<uint64_t>(S.LinkUs);
  R.StateIOUs = static_cast<uint64_t>(S.StateIOUs);
  R.TotalUs = static_cast<uint64_t>(S.TotalUs);
  R.TraceEventsDropped = S.TraceEventsDropped;
  R.WarningsCount = S.Warnings.size();
  R.Error = S.ErrorText;

  // Aggregate this build's spans. A resident daemon's recorder also
  // holds earlier builds' events; the start-time filter scopes the
  // aggregation to this one.
  std::map<std::string, std::pair<uint64_t, uint64_t>> PassAgg; // us, count
  std::vector<HistorySample> Samples;
  for (const TraceEvent &E : Events) {
    if (E.StartNs < BuildStartNs)
      continue;
    const std::string Cat = E.Category;
    if (Cat == "compile" && E.K == TraceEvent::Kind::Span &&
        E.Name.compare(0, 8, "compile:") == 0) {
      R.TUs.push_back({E.Name.substr(8), E.DurNs / 1000});
    } else if (Cat == "pass" && E.K == TraceEvent::Kind::Span) {
      auto &Agg = PassAgg[E.Name];
      Agg.first += E.DurNs / 1000;
      ++Agg.second;
    } else if (Cat == "sample" && E.K == TraceEvent::Kind::Instant) {
      HistorySample Smp;
      // Args shape is fixed by SamplingProfiler::stop().
      parseFlatObject(E.ArgsJson, [&](JsonCursor &C, const std::string &K) {
        if (K == "stack")
          Smp.Stack = C.parseString();
        else if (K == "samples")
          Smp.Samples = C.parseU64();
        else if (K == "weight_ns")
          Smp.WeightNs = C.parseU64();
        else
          C.skipValue();
      });
      if (!Smp.Stack.empty())
        Samples.push_back(std::move(Smp));
    }
  }

  std::sort(R.TUs.begin(), R.TUs.end(),
            [](const HistoryTU &A, const HistoryTU &B) {
              return A.DurUs != B.DurUs ? A.DurUs > B.DurUs : A.Name < B.Name;
            });
  if (R.TUs.size() > MaxRecordTUs)
    R.TUs.resize(MaxRecordTUs);

  for (const auto &KV : PassAgg)
    R.Passes.push_back({KV.first, KV.second.first, KV.second.second});
  std::sort(R.Passes.begin(), R.Passes.end(),
            [](const HistoryPass &A, const HistoryPass &B) {
              return A.DurUs != B.DurUs ? A.DurUs > B.DurUs : A.Name < B.Name;
            });

  std::sort(Samples.begin(), Samples.end(),
            [](const HistorySample &A, const HistorySample &B) {
              return A.WeightNs != B.WeightNs ? A.WeightNs > B.WeightNs
                                              : A.Stack < B.Stack;
            });
  if (Samples.size() > MaxRecordSamples)
    Samples.resize(MaxRecordSamples);
  R.Samples = std::move(Samples);

  if (Metrics) {
    for (const auto &KV : Metrics->counters())
      R.Counters[KV.first] = KV.second;
    for (const auto &KV : Metrics->gauges())
      R.Gauges[KV.first] = KV.second;
  }
  return R;
}
