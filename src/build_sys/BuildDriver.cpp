//===- build_sys/BuildDriver.cpp - Incremental build orchestration -------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// build() = scan -> import DAG -> dirty set -> parallel compile ->
/// link -> persist. See BuildSystem.h for the phase-by-phase contract.
///
//===----------------------------------------------------------------------===//

#include "build_sys/BuildSystem.h"

#include "build_sys/DepVerifier.h"

#include "build_sys/DependencyScanner.h"
#include "build_sys/Explain.h"
#include "build_sys/History.h"
#include "build_sys/ImportGraph.h"
#include "build_sys/Manifest.h"
#include "build_sys/ObjectCache.h"
#include "build_sys/Scheduler.h"
#include "cache_sys/RemoteCacheClient.h"
#include "codegen/ObjectFile.h"
#include "support/AtomicFile.h"
#include "support/ContentionStats.h"
#include "support/FileLock.h"
#include "support/Hashing.h"
#include "support/Metrics.h"
#include "support/SamplingProfiler.h"
#include "support/TaskPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

using namespace sc;

namespace {

bool isSourcePath(const std::string &Path, const std::string &OutDir) {
  if (Path.size() < 3 || Path.compare(Path.size() - 3, 3, ".mc") != 0)
    return false;
  return Path.compare(0, OutDir.size() + 1, OutDir + "/") != 0;
}

void addSkipStats(StatefulStats &Sum, const StatefulStats &S) {
  Sum.PassesRun += S.PassesRun;
  Sum.PassesSkipped += S.PassesSkipped;
  Sum.FunctionsMatched += S.FunctionsMatched;
  Sum.FunctionsRefreshed += S.FunctionsRefreshed;
  Sum.FunctionsReused += S.FunctionsReused;
}

/// Appends a persistence warning, with the filesystem's error detail
/// (errno text or injected fault) when it has one.
void warn(BuildStats &S, VirtualFileSystem &FS, std::string Text) {
  std::string Err = FS.lastError();
  if (!Err.empty())
    Text += " (" + Err + ")";
  S.Warnings.push_back(std::move(Text));
}

} // namespace

namespace sc {

class BuildDriverImpl {
public:
  BuildDriverImpl(VirtualFileSystem &FS, BuildOptions Options)
      : FS(FS), Options(std::move(Options)),
        Objects(FS, this->Options.OutDir),
        Pool(std::make_unique<TaskPool>(std::max(1u, this->Options.Jobs))) {}

  BuildStats build();
  void clean();

  const MModule *program() const {
    return Program ? &*Program : nullptr;
  }
  const BuildStateDB &stateDB() const { return DB; }
  const BuildOptions &options() const { return Opts(); }

private:
  const BuildOptions &Opts() const { return Options; }

  bool stateful() const {
    return Options.Compiler.Stateful.SkipMode !=
           StatefulConfig::Mode::Stateless;
  }

  std::string statePath() const { return Options.OutDir + "/state.db"; }
  std::string manifestPath() const {
    return Options.OutDir + "/manifest.bin";
  }
  std::string lockPath() const { return Options.OutDir + "/.lock"; }
  std::string decisionsPath() const {
    return Options.OutDir + "/decisions.bin";
  }
  std::string historyPath() const {
    return Options.OutDir + "/history.jsonl";
  }

  TraceRecorder *trace() const { return Options.Compiler.Trace; }
  bool tracing() const { return trace() && trace()->enabled(); }

  /// Mirrors the finished BuildStats into the metrics registry (the
  /// machine-readable face of the same numbers). Counters accumulate
  /// across the driver's builds; gauges describe the latest one.
  void publishMetrics(const BuildStats &S);

  /// Appends this build's record to the history ledger
  /// (build_sys/History.h). Runs on every exit path — success,
  /// failure, and read-only degrade alike: history is observation
  /// data, not build state, so a read-only build may still record
  /// itself (worst case it loses a ledger race against the lock
  /// owner's append; rename atomicity keeps the file well-formed).
  /// Any ledger failure costs one warning, never the build.
  void appendHistory(BuildStats &S, uint64_t BuildStartNs);

  /// Objects compiled under a different optimization level or compiler
  /// version must not be trusted; this hash is recorded per manifest
  /// entry. Skip *policy* is deliberately excluded — all policies are
  /// semantically interchangeable, like real incremental builds that
  /// mix objects from differently-warmed compiler runs.
  uint64_t configHash() const {
    HashBuilder H;
    H.addU32(static_cast<uint32_t>(Options.Compiler.Opt));
    H.addU32(Options.Compiler.CompilerVersion);
    return H.digest();
  }

  /// Writes the manifest (always) and the state DB (stateful only);
  /// called on every exit path so even failed builds leave their
  /// completed work persisted. Write failures surface as warnings on
  /// \p S, never as build failures; read-only builds skip all writes.
  /// Returns the state DB size.
  uint64_t persist(Timer &StateIO, BuildStats &S);

  VirtualFileSystem &FS;
  BuildOptions Options;

  BuildStateDB DB;
  DependencyScanner Scanner;
  BuildManifest Manifest;
  ObjectCache Objects;
  std::optional<MModule> Program;

  /// One work-stealing pool per driver, sized by Options.Jobs and
  /// shared by both parallelism levels: TU-level compile jobs and the
  /// intra-TU function-pass tasks they fan out.
  std::unique_ptr<TaskPool> Pool;

  /// Per-driver memo of pre-optimization fingerprints (see
  /// FingerprintMemo); avoids re-hashing functions of TUs recompiled
  /// only because a dependency's implementation changed.
  FingerprintMemo FPMemo;

  /// Lock-contention and pool-scheduling counters sampled at build()
  /// entry; publishMetrics() publishes the per-build DELTAS as lock.*
  /// and pool.* metrics (the counters themselves are cumulative — the
  /// contention ones process-wide, the pool ones per driver).
  struct HotPathSnapshots {
    ContentionSnapshot Constants, SharedUsers, Stateful, FPMemo, StateDB,
        Analysis;
    TaskPoolStats Pool;
  };
  HotPathSnapshots BuildStartSnap;

  HotPathSnapshots captureHotPathSnapshots() const {
    HotPathSnapshots Snap;
    Snap.Constants = snapshot(constantUniquingContention());
    Snap.SharedUsers = snapshot(sharedUseContention());
    Snap.Stateful = snapshot(statefulPolicyContention());
    Snap.FPMemo = snapshot(fingerprintMemoContention());
    Snap.StateDB = snapshot(stateDBContention());
    Snap.Analysis = snapshot(analysisSlotContention());
    Snap.Pool = Pool->stats();
    return Snap;
  }

  /// Persisted state is loaded once per driver; later builds trust the
  /// in-memory copies and only write.
  bool PersistentLoaded = false;

  /// Set per build() call: true when the advisory lock could not be
  /// acquired and this build must not write anything.
  bool ReadOnlyBuild = false;

  /// Decision logs of the TUs this build recompiled (only populated
  /// when Options.Compiler.RecordDecisions); persist() writes them to
  /// decisions.bin wholesale, giving the file last-build semantics.
  std::vector<std::pair<std::string, TUDecisionLog>> PendingDecisions;

  //===--- Remote object-cache tier ---------------------------------------===//

  /// The input key naming what a TU's object deterministically depends
  /// on — the `act` key under which sccached maps these inputs to an
  /// object digest. Content + effective imports + config is exactly
  /// the dirty test's identity, so "remote hit" and "would not have
  /// recompiled locally" agree about what the object is.
  uint64_t inputKey(uint64_t ContentHash, uint64_t ImportsEffectiveHash,
                    uint64_t Config) const {
    HashBuilder H;
    H.addU64(ContentHash);
    H.addU64(ImportsEffectiveHash);
    H.addU64(Config);
    return H.digest();
  }

  /// Returns the usable remote client, connecting on first use; null
  /// when the tier is off or has degraded. Degradation is for the
  /// driver's lifetime and warns exactly once.
  RemoteCacheClient *remote(BuildStats &S);
  void degradeRemote(BuildStats &S, const std::string &Why);

  std::unique_ptr<RemoteCacheClient> Remote;
  bool RemoteTried = false;    ///< connect() attempted (success or not).
  bool RemoteDisabled = false; ///< Tier off for this driver's lifetime.
};

} // namespace sc

uint64_t BuildDriverImpl::persist(Timer &StateIO, BuildStats &S) {
  const uint64_t T0 = nowNanos();
  static const std::string StateSaveFrame("stateSave");
  SampleFrame Frame(trace(), "build", StateSaveFrame);
  StateIO.start();
  uint64_t StateBytes = 0;
  if (ReadOnlyBuild) {
    // Nothing may be written; report the in-memory state size.
    StateBytes = stateful() ? DB.sizeBytes() : 0;
    StateIO.stop();
    return StateBytes;
  }
  if (!Manifest.saveToFile(FS, manifestPath()))
    warn(S, FS,
         "failed to persist '" + manifestPath() +
             "'; the next build recomputes its dirty set from scratch");
  if (stateful()) {
    std::string Bytes = DB.serialize();
    StateBytes = Bytes.size();
    if (!atomicWriteFile(FS, statePath(), Bytes))
      warn(S, FS,
           "failed to persist '" + statePath() +
               "'; the next build starts with cold compiler state");
  }
  if (Options.Compiler.RecordDecisions && stateful()) {
    if (!atomicWriteFile(FS, decisionsPath(),
                         serializeDecisions(PendingDecisions)))
      warn(S, FS,
           "failed to persist '" + decisionsPath() +
               "'; `scbuild --explain` will describe an older build");
  }
  if (!Objects.allStoresPersisted())
    warn(S, FS,
         "one or more object files could not be written under '" +
             Options.OutDir + "'; affected TUs recompile next build");
  StateIO.stop();
  if (tracing())
    trace()->span("build", "stateSave", T0, nowNanos());
  return StateBytes;
}

RemoteCacheClient *BuildDriverImpl::remote(BuildStats &S) {
  if (Options.RemoteCache.empty() || RemoteDisabled)
    return nullptr;
  if (!RemoteTried) {
    RemoteTried = true;
    std::string Err;
    Remote = RemoteCacheClient::connect(Options.RemoteCache, &Err);
    if (!Remote) {
      degradeRemote(S, "could not connect" + (Err.empty() ? "" : ": " + Err));
      return nullptr;
    }
  }
  if (Remote && Remote->failed()) {
    // A mid-build failure latched in the client; fold it into the
    // driver-lifetime degrade if a caller sees it before we did.
    degradeRemote(S, "connection failed");
    return nullptr;
  }
  return Remote.get();
}

void BuildDriverImpl::degradeRemote(BuildStats &S, const std::string &Why) {
  if (RemoteDisabled)
    return;
  RemoteDisabled = true;
  Remote.reset();
  ++S.RemoteErrors;
  S.Warnings.push_back("remote cache '" + Options.RemoteCache +
                       "' is unavailable (" + Why +
                       "); continuing local-only");
  if (tracing())
    trace()->instant("remote", "degrade", "{\"reason\":\"" + Why + "\"}");
}

void BuildDriverImpl::publishMetrics(const BuildStats &S) {
  MetricsRegistry *M = Options.Compiler.Metrics;
  if (!M)
    return;
  M->counter("build.builds").add(1);
  M->counter("build.files_compiled").add(S.FilesCompiled);
  M->counter("build.passes_run").add(S.Skip.PassesRun);
  M->counter("build.passes_skipped").add(S.Skip.PassesSkipped);
  M->counter("build.functions_reused").add(S.Skip.FunctionsReused);
  M->counter("build.state_tus_salvaged").add(S.StateTUsSalvaged);
  M->counter("build.state_tus_dropped").add(S.StateTUsDropped);
  M->counter("build.interface_scans").add(S.InterfaceScans);
  M->counter("build.scan_cache_hits").add(S.ScanCacheHits);
  M->counter("build.objects_parsed").add(S.ObjectsParsed);
  M->counter("build.temp_files_swept").add(S.TempFilesSwept);
  M->counter("build.remote_hits").add(S.RemoteHits);
  M->counter("build.remote_misses").add(S.RemoteMisses);
  M->counter("build.remote_puts").add(S.RemotePuts);
  M->counter("build.remote_errors").add(S.RemoteErrors);
  M->counter("build.warnings").add(S.Warnings.size());
  if (Options.VerifyDeps) {
    // Registered only when the verifier runs, so builds without it
    // keep their metrics page (and the tests over it) unchanged.
    M->counter("build.deps_tus_checked").add(S.DepsTUsChecked);
    M->counter("build.deps_missing").add(S.DepsMissing);
    M->counter("build.deps_redundant").add(S.DepsRedundant);
  }
  M->gauge("build.files_total").set(S.FilesTotal);
  M->gauge("build.scan_us").set(S.ScanUs);
  M->gauge("build.compile_us").set(S.CompileUs);
  M->gauge("build.link_us").set(S.LinkUs);
  M->gauge("build.state_io_us").set(S.StateIOUs);
  M->gauge("build.total_us").set(S.TotalUs);
  M->gauge("build.state_db_bytes").set(static_cast<double>(S.StateDBBytes));
  M->gauge("build.object_bytes").set(static_cast<double>(S.ObjectBytes));

  // Lock-wait and pool-scheduling deltas for this build: contention on
  // the compiler's shared structures as first-class, regression-
  // trackable numbers (docs/OBSERVABILITY.md "Lock-wait metrics").
  const HotPathSnapshots Now = captureHotPathSnapshots();
  auto PublishLock = [&](const char *Family, const ContentionSnapshot &Before,
                         const ContentionSnapshot &After) {
    std::string P = std::string("lock.") + Family;
    M->counter(P + ".acquisitions").add(After.Acquisitions -
                                        Before.Acquisitions);
    M->counter(P + ".contended").add(After.Contended - Before.Contended);
    M->counter(P + ".wait_ns").add(After.WaitNs - Before.WaitNs);
  };
  PublishLock("constants", BuildStartSnap.Constants, Now.Constants);
  PublishLock("shared_users", BuildStartSnap.SharedUsers, Now.SharedUsers);
  PublishLock("statefulpolicy", BuildStartSnap.Stateful, Now.Stateful);
  PublishLock("fpmemo", BuildStartSnap.FPMemo, Now.FPMemo);
  PublishLock("statedb", BuildStartSnap.StateDB, Now.StateDB);
  PublishLock("analysis_slots", BuildStartSnap.Analysis, Now.Analysis);
  const TaskPoolStats &P0 = BuildStartSnap.Pool;
  const TaskPoolStats &P1 = Now.Pool;
  M->counter("pool.tasks_executed").add(P1.TasksExecuted - P0.TasksExecuted);
  M->counter("pool.steal_attempts").add(P1.StealAttempts - P0.StealAttempts);
  M->counter("pool.steals").add(P1.Steals - P0.Steals);
  M->counter("pool.helped_tasks").add(P1.HelpedTasks - P0.HelpedTasks);
  M->counter("pool.spin_iterations").add(P1.SpinIterations -
                                         P0.SpinIterations);
  M->counter("pool.parks").add(P1.Parks - P0.Parks);
  M->counter("pool.park_wait_ns").add(P1.ParkWaitNs - P0.ParkWaitNs);
  M->counter("build.trace_events_dropped").add(S.TraceEventsDropped);
}

void BuildDriverImpl::appendHistory(BuildStats &S, uint64_t BuildStartNs) {
  if (Options.HistoryLimit == 0)
    return;
  const uint64_t UnixMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::vector<TraceEvent> Events;
  if (tracing())
    Events = trace()->snapshot();
  HistoryRecord R = makeHistoryRecord(S, Options.Compiler.Metrics, Events,
                                      BuildStartNs, UnixMs);
  uint64_t Skipped = 0;
  if (BuildHistory::append(FS, historyPath(), R, Options.HistoryLimit,
                           &Skipped))
    S.BuildId = R.BuildId;
  else
    warn(S, FS,
         "failed to append build record to '" + historyPath() +
             "'; cross-build history loses this build");
  S.HistoryRecordsSkipped = Skipped;
  if (Skipped)
    warn(S, FS,
         "skipped " + std::to_string(Skipped) + " damaged record(s) in '" +
             historyPath() +
             "' (torn by an earlier crash); surviving records were kept");
  if (MetricsRegistry *M = Options.Compiler.Metrics) {
    M->counter("build.history_appends").add(S.BuildId ? 1 : 0);
    M->counter("build.history_records_skipped").add(Skipped);
  }
}

BuildStats BuildDriverImpl::build() {
  BuildStats S;
  BuildStartSnap = captureHotPathSnapshots();
  Timer Total, Scan, Compile, Link, StateIO;
  Total.start();
  const uint64_t BuildT0 = nowNanos();

  // Wall-time sampling overlay: started per build so its aggregates
  // land inside this build's trace window (and history record). It
  // must start before BuildSpan below is constructed — TraceSpan only
  // pushes its sampling frame when sampling is already on, and the
  // "build" frame is what roots the main thread's sampled stacks.
  const uint64_t TraceDropped0 = tracing() ? trace()->droppedEvents() : 0;
  std::unique_ptr<SamplingProfiler> Profiler;
  if (Options.ProfileSampleHz && tracing()) {
    Profiler =
        std::make_unique<SamplingProfiler>(*trace(), Options.ProfileSampleHz);
    Profiler->start();
  }

  TraceSpan BuildSpan(trace(), "build", "build");
  PendingDecisions.clear();

  // The build-phase spans (stateLoad/scan/compile/link) are recorded
  // retroactively, so this frame tells the sampling profiler which
  // phase the driver thread is in; entered at each region boundary
  // below, unwound by its destructor on the early-return paths.
  static const std::string StateLoadFrame("stateLoad"), ScanFrame("scan"),
      CompileFrame("compile"), LinkFrame("link");
  SampleFrame BuildPhase(trace(), "build");

  // Advisory lock: one writing build per state directory. On timeout
  // degrade to a read-only build — correct output, nothing persisted —
  // rather than interleave writes with the other process. A provably
  // dead owner's stale lock is reclaimed inside acquire(). A lock held
  // by a *live daemon* is recognized up front: the daemon keeps the
  // lock for its whole lifetime, so waiting out the timeout would be
  // pointless — degrade immediately with a diagnostic that names the
  // daemon and the way in. When the caller itself is the daemon
  // (ExternalLock), the lock is already held above this call.
  FileLock Lock;
  bool DaemonOwned = false;
  long DaemonPid = 0;
  if (!Options.ExternalLock) {
    if (auto Owner = FileLock::probe(FS, lockPath());
        Owner && Owner->Alive && Owner->Tag == "daemon") {
      DaemonOwned = true;
      DaemonPid = Owner->Pid;
    }
    if (!DaemonOwned) {
      const uint64_t LockT0 = nowNanos();
      Lock = FileLock::acquire(FS, lockPath(), Options.LockTimeoutMs,
                               Options.LockBackoffMs);
      if (tracing())
        trace()->span("build", "lock", LockT0, nowNanos(),
                      std::string("{\"held\":") +
                          (Lock.held() ? "true" : "false") +
                          ",\"reclaimed\":" +
                          (Lock.reclaimedStale() ? "true" : "false") + "}");
    }
  }
  ReadOnlyBuild = !Options.ExternalLock && !Lock.held();
  S.ReadOnly = ReadOnlyBuild;
  if (DaemonOwned)
    S.Warnings.push_back(
        "the build daemon (pid " + std::to_string(DaemonPid) + ") owns '" +
        lockPath() +
        "'; running read-only — build through it with `scbuild --daemon`, "
        "or stop it with `scbuild --daemon-shutdown`");
  else if (ReadOnlyBuild)
    S.Warnings.push_back(
        "another build holds '" + lockPath() +
        "'; running read-only (nothing will be persisted; delete the "
        "lock file if its owner is gone)");
  else if (Lock.reclaimedStale()) {
    S.Warnings.push_back(
        "reclaimed stale lock '" + lockPath() + "' left by dead process " +
        std::to_string(Lock.reclaimedPid()) +
        " (its build did not exit cleanly; artifacts were already "
        "integrity-checked on load)");
    if (tracing())
      trace()->instant("build", "lockReclaimed",
                       "{\"pid\":" + std::to_string(Lock.reclaimedPid()) +
                           "}");
  }
  Objects.setWritable(!ReadOnlyBuild);
  Objects.resetStoreStatus();

  // Sweep staging debris (`*.tmp.<pid>.<n>` orphans) left under OutDir
  // by a crash between temp-write and rename; without this they leak
  // forever. Safe exactly because we hold the build lock — no other
  // cooperating process can be mid-stage right now.
  if (!ReadOnlyBuild) {
    S.TempFilesSwept = sweepAtomicTemps(FS, Options.OutDir);
    if (S.TempFilesSwept && tracing())
      trace()->instant("build", "tempSweep",
                       "{\"removed\":" + std::to_string(S.TempFilesSwept) +
                           "}");
  }

  // Warm-cache accounting: deltas of the resident caches' lifetime
  // counters across this build() call.
  const uint64_t ScanHits0 = Scanner.cacheHits();
  const uint64_t ScanMisses0 = Scanner.cacheMisses();
  const uint64_t Parses0 = Objects.deserializations();
  auto FinishCacheCounters = [&] {
    S.ScanCacheHits = Scanner.cacheHits() - ScanHits0;
    S.InterfaceScans = Scanner.cacheMisses() - ScanMisses0;
    S.ObjectsParsed = Objects.deserializations() - Parses0;
  };

  // Shared tail of every exit path (error or success): cache-counter
  // deltas, profiler teardown, trace-drop accounting (exactly one
  // warning when the ring overflowed), metrics publication, and the
  // history-ledger append.
  auto FinishBuild = [&] {
    FinishCacheCounters();
    if (Profiler)
      Profiler->stop(); // Folds sample aggregates into the trace.
    if (tracing()) {
      S.TraceEventsDropped = trace()->droppedEvents() - TraceDropped0;
      if (S.TraceEventsDropped)
        warn(S, FS,
             "trace ring overflowed; " +
                 std::to_string(S.TraceEventsDropped) +
                 " event(s) were dropped — the emitted trace is truncated "
                 "(oldest events lost first)");
    }
    publishMetrics(S);
    appendHistory(S, BuildT0);
  };

  if (!PersistentLoaded) {
    const uint64_t LoadT0 = nowNanos();
    BuildPhase.enter(StateLoadFrame);
    StateIO.start();
    if (stateful()) {
      // Missing store: quiet cold build. Damaged store: cold build
      // with a warning. Partially damaged store: per-segment salvage —
      // only the corrupt TUs go cold.
      StateLoadReport Rep;
      bool Existed = FS.exists(statePath());
      bool Loaded = DB.loadFromFile(FS, statePath(), &Rep);
      if (Existed && !Loaded)
        warn(S, FS,
             "state '" + statePath() +
                 "' was unreadable or damaged; starting cold");
      if (Rep.salvaged()) {
        S.StateTUsSalvaged = Rep.TUsLoaded;
        S.StateTUsDropped = Rep.TUsDropped;
        S.Warnings.push_back(
            "salvaged " + std::to_string(Rep.TUsLoaded) +
            " TU record(s) from damaged '" + statePath() + "'; dropped " +
            std::to_string(Rep.TUsDropped) +
            " corrupt record(s) (those TUs compile cold)");
        if (tracing())
          trace()->instant("state", "salvage",
                           "{\"tus_loaded\":" +
                               std::to_string(Rep.TUsLoaded) +
                               ",\"tus_dropped\":" +
                               std::to_string(Rep.TUsDropped) + "}");
      }
    }
    bool ManifestExisted = FS.exists(manifestPath());
    if (!Manifest.loadFromFile(FS, manifestPath())) {
      Manifest.clear();
      if (ManifestExisted)
        warn(S, FS,
             "manifest '" + manifestPath() +
                 "' was unreadable or damaged; full recompile");
    }
    StateIO.stop();
    if (tracing())
      trace()->span("build", "stateLoad", LoadT0, nowNanos());
    PersistentLoaded = true;
  }
  Scanner.trim();

  //===--- Scan: sources, interfaces, import DAG, dirty set ---------------===//

  const uint64_t ScanT0 = nowNanos();
  BuildPhase.enter(ScanFrame);
  Scan.start();
  std::map<std::string, std::string> Sources;
  for (const std::string &Path : FS.listFiles()) {
    if (!isSourcePath(Path, Options.OutDir))
      continue;
    if (std::optional<std::string> Content = FS.readFile(Path))
      Sources.emplace(Path, std::move(*Content));
  }
  S.FilesTotal = static_cast<unsigned>(Sources.size());

  // Files that disappeared since the last build: drop every trace —
  // manifest entry, compiler state, cached object — so they neither
  // link nor haunt the state DB. This must run before any graph-error
  // exit below: a deleted file usually breaks its importers, and
  // pruning only on clean builds would leave the deleted TU's ghost
  // state in place for as long as the project stayed broken.
  std::vector<std::string> Gone;
  for (const auto &[Path, Entry] : Manifest.entries())
    if (!Sources.count(Path))
      Gone.push_back(Path);
  for (const std::string &Path : Gone) {
    Manifest.remove(Path);
    DB.remove(Path);
    Objects.invalidate(Path);
  }

  std::map<std::string, const ScanResult *> Scans;
  for (const auto &[Path, Content] : Sources)
    Scans[Path] = &Scanner.scan(Path, Content);

  ImportGraph Graph = ImportGraph::build(Scans);
  if (!Graph.valid()) {
    Scan.stop();
    Total.stop();
    S.ErrorText = "build error: " + Graph.error();
    S.ScanUs = Scan.micros();
    S.TotalUs = Total.micros();
    FinishBuild();
    return S;
  }

  // An import that resolves to no source file (deleted, or never
  // present) fails exactly its importers — every other TU still
  // builds. The failed TUs are forgotten in the manifest so they are
  // retried next build; the "missing:" sentinel the graph folds into
  // their hashes means the *appearance* of the absent file dirties
  // them even though their own content never changed.
  std::vector<std::pair<std::string, std::string>> Failures;
  std::set<std::string> Unbuildable;
  for (const std::string &Path : Graph.topologicalOrder()) {
    const std::vector<std::string> &Missing = Graph.missingImports(Path);
    if (Missing.empty())
      continue;
    Unbuildable.insert(Path);
    std::string Diag;
    for (const std::string &Dep : Missing)
      Diag += "build error: " + Path + ": missing import '" + Dep +
              "' (not a source file of this project)\n";
    Failures.emplace_back(Path, std::move(Diag));
    Manifest.remove(Path);
  }

  const uint64_t Config = configHash();
  std::vector<std::string> Dirty;
  /// Locally-clean TUs, remembered so the remote-sync pass can keep
  /// the fleet cache warm: (path, input key, object digest).
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> CleanTUs;
  for (const std::string &Path : Graph.topologicalOrder()) {
    if (Unbuildable.count(Path))
      continue;
    const ScanResult *SR = Scans.at(Path);
    const ManifestEntry *E = Manifest.lookup(Path);
    const uint64_t ImportsEff = Graph.importsEffectiveHash(Path);
    bool NeedsCompile =
        !E || E->ConfigHash != Config || E->ContentHash != SR->ContentHash ||
        E->ImportsEffectiveHash != ImportsEff ||
        // Missing/vandalized/corrupt object: self-heal by recompiling.
        !Objects.load(Path, E->ObjectHash);
    if (!NeedsCompile) {
      CleanTUs.emplace_back(Path, inputKey(SR->ContentHash, ImportsEff, Config),
                            E->ObjectHash);
      continue;
    }
    // Local miss: before scheduling a compile, ask the remote tier.
    // A verified remote hit is admitted into the local object cache
    // and recorded in the manifest exactly as a compile would have —
    // the TU then links from the fetched object and skips the
    // compiler entirely.
    if (RemoteCacheClient *RC = remote(S)) {
      const uint64_t Key = inputKey(SR->ContentHash, ImportsEff, Config);
      const uint64_t FetchT0 = nowNanos();
      uint64_t Digest = 0;
      std::string Bytes;
      RemoteCacheClient::Result R = RC->fetch(Key, Digest, Bytes);
      if (R == RemoteCacheClient::Result::Hit &&
          Objects.storeFetched(Path, std::move(Bytes), Digest)) {
        ++S.RemoteHits;
        ManifestEntry NE;
        NE.ContentHash = SR->ContentHash;
        NE.ImportsEffectiveHash = ImportsEff;
        NE.ObjectHash = Digest;
        NE.ConfigHash = Config;
        Manifest.update(Path, NE);
        if (tracing())
          trace()->span("remote", "fetch", FetchT0, nowNanos(),
                        "{\"path\":\"" + Path + "\",\"hit\":true}");
        continue;
      }
      if (R == RemoteCacheClient::Result::Error) {
        degradeRemote(S, "request failed mid-build");
      } else {
        // Miss — or a fetched object that failed to decode, which the
        // client's verification makes equivalent to one.
        ++S.RemoteMisses;
        if (tracing())
          trace()->span("remote", "fetch", FetchT0, nowNanos(),
                        "{\"path\":\"" + Path + "\",\"hit\":false}");
      }
    }
    Dirty.push_back(Path);
  }
  Scan.stop();
  S.DirtyTUs = Dirty;
  if (tracing())
    trace()->span("build", "scan", ScanT0, nowNanos(),
                  "{\"files\":" + std::to_string(S.FilesTotal) +
                      ",\"dirty\":" + std::to_string(Dirty.size()) + "}");

  //===--- Compile: dirty TUs in topological order, Jobs workers ----------===//

  const uint64_t CompileT0 = nowNanos();
  BuildPhase.enter(CompileFrame);
  Compile.start();
  std::vector<CompileJob> Jobs;
  Jobs.reserve(Dirty.size());
  for (const std::string &Path : Dirty) {
    CompileJob J;
    J.Path = Path;
    J.Source = &Sources.at(Path);
    for (const std::string &Dep : Graph.imports(Path)) {
      const ModuleInterface &Iface = Scans.at(Dep)->Interface;
      J.Imports.insert(J.Imports.end(), Iface.begin(), Iface.end());
    }
    Jobs.push_back(std::move(J));
  }
  CompilerOptions CO = Options.Compiler;
  CO.Workers = Pool.get();
  CO.FPMemo = &FPMemo;
  std::vector<CompileResult> Results =
      compileInParallel(Jobs, CO, stateful() ? &DB : nullptr, *Pool);
  Compile.stop();
  if (tracing())
    trace()->span("build", "compile", CompileT0, nowNanos(),
                  "{\"jobs\":" + std::to_string(Jobs.size()) + "}");

  // Fault containment: a failed TU never aborts the others — the whole
  // wave already ran, every successful TU's object and state are kept,
  // and only the failed TUs are forgotten (retried next build).
  // Diagnostics are emitted in TU-key-sorted order (missing-import
  // failures from above included) so the error text is deterministic
  // at any -j.
  struct PendingPublish {
    std::string Path;
    uint64_t Key;
    uint64_t Digest;
    std::string Bytes;
  };
  std::vector<PendingPublish> ToPublish;
  for (size_t I = 0; I != Results.size(); ++I) {
    CompileResult &R = Results[I];
    S.CompilePhases.accumulate(R.Timings);
    addSkipStats(S.Skip, R.SkipStats);
    if (CO.RecordDecisions && R.Success)
      PendingDecisions.emplace_back(Jobs[I].Path, std::move(R.Decisions));
    if (!R.Success) {
      Failures.emplace_back(Jobs[I].Path, std::move(R.DiagText));
      // Forget the TU so the next build retries it from scratch.
      Manifest.remove(Jobs[I].Path);
      continue;
    }
    ++S.FilesCompiled;
    const bool WantPublish = !Options.RemoteCache.empty() && !RemoteDisabled;
    std::string PubBytes;
    ManifestEntry E;
    E.ContentHash = Scans.at(Jobs[I].Path)->ContentHash;
    E.ImportsEffectiveHash = Graph.importsEffectiveHash(Jobs[I].Path);
    E.ObjectHash = Objects.store(Jobs[I].Path, std::move(R.Object),
                                 WantPublish ? &PubBytes : nullptr);
    E.ConfigHash = Config;
    Manifest.update(Jobs[I].Path, E);
    if (WantPublish)
      ToPublish.push_back(
          {Jobs[I].Path,
           inputKey(E.ContentHash, E.ImportsEffectiveHash, Config),
           E.ObjectHash, std::move(PubBytes)});
  }
  std::sort(Failures.begin(), Failures.end());
  std::string Errors;
  for (auto &[Path, Diag] : Failures)
    Errors += Diag;

  //===--- Remote sync: publish new objects, keep the hot set warm --------===//

  // Runs even when some TUs failed — the successful objects are valid
  // and worth sharing, mirroring how persist() keeps completed work.
  // Two duties: publish what this build compiled, and touch-or-publish
  // the locally-clean TUs so an already-warm builder still populates a
  // cold fleet cache (without recompiling anything). Any failure
  // degrades the tier and abandons the rest of the sync.
  if (remote(S)) {
    const uint64_t SyncT0 = nowNanos();
    uint64_t Touched = 0;
    for (PendingPublish &P : ToPublish) {
      RemoteCacheClient *RC = remote(S);
      if (!RC)
        break;
      if (RC->publish(P.Key, P.Digest, P.Bytes) ==
          RemoteCacheClient::Result::Error) {
        degradeRemote(S, "publish failed mid-build");
        break;
      }
      ++S.RemotePuts;
    }
    for (auto &[Path, Key, Digest] : CleanTUs) {
      RemoteCacheClient *RC = remote(S);
      if (!RC)
        break;
      RemoteCacheClient::Result R = RC->touchEntry(Key, Digest);
      if (R == RemoteCacheClient::Result::Error) {
        degradeRemote(S, "touch failed mid-build");
        break;
      }
      ++Touched;
      if (R == RemoteCacheClient::Result::Miss) {
        // The remote lacks (part of) this TU; publish from the local
        // object file or in-memory copy — no recompile needed.
        std::string Bytes;
        if (!Objects.serializedBytes(Path, Digest, Bytes))
          continue; // Local copy unavailable; the remote stays cold.
        if (RC->publish(Key, Digest, Bytes) ==
            RemoteCacheClient::Result::Error) {
          degradeRemote(S, "publish failed mid-build");
          break;
        }
        ++S.RemotePuts;
      }
    }
    if (tracing())
      trace()->span("remote", "sync", SyncT0, nowNanos(),
                    "{\"published\":" + std::to_string(S.RemotePuts) +
                        ",\"touched\":" + std::to_string(Touched) + "}");
  }

  if (!Errors.empty()) {
    S.StateDBBytes = persist(StateIO, S);
    Total.stop();
    S.ErrorText = std::move(Errors);
    S.ScanUs = Scan.micros();
    S.CompileUs = Compile.micros();
    S.StateIOUs = StateIO.micros();
    S.TotalUs = Total.micros();
    FinishBuild();
    return S;
  }

  //===--- Link: all objects into one program image -----------------------===//

  const uint64_t LinkT0 = nowNanos();
  BuildPhase.enter(LinkFrame);
  Link.start();
  std::vector<const MModule *> LinkSet;
  LinkSet.reserve(Graph.topologicalOrder().size());
  std::string LinkErrors;
  uint64_t ObjectBytes = 0;
  for (const std::string &Path : Graph.topologicalOrder()) {
    const ManifestEntry *E = Manifest.lookup(Path);
    const MModule *Obj = E ? Objects.load(Path, E->ObjectHash) : nullptr;
    if (!Obj) {
      LinkErrors += "build error: object for '" + Path +
                    "' vanished during the build\n";
      continue;
    }
    LinkSet.push_back(Obj);
    ObjectBytes += Objects.objectBytes(Path);
  }
  LinkResult Linked;
  if (LinkErrors.empty())
    Linked = linkObjects(LinkSet);
  Link.stop();
  if (tracing())
    trace()->span("build", "link", LinkT0, nowNanos(),
                  "{\"objects\":" + std::to_string(LinkSet.size()) + "}");

  if (!LinkErrors.empty() || !Linked.succeeded()) {
    for (const std::string &E : Linked.Errors)
      LinkErrors += "link error: " + E + "\n";
    S.StateDBBytes = persist(StateIO, S);
    Total.stop();
    S.ErrorText = std::move(LinkErrors);
    S.ScanUs = Scan.micros();
    S.CompileUs = Compile.micros();
    S.LinkUs = Link.micros();
    S.StateIOUs = StateIO.micros();
    S.TotalUs = Total.micros();
    FinishBuild();
    return S;
  }
  Program = std::move(*Linked.Program);
  S.ObjectBytes = ObjectBytes;

  //===--- Verify deps (opt-in): declared graph vs actual accesses --------===//

  if (Options.VerifyDeps) {
    std::map<std::string, std::vector<std::string>> Declared;
    for (const std::string &Path : Graph.topologicalOrder())
      Declared[Path] = Graph.imports(Path);
    std::string PlantErr;
    std::optional<DepVerifyPlant> Plant =
        DepVerifier::loadPlant(FS, Options.OutDir, &PlantErr);
    if (!PlantErr.empty())
      warn(S, FS, "ignoring malformed dependency plant: " + PlantErr);
    DepVerifyReport Rep =
        DepVerifier::verify(FS, Declared, Plant ? &*Plant : nullptr);
    S.DepsTUsChecked = Rep.TUsChecked;
    S.DepsMissing = Rep.NumMissing;
    S.DepsRedundant = Rep.NumRedundant;
    for (const DepFinding &F : Rep.Findings)
      S.DepFindings.push_back(F.reason());
    if (tracing())
      trace()->instant("build", "verifyDeps",
                       "{\"tus\":" + std::to_string(Rep.TUsChecked) +
                           ",\"missing\":" + std::to_string(Rep.NumMissing) +
                           ",\"redundant\":" +
                           std::to_string(Rep.NumRedundant) + "}");
  }

  //===--- Persist: manifest + compiler state -----------------------------===//

  S.StateDBBytes = persist(StateIO, S);

  Total.stop();
  S.Success = true;
  S.ScanUs = Scan.micros();
  S.CompileUs = Compile.micros();
  S.LinkUs = Link.micros();
  S.StateIOUs = StateIO.micros();
  S.TotalUs = Total.micros();
  FinishBuild();
  return S;
}

void BuildDriverImpl::clean() {
  for (const std::string &Path : FS.listFiles())
    if (Path.compare(0, Options.OutDir.size() + 1, Options.OutDir + "/") ==
        0)
      FS.removeFile(Path);
  DB.clear();
  Manifest.clear();
  Objects.clearMemory();
  Scanner.clear();
  Program.reset();
  // Nothing left on disk worth loading.
  PersistentLoaded = true;
}

//===----------------------------------------------------------------------===//
// Public facade
//===----------------------------------------------------------------------===//

BuildDriver::BuildDriver(VirtualFileSystem &FS, BuildOptions Options)
    : Impl(std::make_unique<BuildDriverImpl>(FS, std::move(Options))) {}

BuildDriver::~BuildDriver() = default;

BuildStats BuildDriver::build() { return Impl->build(); }

void BuildDriver::clean() { Impl->clean(); }

const MModule *BuildDriver::program() const { return Impl->program(); }

const BuildStateDB &BuildDriver::stateDB() const { return Impl->stateDB(); }

const BuildOptions &BuildDriver::options() const { return Impl->options(); }
