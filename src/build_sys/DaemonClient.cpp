//===- build_sys/DaemonClient.cpp - Build-daemon client ------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/DaemonClient.h"

using namespace sc;

DaemonClient DaemonClient::connect(const std::string &SocketHostPath) {
  std::string Ignored;
  return DaemonClient(UnixSocket::connectTo(SocketHostPath, &Ignored));
}

int DaemonClient::roundTrip(
    const DaemonRequest &Req,
    const std::function<void(const std::string &)> &OnOut,
    const std::function<void(const std::string &)> &OnErr, DaemonFrame *Exit,
    std::string *Err, unsigned FrameTimeoutMs) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why;
    Sock.close();
    return -1;
  };
  if (!Sock.valid())
    return Fail("not connected");
  if (!Sock.sendFrame(encodeRequest(Req)))
    return Fail("could not send the request (daemon gone?)");
  // Builds can legitimately take a while; the generous per-frame
  // timeout only catches a daemon that died mid-response.
  for (;;) {
    std::string Payload;
    if (!Sock.recvFrame(Payload, FrameTimeoutMs))
      return Fail("connection lost before the exit frame");
    DaemonFrame F;
    if (!decodeFrame(Payload, F))
      return Fail("malformed response frame");
    if (F.Type == "out") {
      if (OnOut)
        OnOut(F.Text);
    } else if (F.Type == "err") {
      if (OnErr)
        OnErr(F.Text);
    } else if (F.Type == "exit") {
      if (Exit)
        *Exit = F;
      Sock.close();
      return F.Code;
    } else {
      return Fail("unknown frame type '" + F.Type + "'");
    }
  }
}
