//===- build_sys/DaemonClient.cpp - Build-daemon client ------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/DaemonClient.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

using namespace sc;

DaemonClient DaemonClient::connect(const std::string &SocketHostPath) {
  std::string Ignored;
  return DaemonClient(UnixSocket::connectTo(SocketHostPath, &Ignored));
}

int DaemonClient::roundTrip(
    const DaemonRequest &Req,
    const std::function<void(const std::string &)> &OnOut,
    const std::function<void(const std::string &)> &OnErr, DaemonFrame *Exit,
    std::string *Err, unsigned FrameTimeoutMs) {
  auto Fail = [&](const std::string &Why) {
    if (Err)
      *Err = Why;
    Sock.close();
    return TransportError;
  };
  if (!Sock.valid())
    return Fail("not connected");
  if (!Sock.sendFrame(encodeRequest(Req)))
    return Fail("could not send the request (daemon gone?)");
  // Builds can legitimately take a while; the generous per-frame
  // timeout only catches a daemon that died mid-response.
  for (;;) {
    std::string Payload;
    if (!Sock.recvFrame(Payload, FrameTimeoutMs))
      return Fail("connection lost before the exit frame");
    DaemonFrame F;
    if (!decodeFrame(Payload, F))
      return Fail("malformed response frame");
    if (F.Type == "out") {
      if (OnOut)
        OnOut(F.Text);
    } else if (F.Type == "err") {
      if (OnErr)
        OnErr(F.Text);
    } else if (F.Type == "busy") {
      // Admission control bounced us; terminal for this connection.
      // The frame carries the daemon's queue depth and suggested
      // retry-after for the caller's backoff logic.
      if (Exit)
        *Exit = F;
      if (Err)
        *Err = "daemon busy (queue depth " + std::to_string(F.QueueDepth) +
               ")";
      Sock.close();
      return BusyRejected;
    } else if (F.Type == "exit") {
      if (Exit)
        *Exit = F;
      Sock.close();
      return F.Code;
    } else {
      return Fail("unknown frame type '" + F.Type + "'");
    }
  }
}

int DaemonClient::requestWithRetry(
    const std::string &SocketHostPath, const DaemonRequest &Req,
    const std::function<void(const std::string &)> &OnOut,
    const std::function<void(const std::string &)> &OnErr,
    const RetryPolicy &Policy, DaemonFrame *Exit, std::string *Err,
    unsigned FrameTimeoutMs) {
  // Doubling backoff with full jitter: each sleep is uniform in
  // [Backoff/2, Backoff], so a thundering herd of rejected clients
  // spreads out instead of re-colliding in lockstep.
  std::mt19937 Rng(Policy.JitterSeed
                       ? Policy.JitterSeed
                       : static_cast<unsigned>(
                             std::chrono::steady_clock::now()
                                 .time_since_epoch()
                                 .count()));
  unsigned Backoff = std::max(Policy.InitialBackoffMs, 1u);
  int Last = TransportError;
  const unsigned Attempts = std::max(Policy.Attempts, 1u);
  for (unsigned Attempt = 0; Attempt != Attempts; ++Attempt) {
    DaemonClient C = connect(SocketHostPath);
    if (!C.connected()) {
      if (Err)
        *Err = "no daemon listening on '" + SocketHostPath + "'";
      // Nothing listens: retrying cannot help unless a daemon is
      // about to (re)appear — transport retries cover a drain window.
      Last = TransportError;
      if (!Policy.RetryTransport)
        return Last;
    } else {
      DaemonFrame F;
      Last = C.roundTrip(Req, OnOut, OnErr, &F, Err, FrameTimeoutMs);
      if (Exit)
        *Exit = F;
      if (Last >= 0)
        return Last;
      if (Last == BusyRejected && !Policy.RetryBusy)
        return Last;
      if (Last == TransportError && !Policy.RetryTransport)
        return Last;
      if (Attempt + 1 != Attempts) {
        // The daemon knows its queue better than our exponential
        // schedule does: when it suggested a retry-after, the larger
        // of the two wins.
        if (Last == BusyRejected && F.RetryAfterMs > Backoff)
          Backoff = F.RetryAfterMs;
      }
    }
    if (Attempt + 1 == Attempts)
      break;
    std::uniform_int_distribution<unsigned> Jitter(Backoff / 2,
                                                   std::max(Backoff, 1u));
    const unsigned SleepMs = Jitter(Rng);
    if (Policy.OnBackoff)
      Policy.OnBackoff(Attempt, SleepMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    Backoff = std::min(Backoff * 2, std::max(Policy.MaxBackoffMs, 1u));
  }
  return Last;
}
