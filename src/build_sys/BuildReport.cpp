//===- build_sys/BuildReport.cpp - Machine-readable build report ---------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/BuildReport.h"

#include "support/Metrics.h"
#include "support/Trace.h" // jsonEscape

#include <cstdio>

using namespace sc;

namespace {

std::string num(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

std::string boolean(bool B) { return B ? "true" : "false"; }

} // namespace

std::string sc::buildReportJson(const BuildStats &S,
                                const MetricsRegistry *Metrics) {
  std::string J = "{\n";
  J += "  \"schema\": \"scbuild-report\",\n";
  J += "  \"schema_version\": " + std::to_string(BuildReportSchemaVersion) +
       ",\n";
  J += "  \"success\": " + boolean(S.Success) + ",\n";
  J += "  \"read_only\": " + boolean(S.ReadOnly) + ",\n";

  J += "  \"files\": {\"compiled\": " + std::to_string(S.FilesCompiled) +
       ", \"total\": " + std::to_string(S.FilesTotal) + "},\n";

  J += "  \"phases_us\": {\"scan\": " + num(S.ScanUs) +
       ", \"compile\": " + num(S.CompileUs) + ", \"link\": " + num(S.LinkUs) +
       ", \"state_io\": " + num(S.StateIOUs) +
       ", \"total\": " + num(S.TotalUs) + "},\n";

  J += "  \"compile_phases_us\": {\"frontend\": " +
       num(S.CompilePhases.FrontendUs) +
       ", \"middle\": " + num(S.CompilePhases.MiddleUs) +
       ", \"backend\": " + num(S.CompilePhases.BackendUs) +
       ", \"state\": " + num(S.CompilePhases.StateUs) + "},\n";

  J += "  \"passes\": {\"run\": " + std::to_string(S.Skip.PassesRun) +
       ", \"skipped\": " + std::to_string(S.Skip.PassesSkipped) +
       ", \"functions_matched\": " + std::to_string(S.Skip.FunctionsMatched) +
       ", \"functions_refreshed\": " +
       std::to_string(S.Skip.FunctionsRefreshed) +
       ", \"functions_reused\": " + std::to_string(S.Skip.FunctionsReused) +
       "},\n";

  J += "  \"state\": {\"db_bytes\": " + std::to_string(S.StateDBBytes) +
       ", \"tus_salvaged\": " + std::to_string(S.StateTUsSalvaged) +
       ", \"tus_dropped\": " + std::to_string(S.StateTUsDropped) + "},\n";

  J += "  \"object_bytes\": " + std::to_string(S.ObjectBytes) + ",\n";

  J += "  \"remote\": {\"hits\": " + std::to_string(S.RemoteHits) +
       ", \"misses\": " + std::to_string(S.RemoteMisses) +
       ", \"puts\": " + std::to_string(S.RemotePuts) +
       ", \"errors\": " + std::to_string(S.RemoteErrors) + "},\n";

  // Dependency-verifier section (scbuild --verify-deps). Additive —
  // "checked" distinguishes "verifier ran and found nothing" from
  // "verifier never ran", so zero counts stay unambiguous.
  J += "  \"deps\": {\"checked\": " +
       boolean(S.DepsTUsChecked != 0 || !S.DepFindings.empty()) +
       ", \"tus_checked\": " + std::to_string(S.DepsTUsChecked) +
       ", \"missing\": " + std::to_string(S.DepsMissing) +
       ", \"redundant\": " + std::to_string(S.DepsRedundant) +
       ", \"findings\": [";
  for (size_t I = 0; I != S.DepFindings.size(); ++I)
    J += (I ? ", " : "") + ("\"" + jsonEscape(S.DepFindings[I]) + "\"");
  J += "]},\n";

  J += "  \"trace\": {\"events_dropped\": " +
       std::to_string(S.TraceEventsDropped) + "},\n";

  J += "  \"history\": {\"build_id\": " + std::to_string(S.BuildId) +
       ", \"records_skipped\": " + std::to_string(S.HistoryRecordsSkipped) +
       "},\n";

  J += "  \"warnings\": [";
  for (size_t I = 0; I != S.Warnings.size(); ++I)
    J += (I ? ", " : "") + ("\"" + jsonEscape(S.Warnings[I]) + "\"");
  J += "],\n";

  if (!S.ErrorText.empty())
    J += "  \"error\": \"" + jsonEscape(S.ErrorText) + "\",\n";

  J += "  \"metrics\": ";
  J += Metrics ? Metrics->toJson() : "{\"counters\":{},\"gauges\":{}}";
  J += "\n}\n";
  return J;
}
