//===- build_sys/Scheduler.cpp - Parallel compile scheduler --------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Scheduler.h"

#include "state/BuildStateDB.h"
#include "support/Metrics.h"
#include "support/TaskPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <exception>

using namespace sc;

std::vector<CompileResult>
sc::compileInParallel(const std::vector<CompileJob> &Jobs,
                      const CompilerOptions &Options, BuildStateDB *DB,
                      TaskPool &Pool) {
  std::vector<CompileResult> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  // Batched state write-back: workers return each TU's new state in
  // its CompileResult instead of locking a DB shard mid-wave; the
  // batch is applied once per shard after the wave quiesces. Previous
  // state LOOKUPS all happen at compile start, before any batch write,
  // so lookup()/applyBatch() never interleave on the same key.
  CompilerOptions WaveOptions = Options;
  if (DB)
    WaveOptions.DeferStateWrite = true;

  // Queue-wait accounting: how long after wave dispatch each TU job
  // actually started, i.e. how backed up the pool was. The max gauge
  // is the wave's worst-case scheduling delay.
  const uint64_t WaveStartNs = nowNanos();
  const bool Tracing = Options.Trace && Options.Trace->enabled();

  // Each participating thread lazily builds a private Compiler (the
  // pipeline and its analyses are per-instance state) and writes into
  // pre-sized, disjoint result slots — no slot or TU key is ever
  // shared, so results are identical for any work-stealing schedule.
  //
  // Fault containment: one TU blowing up (an internal error escaping
  // as an exception) must not take down the wave — it becomes a failed
  // result for that TU alone, and every independent TU still finishes.
  // Only std::exception is contained; FaultyFileSystem's CrashPoint
  // (simulated process death) deliberately is not.
  std::vector<std::unique_ptr<Compiler>> PerSlot(Pool.maxSlots());
  Pool.parallelFor(Jobs.size(), [&](size_t I, unsigned Slot) {
    if (!PerSlot[Slot]) {
      PerSlot[Slot] = std::make_unique<Compiler>(WaveOptions, DB);
      // Once per slot, not per job: naming takes the recorder mutex,
      // which must stay off the per-TU hot path.
      if (Tracing)
        Options.Trace->setThreadName("worker-" + std::to_string(Slot));
    }
    if (Options.Metrics) {
      Options.Metrics->counter("scheduler.jobs_dispatched").add(1);
      Options.Metrics->gauge("scheduler.queue_wait_max_us")
          .max(static_cast<double>(nowNanos() - WaveStartNs) / 1000.0);
    }
    try {
      Results[I] = PerSlot[Slot]->compile(Jobs[I].Path, *Jobs[I].Source,
                                          Jobs[I].Imports);
    } catch (const std::exception &E) {
      Results[I] = CompileResult();
      Results[I].Success = false;
      Results[I].DiagText = "error: " + Jobs[I].Path +
                            ": internal compiler error: " + E.what() + "\n";
    }
  });

  if (DB) {
    std::vector<std::pair<std::string, TUState>> Batch;
    Batch.reserve(Jobs.size());
    for (size_t I = 0; I != Jobs.size(); ++I)
      if (Results[I].HasNewState) {
        Batch.emplace_back(Jobs[I].Path, std::move(Results[I].NewState));
        Results[I].HasNewState = false;
      }
    if (!Batch.empty()) {
      const uint64_t BatchT0 = nowNanos();
      const size_t BatchSize = Batch.size();
      DB->applyBatch(std::move(Batch));
      if (Options.Metrics)
        Options.Metrics->counter("scheduler.state_batched_writes")
            .add(BatchSize);
      if (Tracing)
        Options.Trace->span("build", "state-batch", BatchT0, nowNanos());
    }
  }
  return Results;
}

std::vector<CompileResult>
sc::compileInParallel(const std::vector<CompileJob> &Jobs,
                      const CompilerOptions &Options, BuildStateDB *DB,
                      unsigned NumThreads) {
  TaskPool Pool(NumThreads);
  return compileInParallel(Jobs, Options, DB, Pool);
}
