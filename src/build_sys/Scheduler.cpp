//===- build_sys/Scheduler.cpp - Parallel compile scheduler --------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Scheduler.h"

#include "state/BuildStateDB.h"
#include "support/TaskPool.h"

#include <exception>

using namespace sc;

std::vector<CompileResult>
sc::compileInParallel(const std::vector<CompileJob> &Jobs,
                      const CompilerOptions &Options, BuildStateDB *DB,
                      TaskPool &Pool) {
  std::vector<CompileResult> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  // Each participating thread lazily builds a private Compiler (the
  // pipeline and its analyses are per-instance state) and writes into
  // pre-sized, disjoint result slots — no slot or TU key is ever
  // shared, so results are identical for any work-stealing schedule.
  //
  // Fault containment: one TU blowing up (an internal error escaping
  // as an exception) must not take down the wave — it becomes a failed
  // result for that TU alone, and every independent TU still finishes.
  // Only std::exception is contained; FaultyFileSystem's CrashPoint
  // (simulated process death) deliberately is not.
  std::vector<std::unique_ptr<Compiler>> PerSlot(Pool.maxSlots());
  Pool.parallelFor(Jobs.size(), [&](size_t I, unsigned Slot) {
    if (!PerSlot[Slot])
      PerSlot[Slot] = std::make_unique<Compiler>(Options, DB);
    try {
      Results[I] = PerSlot[Slot]->compile(Jobs[I].Path, *Jobs[I].Source,
                                          Jobs[I].Imports);
    } catch (const std::exception &E) {
      Results[I] = CompileResult();
      Results[I].Success = false;
      Results[I].DiagText = "error: " + Jobs[I].Path +
                            ": internal compiler error: " + E.what() + "\n";
    }
  });
  return Results;
}

std::vector<CompileResult>
sc::compileInParallel(const std::vector<CompileJob> &Jobs,
                      const CompilerOptions &Options, BuildStateDB *DB,
                      unsigned NumThreads) {
  TaskPool Pool(NumThreads);
  return compileInParallel(Jobs, Options, DB, Pool);
}
