//===- build_sys/Scheduler.cpp - Parallel compile scheduler --------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Scheduler.h"

#include "state/BuildStateDB.h"

#include <atomic>
#include <thread>

using namespace sc;

std::vector<CompileResult>
sc::compileInParallel(const std::vector<CompileJob> &Jobs,
                      const CompilerOptions &Options, BuildStateDB *DB,
                      unsigned NumThreads) {
  std::vector<CompileResult> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  if (NumThreads <= 1 || Jobs.size() == 1) {
    Compiler C(Options, DB);
    for (size_t I = 0; I != Jobs.size(); ++I)
      Results[I] = C.compile(Jobs[I].Path, *Jobs[I].Source, Jobs[I].Imports);
    return Results;
  }

  // Deterministic work queue: workers claim the next job index from an
  // atomic counter and write into a pre-sized slot. No two workers
  // ever share a slot or a TU key, and each owns a private Compiler
  // (the pipeline and its analyses are per-instance state).
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    Compiler C(Options, DB);
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Jobs.size())
        return;
      Results[I] = C.compile(Jobs[I].Path, *Jobs[I].Source, Jobs[I].Imports);
    }
  };

  unsigned N = std::min<size_t>(NumThreads, Jobs.size());
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (unsigned T = 0; T != N; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
  return Results;
}
