//===- build_sys/Manifest.h - Persistent build manifest ---------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the previous build knew about every translation unit: the
/// content hash it compiled, the combined effective interface hash of
/// its imports, and the hash of the object file it produced. The next
/// build's dirty set is exactly the disagreement between the manifest
/// and the current project.
///
/// The on-disk form is versioned, magic-tagged, and checksummed; a
/// missing or damaged manifest degrades to a full recompile, never to
/// stale artifacts being trusted.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_MANIFEST_H
#define SC_BUILD_SYS_MANIFEST_H

#include "support/FileSystem.h"

#include <cstdint>
#include <map>
#include <string>

namespace sc {

/// Per-TU facts recorded after a successful compilation.
struct ManifestEntry {
  uint64_t ContentHash = 0;
  uint64_t ImportsEffectiveHash = 0;
  uint64_t ObjectHash = 0; // Hash of the serialized object bytes.
  uint64_t ConfigHash = 0; // Compiler config (opt level, version).
};

class BuildManifest {
public:
  /// Returns the entry for \p Path, or null when unknown.
  const ManifestEntry *lookup(const std::string &Path) const;

  void update(const std::string &Path, const ManifestEntry &Entry);
  void remove(const std::string &Path);
  void clear();

  const std::map<std::string, ManifestEntry> &entries() const {
    return Entries;
  }

  std::string serialize() const;

  /// Replaces the contents from serialized bytes; false (leaving the
  /// manifest unchanged) on malformed input.
  bool deserialize(const std::string &Bytes);

  /// Crash-safe: stages through atomicWriteFile.
  bool saveToFile(VirtualFileSystem &FS, const std::string &Path) const;
  bool loadFromFile(VirtualFileSystem &FS, const std::string &Path);

private:
  std::map<std::string, ManifestEntry> Entries;
};

} // namespace sc

#endif // SC_BUILD_SYS_MANIFEST_H
