//===- build_sys/ImportGraph.h - Import DAG + dirty propagation -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's import graph: validates that imports resolve and form
/// a DAG, produces a deterministic topological compile order, and
/// computes the *effective interface hash* of every file — the value
/// that makes dirty propagation both precise and transitive.
///
/// effective(F) = H(interfaceHash(F), effective(D) for each import D)
///
/// A body-only edit changes a file's content hash but not its
/// effective hash, so importers stay clean. An interface edit changes
/// the effective hash, which ripples to every transitive importer —
/// conservative for indirect importers (MiniC imports do not
/// re-export), but always sound.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_IMPORTGRAPH_H
#define SC_BUILD_SYS_IMPORTGRAPH_H

#include "build_sys/DependencyScanner.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sc {

class ImportGraph {
public:
  /// Builds the graph over \p Scans (path -> scan result, one entry
  /// per source file). Import cycles invalidate the whole graph (check
  /// valid()); an unresolved import, by contrast, is a per-TU problem
  /// — the edge is recorded under missingImports(Path) and the rest of
  /// the project still gets a usable graph, so deleting one imported
  /// file degrades to per-importer diagnostics instead of wedging
  /// every TU.
  static ImportGraph build(const std::map<std::string, const ScanResult *> &Scans);

  bool valid() const { return ErrorText.empty(); }

  /// Human-readable description of the first import cycle found
  /// (empty when valid).
  const std::string &error() const { return ErrorText; }

  /// Imports of \p Path that do not resolve to any project source
  /// file, in declaration order (empty for a healthy TU).
  const std::vector<std::string> &missingImports(const std::string &Path) const;

  /// True when any file has an unresolved import.
  bool anyMissingImports() const { return HasMissing; }

  /// Every file, dependencies before dependents; ties broken
  /// lexicographically so the order is reproducible.
  const std::vector<std::string> &topologicalOrder() const { return Topo; }

  /// Direct imports of \p Path, in declaration order.
  const std::vector<std::string> &imports(const std::string &Path) const;

  /// The file's own interface hash folded with every transitive
  /// dependency's (see file comment).
  uint64_t effectiveInterfaceHash(const std::string &Path) const;

  /// Combined effective hashes of \p Path's direct imports — the value
  /// the manifest records to decide import-driven recompilation.
  uint64_t importsEffectiveHash(const std::string &Path) const;

private:
  struct Node {
    std::vector<std::string> Imports; // resolved edges only
    std::vector<std::string> Missing; // declared but unresolvable
    uint64_t Effective = 0;
    uint64_t ImportsEffective = 0;
  };

  std::map<std::string, Node> Nodes;
  std::vector<std::string> Topo;
  std::string ErrorText;
  bool HasMissing = false;
};

} // namespace sc

#endif // SC_BUILD_SYS_IMPORTGRAPH_H
