//===- build_sys/ImportGraph.h - Import DAG + dirty propagation -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's import graph: validates that imports resolve and form
/// a DAG, produces a deterministic topological compile order, and
/// computes the *effective interface hash* of every file — the value
/// that makes dirty propagation both precise and transitive.
///
/// effective(F) = H(interfaceHash(F), effective(D) for each import D)
///
/// A body-only edit changes a file's content hash but not its
/// effective hash, so importers stay clean. An interface edit changes
/// the effective hash, which ripples to every transitive importer —
/// conservative for indirect importers (MiniC imports do not
/// re-export), but always sound.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_IMPORTGRAPH_H
#define SC_BUILD_SYS_IMPORTGRAPH_H

#include "build_sys/DependencyScanner.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sc {

class ImportGraph {
public:
  /// Builds the graph over \p Scans (path -> scan result, one entry
  /// per source file). Detects unresolved imports and import cycles;
  /// check valid() before using the accessors.
  static ImportGraph build(const std::map<std::string, const ScanResult *> &Scans);

  bool valid() const { return ErrorText.empty(); }

  /// Human-readable description of the first unresolved import or
  /// cycle found (empty when valid).
  const std::string &error() const { return ErrorText; }

  /// Every file, dependencies before dependents; ties broken
  /// lexicographically so the order is reproducible.
  const std::vector<std::string> &topologicalOrder() const { return Topo; }

  /// Direct imports of \p Path, in declaration order.
  const std::vector<std::string> &imports(const std::string &Path) const;

  /// The file's own interface hash folded with every transitive
  /// dependency's (see file comment).
  uint64_t effectiveInterfaceHash(const std::string &Path) const;

  /// Combined effective hashes of \p Path's direct imports — the value
  /// the manifest records to decide import-driven recompilation.
  uint64_t importsEffectiveHash(const std::string &Path) const;

private:
  struct Node {
    std::vector<std::string> Imports;
    uint64_t Effective = 0;
    uint64_t ImportsEffective = 0;
  };

  std::map<std::string, Node> Nodes;
  std::vector<std::string> Topo;
  std::string ErrorText;
};

} // namespace sc

#endif // SC_BUILD_SYS_IMPORTGRAPH_H
