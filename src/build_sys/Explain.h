//===- build_sys/Explain.h - Dormancy decision log + explain ----*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistence and replay of the per-(function, pass) decision audit
/// trail. A stateful build run with CompilerOptions::RecordDecisions
/// writes `<OutDir>/decisions.bin` — the packed TUDecisionLog of every
/// TU it recompiled — and `scbuild --explain TU[:pass]` replays it to
/// print *why* each pass ran or slept in that build.
///
/// The log has last-build semantics: it is overwritten wholesale by
/// each recording build, so it describes exactly the most recent
/// build's decisions. A TU absent from the log was simply not
/// recompiled by that build (it was up to date).
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_EXPLAIN_H
#define SC_BUILD_SYS_EXPLAIN_H

#include "state/StatefulPolicy.h"
#include "support/FileSystem.h"

#include <string>
#include <utility>
#include <vector>

namespace sc {

/// Serializes per-TU decision logs (versioned, checksummed; pass names
/// are stored once — every TU of one build shares a pipeline).
std::string
serializeDecisions(const std::vector<std::pair<std::string, TUDecisionLog>> &TUs);

/// Inverse of serializeDecisions. Returns false (leaving \p Out
/// untouched) on any framing, version, or checksum mismatch.
bool deserializeDecisions(
    const std::string &Bytes,
    std::vector<std::pair<std::string, TUDecisionLog>> &Out);

/// Renders a human-readable answer to `--explain Query` where Query is
/// `TU` or `TU:pass`, reading `<OutDir>/decisions.bin` from \p FS.
/// Always returns printable text; \p OK (when non-null) reports
/// whether the query resolved (log present and TU found or legitimately
/// up to date).
std::string explainQuery(VirtualFileSystem &FS, const std::string &OutDir,
                         const std::string &Query, bool *OK = nullptr);

} // namespace sc

#endif // SC_BUILD_SYS_EXPLAIN_H
