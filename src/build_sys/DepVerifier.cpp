//===- build_sys/DepVerifier.cpp - Build-dependency error detection -------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/DepVerifier.h"

#include "driver/Compiler.h"
#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "lang/Parser.h"
#include "support/Casting.h"
#include "support/TracingFileSystem.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace sc;

std::string DepFinding::reason() const {
  if (K == Kind::Missing)
    return "dep-missing: " + TU + " reads '" + Path + "' (calls '" + Via +
           "') but the import graph does not track it";
  return "dep-redundant: " + TU + " imports '" + Path +
         "' but never reads it";
}

namespace {

/// Collects every callee name in an expression/statement subtree.
void collectCalls(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::BoolLiteral:
  case Expr::Kind::VarRef:
    return;
  case Expr::Kind::Unary:
    collectCalls(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectCalls(B->lhs(), Out);
    collectCalls(B->rhs(), Out);
    return;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    Out.insert(C->callee());
    for (const ExprPtr &A : C->args())
      collectCalls(A.get(), Out);
    return;
  }
  case Expr::Kind::Index:
    collectCalls(cast<IndexExpr>(E)->index(), Out);
    return;
  }
}

void collectCalls(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S)->statements())
      collectCalls(Sub.get(), Out);
    return;
  case Stmt::Kind::VarDecl:
    collectCalls(cast<VarDeclStmt>(S)->init(), Out);
    return;
  case Stmt::Kind::ArrayDecl:
    return;
  case Stmt::Kind::Assign:
    collectCalls(cast<AssignStmt>(S)->value(), Out);
    return;
  case Stmt::Kind::IndexAssign: {
    const auto *IA = cast<IndexAssignStmt>(S);
    collectCalls(IA->index(), Out);
    collectCalls(IA->value(), Out);
    return;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    collectCalls(I->cond(), Out);
    collectCalls(I->thenBranch(), Out);
    collectCalls(I->elseBranch(), Out);
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    collectCalls(W->cond(), Out);
    collectCalls(W->body(), Out);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    collectCalls(F->init(), Out);
    collectCalls(F->cond(), Out);
    collectCalls(F->step(), Out);
    collectCalls(F->body(), Out);
    return;
  }
  case Stmt::Kind::Return:
    collectCalls(cast<ReturnStmt>(S)->value(), Out);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  case Stmt::Kind::Expr:
    collectCalls(cast<ExprStmt>(S)->expr(), Out);
    return;
  }
}

/// Names a file exports, via the same light scan the build system's
/// dependency scanner uses. Memoized per verify() call — the exporter
/// sets do not depend on which TU is asking.
const std::set<std::string> &
exportedNames(TracingFileSystem &FS, const std::string &Path,
              std::map<std::string, std::set<std::string>> &Cache) {
  auto It = Cache.find(Path);
  if (It != Cache.end())
    return It->second;
  std::set<std::string> Names;
  if (auto Content = FS.readFile(Path))
    if (auto Scanned = Compiler::scanInterface(*Content))
      for (const FunctionSignature &Sig : Scanned->first)
        Names.insert(Sig.Name);
  return Cache.emplace(Path, std::move(Names)).first->second;
}

} // namespace

DepVerifyReport DepVerifier::verify(
    VirtualFileSystem &FS,
    const std::map<std::string, std::vector<std::string>> &Declared,
    const DepVerifyPlant *Plant) {
  DepVerifyReport R;
  TracingFileSystem Tracer(FS);
  std::map<std::string, std::set<std::string>> ExportCache;

  auto Planted = [&](const std::vector<std::pair<std::string, std::string>>
                         &Edges,
                     const std::string &TU, const std::string &Dep) {
    for (const auto &[PTU, PDep] : Edges)
      if (PTU == TU && PDep == Dep)
        return true;
    return false;
  };

  for (const auto &[TU, TrackedDeps] : Declared) {
    Tracer.setScope(TU);
    std::optional<std::string> Content = Tracer.readFile(TU);
    if (!Content)
      continue; // Vanished mid-check; nothing to verify.

    DiagnosticEngine Diags;
    Parser P(*Content, Diags);
    std::unique_ptr<ModuleAST> AST = P.parseModule();
    if (Diags.hasErrors())
      continue; // Unparseable TUs are the compiler's problem, not ours.
    ++R.TUsChecked;

    // What the TU defines itself, and every name it calls.
    std::set<std::string> Local, Called;
    for (const auto &F : AST->Functions) {
      Local.insert(F->name());
      collectCalls(F->body(), Called);
    }
    std::set<std::string> External;
    for (const std::string &Name : Called)
      if (!Local.count(Name) && Name != "print")
        External.insert(Name);

    // The declared edge set this TU will be judged against: the
    // tracked graph edges, minus planted drops, plus planted adds.
    std::vector<std::string> Edges;
    for (const std::string &Dep : TrackedDeps)
      if (!Plant || !Planted(Plant->DropEdges, TU, Dep))
        Edges.push_back(Dep);
    if (Plant)
      for (const auto &[PTU, PDep] : Plant->AddEdges)
        if (PTU == TU &&
            std::find(Edges.begin(), Edges.end(), PDep) == Edges.end())
          Edges.push_back(PDep);

    // Resolve each external call through the declared edges, reading
    // every candidate through the tracer — these reads ARE the actual
    // accesses the declared graph is supposed to predict.
    std::set<std::string> UsedEdges;
    std::set<std::string> Unresolved = External;
    for (const std::string &Dep : Edges) {
      const std::set<std::string> &Exports =
          exportedNames(Tracer, Dep, ExportCache);
      bool Used = false;
      for (auto It = Unresolved.begin(); It != Unresolved.end();) {
        if (Exports.count(*It)) {
          Used = true;
          It = Unresolved.erase(It);
        } else {
          ++It;
        }
      }
      if (Used)
        UsedEdges.insert(Dep);
    }

    // Still-unresolved calls: the TU needs a file no declared edge
    // covers. Find its definer among the project's sources so the
    // finding can name the untracked path.
    std::set<std::string> MissingPaths;
    for (const std::string &Sym : Unresolved) {
      for (const auto &[Candidate, Ignored] : Declared) {
        if (Candidate == TU)
          continue;
        if (exportedNames(Tracer, Candidate, ExportCache).count(Sym)) {
          if (MissingPaths.insert(Candidate).second) {
            DepFinding F;
            F.K = DepFinding::Kind::Missing;
            F.TU = TU;
            F.Path = Candidate;
            F.Via = Sym;
            R.Findings.push_back(std::move(F));
          }
          break;
        }
      }
    }

    // Declared edges that resolved nothing the TU calls: tracked, but
    // never actually needed.
    for (const std::string &Dep : Edges) {
      if (!UsedEdges.count(Dep)) {
        DepFinding F;
        F.K = DepFinding::Kind::Redundant;
        F.TU = TU;
        F.Path = Dep;
        R.Findings.push_back(std::move(F));
      }
    }
  }

  for (const DepFinding &F : R.Findings) {
    if (F.K == DepFinding::Kind::Missing)
      ++R.NumMissing;
    else
      ++R.NumRedundant;
  }
  std::sort(R.Findings.begin(), R.Findings.end(),
            [](const DepFinding &A, const DepFinding &B) {
              return A.reason() < B.reason();
            });
  R.FilesTraced = static_cast<unsigned>(Tracer.distinctPathsTraced());
  return R;
}

std::string DepVerifier::plantPath(const std::string &OutDir) {
  return OutDir + "/verify.plant";
}

std::optional<DepVerifyPlant>
DepVerifier::loadPlant(VirtualFileSystem &FS, const std::string &OutDir,
                       std::string *Error) {
  std::optional<std::string> Content = FS.readFile(plantPath(OutDir));
  if (!Content)
    return std::nullopt;
  DepVerifyPlant Plant;
  std::istringstream In(*Content);
  std::string Line;
  bool First = true;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Fields(Line);
    if (First) {
      std::string Magic, Version;
      Fields >> Magic >> Version;
      if (Magic != "scverify-plant" || Version != "v1") {
        if (Error)
          *Error = plantPath(OutDir) + ": not an scverify-plant v1 file";
        return DepVerifyPlant{};
      }
      First = false;
      continue;
    }
    std::string Verb, TU, Dep, Extra;
    Fields >> Verb >> TU >> Dep;
    if (TU.empty() || Dep.empty() || (Fields >> Extra) ||
        (Verb != "drop" && Verb != "add")) {
      if (Error)
        *Error = plantPath(OutDir) + ":" + std::to_string(LineNo) +
                 ": expected 'drop|add <tu> <path>'";
      return DepVerifyPlant{};
    }
    auto &Edges = Verb == "drop" ? Plant.DropEdges : Plant.AddEdges;
    Edges.emplace_back(TU, Dep);
  }
  if (First) {
    if (Error)
      *Error = plantPath(OutDir) + ": missing scverify-plant header";
    return DepVerifyPlant{};
  }
  return Plant;
}

bool DepVerifier::savePlant(VirtualFileSystem &FS, const std::string &OutDir,
                            const DepVerifyPlant &Plant) {
  if (Plant.empty())
    return FS.removeFile(plantPath(OutDir)), true;
  std::string Out = "scverify-plant v1\n";
  for (const auto &[TU, Dep] : Plant.DropEdges)
    Out += "drop " + TU + " " + Dep + "\n";
  for (const auto &[TU, Dep] : Plant.AddEdges)
    Out += "add " + TU + " " + Dep + "\n";
  return FS.writeFile(plantPath(OutDir), Out);
}
