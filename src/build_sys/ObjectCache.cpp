//===- build_sys/ObjectCache.cpp - Object store + parsed cache -----------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/ObjectCache.h"

#include "support/Hashing.h"

using namespace sc;

ObjectCache::ObjectCache(VirtualFileSystem &FS, std::string OutDir)
    : FS(FS), OutDir(std::move(OutDir)) {}

std::string ObjectCache::objectPath(const std::string &SourcePath) const {
  return OutDir + "/" + SourcePath + ".o";
}

uint64_t ObjectCache::store(const std::string &SourcePath, MModule Object) {
  std::string Bytes = writeObject(Object);
  uint64_t Hash = hashString(Bytes);
  // The FS write stays under the lock: workers store distinct paths,
  // but VirtualFileSystem implementations share one path map.
  std::lock_guard<std::mutex> Lock(Mu);
  FS.writeFile(objectPath(SourcePath), Bytes);
  Mem[SourcePath] = {Hash, Bytes.size(), std::move(Object)};
  return Hash;
}

const MModule *ObjectCache::load(const std::string &SourcePath,
                                 uint64_t ExpectedHash) {
  std::optional<std::string> Bytes = FS.readFile(objectPath(SourcePath));
  if (!Bytes || hashString(*Bytes) != ExpectedHash)
    return nullptr;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(SourcePath);
  if (It != Mem.end() && It->second.Hash == ExpectedHash)
    return &It->second.Object;
  std::optional<MModule> Parsed = readObject(*Bytes);
  if (!Parsed)
    return nullptr; // Bytes matched the manifest but do not decode.
  Cached &C = Mem[SourcePath];
  C = {ExpectedHash, Bytes->size(), std::move(*Parsed)};
  return &C.Object;
}

uint64_t ObjectCache::objectBytes(const std::string &SourcePath) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(SourcePath);
  return It == Mem.end() ? 0 : It->second.Bytes;
}

void ObjectCache::invalidate(const std::string &SourcePath) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Mem.erase(SourcePath);
  }
  FS.removeFile(objectPath(SourcePath));
}

void ObjectCache::clearMemory() {
  std::lock_guard<std::mutex> Lock(Mu);
  Mem.clear();
}
