//===- build_sys/ObjectCache.cpp - Object store + parsed cache -----------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/ObjectCache.h"

#include "support/AtomicFile.h"
#include "support/Hashing.h"

using namespace sc;

ObjectCache::ObjectCache(VirtualFileSystem &FS, std::string OutDir)
    : FS(FS), OutDir(std::move(OutDir)) {}

std::string ObjectCache::objectPath(const std::string &SourcePath) const {
  return OutDir + "/" + SourcePath + ".o";
}

uint64_t ObjectCache::store(const std::string &SourcePath, MModule Object,
                            std::string *BytesOut) {
  std::string Bytes = writeObject(Object);
  uint64_t Hash = hashString(Bytes);
  // The FS write stays under the lock: workers store distinct paths,
  // but VirtualFileSystem implementations share one path map. A failed
  // (or read-only-suppressed) write degrades to a memory-only entry:
  // this build links from memory; the next process recompiles the TU.
  std::lock_guard<std::mutex> Lock(Mu);
  bool OnDisk = Writable && atomicWriteFile(FS, objectPath(SourcePath), Bytes);
  if (Writable && !OnDisk)
    StoresPersisted = false;
  Mem[SourcePath] = {Hash, Bytes.size(), !OnDisk, std::move(Object)};
  if (BytesOut)
    *BytesOut = std::move(Bytes);
  return Hash;
}

bool ObjectCache::storeFetched(const std::string &SourcePath,
                               std::string Bytes, uint64_t ExpectedDigest) {
  if (hashString(Bytes) != ExpectedDigest)
    return false;
  std::optional<MModule> Parsed = readObject(Bytes);
  if (!Parsed)
    return false;
  // Same persistence contract as store(): a failed write keeps the
  // entry memory-only and this TU recompiles next process. No
  // Deserializations bump — see the header.
  std::lock_guard<std::mutex> Lock(Mu);
  bool OnDisk = Writable && atomicWriteFile(FS, objectPath(SourcePath), Bytes);
  if (Writable && !OnDisk)
    StoresPersisted = false;
  Mem[SourcePath] = {ExpectedDigest, Bytes.size(), !OnDisk,
                     std::move(*Parsed)};
  return true;
}

bool ObjectCache::serializedBytes(const std::string &SourcePath,
                                  uint64_t ExpectedHash, std::string &Out) {
  if (std::optional<std::string> Bytes = FS.readFile(objectPath(SourcePath));
      Bytes && hashString(*Bytes) == ExpectedHash) {
    Out = std::move(*Bytes);
    return true;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(SourcePath);
  if (It == Mem.end() || It->second.Hash != ExpectedHash)
    return false;
  Out = writeObject(It->second.Object);
  return hashString(Out) == ExpectedHash;
}

const MModule *ObjectCache::load(const std::string &SourcePath,
                                 uint64_t ExpectedHash) {
  {
    // Memory-only entries have no on-disk bytes to validate; trust the
    // hash recorded at store time.
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Mem.find(SourcePath);
    if (It != Mem.end() && It->second.MemOnly &&
        It->second.Hash == ExpectedHash)
      return &It->second.Object;
  }
  std::optional<std::string> Bytes = FS.readFile(objectPath(SourcePath));
  if (!Bytes) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++NotFoundLoads;
    return nullptr;
  }
  if (hashString(*Bytes) != ExpectedHash) {
    // Distinct from absence: the file exists but is not the object
    // the manifest recorded — vandalism, torn write, or a foreign
    // build. Callers recompile either way, but the stats (and the
    // remote tier) care which it was.
    std::lock_guard<std::mutex> Lock(Mu);
    ++CorruptLoads;
    return nullptr;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(SourcePath);
  if (It != Mem.end() && It->second.Hash == ExpectedHash)
    return &It->second.Object;
  std::optional<MModule> Parsed = readObject(*Bytes);
  ++Deserializations;
  if (!Parsed) {
    ++CorruptLoads;
    return nullptr; // Bytes matched the manifest but do not decode.
  }
  Cached &C = Mem[SourcePath];
  C = {ExpectedHash, Bytes->size(), false, std::move(*Parsed)};
  return &C.Object;
}

bool ObjectCache::allStoresPersisted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return StoresPersisted;
}

void ObjectCache::resetStoreStatus() {
  std::lock_guard<std::mutex> Lock(Mu);
  StoresPersisted = true;
}

uint64_t ObjectCache::deserializations() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Deserializations;
}

uint64_t ObjectCache::loadsNotFound() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NotFoundLoads;
}

uint64_t ObjectCache::loadsCorrupt() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return CorruptLoads;
}

uint64_t ObjectCache::objectBytes(const std::string &SourcePath) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Mem.find(SourcePath);
  return It == Mem.end() ? 0 : It->second.Bytes;
}

void ObjectCache::invalidate(const std::string &SourcePath) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Mem.erase(SourcePath);
  }
  if (Writable)
    FS.removeFile(objectPath(SourcePath));
}

void ObjectCache::clearMemory() {
  std::lock_guard<std::mutex> Lock(Mu);
  Mem.clear();
}
