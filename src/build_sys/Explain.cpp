//===- build_sys/Explain.cpp - Dormancy decision log + explain -----------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Explain.h"

#include "support/Hashing.h"
#include "support/Serializer.h"

#include <algorithm>

using namespace sc;

namespace {

constexpr uint32_t DecisionsMagic = 0x4c444353; // "SCDL"
constexpr uint32_t DecisionsVersion = 1;

void writeCodes(BinaryWriter &W, const std::vector<uint8_t> &Codes) {
  W.writeVarU64(Codes.size());
  if (!Codes.empty())
    W.writeBytes(Codes.data(), Codes.size());
}

std::vector<uint8_t> readCodes(BinaryReader &R) {
  uint64_t N = R.readVarU64();
  std::vector<uint8_t> Codes;
  Codes.reserve(N);
  for (uint64_t I = 0; I != N && !R.failed(); ++I)
    Codes.push_back(R.readU8());
  return Codes;
}

/// Human phrase for a packed decision code.
std::string describeCode(uint8_t Code) {
  const bool Changed = Code & TUDecisionLog::ChangedBit;
  const uint8_t Raw = Code & ~TUDecisionLog::ChangedBit;
  if (Raw == TUDecisionLog::NoDecision)
    return "(no decision recorded)";
  std::string Text;
  switch (static_cast<PassDecision>(Raw)) {
  case PassDecision::RanAlways:
    Text = "ran — no skip policy applied";
    break;
  case PassDecision::RanColdState:
    Text = "ran — no previous build state (cold)";
    break;
  case PassDecision::RanSignatureChange:
    Text = "ran — pipeline/config signature changed, state discarded";
    break;
  case PassDecision::RanNewFunction:
    Text = "ran — new function, no previous record";
    break;
  case PassDecision::RanStaleRecord:
    Text = "ran — previous record is stale (pipeline changed shape)";
    break;
  case PassDecision::RanFingerprint:
    Text = "ran — function body changed (fingerprint mismatch)";
    break;
  case PassDecision::RanRefresh:
    Text = "ran — forced dormancy refresh (record aged out)";
    break;
  case PassDecision::RanActive:
    Text = "ran — pass was active for this function last build";
    break;
  case PassDecision::SkippedDormant:
    Text = "skipped — pass was dormant for this function last build";
    break;
  case PassDecision::SkippedReused:
    Text = "skipped — whole function reused from the code cache";
    break;
  default:
    Text = "(unrecognized decision code)";
    break;
  }
  if (Changed)
    Text += "; it changed the IR";
  return Text;
}

} // namespace

std::string sc::serializeDecisions(
    const std::vector<std::pair<std::string, TUDecisionLog>> &TUs) {
  BinaryWriter W;
  W.writeU32(DecisionsMagic);
  W.writeU32(DecisionsVersion);

  // Pass-name table: every TU of one build ran the same pipeline, so
  // store the first non-empty table once.
  const std::vector<std::string> *PassNames = nullptr;
  for (const auto &KV : TUs)
    if (!KV.second.PassNames.empty()) {
      PassNames = &KV.second.PassNames;
      break;
    }
  W.writeVarU64(PassNames ? PassNames->size() : 0);
  if (PassNames)
    for (const std::string &Name : *PassNames)
      W.writeString(Name);

  W.writeVarU64(TUs.size());
  for (const auto &[Key, Log] : TUs) {
    W.writeString(Key);
    writeCodes(W, Log.Module);
    W.writeVarU64(Log.Functions.size());
    for (const auto &[FName, Codes] : Log.Functions) {
      W.writeString(FName);
      writeCodes(W, Codes);
    }
  }

  uint64_t Checksum = hashBytes(W.data().data(), W.size());
  W.writeU64(Checksum);
  return std::string(reinterpret_cast<const char *>(W.data().data()),
                     W.size());
}

bool sc::deserializeDecisions(
    const std::string &Bytes,
    std::vector<std::pair<std::string, TUDecisionLog>> &Out) {
  if (Bytes.size() < 8 + 8)
    return false;
  const auto *Data = reinterpret_cast<const uint8_t *>(Bytes.data());
  const size_t Payload = Bytes.size() - 8;

  BinaryReader Tail(Data + Payload, 8);
  if (Tail.readU64() != hashBytes(Data, Payload))
    return false;

  BinaryReader R(Data, Payload);
  if (R.readU32() != DecisionsMagic || R.readU32() != DecisionsVersion)
    return false;

  std::vector<std::string> PassNames;
  uint64_t NumNames = R.readVarU64();
  for (uint64_t I = 0; I != NumNames && !R.failed(); ++I)
    PassNames.push_back(R.readString());

  std::vector<std::pair<std::string, TUDecisionLog>> Scratch;
  uint64_t NumTUs = R.readVarU64();
  for (uint64_t I = 0; I != NumTUs && !R.failed(); ++I) {
    std::string Key = R.readString();
    TUDecisionLog Log;
    Log.PassNames = PassNames;
    Log.Module = readCodes(R);
    uint64_t NumFns = R.readVarU64();
    for (uint64_t J = 0; J != NumFns && !R.failed(); ++J) {
      std::string FName = R.readString();
      Log.Functions[FName] = readCodes(R);
    }
    Scratch.emplace_back(std::move(Key), std::move(Log));
  }
  if (R.failed() || R.position() != Payload)
    return false;
  Out = std::move(Scratch);
  return true;
}

std::string sc::explainQuery(VirtualFileSystem &FS, const std::string &OutDir,
                             const std::string &Query, bool *OK) {
  auto Fail = [&](std::string Text) {
    if (OK)
      *OK = false;
    return Text;
  };

  // Split "TU" / "TU:pass".
  std::string TU = Query, Pass;
  if (size_t Colon = Query.rfind(':'); Colon != std::string::npos) {
    TU = Query.substr(0, Colon);
    Pass = Query.substr(Colon + 1);
  }
  if (TU.empty())
    return Fail("explain: empty TU in query '" + Query + "'\n");

  const std::string Path = OutDir + "/decisions.bin";
  std::optional<std::string> Bytes = FS.readFile(Path);
  if (!Bytes)
    return Fail("explain: no decision log at '" + Path +
                "' — run a stateful `scbuild` first (decision recording "
                "is on by default for scbuild)\n");

  std::vector<std::pair<std::string, TUDecisionLog>> TUs;
  if (!deserializeDecisions(*Bytes, TUs))
    return Fail("explain: decision log '" + Path +
                "' is damaged or from an incompatible version\n");

  auto It = std::find_if(TUs.begin(), TUs.end(),
                         [&](const auto &KV) { return KV.first == TU; });
  if (It == TUs.end()) {
    std::string Text = "explain: '" + TU +
                       "' was not recompiled by the last recorded build "
                       "(it was up to date). TUs with decisions:\n";
    for (const auto &KV : TUs)
      Text += "  " + KV.first + "\n";
    if (TUs.empty())
      Text += "  (none — the last build recompiled nothing)\n";
    if (OK)
      *OK = true;
    return Text;
  }

  const TUDecisionLog &Log = It->second;
  if (!Pass.empty() &&
      std::find(Log.PassNames.begin(), Log.PassNames.end(), Pass) ==
          Log.PassNames.end()) {
    std::string Text =
        "explain: no pass named '" + Pass + "' in the recorded pipeline (";
    for (size_t I = 0; I != Log.PassNames.size(); ++I)
      Text += (I ? ", " : "") + Log.PassNames[I];
    Text += ")\n";
    return Fail(std::move(Text));
  }

  std::string Text = "explain: " + TU + " — last recorded build, " +
                     std::to_string(Log.PassNames.size()) +
                     " pipeline position(s), " +
                     std::to_string(Log.Functions.size()) + " function(s)\n";

  auto ShowPosition = [&](size_t I) {
    return Pass.empty() ||
           (I < Log.PassNames.size() && Log.PassNames[I] == Pass);
  };
  auto NameOf = [&](size_t I) {
    return I < Log.PassNames.size() ? Log.PassNames[I]
                                    : "pass#" + std::to_string(I);
  };

  for (size_t I = 0; I != Log.Module.size(); ++I) {
    if (!ShowPosition(I))
      continue;
    uint8_t Code = Log.Module[I];
    if ((Code & ~TUDecisionLog::ChangedBit) == TUDecisionLog::NoDecision)
      continue; // A function-pass position.
    Text += "  [module] " + NameOf(I) + ": " + describeCode(Code) + "\n";
  }
  for (const auto &[FName, Codes] : Log.Functions) {
    Text += "  " + FName + ":\n";
    for (size_t I = 0; I != Codes.size(); ++I) {
      if (!ShowPosition(I))
        continue;
      if ((Codes[I] & ~TUDecisionLog::ChangedBit) ==
          TUDecisionLog::NoDecision)
        continue;
      Text += "    " + NameOf(I) + ": " + describeCode(Codes[I]) + "\n";
    }
  }
  if (OK)
    *OK = true;
  return Text;
}
