//===- build_sys/Manifest.cpp - Persistent build manifest ----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Manifest.h"

#include "support/AtomicFile.h"
#include "support/Hashing.h"
#include "support/Serializer.h"

using namespace sc;

namespace {

constexpr uint32_t ManifestMagic = 0x53434d46; // "SCMF"
constexpr uint32_t ManifestVersion = 1;

} // namespace

const ManifestEntry *BuildManifest::lookup(const std::string &Path) const {
  auto It = Entries.find(Path);
  return It == Entries.end() ? nullptr : &It->second;
}

void BuildManifest::update(const std::string &Path,
                           const ManifestEntry &Entry) {
  Entries[Path] = Entry;
}

void BuildManifest::remove(const std::string &Path) { Entries.erase(Path); }

void BuildManifest::clear() { Entries.clear(); }

std::string BuildManifest::serialize() const {
  BinaryWriter W;
  W.writeU32(ManifestMagic);
  W.writeU32(ManifestVersion);
  W.writeVarU64(Entries.size());
  for (const auto &[Path, E] : Entries) {
    W.writeString(Path);
    W.writeU64(E.ContentHash);
    W.writeU64(E.ImportsEffectiveHash);
    W.writeU64(E.ObjectHash);
    W.writeU64(E.ConfigHash);
  }
  std::string Bytes(reinterpret_cast<const char *>(W.data().data()),
                    W.size());
  uint64_t Checksum = hashString(Bytes);
  BinaryWriter Tail;
  Tail.writeU64(Checksum);
  Bytes.append(reinterpret_cast<const char *>(Tail.data().data()),
               Tail.size());
  return Bytes;
}

bool BuildManifest::deserialize(const std::string &Bytes) {
  // Parse into a scratch map; malformed input leaves the live manifest
  // untouched (the caller decides whether to clear).
  if (Bytes.size() < 8)
    return false;
  uint64_t Payload = Bytes.size() - 8;
  BinaryReader R(reinterpret_cast<const uint8_t *>(Bytes.data()),
                 Bytes.size());
  if (R.readU32() != ManifestMagic || R.readU32() != ManifestVersion)
    return false;
  uint64_t N = R.readVarU64();
  std::map<std::string, ManifestEntry> Loaded;
  for (uint64_t I = 0; I != N && !R.failed(); ++I) {
    std::string Path = R.readString();
    ManifestEntry E;
    E.ContentHash = R.readU64();
    E.ImportsEffectiveHash = R.readU64();
    E.ObjectHash = R.readU64();
    E.ConfigHash = R.readU64();
    Loaded.emplace(std::move(Path), E);
  }
  if (R.failed() || R.position() != Payload)
    return false;
  uint64_t Expected = R.readU64();
  if (R.failed() || !R.atEnd() ||
      hashBytes(Bytes.data(), Payload) != Expected)
    return false;
  Entries = std::move(Loaded);
  return true;
}

bool BuildManifest::saveToFile(VirtualFileSystem &FS,
                               const std::string &Path) const {
  return atomicWriteFile(FS, Path, serialize());
}

bool BuildManifest::loadFromFile(VirtualFileSystem &FS,
                                 const std::string &Path) {
  std::optional<std::string> Bytes = FS.readFile(Path);
  if (!Bytes)
    return false;
  return deserialize(*Bytes);
}
