//===- build_sys/Daemon.cpp - Multi-client build service -----------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Daemon.h"

#include "build_sys/Explain.h"
#include "support/FileSystem.h"
#include "support/FlatJson.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace sc;

//===----------------------------------------------------------------------===//
// Wire codec
//
// Message shapes live here; the flat-JSON primitives (JsonCursor,
// parseFlatObject, appendJsonString) are shared with the sccached
// protocol via support/FlatJson.h.
//===----------------------------------------------------------------------===//

std::string sc::encodeRequest(const DaemonRequest &R) {
  std::string J = "{\"verb\":";
  appendJsonString(J, R.Verb);
  J += ",\"clean\":" + std::string(R.Clean ? "true" : "false");
  J += ",\"quiet\":" + std::string(R.Quiet ? "true" : "false");
  J += ",\"run\":" + std::string(R.Run ? "true" : "false");
  J += ",\"runArgs\":[";
  for (size_t I = 0; I != R.RunArgs.size(); ++I)
    J += (I ? "," : "") + std::to_string(R.RunArgs[I]);
  J += "]";
  J += ",\"opt\":" + std::to_string(R.Opt);
  J += ",\"mode\":" + std::to_string(R.Mode);
  J += ",\"reuse\":" + std::string(R.Reuse ? "true" : "false");
  J += ",\"jobs\":" + std::to_string(R.Jobs);
  J += ",\"query\":";
  appendJsonString(J, R.Query);
  J += "}";
  return J;
}

bool sc::decodeRequest(const std::string &Json, DaemonRequest &R) {
  return parseFlatObject(Json, [&](JsonCursor &C, const std::string &Key) {
    if (Key == "verb")
      R.Verb = C.parseString();
    else if (Key == "clean")
      R.Clean = C.parseBool();
    else if (Key == "quiet")
      R.Quiet = C.parseBool();
    else if (Key == "run")
      R.Run = C.parseBool();
    else if (Key == "runArgs")
      R.RunArgs = C.parseIntArray();
    else if (Key == "opt")
      R.Opt = static_cast<int>(C.parseInt());
    else if (Key == "mode")
      R.Mode = static_cast<int>(C.parseInt());
    else if (Key == "reuse")
      R.Reuse = C.parseBool();
    else if (Key == "jobs")
      R.Jobs = static_cast<unsigned>(C.parseInt());
    else if (Key == "query")
      R.Query = C.parseString();
    else
      C.skipValue();
  });
}

std::string sc::encodeFrame(const DaemonFrame &F) {
  std::string J = "{\"type\":";
  appendJsonString(J, F.Type);
  J += ",\"text\":";
  appendJsonString(J, F.Text);
  J += ",\"code\":" + std::to_string(F.Code);
  if (F.Type == "busy") {
    J += ",\"queueDepth\":" + std::to_string(F.QueueDepth);
    J += ",\"retryAfterMs\":" + std::to_string(F.RetryAfterMs);
  }
  if (F.Coalesced)
    J += ",\"coalesced\":true";
  if (F.HasStats) {
    J += ",\"compiled\":" + std::to_string(F.Compiled);
    J += ",\"total\":" + std::to_string(F.Total);
    J += ",\"scans\":" + std::to_string(F.InterfaceScans);
    J += ",\"scanHits\":" + std::to_string(F.ScanCacheHits);
    J += ",\"parses\":" + std::to_string(F.ObjectsParsed);
    J += ",\"remoteHits\":" + std::to_string(F.RemoteHits);
    J += ",\"remoteMisses\":" + std::to_string(F.RemoteMisses);
    J += ",\"remotePuts\":" + std::to_string(F.RemotePuts);
    J += ",\"remoteErrors\":" + std::to_string(F.RemoteErrors);
  }
  J += "}";
  return J;
}

bool sc::decodeFrame(const std::string &Json, DaemonFrame &F) {
  return parseFlatObject(Json, [&](JsonCursor &C, const std::string &Key) {
    if (Key == "type")
      F.Type = C.parseString();
    else if (Key == "text")
      F.Text = C.parseString();
    else if (Key == "code")
      F.Code = static_cast<int>(C.parseInt());
    else if (Key == "queueDepth")
      F.QueueDepth = static_cast<uint32_t>(C.parseInt());
    else if (Key == "retryAfterMs")
      F.RetryAfterMs = static_cast<uint32_t>(C.parseInt());
    else if (Key == "coalesced")
      F.Coalesced = C.parseBool();
    else if (Key == "compiled") {
      F.Compiled = static_cast<unsigned>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "total") {
      F.Total = static_cast<unsigned>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "scans") {
      F.InterfaceScans = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "scanHits") {
      F.ScanCacheHits = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "parses") {
      F.ObjectsParsed = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remoteHits") {
      F.RemoteHits = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remoteMisses") {
      F.RemoteMisses = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remotePuts") {
      F.RemotePuts = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remoteErrors") {
      F.RemoteErrors = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else
      C.skipValue();
  });
}

//===----------------------------------------------------------------------===//
// Shared output rendering
//===----------------------------------------------------------------------===//

RenderedOutcome sc::renderBuildOutcome(const BuildStats &Stats, bool Stateful,
                                       bool Quiet) {
  RenderedOutcome R;
  for (const std::string &W : Stats.Warnings)
    R.Err += "scbuild: warning: " + W + "\n";
  if (!Stats.Success) {
    R.Err += Stats.ErrorText + "\n";
    R.Code = 1;
    return R;
  }
  if (Quiet)
    return R;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "scbuild: %u/%u files compiled in %.1f ms "
                "(scan %.1f, compile %.1f, link %.1f, state %.1f)\n",
                Stats.FilesCompiled, Stats.FilesTotal, Stats.TotalUs / 1000,
                Stats.ScanUs / 1000, Stats.CompileUs / 1000,
                Stats.LinkUs / 1000, Stats.StateIOUs / 1000);
  R.Out += Buf;
  if (Stateful) {
    std::snprintf(
        Buf, sizeof(Buf),
        "scbuild: passes run %llu, skipped %llu; "
        "functions reused %llu; state db %.1f KB\n",
        static_cast<unsigned long long>(Stats.Skip.PassesRun),
        static_cast<unsigned long long>(Stats.Skip.PassesSkipped),
        static_cast<unsigned long long>(Stats.Skip.FunctionsReused),
        Stats.StateDBBytes / 1024.0);
    R.Out += Buf;
  }
  // Only builds that exercised the remote tier mention it: a plain
  // local build's output stays byte-for-byte what it always was.
  if (Stats.RemoteHits || Stats.RemoteMisses || Stats.RemotePuts) {
    std::snprintf(
        Buf, sizeof(Buf),
        "scbuild: remote cache: %llu hit(s), %llu miss(es), %llu put(s)\n",
        static_cast<unsigned long long>(Stats.RemoteHits),
        static_cast<unsigned long long>(Stats.RemoteMisses),
        static_cast<unsigned long long>(Stats.RemotePuts));
    R.Out += Buf;
  }
  return R;
}

void sc::renderRunOutcome(RenderedOutcome &R, const ExecResult &Exec) {
  if (Exec.Trapped) {
    R.Err += "scbuild: trap: " + Exec.TrapReason + "\n";
    R.Code = 1;
    return;
  }
  char Buf[32];
  for (int64_t V : Exec.Output) {
    std::snprintf(Buf, sizeof(Buf), "%lld\n", static_cast<long long>(V));
    R.Out += Buf;
  }
  R.Code = static_cast<int>(Exec.ReturnValue.value_or(0) & 0xff);
}

//===----------------------------------------------------------------------===//
// BuildDaemon
//===----------------------------------------------------------------------===//

std::string sc::daemonSocketPath(const std::string &HostRoot,
                                 const std::string &OutDir) {
  return HostRoot + "/" + OutDir + "/.daemon.sock";
}

BuildDaemon::BuildDaemon(RealFileSystem &FS, DaemonConfig Config)
    : FS(FS), Config(std::move(Config)) {
  this->Config.Build.ExternalLock = true;
}

BuildDaemon::~BuildDaemon() {
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  // Belt and braces for a daemon destroyed without serve() having
  // drained (start() failed, or a test tore it down early): the
  // builder and connection threads must be joined before their
  // captured `this` dies.
  {
    std::lock_guard<std::mutex> L(Mu);
    Draining = true;
    for (auto &Job : Queue)
      cancelJob(*Job, 5, "scbuild: error: daemon is shutting down\n");
    Queue.clear();
  }
  Stop.store(true);
  JobsCV.notify_all();
  DoneCV.notify_all();
  if (Builder.joinable())
    Builder.join();
  reapConnections(/*JoinAll=*/true);
  // Lock (the daemon's lifetime lock) releases in its own destructor.
}

void BuildDaemon::chat(const char *Fmt, ...) {
  if (Config.Quiet)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
}

bool BuildDaemon::start(std::string *Err) {
  const std::string LockPath = Config.Build.OutDir + "/.lock";
  // The lifetime lock. Acquiring it also creates <OutDir> (exclusive
  // create makes parent directories), so the socket bind below has a
  // directory to land in.
  Lock = FileLock::acquire(FS, LockPath, Config.Build.LockTimeoutMs,
                           Config.Build.LockBackoffMs, "daemon");
  if (!Lock.held()) {
    if (Err) {
      *Err = "could not acquire '" + LockPath + "'";
      if (auto Owner = FileLock::probe(FS, LockPath); Owner && Owner->Alive)
        *Err += Owner->Tag == "daemon"
                    ? " — a daemon (pid " + std::to_string(Owner->Pid) +
                          ") already serves this tree"
                    : " — held by live process " + std::to_string(Owner->Pid);
    }
    return false;
  }
  // Holding the lock proves no live daemon owns this tree, so a
  // leftover socket file is debris from a dead one: remove it, or
  // bind() would fail with EADDRINUSE forever.
  SockPath = daemonSocketPath(FS.root(), Config.Build.OutDir);
  ::unlink(SockPath.c_str());
  std::string SockErr;
  Listener = UnixSocket::listenOn(SockPath, &SockErr);
  if (!Listener.valid()) {
    if (Err)
      *Err = "could not listen on '" + SockPath + "': " + SockErr;
    Lock = FileLock();
    SockPath.clear();
    return false;
  }
  Driver = std::make_unique<BuildDriver>(FS, Config.Build);
  chat("scbuildd: pid %ld serving '%s' (socket %s)\n",
       static_cast<long>(::getpid()), FS.root().c_str(), SockPath.c_str());
  return true;
}

DaemonServiceStats BuildDaemon::serviceStats() const {
  DaemonServiceStats S;
  S.BuildsServed = Svc.BuildsServed.load();
  S.RequestsServed = Svc.RequestsServed.load();
  S.Coalesced = Svc.Coalesced.load();
  S.BusyRejections = Svc.BusyRejections.load();
  S.RequestTimeouts = Svc.RequestTimeouts.load();
  S.Disconnects = Svc.Disconnects.load();
  S.CancelledOnDrain = Svc.CancelledOnDrain.load();
  S.QueueHighWater = Svc.QueueHighWater.load();
  S.ActiveConnections = Svc.ActiveConnections.load();
  {
    std::lock_guard<std::mutex> L(Mu);
    S.QueueDepth = static_cast<uint32_t>(Queue.size());
  }
  return S;
}

BuildStats BuildDaemon::lastBuildStats() const {
  std::lock_guard<std::mutex> L(Mu);
  return LastStats;
}

void BuildDaemon::publishGauges() {
  MetricsRegistry *M = Config.Build.Compiler.Metrics;
  if (!M)
    return;
  uint32_t Depth;
  {
    std::lock_guard<std::mutex> L(Mu);
    Depth = static_cast<uint32_t>(Queue.size());
  }
  M->gauge("daemon.queue_depth").set(Depth);
  M->gauge("daemon.queue_high_water").max(Svc.QueueHighWater.load());
  M->gauge("daemon.connections_active").set(Svc.ActiveConnections.load());
}

std::string BuildDaemon::metricsText() {
  MetricsRegistry *M = Config.Build.Compiler.Metrics;
  if (!M)
    return "# scbuildd: no metrics registry configured\n";
  // Gauges are refreshed at render time, never reported from their
  // last publish: a queue that drained since the last build must read
  // as drained (see the status verb, which follows the same rule).
  publishGauges();
  return MetricsTextExporter::render(*M);
}

void BuildDaemon::dumpMetricsFile() {
  if (Config.MetricsOut.empty())
    return;
  const std::string Text = metricsText();
  const std::string Tmp = Config.MetricsOut + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  const bool Wrote = std::fwrite(Text.data(), 1, Text.size(), F) ==
                     Text.size();
  std::fclose(F);
  if (!Wrote || ::rename(Tmp.c_str(), Config.MetricsOut.c_str()) != 0)
    ::unlink(Tmp.c_str());
}

std::string BuildDaemon::statusText() const {
  DaemonServiceStats S = serviceStats();
  std::string T = "scbuildd: pid " + std::to_string(::getpid()) +
                  " serving '" + FS.root() + "', builds served " +
                  std::to_string(S.BuildsServed) + "\n";
  T += "scbuildd: service: requests " + std::to_string(S.RequestsServed) +
       ", active connections " + std::to_string(S.ActiveConnections) +
       ", queue depth " + std::to_string(S.QueueDepth) + " (high water " +
       std::to_string(S.QueueHighWater) + ")\n";
  T += "scbuildd: service: coalesced " + std::to_string(S.Coalesced) +
       ", busy rejections " + std::to_string(S.BusyRejections) +
       ", request timeouts " + std::to_string(S.RequestTimeouts) +
       ", disconnects " + std::to_string(S.Disconnects) + "\n";
  DaemonFrame Last;
  {
    std::lock_guard<std::mutex> L(Mu);
    Last = LastExit;
  }
  if (Last.HasStats) {
    T += "scbuildd: last build: compiled " + std::to_string(Last.Compiled) +
         "/" + std::to_string(Last.Total) + ", interface scans " +
         std::to_string(Last.InterfaceScans) + " (cache hits " +
         std::to_string(Last.ScanCacheHits) + "), objects parsed " +
         std::to_string(Last.ObjectsParsed) + "\n";
    if (Last.RemoteHits || Last.RemoteMisses || Last.RemotePuts ||
        Last.RemoteErrors)
      T += "scbuildd: last build remote cache: hits " +
           std::to_string(Last.RemoteHits) + ", misses " +
           std::to_string(Last.RemoteMisses) + ", puts " +
           std::to_string(Last.RemotePuts) + ", errors " +
           std::to_string(Last.RemoteErrors) + "\n";
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Builder thread: the only code that touches the resident driver.
//===----------------------------------------------------------------------===//

void BuildDaemon::cancelJob(BuildJob &Job, int Code, const std::string &Text) {
  // Caller holds Mu. The job is (being removed) from the queue; its
  // waiters wake on DoneCV and stream the cancellation frame pair.
  Job.Cancelled = true;
  Job.CancelCode = Code;
  Job.CancelText = Text;
  Job.Done = true;
}

void BuildDaemon::runJob(const std::shared_ptr<BuildJob> &Job) {
  // The job left the queue before this call, so its waiter list is
  // frozen (coalescing only joins *queued* jobs) — safe to read
  // without Mu.
  if (Config.HoldMs)
    std::this_thread::sleep_for(std::chrono::milliseconds(Config.HoldMs));
  if (Config.PreBuildHook)
    Config.PreBuildHook();

  if (Job->Clean)
    Driver->clean();
  BuildStats Stats = Driver->build();
  Svc.BuildsServed.fetch_add(1);
  Svc.RequestsServed.fetch_add(Job->Waiters.size());
  if (MetricsRegistry *M = Config.Build.Compiler.Metrics) {
    M->counter("daemon.builds_served").add(1);
    M->counter("daemon.requests_served").add(Job->Waiters.size());
  }

  const bool Stateful = Config.Build.Compiler.Stateful.SkipMode !=
                        StatefulConfig::Mode::Stateless;
  DaemonFrame X;
  X.Code = 0;
  X.HasStats = true;
  X.Compiled = Stats.FilesCompiled;
  X.Total = Stats.FilesTotal;
  X.InterfaceScans = Stats.InterfaceScans;
  X.ScanCacheHits = Stats.ScanCacheHits;
  X.ObjectsParsed = Stats.ObjectsParsed;
  X.RemoteHits = Stats.RemoteHits;
  X.RemoteMisses = Stats.RemoteMisses;
  X.RemotePuts = Stats.RemotePuts;
  X.RemoteErrors = Stats.RemoteErrors;

  // One compile wave fans out to every waiter. Waiters may differ in
  // Quiet/Run/RunArgs — those shape rendering, not the build — so each
  // gets its own rendered outcome from the same BuildStats.
  Job->Outcomes.resize(Job->Waiters.size());
  Job->ExitFrames.resize(Job->Waiters.size());
  for (size_t I = 0; I != Job->Waiters.size(); ++I) {
    const DaemonRequest &Req = Job->Waiters[I];
    RenderedOutcome R = renderBuildOutcome(Stats, Stateful, Req.Quiet);
    if (Stats.Success && Req.Run) {
      VM Machine(*Driver->program());
      renderRunOutcome(R, Machine.run("main", Req.RunArgs));
    }
    DaemonFrame Exit = X;
    Exit.Code = R.Code;
    Exit.Coalesced = I > 0;
    Job->Outcomes[I] = std::move(R);
    Job->ExitFrames[I] = Exit;
  }

  // With a streaming sink attached (scbuildd --trace-stream), push this
  // build's spans out now — the trace stays live and readable while the
  // daemon keeps running. A sinkless recorder (kept for the history
  // ledger's span aggregates) is cleared instead: the build already
  // folded its spans into the history record, and letting rings wrap
  // across builds would miscount later builds' drops.
  if (TraceRecorder *T = Config.Build.Compiler.Trace)
    if (T->flush() == 0)
      T->clear();

  {
    std::lock_guard<std::mutex> L(Mu);
    LastExit = X;
    LastStats = Stats;
    Job->Done = true;
  }
  DoneCV.notify_all();
  ActivityTick.fetch_add(1);
}

void BuildDaemon::builderMain() {
  for (;;) {
    std::shared_ptr<BuildJob> Job;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobsCV.wait(L, [&] { return !Queue.empty() || Draining || Stop.load(); });
      // Once a stop is requested, no *new* build starts — whatever is
      // still queued belongs to the drain, which answers every waiter
      // with a deterministic cancellation frame. (The build we may
      // have just finished was the "in-flight" one the drain lets
      // complete.)
      if (Draining || Stop.load())
        return;
      if (Queue.empty())
        continue;
      Job = Queue.front();
      Queue.pop_front();
      // Dequeue-time deadline check: the waiters' own wait_until
      // usually fires first, but a wakeup race can leave an expired
      // job at the head of the queue.
      if (Config.RequestTimeoutMs && !Job->Cancelled &&
          std::chrono::steady_clock::now() - Job->EnqueuedAt >
              std::chrono::milliseconds(Config.RequestTimeoutMs)) {
        Svc.RequestTimeouts.fetch_add(Job->Waiters.size());
        if (MetricsRegistry *M = Config.Build.Compiler.Metrics)
          M->counter("daemon.request_timeouts").add(Job->Waiters.size());
        cancelJob(*Job, 4,
                  "scbuild: error: build request timed out in the daemon "
                  "queue\n");
        L.unlock();
        DoneCV.notify_all();
        publishGauges();
        continue;
      }
      if (Job->Cancelled) {
        // A waiter-side timeout or drain beat us to it; waiters are
        // already being answered.
        continue;
      }
    }
    publishGauges();
    runJob(Job);
  }
}

//===----------------------------------------------------------------------===//
// Connection threads
//===----------------------------------------------------------------------===//

bool BuildDaemon::streamWaiter(UnixSocket &Conn, const RenderedOutcome &R,
                               const DaemonFrame &Exit) {
  const unsigned T = Config.IoTimeoutMs;
  if (!R.Err.empty()) {
    DaemonFrame F;
    F.Type = "err";
    F.Text = R.Err;
    if (!Conn.sendFrame(encodeFrame(F), T))
      return false;
  }
  if (!R.Out.empty()) {
    DaemonFrame F;
    F.Type = "out";
    F.Text = R.Out;
    if (!Conn.sendFrame(encodeFrame(F), T))
      return false;
  }
  return Conn.sendFrame(encodeFrame(Exit), T);
}

void BuildDaemon::handleBuildRequest(UnixSocket &Conn,
                                     const DaemonRequest &Req) {
  const CompilerOptions &CO = Config.Build.Compiler;
  if (Req.Opt != static_cast<int>(CO.Opt) ||
      Req.Mode != static_cast<int>(CO.Stateful.SkipMode) ||
      Req.Reuse != CO.Stateful.ReuseFunctionCode) {
    // The resident caches are only valid for the daemon's own
    // configuration; silently building with ours would not be the
    // build the user asked for. (A -j mismatch is fine: concurrency
    // never changes outputs.)
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon (pid " + std::to_string(::getpid()) +
             ") was started with a different compiler configuration; "
             "restart it with the flags you want, or drop --daemon\n";
    Conn.sendFrame(encodeFrame(E), Config.IoTimeoutMs);
    DaemonFrame X;
    X.Code = 1;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
    return;
  }

  // Admission: coalesce with a pending identical build, or queue a new
  // job, or bounce with a structured busy frame.
  std::shared_ptr<BuildJob> Job;
  size_t WaiterIdx = 0;
  {
    std::unique_lock<std::mutex> L(Mu);
    if (Draining || Stop.load()) {
      L.unlock();
      DaemonFrame E;
      E.Type = "err";
      E.Text = "scbuild: error: daemon is shutting down; build not started\n";
      Conn.sendFrame(encodeFrame(E), Config.IoTimeoutMs);
      DaemonFrame X;
      X.Code = 5;
      Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
      return;
    }
    // Coalescing key: everything that shapes the driver's work. Opt,
    // Mode, and Reuse already match the daemon config (checked above),
    // so only Clean distinguishes two pending builds. A job already
    // *started* is never joined — it may have read files an
    // intervening edit since changed; the new request must get its own
    // wave. Queued-but-not-started jobs will observe the same
    // workspace state as this request, so sharing is sound.
    for (auto &Pending : Queue) {
      if (!Pending->Cancelled && Pending->Clean == Req.Clean) {
        Job = Pending;
        WaiterIdx = Job->Waiters.size();
        Job->Waiters.push_back(Req);
        Svc.Coalesced.fetch_add(1);
        if (MetricsRegistry *M = CO.Metrics)
          M->counter("daemon.coalesced").add(1);
        break;
      }
    }
    if (!Job) {
      if (Queue.size() >= Config.MaxQueue) {
        const uint32_t Depth = static_cast<uint32_t>(Queue.size());
        L.unlock();
        Svc.BusyRejections.fetch_add(1);
        if (MetricsRegistry *M = CO.Metrics)
          M->counter("daemon.busy_rejections").add(1);
        DaemonFrame B;
        B.Type = "busy";
        B.Code = 3;
        B.QueueDepth = Depth;
        // Suggested backoff: roughly one queued build's service time
        // per position, floored so a zero-hold daemon still spreads
        // retries out.
        B.RetryAfterMs = (Depth + 1) * std::max(Config.HoldMs, 25u);
        Conn.sendFrame(encodeFrame(B), Config.IoTimeoutMs);
        return;
      }
      Job = std::make_shared<BuildJob>();
      Job->Clean = Req.Clean;
      Job->Waiters.push_back(Req);
      Job->EnqueuedAt = std::chrono::steady_clock::now();
      Queue.push_back(Job);
      const uint32_t Depth = static_cast<uint32_t>(Queue.size());
      uint32_t HW = Svc.QueueHighWater.load();
      while (Depth > HW && !Svc.QueueHighWater.compare_exchange_weak(HW, Depth))
        ;
    }
  }
  JobsCV.notify_one();
  publishGauges();

  // Wait for the builder to finish (or cancel) the wave. The request
  // deadline applies only while the job is *queued*: once the build
  // starts it runs to completion (its artifacts are wanted regardless).
  {
    std::unique_lock<std::mutex> L(Mu);
    if (Config.RequestTimeoutMs) {
      const auto Deadline =
          Job->EnqueuedAt + std::chrono::milliseconds(Config.RequestTimeoutMs);
      while (!Job->Done) {
        if (DoneCV.wait_until(L, Deadline) == std::cv_status::timeout &&
            !Job->Done) {
          auto It = std::find(Queue.begin(), Queue.end(), Job);
          if (It != Queue.end()) {
            // Still queued past the deadline: cancel the whole wave
            // (every waiter shares the enqueue time).
            Queue.erase(It);
            Svc.RequestTimeouts.fetch_add(Job->Waiters.size());
            if (MetricsRegistry *M = CO.Metrics)
              M->counter("daemon.request_timeouts").add(Job->Waiters.size());
            cancelJob(*Job, 4,
                      "scbuild: error: build request timed out in the daemon "
                      "queue\n");
            DoneCV.notify_all();
          }
          // Started but not Done: keep waiting without a deadline.
          while (!Job->Done)
            DoneCV.wait(L);
        }
      }
    } else {
      DoneCV.wait(L, [&] { return Job->Done; });
    }
  }
  publishGauges();

  if (Job->Cancelled) {
    RenderedOutcome R;
    R.Err = Job->CancelText;
    R.Code = Job->CancelCode;
    DaemonFrame X;
    X.Code = Job->CancelCode;
    if (!streamWaiter(Conn, R, X))
      Svc.Disconnects.fetch_add(1);
    return;
  }
  if (!streamWaiter(Conn, Job->Outcomes[WaiterIdx],
                    Job->ExitFrames[WaiterIdx])) {
    // The client died while its build ran. The build itself completed
    // and its artifacts/state persist — only this fan-out is lost.
    Svc.Disconnects.fetch_add(1);
    if (MetricsRegistry *M = CO.Metrics)
      M->counter("daemon.disconnects").add(1);
    chat("scbuildd: client disconnected before its result was delivered\n");
  }
}

void BuildDaemon::connectionMain(UnixSocket Conn) {
  Svc.ActiveConnections.fetch_add(1);
  publishGauges();
  // Wait for the client's first byte in slices so a drain is never
  // held hostage by a silent client; once bytes flow, recvFrame's
  // total deadline bounds the whole frame (slow-loris hardening).
  const auto IoDeadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(Config.IoTimeoutMs);
  bool HaveByte = false;
  while (!Stop.load() && std::chrono::steady_clock::now() < IoDeadline) {
    if (Conn.readable(/*TimeoutMs=*/100)) {
      HaveByte = true;
      break;
    }
  }
  std::string Payload;
  if (!HaveByte || !Conn.recvFrame(Payload, Config.IoTimeoutMs)) {
    Svc.ActiveConnections.fetch_sub(1);
    return; // Client vanished or stalled; drop the connection.
  }
  DaemonRequest Req;
  if (!decodeRequest(Payload, Req)) {
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon received a malformed request\n";
    Conn.sendFrame(encodeFrame(E), Config.IoTimeoutMs);
    DaemonFrame X;
    X.Code = 2;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
    Svc.ActiveConnections.fetch_sub(1);
    return;
  }

  if (Req.Verb == "build") {
    handleBuildRequest(Conn, Req);
  } else if (Req.Verb == "status") {
    // Refresh the registry gauges at frame-render time: the queue may
    // have drained (or filled) since the last build published them,
    // and a status snapshot must describe now, not then.
    publishGauges();
    DaemonFrame F;
    F.Type = "out";
    F.Text = statusText();
    Conn.sendFrame(encodeFrame(F), Config.IoTimeoutMs);
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
  } else if (Req.Verb == "metrics") {
    DaemonFrame F;
    F.Type = "out";
    F.Text = metricsText();
    Conn.sendFrame(encodeFrame(F), Config.IoTimeoutMs);
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
  } else if (Req.Verb == "explain") {
    bool OK = false;
    std::string Text = explainQuery(FS, Config.Build.OutDir, Req.Query, &OK);
    DaemonFrame F;
    F.Type = OK ? "out" : "err";
    F.Text = Text;
    Conn.sendFrame(encodeFrame(F), Config.IoTimeoutMs);
    DaemonFrame X;
    X.Code = OK ? 0 : 1;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
  } else if (Req.Verb == "shutdown") {
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
    chat("scbuildd: shutdown requested, draining\n");
    Stop.store(true);
  } else {
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon does not understand verb '" + Req.Verb +
             "'\n";
    Conn.sendFrame(encodeFrame(E), Config.IoTimeoutMs);
    DaemonFrame X;
    X.Code = 2;
    Conn.sendFrame(encodeFrame(X), Config.IoTimeoutMs);
  }
  ActivityTick.fetch_add(1);
  Svc.ActiveConnections.fetch_sub(1);
  publishGauges();
}

//===----------------------------------------------------------------------===//
// Accept loop + graceful drain
//===----------------------------------------------------------------------===//

void BuildDaemon::reapConnections(bool JoinAll) {
  for (auto It = Connections.begin(); It != Connections.end();) {
    if (JoinAll || It->Finished.load()) {
      if (It->T.joinable())
        It->T.join();
      It = Connections.erase(It);
    } else {
      ++It;
    }
  }
}

int BuildDaemon::serve() {
  using Clock = std::chrono::steady_clock;
  Builder = std::thread([this] { builderMain(); });
  auto LastActivity = Clock::now();
  auto LastMetricsDump = Clock::now();
  dumpMetricsFile(); // Scrape-file exists from the first slice on.
  uint64_t LastTick = ActivityTick.load();
  while (!Stop.load()) {
    if (!Config.MetricsOut.empty() &&
        Clock::now() - LastMetricsDump >=
            std::chrono::milliseconds(Config.MetricsIntervalMs)) {
      dumpMetricsFile();
      LastMetricsDump = Clock::now();
    }
    // Served requests (possibly on connection threads we never see
    // complete here) count as activity for the idle clock, as do live
    // connections and queued work.
    const uint64_t Tick = ActivityTick.load();
    bool Busy = Svc.ActiveConnections.load() != 0;
    if (!Busy) {
      std::lock_guard<std::mutex> L(Mu);
      Busy = !Queue.empty();
    }
    if (Tick != LastTick || Busy) {
      LastTick = Tick;
      LastActivity = Clock::now();
    }
    if (Config.IdleTimeoutMs &&
        Clock::now() - LastActivity >=
            std::chrono::milliseconds(Config.IdleTimeoutMs)) {
      chat("scbuildd: idle for %u ms, exiting\n", Config.IdleTimeoutMs);
      break;
    }
    bool TimedOut = false;
    UnixSocket Conn = Listener.accept(/*TimeoutMs=*/200, &TimedOut);
    reapConnections(/*JoinAll=*/false);
    if (!Conn.valid())
      continue; // Timeout slice (or transient accept error): re-poll.
    LastActivity = Clock::now();
    Connections.emplace_back();
    Connection &C = Connections.back();
    C.T = std::thread([this, &C](UnixSocket S) {
      connectionMain(std::move(S));
      C.Finished.store(true);
    }, std::move(Conn));
  }

  // Graceful drain:
  //  1. Stop accepting — close the listener and remove the socket file
  //     so new clients fail over to in-process builds instead of
  //     queueing on a daemon that will never answer.
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  //  2. Cancel queued (not yet started) builds deterministically: each
  //     waiter gets a clean err + exit(5) frame pair, never a dropped
  //     connection.
  {
    std::lock_guard<std::mutex> L(Mu);
    Draining = true;
    size_t Cancelled = 0;
    for (auto &Job : Queue) {
      Cancelled += Job->Waiters.size();
      cancelJob(*Job, 5,
                "scbuild: error: daemon is shutting down; queued build "
                "cancelled\n");
    }
    Queue.clear();
    if (Cancelled) {
      Svc.CancelledOnDrain.fetch_add(Cancelled);
      if (MetricsRegistry *M = Config.Build.Compiler.Metrics)
        M->counter("daemon.cancelled_on_drain").add(Cancelled);
      chat("scbuildd: drain cancelled %zu queued request(s)\n", Cancelled);
    }
  }
  JobsCV.notify_all();
  DoneCV.notify_all();
  //  3. The in-flight build (if any) runs to completion and fans out;
  //     the builder then sees Draining with an empty queue and exits.
  if (Builder.joinable())
    Builder.join();
  //  4. Every connection thread finishes streaming (bounded by
  //     IoTimeoutMs per frame) and is joined.
  reapConnections(/*JoinAll=*/true);
  //  5. Flush the trace sink so the last spans hit disk before the
  //     lock releases.
  if (TraceRecorder *T = Config.Build.Compiler.Trace)
    T->flush();
  publishGauges();
  //  6. One final scrape-file dump so the file reflects the drained
  //     end state rather than the last periodic slice.
  dumpMetricsFile();
  return 0;
}
