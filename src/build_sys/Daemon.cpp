//===- build_sys/Daemon.cpp - Resident build daemon ----------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Daemon.h"

#include "build_sys/Explain.h"
#include "support/FileSystem.h"
#include "support/FlatJson.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace sc;

//===----------------------------------------------------------------------===//
// Wire codec
//
// Message shapes live here; the flat-JSON primitives (JsonCursor,
// parseFlatObject, appendJsonString) are shared with the sccached
// protocol via support/FlatJson.h.
//===----------------------------------------------------------------------===//

std::string sc::encodeRequest(const DaemonRequest &R) {
  std::string J = "{\"verb\":";
  appendJsonString(J, R.Verb);
  J += ",\"clean\":" + std::string(R.Clean ? "true" : "false");
  J += ",\"quiet\":" + std::string(R.Quiet ? "true" : "false");
  J += ",\"run\":" + std::string(R.Run ? "true" : "false");
  J += ",\"runArgs\":[";
  for (size_t I = 0; I != R.RunArgs.size(); ++I)
    J += (I ? "," : "") + std::to_string(R.RunArgs[I]);
  J += "]";
  J += ",\"opt\":" + std::to_string(R.Opt);
  J += ",\"mode\":" + std::to_string(R.Mode);
  J += ",\"reuse\":" + std::string(R.Reuse ? "true" : "false");
  J += ",\"jobs\":" + std::to_string(R.Jobs);
  J += ",\"query\":";
  appendJsonString(J, R.Query);
  J += "}";
  return J;
}

bool sc::decodeRequest(const std::string &Json, DaemonRequest &R) {
  return parseFlatObject(Json, [&](JsonCursor &C, const std::string &Key) {
    if (Key == "verb")
      R.Verb = C.parseString();
    else if (Key == "clean")
      R.Clean = C.parseBool();
    else if (Key == "quiet")
      R.Quiet = C.parseBool();
    else if (Key == "run")
      R.Run = C.parseBool();
    else if (Key == "runArgs")
      R.RunArgs = C.parseIntArray();
    else if (Key == "opt")
      R.Opt = static_cast<int>(C.parseInt());
    else if (Key == "mode")
      R.Mode = static_cast<int>(C.parseInt());
    else if (Key == "reuse")
      R.Reuse = C.parseBool();
    else if (Key == "jobs")
      R.Jobs = static_cast<unsigned>(C.parseInt());
    else if (Key == "query")
      R.Query = C.parseString();
    else
      C.skipValue();
  });
}

std::string sc::encodeFrame(const DaemonFrame &F) {
  std::string J = "{\"type\":";
  appendJsonString(J, F.Type);
  J += ",\"text\":";
  appendJsonString(J, F.Text);
  J += ",\"code\":" + std::to_string(F.Code);
  if (F.HasStats) {
    J += ",\"compiled\":" + std::to_string(F.Compiled);
    J += ",\"total\":" + std::to_string(F.Total);
    J += ",\"scans\":" + std::to_string(F.InterfaceScans);
    J += ",\"scanHits\":" + std::to_string(F.ScanCacheHits);
    J += ",\"parses\":" + std::to_string(F.ObjectsParsed);
    J += ",\"remoteHits\":" + std::to_string(F.RemoteHits);
    J += ",\"remoteMisses\":" + std::to_string(F.RemoteMisses);
    J += ",\"remotePuts\":" + std::to_string(F.RemotePuts);
    J += ",\"remoteErrors\":" + std::to_string(F.RemoteErrors);
  }
  J += "}";
  return J;
}

bool sc::decodeFrame(const std::string &Json, DaemonFrame &F) {
  return parseFlatObject(Json, [&](JsonCursor &C, const std::string &Key) {
    if (Key == "type")
      F.Type = C.parseString();
    else if (Key == "text")
      F.Text = C.parseString();
    else if (Key == "code")
      F.Code = static_cast<int>(C.parseInt());
    else if (Key == "compiled") {
      F.Compiled = static_cast<unsigned>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "total") {
      F.Total = static_cast<unsigned>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "scans") {
      F.InterfaceScans = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "scanHits") {
      F.ScanCacheHits = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "parses") {
      F.ObjectsParsed = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remoteHits") {
      F.RemoteHits = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remoteMisses") {
      F.RemoteMisses = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remotePuts") {
      F.RemotePuts = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "remoteErrors") {
      F.RemoteErrors = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else
      C.skipValue();
  });
}

//===----------------------------------------------------------------------===//
// Shared output rendering
//===----------------------------------------------------------------------===//

RenderedOutcome sc::renderBuildOutcome(const BuildStats &Stats, bool Stateful,
                                       bool Quiet) {
  RenderedOutcome R;
  for (const std::string &W : Stats.Warnings)
    R.Err += "scbuild: warning: " + W + "\n";
  if (!Stats.Success) {
    R.Err += Stats.ErrorText + "\n";
    R.Code = 1;
    return R;
  }
  if (Quiet)
    return R;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "scbuild: %u/%u files compiled in %.1f ms "
                "(scan %.1f, compile %.1f, link %.1f, state %.1f)\n",
                Stats.FilesCompiled, Stats.FilesTotal, Stats.TotalUs / 1000,
                Stats.ScanUs / 1000, Stats.CompileUs / 1000,
                Stats.LinkUs / 1000, Stats.StateIOUs / 1000);
  R.Out += Buf;
  if (Stateful) {
    std::snprintf(
        Buf, sizeof(Buf),
        "scbuild: passes run %llu, skipped %llu; "
        "functions reused %llu; state db %.1f KB\n",
        static_cast<unsigned long long>(Stats.Skip.PassesRun),
        static_cast<unsigned long long>(Stats.Skip.PassesSkipped),
        static_cast<unsigned long long>(Stats.Skip.FunctionsReused),
        Stats.StateDBBytes / 1024.0);
    R.Out += Buf;
  }
  // Only builds that exercised the remote tier mention it: a plain
  // local build's output stays byte-for-byte what it always was.
  if (Stats.RemoteHits || Stats.RemoteMisses || Stats.RemotePuts) {
    std::snprintf(
        Buf, sizeof(Buf),
        "scbuild: remote cache: %llu hit(s), %llu miss(es), %llu put(s)\n",
        static_cast<unsigned long long>(Stats.RemoteHits),
        static_cast<unsigned long long>(Stats.RemoteMisses),
        static_cast<unsigned long long>(Stats.RemotePuts));
    R.Out += Buf;
  }
  return R;
}

void sc::renderRunOutcome(RenderedOutcome &R, const ExecResult &Exec) {
  if (Exec.Trapped) {
    R.Err += "scbuild: trap: " + Exec.TrapReason + "\n";
    R.Code = 1;
    return;
  }
  char Buf[32];
  for (int64_t V : Exec.Output) {
    std::snprintf(Buf, sizeof(Buf), "%lld\n", static_cast<long long>(V));
    R.Out += Buf;
  }
  R.Code = static_cast<int>(Exec.ReturnValue.value_or(0) & 0xff);
}

//===----------------------------------------------------------------------===//
// BuildDaemon
//===----------------------------------------------------------------------===//

std::string sc::daemonSocketPath(const std::string &HostRoot,
                                 const std::string &OutDir) {
  return HostRoot + "/" + OutDir + "/.daemon.sock";
}

BuildDaemon::BuildDaemon(RealFileSystem &FS, DaemonConfig Config)
    : FS(FS), Config(std::move(Config)) {
  this->Config.Build.ExternalLock = true;
}

BuildDaemon::~BuildDaemon() {
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  // Lock (the daemon's lifetime lock) releases in its own destructor.
}

void BuildDaemon::chat(const char *Fmt, ...) {
  if (Config.Quiet)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
}

bool BuildDaemon::start(std::string *Err) {
  const std::string LockPath = Config.Build.OutDir + "/.lock";
  // The lifetime lock. Acquiring it also creates <OutDir> (exclusive
  // create makes parent directories), so the socket bind below has a
  // directory to land in.
  Lock = FileLock::acquire(FS, LockPath, Config.Build.LockTimeoutMs,
                           Config.Build.LockBackoffMs, "daemon");
  if (!Lock.held()) {
    if (Err) {
      *Err = "could not acquire '" + LockPath + "'";
      if (auto Owner = FileLock::probe(FS, LockPath); Owner && Owner->Alive)
        *Err += Owner->Tag == "daemon"
                    ? " — a daemon (pid " + std::to_string(Owner->Pid) +
                          ") already serves this tree"
                    : " — held by live process " + std::to_string(Owner->Pid);
    }
    return false;
  }
  // Holding the lock proves no live daemon owns this tree, so a
  // leftover socket file is debris from a dead one: remove it, or
  // bind() would fail with EADDRINUSE forever.
  SockPath = daemonSocketPath(FS.root(), Config.Build.OutDir);
  ::unlink(SockPath.c_str());
  std::string SockErr;
  Listener = UnixSocket::listenOn(SockPath, &SockErr);
  if (!Listener.valid()) {
    if (Err)
      *Err = "could not listen on '" + SockPath + "': " + SockErr;
    Lock = FileLock();
    SockPath.clear();
    return false;
  }
  Driver = std::make_unique<BuildDriver>(FS, Config.Build);
  chat("scbuildd: pid %ld serving '%s' (socket %s)\n",
       static_cast<long>(::getpid()), FS.root().c_str(), SockPath.c_str());
  return true;
}

std::string BuildDaemon::statusText() const {
  std::string T = "scbuildd: pid " + std::to_string(::getpid()) +
                  " serving '" + FS.root() + "', builds served " +
                  std::to_string(BuildsServed.load()) + "\n";
  if (LastExit.HasStats) {
    T += "scbuildd: last build: compiled " + std::to_string(LastExit.Compiled) +
         "/" + std::to_string(LastExit.Total) + ", interface scans " +
         std::to_string(LastExit.InterfaceScans) + " (cache hits " +
         std::to_string(LastExit.ScanCacheHits) + "), objects parsed " +
         std::to_string(LastExit.ObjectsParsed) + "\n";
    if (LastExit.RemoteHits || LastExit.RemoteMisses || LastExit.RemotePuts ||
        LastExit.RemoteErrors)
      T += "scbuildd: last build remote cache: hits " +
           std::to_string(LastExit.RemoteHits) + ", misses " +
           std::to_string(LastExit.RemoteMisses) + ", puts " +
           std::to_string(LastExit.RemotePuts) + ", errors " +
           std::to_string(LastExit.RemoteErrors) + "\n";
  }
  return T;
}

void BuildDaemon::handleBuild(UnixSocket &Conn, const DaemonRequest &Req) {
  const CompilerOptions &CO = Config.Build.Compiler;
  const bool Stateful =
      CO.Stateful.SkipMode != StatefulConfig::Mode::Stateless;
  if (Req.Opt != static_cast<int>(CO.Opt) ||
      Req.Mode != static_cast<int>(CO.Stateful.SkipMode) ||
      Req.Reuse != CO.Stateful.ReuseFunctionCode) {
    // The resident caches are only valid for the daemon's own
    // configuration; silently building with ours would not be the
    // build the user asked for. (A -j mismatch is fine: concurrency
    // never changes outputs.)
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon (pid " + std::to_string(::getpid()) +
             ") was started with a different compiler configuration; "
             "restart it with the flags you want, or drop --daemon\n";
    Conn.sendFrame(encodeFrame(E));
    DaemonFrame X;
    X.Code = 1;
    Conn.sendFrame(encodeFrame(X));
    return;
  }

  if (Req.Clean)
    Driver->clean();
  BuildStats Stats = Driver->build();
  BuildsServed.fetch_add(1);

  RenderedOutcome R = renderBuildOutcome(Stats, Stateful, Req.Quiet);
  if (Stats.Success && Req.Run) {
    VM Machine(*Driver->program());
    renderRunOutcome(R, Machine.run("main", Req.RunArgs));
  }

  if (!R.Err.empty()) {
    DaemonFrame F;
    F.Type = "err";
    F.Text = R.Err;
    Conn.sendFrame(encodeFrame(F));
  }
  if (!R.Out.empty()) {
    DaemonFrame F;
    F.Type = "out";
    F.Text = R.Out;
    Conn.sendFrame(encodeFrame(F));
  }
  DaemonFrame X;
  X.Code = R.Code;
  X.HasStats = true;
  X.Compiled = Stats.FilesCompiled;
  X.Total = Stats.FilesTotal;
  X.InterfaceScans = Stats.InterfaceScans;
  X.ScanCacheHits = Stats.ScanCacheHits;
  X.ObjectsParsed = Stats.ObjectsParsed;
  X.RemoteHits = Stats.RemoteHits;
  X.RemoteMisses = Stats.RemoteMisses;
  X.RemotePuts = Stats.RemotePuts;
  X.RemoteErrors = Stats.RemoteErrors;
  LastExit = X;
  Conn.sendFrame(encodeFrame(X));
}

void BuildDaemon::handle(UnixSocket &Conn) {
  std::string Payload;
  if (!Conn.recvFrame(Payload, /*TimeoutMs=*/5000))
    return; // Client vanished or stalled; drop the connection.
  DaemonRequest Req;
  if (!decodeRequest(Payload, Req)) {
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon received a malformed request\n";
    Conn.sendFrame(encodeFrame(E));
    DaemonFrame X;
    X.Code = 2;
    Conn.sendFrame(encodeFrame(X));
    return;
  }

  if (Req.Verb == "build") {
    handleBuild(Conn, Req);
  } else if (Req.Verb == "status") {
    DaemonFrame F;
    F.Type = "out";
    F.Text = statusText();
    Conn.sendFrame(encodeFrame(F));
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X));
  } else if (Req.Verb == "explain") {
    bool OK = false;
    std::string Text = explainQuery(FS, Config.Build.OutDir, Req.Query, &OK);
    DaemonFrame F;
    F.Type = OK ? "out" : "err";
    F.Text = Text;
    Conn.sendFrame(encodeFrame(F));
    DaemonFrame X;
    X.Code = OK ? 0 : 1;
    Conn.sendFrame(encodeFrame(X));
  } else if (Req.Verb == "shutdown") {
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X));
    chat("scbuildd: shutdown requested, exiting\n");
    Stop.store(true);
  } else {
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon does not understand verb '" + Req.Verb +
             "'\n";
    Conn.sendFrame(encodeFrame(E));
    DaemonFrame X;
    X.Code = 2;
    Conn.sendFrame(encodeFrame(X));
  }
}

int BuildDaemon::serve() {
  using Clock = std::chrono::steady_clock;
  auto LastActivity = Clock::now();
  while (!Stop.load()) {
    if (Config.IdleTimeoutMs &&
        Clock::now() - LastActivity >=
            std::chrono::milliseconds(Config.IdleTimeoutMs)) {
      chat("scbuildd: idle for %u ms, exiting\n", Config.IdleTimeoutMs);
      break;
    }
    bool TimedOut = false;
    UnixSocket Conn = Listener.accept(/*TimeoutMs=*/200, &TimedOut);
    if (!Conn.valid())
      continue; // Timeout slice (or transient accept error): re-poll.
    handle(Conn);
    // With a streaming sink attached (scbuildd --trace-stream), push
    // this request's spans out now — the trace stays live and readable
    // while the daemon keeps running.
    if (TraceRecorder *T = Config.Build.Compiler.Trace)
      T->flush();
    LastActivity = Clock::now();
  }
  // Stop accepting the moment serving ends: close the listener and
  // remove the socket file so clients fail over to in-process builds
  // instead of queueing on a daemon that will never answer. (The
  // destructor repeats both; they are idempotent.)
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  return 0;
}
