//===- build_sys/Daemon.cpp - Resident build daemon ----------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "build_sys/Daemon.h"

#include "build_sys/Explain.h"
#include "support/FileSystem.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace sc;

//===----------------------------------------------------------------------===//
// Flat-JSON codec
//
// The wire format is a single-level JSON object whose values are
// strings, integers, booleans, or arrays of integers — enough for the
// protocol, small enough to hand-roll, and readable with `socat` when
// debugging. The decoder skips unknown keys so the protocol can grow.
//===----------------------------------------------------------------------===//

namespace {

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

/// Cursor over a JSON text. Parse failures set Bad; every accessor is a
/// no-op once Bad, so callers check once at the end.
struct JsonCursor {
  const std::string &S;
  size_t I = 0;
  bool Bad = false;

  explicit JsonCursor(const std::string &S) : S(S) {}

  void ws() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\n' ||
                            S[I] == '\r'))
      ++I;
  }
  bool eat(char C) {
    ws();
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  void expect(char C) {
    if (!eat(C))
      Bad = true;
  }
  char peek() {
    ws();
    return I < S.size() ? S[I] : '\0';
  }

  std::string parseString() {
    std::string Out;
    expect('"');
    while (!Bad && I < S.size() && S[I] != '"') {
      char C = S[I++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (I >= S.size()) {
        Bad = true;
        break;
      }
      char E = S[I++];
      switch (E) {
      case '"':  Out += '"';  break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/';  break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'u': {
        if (I + 4 > S.size()) {
          Bad = true;
          break;
        }
        unsigned V = 0;
        for (int K = 0; K != 4; ++K) {
          char H = S[I++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            Bad = true;
        }
        // The encoder only emits \u00XX control escapes; anything else
        // is clamped into one byte, which is fine for this protocol.
        Out += static_cast<char>(V & 0xff);
        break;
      }
      default:
        Bad = true;
      }
    }
    expect('"');
    return Out;
  }

  int64_t parseInt() {
    ws();
    bool Neg = eat('-');
    ws();
    if (I >= S.size() || S[I] < '0' || S[I] > '9') {
      Bad = true;
      return 0;
    }
    uint64_t V = 0;
    while (I < S.size() && S[I] >= '0' && S[I] <= '9')
      V = V * 10 + static_cast<uint64_t>(S[I++] - '0');
    return Neg ? -static_cast<int64_t>(V) : static_cast<int64_t>(V);
  }

  bool parseBool() {
    ws();
    if (S.compare(I, 4, "true") == 0) {
      I += 4;
      return true;
    }
    if (S.compare(I, 5, "false") == 0) {
      I += 5;
      return false;
    }
    Bad = true;
    return false;
  }

  std::vector<int64_t> parseIntArray() {
    std::vector<int64_t> Out;
    expect('[');
    if (eat(']'))
      return Out;
    do
      Out.push_back(parseInt());
    while (!Bad && eat(','));
    expect(']');
    return Out;
  }

  /// Skips one value of any supported shape (for unknown keys).
  void skipValue() {
    char C = peek();
    if (C == '"')
      parseString();
    else if (C == '[')
      parseIntArray();
    else if (C == 't' || C == 'f')
      parseBool();
    else
      parseInt();
  }
};

/// Walks a flat object, invoking \p OnKey(cursor, key) per entry.
template <typename Fn> bool parseFlatObject(const std::string &Json, Fn OnKey) {
  JsonCursor C(Json);
  C.expect('{');
  if (!C.eat('}')) {
    do {
      std::string Key = C.parseString();
      C.expect(':');
      if (C.Bad)
        break;
      OnKey(C, Key);
    } while (!C.Bad && C.eat(','));
    C.expect('}');
  }
  return !C.Bad;
}

} // namespace

std::string sc::encodeRequest(const DaemonRequest &R) {
  std::string J = "{\"verb\":";
  appendJsonString(J, R.Verb);
  J += ",\"clean\":" + std::string(R.Clean ? "true" : "false");
  J += ",\"quiet\":" + std::string(R.Quiet ? "true" : "false");
  J += ",\"run\":" + std::string(R.Run ? "true" : "false");
  J += ",\"runArgs\":[";
  for (size_t I = 0; I != R.RunArgs.size(); ++I)
    J += (I ? "," : "") + std::to_string(R.RunArgs[I]);
  J += "]";
  J += ",\"opt\":" + std::to_string(R.Opt);
  J += ",\"mode\":" + std::to_string(R.Mode);
  J += ",\"reuse\":" + std::string(R.Reuse ? "true" : "false");
  J += ",\"jobs\":" + std::to_string(R.Jobs);
  J += ",\"query\":";
  appendJsonString(J, R.Query);
  J += "}";
  return J;
}

bool sc::decodeRequest(const std::string &Json, DaemonRequest &R) {
  return parseFlatObject(Json, [&](JsonCursor &C, const std::string &Key) {
    if (Key == "verb")
      R.Verb = C.parseString();
    else if (Key == "clean")
      R.Clean = C.parseBool();
    else if (Key == "quiet")
      R.Quiet = C.parseBool();
    else if (Key == "run")
      R.Run = C.parseBool();
    else if (Key == "runArgs")
      R.RunArgs = C.parseIntArray();
    else if (Key == "opt")
      R.Opt = static_cast<int>(C.parseInt());
    else if (Key == "mode")
      R.Mode = static_cast<int>(C.parseInt());
    else if (Key == "reuse")
      R.Reuse = C.parseBool();
    else if (Key == "jobs")
      R.Jobs = static_cast<unsigned>(C.parseInt());
    else if (Key == "query")
      R.Query = C.parseString();
    else
      C.skipValue();
  });
}

std::string sc::encodeFrame(const DaemonFrame &F) {
  std::string J = "{\"type\":";
  appendJsonString(J, F.Type);
  J += ",\"text\":";
  appendJsonString(J, F.Text);
  J += ",\"code\":" + std::to_string(F.Code);
  if (F.HasStats) {
    J += ",\"compiled\":" + std::to_string(F.Compiled);
    J += ",\"total\":" + std::to_string(F.Total);
    J += ",\"scans\":" + std::to_string(F.InterfaceScans);
    J += ",\"scanHits\":" + std::to_string(F.ScanCacheHits);
    J += ",\"parses\":" + std::to_string(F.ObjectsParsed);
  }
  J += "}";
  return J;
}

bool sc::decodeFrame(const std::string &Json, DaemonFrame &F) {
  return parseFlatObject(Json, [&](JsonCursor &C, const std::string &Key) {
    if (Key == "type")
      F.Type = C.parseString();
    else if (Key == "text")
      F.Text = C.parseString();
    else if (Key == "code")
      F.Code = static_cast<int>(C.parseInt());
    else if (Key == "compiled") {
      F.Compiled = static_cast<unsigned>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "total") {
      F.Total = static_cast<unsigned>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "scans") {
      F.InterfaceScans = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "scanHits") {
      F.ScanCacheHits = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else if (Key == "parses") {
      F.ObjectsParsed = static_cast<uint64_t>(C.parseInt());
      F.HasStats = true;
    } else
      C.skipValue();
  });
}

//===----------------------------------------------------------------------===//
// Shared output rendering
//===----------------------------------------------------------------------===//

RenderedOutcome sc::renderBuildOutcome(const BuildStats &Stats, bool Stateful,
                                       bool Quiet) {
  RenderedOutcome R;
  for (const std::string &W : Stats.Warnings)
    R.Err += "scbuild: warning: " + W + "\n";
  if (!Stats.Success) {
    R.Err += Stats.ErrorText + "\n";
    R.Code = 1;
    return R;
  }
  if (Quiet)
    return R;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "scbuild: %u/%u files compiled in %.1f ms "
                "(scan %.1f, compile %.1f, link %.1f, state %.1f)\n",
                Stats.FilesCompiled, Stats.FilesTotal, Stats.TotalUs / 1000,
                Stats.ScanUs / 1000, Stats.CompileUs / 1000,
                Stats.LinkUs / 1000, Stats.StateIOUs / 1000);
  R.Out += Buf;
  if (Stateful) {
    std::snprintf(
        Buf, sizeof(Buf),
        "scbuild: passes run %llu, skipped %llu; "
        "functions reused %llu; state db %.1f KB\n",
        static_cast<unsigned long long>(Stats.Skip.PassesRun),
        static_cast<unsigned long long>(Stats.Skip.PassesSkipped),
        static_cast<unsigned long long>(Stats.Skip.FunctionsReused),
        Stats.StateDBBytes / 1024.0);
    R.Out += Buf;
  }
  return R;
}

void sc::renderRunOutcome(RenderedOutcome &R, const ExecResult &Exec) {
  if (Exec.Trapped) {
    R.Err += "scbuild: trap: " + Exec.TrapReason + "\n";
    R.Code = 1;
    return;
  }
  char Buf[32];
  for (int64_t V : Exec.Output) {
    std::snprintf(Buf, sizeof(Buf), "%lld\n", static_cast<long long>(V));
    R.Out += Buf;
  }
  R.Code = static_cast<int>(Exec.ReturnValue.value_or(0) & 0xff);
}

//===----------------------------------------------------------------------===//
// BuildDaemon
//===----------------------------------------------------------------------===//

std::string sc::daemonSocketPath(const std::string &HostRoot,
                                 const std::string &OutDir) {
  return HostRoot + "/" + OutDir + "/.daemon.sock";
}

BuildDaemon::BuildDaemon(RealFileSystem &FS, DaemonConfig Config)
    : FS(FS), Config(std::move(Config)) {
  this->Config.Build.ExternalLock = true;
}

BuildDaemon::~BuildDaemon() {
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  // Lock (the daemon's lifetime lock) releases in its own destructor.
}

void BuildDaemon::chat(const char *Fmt, ...) {
  if (Config.Quiet)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
}

bool BuildDaemon::start(std::string *Err) {
  const std::string LockPath = Config.Build.OutDir + "/.lock";
  // The lifetime lock. Acquiring it also creates <OutDir> (exclusive
  // create makes parent directories), so the socket bind below has a
  // directory to land in.
  Lock = FileLock::acquire(FS, LockPath, Config.Build.LockTimeoutMs,
                           Config.Build.LockBackoffMs, "daemon");
  if (!Lock.held()) {
    if (Err) {
      *Err = "could not acquire '" + LockPath + "'";
      if (auto Owner = FileLock::probe(FS, LockPath); Owner && Owner->Alive)
        *Err += Owner->Tag == "daemon"
                    ? " — a daemon (pid " + std::to_string(Owner->Pid) +
                          ") already serves this tree"
                    : " — held by live process " + std::to_string(Owner->Pid);
    }
    return false;
  }
  // Holding the lock proves no live daemon owns this tree, so a
  // leftover socket file is debris from a dead one: remove it, or
  // bind() would fail with EADDRINUSE forever.
  SockPath = daemonSocketPath(FS.root(), Config.Build.OutDir);
  ::unlink(SockPath.c_str());
  std::string SockErr;
  Listener = UnixSocket::listenOn(SockPath, &SockErr);
  if (!Listener.valid()) {
    if (Err)
      *Err = "could not listen on '" + SockPath + "': " + SockErr;
    Lock = FileLock();
    SockPath.clear();
    return false;
  }
  Driver = std::make_unique<BuildDriver>(FS, Config.Build);
  chat("scbuildd: pid %ld serving '%s' (socket %s)\n",
       static_cast<long>(::getpid()), FS.root().c_str(), SockPath.c_str());
  return true;
}

std::string BuildDaemon::statusText() const {
  std::string T = "scbuildd: pid " + std::to_string(::getpid()) +
                  " serving '" + FS.root() + "', builds served " +
                  std::to_string(BuildsServed.load()) + "\n";
  if (LastExit.HasStats)
    T += "scbuildd: last build: compiled " + std::to_string(LastExit.Compiled) +
         "/" + std::to_string(LastExit.Total) + ", interface scans " +
         std::to_string(LastExit.InterfaceScans) + " (cache hits " +
         std::to_string(LastExit.ScanCacheHits) + "), objects parsed " +
         std::to_string(LastExit.ObjectsParsed) + "\n";
  return T;
}

void BuildDaemon::handleBuild(UnixSocket &Conn, const DaemonRequest &Req) {
  const CompilerOptions &CO = Config.Build.Compiler;
  const bool Stateful =
      CO.Stateful.SkipMode != StatefulConfig::Mode::Stateless;
  if (Req.Opt != static_cast<int>(CO.Opt) ||
      Req.Mode != static_cast<int>(CO.Stateful.SkipMode) ||
      Req.Reuse != CO.Stateful.ReuseFunctionCode) {
    // The resident caches are only valid for the daemon's own
    // configuration; silently building with ours would not be the
    // build the user asked for. (A -j mismatch is fine: concurrency
    // never changes outputs.)
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon (pid " + std::to_string(::getpid()) +
             ") was started with a different compiler configuration; "
             "restart it with the flags you want, or drop --daemon\n";
    Conn.sendFrame(encodeFrame(E));
    DaemonFrame X;
    X.Code = 1;
    Conn.sendFrame(encodeFrame(X));
    return;
  }

  if (Req.Clean)
    Driver->clean();
  BuildStats Stats = Driver->build();
  BuildsServed.fetch_add(1);

  RenderedOutcome R = renderBuildOutcome(Stats, Stateful, Req.Quiet);
  if (Stats.Success && Req.Run) {
    VM Machine(*Driver->program());
    renderRunOutcome(R, Machine.run("main", Req.RunArgs));
  }

  if (!R.Err.empty()) {
    DaemonFrame F;
    F.Type = "err";
    F.Text = R.Err;
    Conn.sendFrame(encodeFrame(F));
  }
  if (!R.Out.empty()) {
    DaemonFrame F;
    F.Type = "out";
    F.Text = R.Out;
    Conn.sendFrame(encodeFrame(F));
  }
  DaemonFrame X;
  X.Code = R.Code;
  X.HasStats = true;
  X.Compiled = Stats.FilesCompiled;
  X.Total = Stats.FilesTotal;
  X.InterfaceScans = Stats.InterfaceScans;
  X.ScanCacheHits = Stats.ScanCacheHits;
  X.ObjectsParsed = Stats.ObjectsParsed;
  LastExit = X;
  Conn.sendFrame(encodeFrame(X));
}

void BuildDaemon::handle(UnixSocket &Conn) {
  std::string Payload;
  if (!Conn.recvFrame(Payload, /*TimeoutMs=*/5000))
    return; // Client vanished or stalled; drop the connection.
  DaemonRequest Req;
  if (!decodeRequest(Payload, Req)) {
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon received a malformed request\n";
    Conn.sendFrame(encodeFrame(E));
    DaemonFrame X;
    X.Code = 2;
    Conn.sendFrame(encodeFrame(X));
    return;
  }

  if (Req.Verb == "build") {
    handleBuild(Conn, Req);
  } else if (Req.Verb == "status") {
    DaemonFrame F;
    F.Type = "out";
    F.Text = statusText();
    Conn.sendFrame(encodeFrame(F));
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X));
  } else if (Req.Verb == "explain") {
    bool OK = false;
    std::string Text = explainQuery(FS, Config.Build.OutDir, Req.Query, &OK);
    DaemonFrame F;
    F.Type = OK ? "out" : "err";
    F.Text = Text;
    Conn.sendFrame(encodeFrame(F));
    DaemonFrame X;
    X.Code = OK ? 0 : 1;
    Conn.sendFrame(encodeFrame(X));
  } else if (Req.Verb == "shutdown") {
    DaemonFrame X;
    Conn.sendFrame(encodeFrame(X));
    chat("scbuildd: shutdown requested, exiting\n");
    Stop.store(true);
  } else {
    DaemonFrame E;
    E.Type = "err";
    E.Text = "scbuild: error: daemon does not understand verb '" + Req.Verb +
             "'\n";
    Conn.sendFrame(encodeFrame(E));
    DaemonFrame X;
    X.Code = 2;
    Conn.sendFrame(encodeFrame(X));
  }
}

int BuildDaemon::serve() {
  using Clock = std::chrono::steady_clock;
  auto LastActivity = Clock::now();
  while (!Stop.load()) {
    if (Config.IdleTimeoutMs &&
        Clock::now() - LastActivity >=
            std::chrono::milliseconds(Config.IdleTimeoutMs)) {
      chat("scbuildd: idle for %u ms, exiting\n", Config.IdleTimeoutMs);
      break;
    }
    bool TimedOut = false;
    UnixSocket Conn = Listener.accept(/*TimeoutMs=*/200, &TimedOut);
    if (!Conn.valid())
      continue; // Timeout slice (or transient accept error): re-poll.
    handle(Conn);
    // With a streaming sink attached (scbuildd --trace-stream), push
    // this request's spans out now — the trace stays live and readable
    // while the daemon keeps running.
    if (TraceRecorder *T = Config.Build.Compiler.Trace)
      T->flush();
    LastActivity = Clock::now();
  }
  // Stop accepting the moment serving ends: close the listener and
  // remove the socket file so clients fail over to in-process builds
  // instead of queueing on a daemon that will never answer. (The
  // destructor repeats both; they are idempotent.)
  Listener.close();
  if (!SockPath.empty())
    ::unlink(SockPath.c_str());
  return 0;
}
