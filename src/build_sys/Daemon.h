//===- build_sys/Daemon.h - Multi-client build service ----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident build service: one long-lived BuildDriver parked behind
/// a Unix-domain socket (`<OutDir>/.daemon.sock`), serving build
/// requests from many concurrent `scbuild --daemon` clients. Because
/// the driver never dies between requests, the interface-scan cache,
/// the parsed-object cache, and the in-memory compiler state stay warm
/// — a no-op rebuild through the daemon re-scans nothing and re-parses
/// nothing (BuildStats::InterfaceScans == 0, ObjectsParsed == 0).
///
/// Service model (one accept loop, many clients):
///
///  * Each accepted connection gets its own thread, which reads exactly
///    one request (under a total read deadline — a half-frame stall
///    cannot pin the thread) and answers it. `status` / `explain` /
///    `shutdown` are answered directly; `build` requests go through the
///    admission queue.
///  * Builds are serialized on ONE builder thread against the resident
///    driver (each build is internally parallel via Jobs); pending
///    requests wait in a bounded FIFO queue.
///  * Admission control: when the queue already holds MaxQueue pending
///    builds, the request is answered immediately with a structured
///    `busy` frame carrying the queue depth and a suggested
///    retry-after — never a hung socket.
///  * Coalescing: a build request identical to one already *pending*
///    (same Clean flag and compiler config; the build has not started,
///    so both will observe the same workspace state) joins it as an
///    extra waiter instead of queueing a second build. One compile
///    wave fans its BuildOutcome out to every waiter; each join counts
///    as `daemon.coalesced`.
///  * Per-request deadlines: a request still queued when
///    RequestTimeoutMs elapses is cancelled with a clean frame pair
///    (`err` + `exit` code 4) instead of building stale work.
///  * Disconnect resilience: a client that dies mid-build neither
///    aborts nor wedges the build — the build completes (its artifacts
///    and state persist), the failed fan-out is counted, and the
///    connection thread is reaped.
///  * Graceful drain: shutdown (verb, signal, or requestStop()) stops
///    accepting, lets the in-flight build finish and fan out, cancels
///    queued builds deterministically (`exit` code 5), joins every
///    thread, flushes the trace sink, and removes the socket.
///
/// Wire protocol (shared with DaemonClient): one request per
/// connection. Each message is a 4-byte little-endian length followed
/// by a flat JSON object (see UnixSocket framing). The client sends one
/// DaemonRequest; the daemon answers with a stream of DaemonFrames —
/// any number of `out` / `err` text frames (the client copies them to
/// its stdout/stderr verbatim, which is what makes daemon output
/// byte-identical to in-process output) terminated by exactly one
/// `exit` frame carrying the exit code and the build's warm-cache
/// counters — or, under overload, by a single `busy` frame.
///
/// Locking: the daemon acquires the advisory build lock `<OutDir>/.lock`
/// once at start() with tag "daemon" and holds it until it exits; the
/// resident driver runs with BuildOptions::ExternalLock. A plain
/// `scbuild` pointed at the same tree recognizes the daemon-tagged lock
/// and degrades read-only with a diagnostic naming the daemon instead
/// of timing out.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_DAEMON_H
#define SC_BUILD_SYS_DAEMON_H

#include "build_sys/BuildSystem.h"
#include "support/FileLock.h"
#include "support/Socket.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sc {

class RealFileSystem;

//===----------------------------------------------------------------------===//
// Wire messages
//===----------------------------------------------------------------------===//

/// One client request. Flat-JSON encoded; unknown keys are ignored so
/// the protocol can grow without breaking older daemons.
struct DaemonRequest {
  /// "build" | "status" | "metrics" | "explain" | "shutdown". The
  /// `metrics` verb answers with one `out` frame holding the registry
  /// rendered in Prometheus text exposition format (MetricsTextExporter).
  std::string Verb = "build";

  // -- build --
  bool Clean = false;
  bool Quiet = false;
  bool Run = false;
  std::vector<int64_t> RunArgs;

  /// Requested compiler configuration, for the config-compatibility
  /// check: the resident driver was created with one configuration and
  /// its caches are only valid for it. Opt is the OptLevel as an int
  /// (default O2), Mode the StatefulConfig::Mode as an int (default
  /// HeuristicSkip — the scbuild default).
  int Opt = 2;
  int Mode = 2;
  bool Reuse = false;

  /// Requested -j. A mismatch is tolerated (concurrency does not change
  /// outputs — the build is byte-identical at any Jobs value).
  unsigned Jobs = 0;

  // -- explain --
  std::string Query;
};

/// One daemon response frame.
struct DaemonFrame {
  /// "out" (copy Text to stdout), "err" (copy Text to stderr), "busy"
  /// (admission rejected: QueueDepth + RetryAfterMs; terminal), or
  /// "exit" (final frame: Code + counters; Text unused).
  std::string Type = "exit";
  std::string Text;
  int Code = 0;

  // Well-known exit codes beyond the build's own 0/1:
  //   2 = protocol error (malformed request / unknown verb)
  //   4 = request timed out in the queue (RequestTimeoutMs)
  //   5 = cancelled by daemon shutdown drain

  // -- busy frames (admission control) --
  /// Builds already pending when the request was rejected.
  uint32_t QueueDepth = 0;
  /// Suggested client backoff before retrying, in milliseconds.
  uint32_t RetryAfterMs = 0;

  // Warm-cache counters of the build this frame terminates (exit
  // frames of build requests only; zero otherwise).
  bool HasStats = false;
  unsigned Compiled = 0;
  unsigned Total = 0;
  uint64_t InterfaceScans = 0;
  uint64_t ScanCacheHits = 0;
  uint64_t ObjectsParsed = 0;

  /// True when this request shared a compile wave with earlier
  /// identical pending requests instead of building on its own.
  bool Coalesced = false;

  // Remote object-cache counters (BuildOptions::RemoteCache; all zero
  // when the tier is off).
  uint64_t RemoteHits = 0;
  uint64_t RemoteMisses = 0;
  uint64_t RemotePuts = 0;
  uint64_t RemoteErrors = 0;
};

std::string encodeRequest(const DaemonRequest &R);
bool decodeRequest(const std::string &Json, DaemonRequest &R);
std::string encodeFrame(const DaemonFrame &F);
bool decodeFrame(const std::string &Json, DaemonFrame &F);

//===----------------------------------------------------------------------===//
// Shared output rendering
//===----------------------------------------------------------------------===//

/// The user-facing text of one build outcome, split by stream.
struct RenderedOutcome {
  std::string Out; ///< Bytes for stdout.
  std::string Err; ///< Bytes for stderr.
  int Code = 0;    ///< Process exit code.
};

/// Renders warnings, error text, and the summary lines exactly as
/// `scbuild` prints them. Both the in-process CLI path and the daemon
/// go through this one function, so their output is byte-identical by
/// construction (same format strings, same ordering per stream).
RenderedOutcome renderBuildOutcome(const BuildStats &Stats, bool Stateful,
                                   bool Quiet);

/// Appends the `--run` outcome (trap text, printed output values, exit
/// code) to \p R, again shared verbatim between CLI and daemon.
struct ExecResult;
void renderRunOutcome(RenderedOutcome &R, const ExecResult &Exec);

//===----------------------------------------------------------------------===//
// Daemon
//===----------------------------------------------------------------------===//

/// Host-filesystem path of the daemon socket for a project rooted at
/// \p HostRoot with build directory \p OutDir: `<root>/<out>/.daemon.sock`.
std::string daemonSocketPath(const std::string &HostRoot,
                             const std::string &OutDir);

struct DaemonConfig {
  /// Configuration of the resident driver. ExternalLock is forced on.
  BuildOptions Build;

  /// Exit after this many milliseconds without a request (0 = never).
  unsigned IdleTimeoutMs = 0;

  /// Admission control: build requests arriving while this many are
  /// already pending (queued, not counting the in-flight build) are
  /// answered with a `busy` frame instead of queueing.
  unsigned MaxQueue = 16;

  /// A build request still waiting in the queue after this many
  /// milliseconds is cancelled with a clean frame pair (exit code 4).
  /// 0 = requests wait forever.
  unsigned RequestTimeoutMs = 0;

  /// Total deadline for reading one request frame off an accepted
  /// connection, and for writing each response frame back. A stalled
  /// or half-dead client can hold a connection thread at most this
  /// long per frame.
  unsigned IoTimeoutMs = 10000;

  /// Test/bench hook: sleep this long at the start of every build,
  /// creating a deterministic service-time floor so queues and
  /// coalescing windows actually form on fast machines.
  unsigned HoldMs = 0;

  /// Test hook: invoked on the builder thread immediately before each
  /// build (after HoldMs). Lets tests hold the builder at a barrier.
  std::function<void()> PreBuildHook;

  /// When non-empty: host path that receives the Prometheus text
  /// rendering of the metrics registry, rewritten atomically
  /// (temp + rename) from the accept loop every MetricsIntervalMs and
  /// once more on drain — a scrape-file for collectors that cannot
  /// speak the socket protocol.
  std::string MetricsOut;

  /// Period of the --metrics-out dump, in milliseconds.
  unsigned MetricsIntervalMs = 1000;

  /// Suppress the daemon's own lifecycle chatter on stderr.
  bool Quiet = false;
};

/// Point-in-time service counters (also published to the configured
/// MetricsRegistry as `daemon.*` and printed by the `status` verb).
struct DaemonServiceStats {
  uint64_t BuildsServed = 0;     ///< build() calls completed.
  uint64_t RequestsServed = 0;   ///< Build requests answered (incl. coalesced).
  uint64_t Coalesced = 0;        ///< Requests that joined a pending build.
  uint64_t BusyRejections = 0;   ///< Requests bounced by admission control.
  uint64_t RequestTimeouts = 0;  ///< Requests cancelled by RequestTimeoutMs.
  uint64_t Disconnects = 0;      ///< Clients gone before their result.
  uint64_t CancelledOnDrain = 0; ///< Queued requests cancelled by shutdown.
  uint32_t QueueDepth = 0;       ///< Pending builds right now.
  uint32_t QueueHighWater = 0;   ///< Max pending builds ever observed.
  uint32_t ActiveConnections = 0;///< Connection threads alive right now.
};

/// The resident build service. One accept loop, one connection thread
/// per client, one builder thread owning the resident BuildDriver (so
/// two clients never race the driver; builds are internally parallel
/// via Jobs).
class BuildDaemon {
public:
  /// \p FS must outlive the daemon. The socket binds at
  /// daemonSocketPath(FS.root(), Config.Build.OutDir).
  BuildDaemon(RealFileSystem &FS, DaemonConfig Config);
  ~BuildDaemon();

  BuildDaemon(const BuildDaemon &) = delete;
  BuildDaemon &operator=(const BuildDaemon &) = delete;

  /// Acquires the build lock (tag "daemon") and binds the socket.
  /// A stale socket file is removed only after the lock is held — the
  /// lock proves no live daemon owns it. False + \p Err on failure
  /// (most importantly: another live daemon already serves this tree).
  bool start(std::string *Err);

  /// Serves requests until a shutdown request, the idle timeout, or
  /// requestStop(), then drains gracefully: stops accepting, finishes
  /// the in-flight build, cancels queued builds with clean frames,
  /// joins every thread, and flushes the trace sink. Returns the
  /// process exit code (0 = clean).
  int serve();

  /// Asks serve() to drain and return (signal-safe; callable from any
  /// thread).
  void requestStop() { Stop.store(true); }

  /// Host path of the bound socket (valid after start()).
  const std::string &socketPath() const { return SockPath; }

  /// Builds served so far (for tests and `status`).
  uint64_t buildsServed() const { return Svc.BuildsServed.load(); }

  /// Snapshot of the service counters (tests, benches).
  DaemonServiceStats serviceStats() const;

  /// BuildStats of the most recent completed build (tests; also the
  /// source of `scbuildd --report-json`).
  BuildStats lastBuildStats() const;

private:
  //===--- Admission queue ------------------------------------------------===//

  /// One pending compile wave and everyone waiting on it.
  struct BuildJob {
    // Coalescing key: two requests may share a wave only when the
    // driver would do identical work for both.
    bool Clean = false;

    /// Per-waiter request parameters (Quiet/Run/RunArgs differ per
    /// client; they shape rendering, not the build).
    std::vector<DaemonRequest> Waiters;
    /// Rendered result per waiter, 1:1 with Waiters, filled by the
    /// builder thread before Done flips.
    std::vector<RenderedOutcome> Outcomes;
    std::vector<DaemonFrame> ExitFrames;

    std::chrono::steady_clock::time_point EnqueuedAt;
    bool Done = false;
    bool Cancelled = false;
    int CancelCode = 0;
    std::string CancelText;
  };

  void builderMain();
  void connectionMain(UnixSocket Conn);
  void handleBuildRequest(UnixSocket &Conn, const DaemonRequest &Req);
  void runJob(const std::shared_ptr<BuildJob> &Job);
  void cancelJob(BuildJob &Job, int Code, const std::string &Text);
  /// Streams one waiter's frames to its client; false when the client
  /// is gone (counted as a disconnect).
  bool streamWaiter(UnixSocket &Conn, const RenderedOutcome &R,
                    const DaemonFrame &Exit);
  void reapConnections(bool JoinAll);
  std::string statusText() const;
  /// Prometheus text rendering of the registry, with gauges refreshed
  /// at render time (the same staleness rule statusText follows).
  std::string metricsText();
  /// Atomic (temp + rename) rewrite of Config.MetricsOut.
  void dumpMetricsFile();
  void publishGauges();
  void chat(const char *Fmt, ...);

  RealFileSystem &FS;
  DaemonConfig Config;
  std::string SockPath;
  FileLock Lock;
  UnixSocket Listener;
  std::unique_ptr<BuildDriver> Driver;
  std::atomic<bool> Stop{false};

  /// Queue state. Mu guards Queue, Draining, LastExit, LastStats, and
  /// every BuildJob's fields; JobsCV wakes the builder, DoneCV wakes
  /// waiters (broadcast — waiter counts are small).
  mutable std::mutex Mu;
  std::condition_variable JobsCV;
  std::condition_variable DoneCV;
  std::deque<std::shared_ptr<BuildJob>> Queue;
  bool Draining = false;
  std::thread Builder;

  /// Connection threads, reaped opportunistically from the accept
  /// loop and fully joined on drain.
  struct Connection {
    std::thread T;
    std::atomic<bool> Finished{false};
  };
  std::list<Connection> Connections;

  /// Bumped on every served request; the accept loop uses it to reset
  /// the idle clock (accept alone also counts as activity).
  std::atomic<uint64_t> ActivityTick{0};

  /// Service counters (atomics: bumped from connection threads and the
  /// builder, read by status from yet other threads).
  struct {
    std::atomic<uint64_t> BuildsServed{0};
    std::atomic<uint64_t> RequestsServed{0};
    std::atomic<uint64_t> Coalesced{0};
    std::atomic<uint64_t> BusyRejections{0};
    std::atomic<uint64_t> RequestTimeouts{0};
    std::atomic<uint64_t> Disconnects{0};
    std::atomic<uint64_t> CancelledOnDrain{0};
    std::atomic<uint32_t> QueueHighWater{0};
    std::atomic<uint32_t> ActiveConnections{0};
  } Svc;

  DaemonFrame LastExit; ///< Exit frame of the most recent build (Mu).
  BuildStats LastStats; ///< Stats of the most recent build (Mu).
};

} // namespace sc

#endif // SC_BUILD_SYS_DAEMON_H
