//===- build_sys/Daemon.h - Resident build daemon ---------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident build daemon: one long-lived BuildDriver parked behind
/// a Unix-domain socket (`<OutDir>/.daemon.sock`), serving build
/// requests from `scbuild --daemon` clients. Because the driver never
/// dies between requests, the interface-scan cache, the parsed-object
/// cache, and the in-memory compiler state stay warm — a no-op rebuild
/// through the daemon re-scans nothing and re-parses nothing
/// (BuildStats::InterfaceScans == 0, ObjectsParsed == 0).
///
/// Wire protocol (shared with DaemonClient): one request per
/// connection. Each message is a 4-byte little-endian length followed
/// by a flat JSON object (see UnixSocket framing). The client sends one
/// DaemonRequest; the daemon answers with a stream of DaemonFrames —
/// any number of `out` / `err` text frames (the client copies them to
/// its stdout/stderr verbatim, which is what makes daemon output
/// byte-identical to in-process output) terminated by exactly one
/// `exit` frame carrying the exit code and the build's warm-cache
/// counters.
///
/// Locking: the daemon acquires the advisory build lock `<OutDir>/.lock`
/// once at start() with tag "daemon" and holds it until it exits; the
/// resident driver runs with BuildOptions::ExternalLock. A plain
/// `scbuild` pointed at the same tree recognizes the daemon-tagged lock
/// and degrades read-only with a diagnostic naming the daemon instead
/// of timing out.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_DAEMON_H
#define SC_BUILD_SYS_DAEMON_H

#include "build_sys/BuildSystem.h"
#include "support/FileLock.h"
#include "support/Socket.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sc {

class RealFileSystem;

//===----------------------------------------------------------------------===//
// Wire messages
//===----------------------------------------------------------------------===//

/// One client request. Flat-JSON encoded; unknown keys are ignored so
/// the protocol can grow without breaking older daemons.
struct DaemonRequest {
  /// "build" | "status" | "explain" | "shutdown".
  std::string Verb = "build";

  // -- build --
  bool Clean = false;
  bool Quiet = false;
  bool Run = false;
  std::vector<int64_t> RunArgs;

  /// Requested compiler configuration, for the config-compatibility
  /// check: the resident driver was created with one configuration and
  /// its caches are only valid for it. Opt is the OptLevel as an int
  /// (default O2), Mode the StatefulConfig::Mode as an int (default
  /// HeuristicSkip — the scbuild default).
  int Opt = 2;
  int Mode = 2;
  bool Reuse = false;

  /// Requested -j. A mismatch is tolerated (concurrency does not change
  /// outputs — the build is byte-identical at any Jobs value).
  unsigned Jobs = 0;

  // -- explain --
  std::string Query;
};

/// One daemon response frame.
struct DaemonFrame {
  /// "out" (copy Text to stdout), "err" (copy Text to stderr), or
  /// "exit" (final frame: Code + counters; Text unused).
  std::string Type = "exit";
  std::string Text;
  int Code = 0;

  // Warm-cache counters of the build this frame terminates (exit
  // frames of build requests only; zero otherwise).
  bool HasStats = false;
  unsigned Compiled = 0;
  unsigned Total = 0;
  uint64_t InterfaceScans = 0;
  uint64_t ScanCacheHits = 0;
  uint64_t ObjectsParsed = 0;

  // Remote object-cache counters (BuildOptions::RemoteCache; all zero
  // when the tier is off).
  uint64_t RemoteHits = 0;
  uint64_t RemoteMisses = 0;
  uint64_t RemotePuts = 0;
  uint64_t RemoteErrors = 0;
};

std::string encodeRequest(const DaemonRequest &R);
bool decodeRequest(const std::string &Json, DaemonRequest &R);
std::string encodeFrame(const DaemonFrame &F);
bool decodeFrame(const std::string &Json, DaemonFrame &F);

//===----------------------------------------------------------------------===//
// Shared output rendering
//===----------------------------------------------------------------------===//

/// The user-facing text of one build outcome, split by stream.
struct RenderedOutcome {
  std::string Out; ///< Bytes for stdout.
  std::string Err; ///< Bytes for stderr.
  int Code = 0;    ///< Process exit code.
};

/// Renders warnings, error text, and the summary lines exactly as
/// `scbuild` prints them. Both the in-process CLI path and the daemon
/// go through this one function, so their output is byte-identical by
/// construction (same format strings, same ordering per stream).
RenderedOutcome renderBuildOutcome(const BuildStats &Stats, bool Stateful,
                                   bool Quiet);

/// Appends the `--run` outcome (trap text, printed output values, exit
/// code) to \p R, again shared verbatim between CLI and daemon.
struct ExecResult;
void renderRunOutcome(RenderedOutcome &R, const ExecResult &Exec);

//===----------------------------------------------------------------------===//
// Daemon
//===----------------------------------------------------------------------===//

/// Host-filesystem path of the daemon socket for a project rooted at
/// \p HostRoot with build directory \p OutDir: `<root>/<out>/.daemon.sock`.
std::string daemonSocketPath(const std::string &HostRoot,
                             const std::string &OutDir);

struct DaemonConfig {
  /// Configuration of the resident driver. ExternalLock is forced on.
  BuildOptions Build;

  /// Exit after this many milliseconds without a request (0 = never).
  unsigned IdleTimeoutMs = 0;

  /// Suppress the daemon's own lifecycle chatter on stderr.
  bool Quiet = false;
};

/// The resident daemon. Single-threaded: requests are served one at a
/// time in arrival order (builds are internally parallel via Jobs), so
/// two clients never race the driver.
class BuildDaemon {
public:
  /// \p FS must outlive the daemon. The socket binds at
  /// daemonSocketPath(FS.root(), Config.Build.OutDir).
  BuildDaemon(RealFileSystem &FS, DaemonConfig Config);
  ~BuildDaemon();

  BuildDaemon(const BuildDaemon &) = delete;
  BuildDaemon &operator=(const BuildDaemon &) = delete;

  /// Acquires the build lock (tag "daemon") and binds the socket.
  /// A stale socket file is removed only after the lock is held — the
  /// lock proves no live daemon owns it. False + \p Err on failure
  /// (most importantly: another live daemon already serves this tree).
  bool start(std::string *Err);

  /// Serves requests until a shutdown request, the idle timeout, or
  /// requestStop(). Returns the process exit code (0 = clean).
  int serve();

  /// Asks serve() to return after the in-flight request (signal-safe;
  /// callable from another thread).
  void requestStop() { Stop.store(true); }

  /// Host path of the bound socket (valid after start()).
  const std::string &socketPath() const { return SockPath; }

  /// Builds served so far (for tests and `status`).
  uint64_t buildsServed() const { return BuildsServed.load(); }

private:
  void handle(UnixSocket &Conn);
  void handleBuild(UnixSocket &Conn, const DaemonRequest &Req);
  std::string statusText() const;
  void chat(const char *Fmt, ...);

  RealFileSystem &FS;
  DaemonConfig Config;
  std::string SockPath;
  FileLock Lock;
  UnixSocket Listener;
  std::unique_ptr<BuildDriver> Driver;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> BuildsServed{0};
  DaemonFrame LastExit; ///< Exit frame of the most recent build.
};

} // namespace sc

#endif // SC_BUILD_SYS_DAEMON_H
