//===- build_sys/DependencyScanner.h - Import/interface scanner -*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts each source file's import directives and exported
/// interface — the inputs to the import DAG and to dirty-set
/// computation. Results are memoized by content hash (the build
/// daemon's interface-scan cache): a no-op rebuild of an N-file
/// project performs zero parses.
///
//===----------------------------------------------------------------------===//

#ifndef SC_BUILD_SYS_DEPENDENCYSCANNER_H
#define SC_BUILD_SYS_DEPENDENCYSCANNER_H

#include "lang/Sema.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sc {

/// What one source file declares to the rest of the project.
struct ScanResult {
  /// False when the file has syntax errors; the interface and import
  /// list are then empty and InterfaceHash equals the content hash, so
  /// importers conservatively recompile once the file is fixed.
  bool Ok = false;

  uint64_t ContentHash = 0;

  /// Exported function signatures (what importers can call).
  ModuleInterface Interface;

  /// Paths named by `import "..."` directives, in declaration order.
  std::vector<std::string> Imports;

  /// Stable hash of Interface: unchanged under body-only edits, so a
  /// matching hash proves importers need not recompile.
  uint64_t InterfaceHash = 0;
};

/// Stable hash over an exported interface (names, arities, types).
uint64_t hashInterface(const ModuleInterface &Interface);

/// Content-hash-keyed scan memo. Not thread-safe; the build system
/// scans single-threaded before fanning out compilations.
class DependencyScanner {
public:
  /// Scans \p Content (of the file at \p Path, for diagnostics only).
  /// The returned reference is owned by the cache and stays valid
  /// until clear().
  const ScanResult &scan(const std::string &Path, const std::string &Content);

  uint64_t cacheHits() const { return Hits; }
  uint64_t cacheMisses() const { return Misses; }

  /// Drops the cache when it exceeds \p MaxEntries. Invalidates
  /// previously returned references — call only between builds.
  void trim(size_t MaxEntries = 8192);

  void clear();

private:
  std::map<uint64_t, ScanResult> Cache; // Keyed by content hash.
  uint64_t Hits = 0, Misses = 0;
};

} // namespace sc

#endif // SC_BUILD_SYS_DEPENDENCYSCANNER_H
