//===- pass/PassManager.cpp - Pipeline execution -------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pass/PassManager.h"

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "support/Hashing.h"
#include "support/TaskPool.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>

using namespace sc;

FunctionPass::~FunctionPass() = default;
ModulePass::~ModulePass() = default;
PassInstrumentation::~PassInstrumentation() = default;

const char *sc::passDecisionName(PassDecision D) {
  switch (D) {
  case PassDecision::RanAlways:
    return "ran:always";
  case PassDecision::RanColdState:
    return "ran:cold-state";
  case PassDecision::RanSignatureChange:
    return "ran:signature-change";
  case PassDecision::RanNewFunction:
    return "ran:new-function";
  case PassDecision::RanStaleRecord:
    return "ran:stale-record";
  case PassDecision::RanFingerprint:
    return "ran:fingerprint-change";
  case PassDecision::RanRefresh:
    return "ran:dormancy-refresh";
  case PassDecision::RanActive:
    return "ran:active";
  case PassDecision::SkippedDormant:
    return "skipped:dormant";
  case PassDecision::SkippedReused:
    return "skipped:function-reused";
  }
  return "unknown";
}

bool PassInstrumentation::shouldRunPass(const std::string &, size_t,
                                        const Function &, PassDecision *Reason) {
  if (Reason)
    *Reason = PassDecision::RanAlways;
  return true;
}

void PassInstrumentation::afterPass(const std::string &, size_t,
                                    const Function &, bool, double) {}

void PassInstrumentation::onSkippedPass(const std::string &, size_t,
                                        const Function &) {}

bool PassInstrumentation::shouldRunModulePass(const std::string &, size_t,
                                              const Module &,
                                              PassDecision *Reason) {
  if (Reason)
    *Reason = PassDecision::RanAlways;
  return true;
}

void PassInstrumentation::afterModulePass(const std::string &, size_t,
                                          const Module &, bool, double) {}

void PassPipeline::addFunctionPass(std::unique_ptr<FunctionPass> P) {
  Entry E;
  E.FP = std::move(P);
  Entries.push_back(std::move(E));
}

void PassPipeline::addModulePass(std::unique_ptr<ModulePass> P) {
  Entry E;
  E.MP = std::move(P);
  Entries.push_back(std::move(E));
}

std::string PassPipeline::passName(size_t I) const {
  return Entries[I].FP ? Entries[I].FP->name() : Entries[I].MP->name();
}

uint64_t PassPipeline::signature() const {
  HashBuilder H;
  H.addU64(Entries.size());
  for (size_t I = 0; I != Entries.size(); ++I) {
    H.addString(passName(I));
    H.addBool(isFunctionPass(I));
  }
  return H.digest();
}

namespace {

/// Aborts with diagnostics when a pass breaks the IR (VerifyEach mode).
void verifyOrDie(const Function &F, const std::string &PassName) {
  std::vector<std::string> Errors;
  if (verifyFunction(F, Errors))
    return;
  std::fprintf(stderr, "IR verification failed after pass '%s':\n",
               PassName.c_str());
  for (const std::string &E : Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  std::fprintf(stderr, "%s", printFunction(F).c_str());
  std::abort();
}

} // namespace

PipelineStats PassPipeline::run(Module &M, AnalysisManager &AM,
                                PassInstrumentation *PI, bool VerifyEach,
                                TaskPool *Pool, TraceRecorder *Trace) const {
  PipelineStats Stats;
  Timers.reset();

  // Sampled once: tracing toggles between builds, not mid-pipeline.
  const bool Tracing = Trace && Trace->enabled();

  // Partition the pipeline into segments: one segment per module pass,
  // and maximal runs of function passes in which only the FIRST pass
  // may require module analyses (purity). A purity-requiring pass
  // starts a new segment so its snapshot is taken at exactly the point
  // the position-barriered engine took it — that is what keeps chained
  // execution byte-identical to the historical engine.
  struct Segment {
    size_t Begin = 0;
    size_t End = 0; // exclusive
    bool IsModule = false;
  };
  std::vector<Segment> Segments;
  for (size_t I = 0; I != Entries.size();) {
    if (Entries[I].MP) {
      Segments.push_back({I, I + 1, true});
      ++I;
      continue;
    }
    size_t B = I++;
    while (I != Entries.size() && Entries[I].FP &&
           !Entries[I].FP->requiresPurity())
      ++I;
    Segments.push_back({B, I, false});
  }

  for (const Segment &Seg : Segments) {
    if (Seg.IsModule) {
      const size_t Index = Seg.Begin;
      const Entry &E = Entries[Index];
      const std::string Name = passName(Index);
      Timer &PassTimer = Timers.get(Name);
      PassDecision Reason = PassDecision::RanAlways;
      if (PI && !PI->shouldRunModulePass(Name, Index, M, &Reason)) {
        ++Stats.ModulePassSkips;
        if (Tracing)
          Trace->instant("pass.skip", Name,
                         std::string("{\"module\":true,\"reason\":\"") +
                             passDecisionName(Reason) + "\"}");
        continue;
      }
      Timer T;
      const uint64_t T0 = nowNanos();
      T.start();
      bool Changed;
      {
        // The pass span below is recorded retroactively; the frame is
        // what lets the sampling profiler attribute ticks to the pass.
        SampleFrame SF(Trace, "pass", Name);
        Changed = E.MP->run(M, AM);
      }
      T.stop();
      if (Changed)
        AM.invalidateAll();
      PassTimer.accumulate(T);
      ++Stats.ModulePassRuns;
      Stats.TotalPassMicros += T.micros();
      if (PI)
        PI->afterModulePass(Name, Index, M, Changed, T.micros());
      if (Tracing)
        Trace->span("pass", Name, T0, T0 + T.nanos(),
                    std::string("{\"module\":true,\"changed\":") +
                        (Changed ? "true" : "false") + ",\"reason\":\"" +
                        passDecisionName(Reason) + "\"}");
      if (VerifyEach && Changed)
        for (size_t FI = 0; FI != M.numFunctions(); ++FI)
          verifyOrDie(*M.function(FI), Name);
      continue;
    }

    // Function-pass segment: one task per function runs the whole
    // chain Entries[Begin..End) over that function, in pipeline order.
    // The same chain code runs sequentially when no pool is given, so
    // -j1 and -jN produce the same output bytes and the same dormancy
    // records.
    //
    // Snapshot the module analyses the segment's head depends on, then
    // freeze them for the whole segment: every function sees the purity
    // facts computed from the IR as it stood when the segment started,
    // independent of how sibling chains interleave. (Only a segment
    // head can query purity — any later purity-requiring pass would
    // have started its own segment — so this observes exactly what the
    // position-barriered engine observed.)
    const size_t SegLen = Seg.End - Seg.Begin;
    if (Entries[Seg.Begin].FP->requiresPurity())
      AM.purity();
    AM.freezeModuleAnalyses();

    // Resolve names and timers up front: TimerGroup is a map and must
    // not be mutated from chain tasks.
    std::vector<std::string> Names(SegLen);
    std::vector<Timer *> SegTimers(SegLen);
    for (size_t P = 0; P != SegLen; ++P) {
      Names[P] = passName(Seg.Begin + P);
      SegTimers[P] = &Timers.get(Names[P]);
    }

    // Per-slot, per-position accumulators: each participating thread
    // gets a private counter set, merged after the barrier. Integer
    // sums are commutative, so totals are identical for any
    // item->slot split.
    struct PosStats {
      uint64_t Runs = 0;
      uint64_t Skips = 0;
      uint64_t Changes = 0;
      uint64_t Nanos = 0;
    };
    const unsigned NumSlots = Pool ? Pool->maxSlots() : 1;
    std::vector<std::vector<PosStats>> Slots(
        NumSlots, std::vector<PosStats>(SegLen));

    auto Chain = [&](size_t FI, unsigned Slot) {
      Function &F = *M.function(FI);
      std::vector<PosStats> &SS = Slots[Slot];
      for (size_t P = 0; P != SegLen; ++P) {
        const size_t Index = Seg.Begin + P;
        const Entry &E = Entries[Index];
        const std::string &Name = Names[P];
        PassDecision Reason = PassDecision::RanAlways;
        if (PI && !PI->shouldRunPass(Name, Index, F, &Reason)) {
          ++SS[P].Skips;
          PI->onSkippedPass(Name, Index, F);
          if (Tracing)
            Trace->instant("pass.skip", Name,
                           "{\"fn\":\"" + jsonEscape(F.name()) +
                               "\",\"reason\":\"" + passDecisionName(Reason) +
                               "\"}");
          continue;
        }
        uint64_t T0 = nowNanos();
        bool Changed;
        {
          SampleFrame SF(Trace, "pass", Name);
          Changed = E.FP->run(F, AM);
        }
        uint64_t Dur = nowNanos() - T0;
        if (Changed) {
          AM.invalidate(F);
          ++SS[P].Changes;
        }
        SS[P].Nanos += Dur;
        ++SS[P].Runs;
        if (PI)
          PI->afterPass(Name, Index, F, Changed,
                        static_cast<double>(Dur) / 1000.0);
        if (Tracing)
          Trace->span("pass", Name, T0, T0 + Dur,
                      "{\"fn\":\"" + jsonEscape(F.name()) + "\",\"changed\":" +
                          (Changed ? "true" : "false") + ",\"reason\":\"" +
                          passDecisionName(Reason) + "\"}");
        if (VerifyEach && Changed)
          verifyOrDie(F, Name);
      }
    };

    if (Pool && M.numFunctions() > 1)
      Pool->parallelFor(M.numFunctions(), Chain);
    else
      for (size_t FI = 0; FI != M.numFunctions(); ++FI)
        Chain(FI, 0);

    AM.unfreezeModuleAnalyses();

    for (const std::vector<PosStats> &SS : Slots)
      for (size_t P = 0; P != SegLen; ++P) {
        Stats.FunctionPassRuns += SS[P].Runs;
        Stats.FunctionPassSkips += SS[P].Skips;
        Stats.FunctionPassChanges += SS[P].Changes;
        Stats.TotalPassMicros += static_cast<double>(SS[P].Nanos) / 1000.0;
        SegTimers[P]->addNanos(SS[P].Nanos);
      }
  }
  return Stats;
}
