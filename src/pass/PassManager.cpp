//===- pass/PassManager.cpp - Pipeline execution -------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pass/PassManager.h"

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "support/Hashing.h"

#include <cstdio>
#include <cstdlib>

using namespace sc;

FunctionPass::~FunctionPass() = default;
ModulePass::~ModulePass() = default;
PassInstrumentation::~PassInstrumentation() = default;

bool PassInstrumentation::shouldRunPass(const std::string &, size_t,
                                        const Function &) {
  return true;
}

void PassInstrumentation::afterPass(const std::string &, size_t,
                                    const Function &, bool, double) {}

void PassInstrumentation::onSkippedPass(const std::string &, size_t,
                                        const Function &) {}

bool PassInstrumentation::shouldRunModulePass(const std::string &, size_t,
                                              const Module &) {
  return true;
}

void PassInstrumentation::afterModulePass(const std::string &, size_t,
                                          const Module &, bool, double) {}

void PassPipeline::addFunctionPass(std::unique_ptr<FunctionPass> P) {
  Entry E;
  E.FP = std::move(P);
  Entries.push_back(std::move(E));
}

void PassPipeline::addModulePass(std::unique_ptr<ModulePass> P) {
  Entry E;
  E.MP = std::move(P);
  Entries.push_back(std::move(E));
}

std::string PassPipeline::passName(size_t I) const {
  return Entries[I].FP ? Entries[I].FP->name() : Entries[I].MP->name();
}

uint64_t PassPipeline::signature() const {
  HashBuilder H;
  H.addU64(Entries.size());
  for (size_t I = 0; I != Entries.size(); ++I) {
    H.addString(passName(I));
    H.addBool(isFunctionPass(I));
  }
  return H.digest();
}

namespace {

/// Aborts with diagnostics when a pass breaks the IR (VerifyEach mode).
void verifyOrDie(const Function &F, const std::string &PassName) {
  std::vector<std::string> Errors;
  if (verifyFunction(F, Errors))
    return;
  std::fprintf(stderr, "IR verification failed after pass '%s':\n",
               PassName.c_str());
  for (const std::string &E : Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  std::fprintf(stderr, "%s", printFunction(F).c_str());
  std::abort();
}

} // namespace

PipelineStats PassPipeline::run(Module &M, AnalysisManager &AM,
                                PassInstrumentation *PI,
                                bool VerifyEach) const {
  PipelineStats Stats;
  Timers.reset();

  for (size_t Index = 0; Index != Entries.size(); ++Index) {
    const Entry &E = Entries[Index];
    const std::string Name = passName(Index);
    Timer &PassTimer = Timers.get(Name);

    if (E.MP) {
      if (PI && !PI->shouldRunModulePass(Name, Index, M)) {
        ++Stats.ModulePassSkips;
        continue;
      }
      Timer T;
      T.start();
      bool Changed = E.MP->run(M, AM);
      T.stop();
      if (Changed)
        AM.invalidateAll();
      PassTimer.accumulate(T);
      ++Stats.ModulePassRuns;
      Stats.TotalPassMicros += T.micros();
      if (PI)
        PI->afterModulePass(Name, Index, M, Changed, T.micros());
      if (VerifyEach && Changed)
        for (size_t FI = 0; FI != M.numFunctions(); ++FI)
          verifyOrDie(*M.function(FI), Name);
      continue;
    }

    for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
      Function &F = *M.function(FI);
      if (PI && !PI->shouldRunPass(Name, Index, F)) {
        ++Stats.FunctionPassSkips;
        PI->onSkippedPass(Name, Index, F);
        continue;
      }
      Timer T;
      T.start();
      bool Changed = E.FP->run(F, AM);
      T.stop();
      if (Changed) {
        AM.invalidate(F);
        ++Stats.FunctionPassChanges;
      }
      PassTimer.accumulate(T);
      ++Stats.FunctionPassRuns;
      Stats.TotalPassMicros += T.micros();
      if (PI)
        PI->afterPass(Name, Index, F, Changed, T.micros());
      if (VerifyEach && Changed)
        verifyOrDie(F, Name);
    }
  }
  return Stats;
}
