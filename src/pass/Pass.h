//===- pass/Pass.h - Pass interfaces ----------------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass interfaces. A pass reports whether it *changed* its unit — the
/// signal at the heart of the paper's technique: a pass execution that
/// reports no change is \e dormant, and the stateful compiler skips
/// passes that were dormant for the same function in the previous
/// build.
///
//===----------------------------------------------------------------------===//

#ifndef SC_PASS_PASS_H
#define SC_PASS_PASS_H

#include "ir/IR.h"

#include <string>

namespace sc {

class AnalysisManager;

/// Transform operating on one function at a time.
class FunctionPass {
public:
  virtual ~FunctionPass();

  /// Stable pass identifier; part of the pipeline signature persisted
  /// in the BuildStateDB.
  virtual std::string name() const = 0;

  /// Runs on \p F. Returns true iff the IR was modified (an execution
  /// returning false is recorded as dormant). A pass that modifies IR
  /// must invalidate the function's cached analyses through \p AM.
  virtual bool run(Function &F, AnalysisManager &AM) = 0;

  /// True if run() consults AM.purity(). The parallel pass engine
  /// snapshots module-level analyses before fanning a pass out across
  /// functions; declaring the dependency here lets it refresh the
  /// snapshot exactly once per pipeline position instead of racing on
  /// lazy recomputation inside run().
  virtual bool requiresPurity() const { return false; }
};

/// Transform operating on the whole module (inliner, global opts).
class ModulePass {
public:
  virtual ~ModulePass();

  virtual std::string name() const = 0;

  /// Runs on \p M; same change-reporting contract as FunctionPass.
  virtual bool run(Module &M, AnalysisManager &AM) = 0;
};

} // namespace sc

#endif // SC_PASS_PASS_H
