//===- pass/AnalysisManager.h - Analysis caching ----------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Caches analysis results between passes and recomputes them lazily
/// after invalidation. This laziness is what makes dormant-pass
/// skipping sound for analyses: analyses are never "skipped", they are
/// simply not computed until a pass that actually runs requests them.
///
//===----------------------------------------------------------------------===//

#ifndef SC_PASS_ANALYSISMANAGER_H
#define SC_PASS_ANALYSISMANAGER_H

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/Purity.h"
#include "ir/IR.h"

#include <map>
#include <memory>

namespace sc {

class AnalysisManager {
public:
  explicit AnalysisManager(Module &M) : M(M) {}

  Module &module() { return M; }

  //===--- Per-function analyses (lazily computed, cached) -----------------===//

  const DominatorTree &domTree(const Function &F);
  const LoopInfo &loopInfo(const Function &F);

  //===--- Module-level analyses --------------------------------------------===//

  const PurityInfo &purity();
  const CallGraph &callGraph();

  //===--- Invalidation -------------------------------------------------------===//

  /// Drops cached per-function analyses for \p F. Called by every
  /// function pass that reports a change. Module-level analyses are
  /// structural (call edges, purity) and also conservatively dropped:
  /// transforms can delete calls.
  void invalidate(const Function &F);

  /// Drops everything; called after module passes that change IR.
  void invalidateAll();

  //===--- Statistics -----------------------------------------------------------===//

  unsigned domTreeComputations() const { return NumDomTrees; }
  unsigned loopInfoComputations() const { return NumLoopInfos; }

private:
  struct FunctionAnalyses {
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<LoopInfo> LI;
  };

  Module &M;
  std::map<const Function *, FunctionAnalyses> PerFunction;
  std::unique_ptr<PurityInfo> Purity;
  std::unique_ptr<CallGraph> CG;
  unsigned NumDomTrees = 0;
  unsigned NumLoopInfos = 0;
};

} // namespace sc

#endif // SC_PASS_ANALYSISMANAGER_H
