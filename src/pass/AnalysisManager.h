//===- pass/AnalysisManager.h - Analysis caching ----------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Caches analysis results between passes and recomputes them lazily
/// after invalidation. This laziness is what makes dormant-pass
/// skipping sound for analyses: analyses are never "skipped", they are
/// simply not computed until a pass that actually runs requests them.
///
/// Thread-safety contract for the parallel pass engine: per-function
/// analyses may be queried/invalidated concurrently as long as each
/// function is touched by at most one thread at a time (the engine
/// guarantees this — one task per function). Module-level analyses
/// (purity, call graph) are snapshotted and frozen for the duration of
/// each parallel function-pass position; invalidation while frozen is
/// deferred via a stale flag and applied at the next unfrozen query.
///
//===----------------------------------------------------------------------===//

#ifndef SC_PASS_ANALYSISMANAGER_H
#define SC_PASS_ANALYSISMANAGER_H

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/Purity.h"
#include "ir/IR.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

namespace sc {

class AnalysisManager {
public:
  explicit AnalysisManager(Module &M) : M(M) {}

  Module &module() { return M; }

  //===--- Per-function analyses (lazily computed, cached) -----------------===//

  const DominatorTree &domTree(const Function &F);
  const LoopInfo &loopInfo(const Function &F);

  //===--- Module-level analyses --------------------------------------------===//

  const PurityInfo &purity();
  const CallGraph &callGraph();

  /// Freezes the current module-analysis snapshot: while frozen,
  /// purity()/callGraph() return the snapshot as-is and invalidate()
  /// only defers (sets a stale flag) instead of dropping them. The
  /// parallel engine freezes around each function-pass position so
  /// every function sees the same purity facts regardless of which
  /// sibling tasks have already mutated their own functions. Callers
  /// must materialize the analyses they need (e.g. call purity())
  /// before freezing.
  void freezeModuleAnalyses();
  void unfreezeModuleAnalyses();

  //===--- Invalidation -------------------------------------------------------===//

  /// Drops cached per-function analyses for \p F. Called by every
  /// function pass that reports a change. Module-level analyses are
  /// structural (call edges, purity) and also conservatively dropped
  /// (deferred while frozen): transforms can delete calls.
  void invalidate(const Function &F);

  /// Drops everything; called after module passes that change IR.
  /// Not safe concurrently with queries (module passes are sequential).
  void invalidateAll();

  //===--- Statistics -----------------------------------------------------------===//

  unsigned domTreeComputations() const {
    return NumDomTrees.load(std::memory_order_relaxed);
  }
  unsigned loopInfoComputations() const {
    return NumLoopInfos.load(std::memory_order_relaxed);
  }

private:
  struct FunctionAnalyses {
    std::unique_ptr<DominatorTree> DT;
    std::unique_ptr<LoopInfo> LI;
  };

  /// The per-function slot map is sharded by function pointer so
  /// concurrent chains' lookups/invalidations rarely collide on one
  /// mutex (contention tracked via analysisSlotContention()).
  static constexpr size_t NumSlotShards = 8;
  struct SlotShard {
    std::mutex Mu;
    std::map<const Function *, FunctionAnalyses> Map;
  };

  SlotShard &shardFor(const Function &F);

  /// Locked map access; the returned reference is stable (std::map)
  /// and, per the contract above, only touched by the one thread
  /// currently processing \p F.
  FunctionAnalyses &slotFor(const Function &F);

  Module &M;
  SlotShard SlotShards[NumSlotShards];
  std::unique_ptr<PurityInfo> Purity;
  std::unique_ptr<CallGraph> CG;
  bool Frozen = false;
  /// Set by invalidate() while frozen; consumed by the next unfrozen
  /// purity()/callGraph() query.
  std::atomic<bool> ModuleAnalysesStale{false};
  std::atomic<unsigned> NumDomTrees{0};
  std::atomic<unsigned> NumLoopInfos{0};
};

} // namespace sc

#endif // SC_PASS_ANALYSISMANAGER_H
