//===- pass/PassManager.h - Pipeline execution ------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an ordered pipeline of function and module passes over a
/// Module, with an instrumentation hook deciding — per (function,
/// pass) — whether a pass executes. The hook is the seam where the
/// stateful compiler's dormancy-based skip policy plugs in; the
/// baseline (stateless) compiler runs with no instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef SC_PASS_PASSMANAGER_H
#define SC_PASS_PASSMANAGER_H

#include "pass/AnalysisManager.h"
#include "pass/Pass.h"
#include "support/Timer.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sc {

class TaskPool;
class TraceRecorder;

/// Why a (function, pass) execution ran or slept. Produced by the
/// skip policy (StatefulInstrumentation fills the out-param on
/// shouldRunPass), recorded into the per-build decision log, attached
/// to trace events, and replayed by `scbuild --explain`. Values are
/// persisted in decisions.bin — append only, never renumber.
enum class PassDecision : uint8_t {
  RanAlways = 0,      // No skip policy consulted; pass always runs.
  RanColdState,       // No previous build state for this TU.
  RanSignatureChange, // Pipeline/config signature changed; state unusable.
  RanNewFunction,     // Function had no record in the previous state.
  RanStaleRecord,     // Record shape mismatch (pipeline length changed).
  RanFingerprint,     // Function fingerprint changed (body edited).
  RanRefresh,         // Dormancy refresh probe (record aged out).
  RanActive,          // Record present; pass was active last build.
  SkippedDormant,     // Pass was dormant for this function last build.
  SkippedReused,      // Whole function reused (clean fingerprint).
};

/// Stable machine-readable name for \p D (used in traces/reports).
const char *passDecisionName(PassDecision D);

/// Observer/controller of pipeline execution.
class PassInstrumentation {
public:
  virtual ~PassInstrumentation();

  /// Return false to skip this pass execution for \p F. \p PassIndex
  /// is the stable pipeline position of the pass. When \p Reason is
  /// non-null, the implementation stores why it decided either way.
  virtual bool shouldRunPass(const std::string &PassName, size_t PassIndex,
                             const Function &F,
                             PassDecision *Reason = nullptr);

  /// Called after a pass executed (not called for skipped passes).
  virtual void afterPass(const std::string &PassName, size_t PassIndex,
                         const Function &F, bool Changed, double Micros);

  /// Called when a pass execution was skipped.
  virtual void onSkippedPass(const std::string &PassName, size_t PassIndex,
                             const Function &F);

  /// Module-pass variants. Module passes are skipped per-module.
  virtual bool shouldRunModulePass(const std::string &PassName,
                                   size_t PassIndex, const Module &M,
                                   PassDecision *Reason = nullptr);
  virtual void afterModulePass(const std::string &PassName, size_t PassIndex,
                               const Module &M, bool Changed, double Micros);
};

/// Aggregate execution counters for one pipeline run.
struct PipelineStats {
  uint64_t FunctionPassRuns = 0;
  uint64_t FunctionPassSkips = 0;
  uint64_t FunctionPassChanges = 0;
  uint64_t ModulePassRuns = 0;
  uint64_t ModulePassSkips = 0;
  double TotalPassMicros = 0;
};

/// An ordered sequence of passes. Each (function, pipeline-position)
/// execution has a stable identity across builds — the key requirement
/// for matching dormancy records between builds.
///
/// Execution model: the pipeline is partitioned into SEGMENTS — a
/// segment is either one module pass or a maximal run of function
/// passes in which only the first pass may require module analyses
/// (purity). Within a function-pass segment, each function runs its
/// whole chain of passes as ONE task, in pipeline order; different
/// functions' chains are independent. This keeps per-module barriers
/// to a handful (segment boundaries) instead of one per position, and
/// makes each parallel task coarse enough that tasks from different
/// TUs interleave productively in the shared TaskPool frontier.
/// Because function passes only read their own function's IR plus
/// module analyses frozen at segment start, chaining is observationally
/// identical to the historical position-barriered engine: same
/// decisions, same output bytes, at any thread count including -j1.
class PassPipeline {
public:
  PassPipeline() = default;

  PassPipeline(PassPipeline &&) = default;
  PassPipeline &operator=(PassPipeline &&) = default;

  void addFunctionPass(std::unique_ptr<FunctionPass> P);
  void addModulePass(std::unique_ptr<ModulePass> P);

  size_t size() const { return Entries.size(); }
  bool isFunctionPass(size_t I) const { return Entries[I].FP != nullptr; }
  std::string passName(size_t I) const;

  /// Stable hash of the pass sequence; dormancy records from a build
  /// with a different pipeline signature are unusable and discarded.
  uint64_t signature() const;

  /// Runs the pipeline over \p M. \p PI may be null (always-run).
  /// When \p VerifyEach is set, the IR verifier runs after every pass
  /// execution that reported a change, aborting on malformed IR.
  ///
  /// When \p Pool is non-null, each function-pass segment fans out one
  /// chain task per function on the pool (module passes stay sequential
  /// barriers). Execution identity is unchanged — the same (function,
  /// pass-index) pairs run or skip — and output is byte-identical to
  /// the sequential engine for any thread count: functions only mutate
  /// their own IR, module analyses are frozen per segment, and stats
  /// merge commutatively. \p PI callbacks may then arrive concurrently
  /// from multiple threads; each function's chain is single-threaded,
  /// so per-function instrumentation state needs no locking but
  /// cross-function state does.
  ///
  /// When \p Trace is non-null and enabled, every executed pass emits
  /// a thread-attributed span and every skipped pass an instant event
  /// carrying the dormancy verdict (see support/Trace.h). Tracing
  /// never alters which passes run, so outputs stay byte-identical.
  PipelineStats run(Module &M, AnalysisManager &AM,
                    PassInstrumentation *PI = nullptr,
                    bool VerifyEach = false, TaskPool *Pool = nullptr,
                    TraceRecorder *Trace = nullptr) const;

  /// Per-pass accumulated wall-clock time of the last run() call.
  const TimerGroup &lastRunTimers() const { return Timers; }

private:
  struct Entry {
    std::unique_ptr<FunctionPass> FP;
    std::unique_ptr<ModulePass> MP;
  };

  std::vector<Entry> Entries;
  mutable TimerGroup Timers;
};

} // namespace sc

#endif // SC_PASS_PASSMANAGER_H
