//===- pass/AnalysisManager.cpp - Analysis caching -----------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pass/AnalysisManager.h"

#include "support/ContentionStats.h"

using namespace sc;

AnalysisManager::SlotShard &AnalysisManager::shardFor(const Function &F) {
  uintptr_t P = reinterpret_cast<uintptr_t>(&F);
  return SlotShards[(P >> 6) % NumSlotShards];
}

AnalysisManager::FunctionAnalyses &
AnalysisManager::slotFor(const Function &F) {
  SlotShard &Shard = shardFor(F);
  auto Lock = timedLock(Shard.Mu, analysisSlotContention());
  return Shard.Map[&F];
}

const DominatorTree &AnalysisManager::domTree(const Function &F) {
  FunctionAnalyses &Slot = slotFor(F);
  if (!Slot.DT) {
    Slot.DT = std::make_unique<DominatorTree>(DominatorTree::compute(F));
    NumDomTrees.fetch_add(1, std::memory_order_relaxed);
  }
  return *Slot.DT;
}

const LoopInfo &AnalysisManager::loopInfo(const Function &F) {
  FunctionAnalyses &Slot = slotFor(F);
  if (!Slot.LI) {
    Slot.LI = std::make_unique<LoopInfo>(LoopInfo::compute(F, domTree(F)));
    NumLoopInfos.fetch_add(1, std::memory_order_relaxed);
  }
  return *Slot.LI;
}

const PurityInfo &AnalysisManager::purity() {
  if (Frozen) {
    assert(Purity && "purity() while frozen without a snapshot");
    return *Purity;
  }
  if (ModuleAnalysesStale.exchange(false, std::memory_order_acq_rel)) {
    Purity.reset();
    CG.reset();
  }
  if (!Purity)
    Purity = std::make_unique<PurityInfo>(PurityInfo::compute(M));
  return *Purity;
}

const CallGraph &AnalysisManager::callGraph() {
  assert(!Frozen && "callGraph() has no frozen consumers (module passes "
                    "run sequentially)");
  if (ModuleAnalysesStale.exchange(false, std::memory_order_acq_rel)) {
    Purity.reset();
    CG.reset();
  }
  if (!CG)
    CG = std::make_unique<CallGraph>(CallGraph::compute(M));
  return *CG;
}

void AnalysisManager::freezeModuleAnalyses() {
  assert(!Frozen && "nested freeze");
  Frozen = true;
}

void AnalysisManager::unfreezeModuleAnalyses() {
  assert(Frozen && "unbalanced unfreeze");
  Frozen = false;
}

void AnalysisManager::invalidate(const Function &F) {
  {
    SlotShard &Shard = shardFor(F);
    auto Lock = timedLock(Shard.Mu, analysisSlotContention());
    Shard.Map.erase(&F);
  }
  // Module-level analyses are invalidated lazily: resetting them here
  // would race with concurrent readers of the frozen snapshot, and in
  // sequential mode the deferred reset is observationally identical
  // (the next query recomputes either way).
  ModuleAnalysesStale.store(true, std::memory_order_release);
}

void AnalysisManager::invalidateAll() {
  assert(!Frozen && "invalidateAll() during a parallel segment");
  for (SlotShard &Shard : SlotShards) {
    std::lock_guard<std::mutex> Lock(Shard.Mu);
    Shard.Map.clear();
  }
  Purity.reset();
  CG.reset();
  ModuleAnalysesStale.store(false, std::memory_order_relaxed);
}
