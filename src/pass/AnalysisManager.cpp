//===- pass/AnalysisManager.cpp - Analysis caching -----------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pass/AnalysisManager.h"

using namespace sc;

const DominatorTree &AnalysisManager::domTree(const Function &F) {
  auto &Slot = PerFunction[&F];
  if (!Slot.DT) {
    Slot.DT = std::make_unique<DominatorTree>(DominatorTree::compute(F));
    ++NumDomTrees;
  }
  return *Slot.DT;
}

const LoopInfo &AnalysisManager::loopInfo(const Function &F) {
  auto &Slot = PerFunction[&F];
  if (!Slot.LI) {
    Slot.LI = std::make_unique<LoopInfo>(LoopInfo::compute(F, domTree(F)));
    ++NumLoopInfos;
  }
  return *Slot.LI;
}

const PurityInfo &AnalysisManager::purity() {
  if (!Purity)
    Purity = std::make_unique<PurityInfo>(PurityInfo::compute(M));
  return *Purity;
}

const CallGraph &AnalysisManager::callGraph() {
  if (!CG)
    CG = std::make_unique<CallGraph>(CallGraph::compute(M));
  return *CG;
}

void AnalysisManager::invalidate(const Function &F) {
  PerFunction.erase(&F);
  Purity.reset();
  CG.reset();
}

void AnalysisManager::invalidateAll() {
  PerFunction.clear();
  Purity.reset();
  CG.reset();
}
