//===- driver/IRGen.cpp - AST to IR lowering ----------------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/IRGen.h"

#include "ir/IRBuilder.h"

#include <cassert>
#include <map>
#include <vector>

using namespace sc;

namespace {

struct LocalVar {
  Value *Slot = nullptr; // Alloca (or null for unresolved).
  TypeName Type = TypeName::Int;
  bool IsArray = false;
};

class IRGenerator {
public:
  IRGenerator(const ModuleAST &AST, const std::string &ModuleName,
              const ModuleInterface &Callables)
      : AST(AST), ModuleName(ModuleName) {
    for (const FunctionSignature &Sig : Callables)
      Signatures[Sig.Name] = Sig;
    const FunctionSignature &Print = printBuiltinSignature();
    Signatures[Print.Name] = Print;
  }

  std::unique_ptr<Module> run() {
    M = std::make_unique<Module>(ModuleName);
    Builder = std::make_unique<IRBuilder>(*M);

    for (const GlobalDecl &G : AST.Globals) {
      GlobalVariable *GV =
          M->createGlobal(ModuleName + "::" + G.Name,
                          G.IsArray ? G.ArraySize : 1,
                          G.IsArray ? 0 : G.InitValue);
      Globals[G.Name] = GV;
    }

    for (const auto &F : AST.Functions)
      generateFunction(*F);
    return std::move(M);
  }

private:
  static IRType lowerType(TypeName T) {
    switch (T) {
    case TypeName::Int:
      return IRType::I64;
    case TypeName::Bool:
      return IRType::I1;
    case TypeName::Void:
      return IRType::Void;
    }
    return IRType::I64;
  }

  //===--- Bool widening/narrowing ------------------------------------------===//

  /// i1 -> i64 for storage.
  Value *widen(Value *V) {
    if (V->type() == IRType::I64)
      return V;
    return Builder->createSelect(V, Builder->i64(1), Builder->i64(0));
  }

  /// i64 -> i1 after a load of a bool variable.
  Value *narrow(Value *V) {
    return Builder->createCmp(CmpPred::NE, V, Builder->i64(0));
  }

  //===--- Scopes ---------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void declare(const std::string &Name, LocalVar Var) {
    Scopes.back()[Name] = Var;
  }

  const LocalVar *lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  //===--- Function generation ---------------------------------------------------===//

  void generateFunction(const FunctionDecl &F) {
    std::vector<std::pair<std::string, IRType>> Params;
    for (const ParamDecl &P : F.params())
      Params.emplace_back(P.Name, lowerType(P.Type));
    Function *Fn =
        M->createFunction(F.name(), lowerType(F.returnType()), Params);
    CurrentFn = Fn;
    Entry = Fn->createBlock("entry");
    Builder->setInsertPoint(Entry);
    BlockCounter = 0;
    Scopes.clear();
    BreakTargets.clear();
    ContinueTargets.clear();
    pushScope();

    // Spill parameters to allocas so assignments to them work; the
    // optimizer's mem2reg restores registers.
    for (size_t I = 0; I != F.params().size(); ++I) {
      const ParamDecl &P = F.params()[I];
      Value *Slot = createEntryAlloca(1, P.Name + ".addr");
      Builder->createStore(widen(Fn->arg(I)), Slot);
      declare(P.Name, {Slot, P.Type, /*IsArray=*/false});
    }

    genBlock(*F.body());

    // Implicit return on fall-through.
    if (!Builder->isTerminated()) {
      switch (F.returnType()) {
      case TypeName::Void:
        Builder->createRetVoid();
        break;
      case TypeName::Int:
        Builder->createRet(Builder->i64(0));
        break;
      case TypeName::Bool:
        Builder->createRet(Builder->boolean(false));
        break;
      }
    }
    popScope();
  }

  BasicBlock *newBlock(const std::string &Hint) {
    return CurrentFn->createBlock(Hint + "." +
                                  std::to_string(BlockCounter++));
  }

  /// Allocates in the entry block (after existing allocas) so every
  /// alloca is statically at function scope.
  Value *createEntryAlloca(uint64_t Cells, std::string Name) {
    size_t Pos = 0;
    while (Pos < Entry->size() && isa<AllocaInst>(Entry->inst(Pos)))
      ++Pos;
    auto A = std::make_unique<AllocaInst>(Cells);
    A->setName(std::move(Name));
    return Entry->insertBefore(Pos, std::move(A));
  }

  //===--- Statements --------------------------------------------------------------===//

  void genBlock(const BlockStmt &B) {
    pushScope();
    for (const StmtPtr &S : B.statements()) {
      if (Builder->isTerminated())
        break; // Unreachable code after return/break/continue.
      genStmt(*S);
    }
    popScope();
  }

  void genStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      genBlock(*cast<BlockStmt>(&S));
      return;
    case Stmt::Kind::VarDecl: {
      const auto *VD = cast<VarDeclStmt>(&S);
      Value *Init = genExpr(*VD->init());
      Value *Slot = createEntryAlloca(1, VD->name());
      Builder->createStore(widen(Init), Slot);
      TypeName VarType =
          VD->hasExplicitType() ? VD->declType() : VD->init()->ExprType;
      declare(VD->name(), {Slot, VarType, /*IsArray=*/false});
      return;
    }
    case Stmt::Kind::ArrayDecl: {
      const auto *AD = cast<ArrayDeclStmt>(&S);
      Value *Slot = createEntryAlloca(AD->size(), AD->name());
      declare(AD->name(), {Slot, TypeName::Int, /*IsArray=*/true});
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *AS = cast<AssignStmt>(&S);
      Value *V = genExpr(*AS->value());
      Value *Slot = addressOfScalar(AS->name(), AS->IsGlobal);
      Builder->createStore(widen(V), Slot);
      return;
    }
    case Stmt::Kind::IndexAssign: {
      const auto *IA = cast<IndexAssignStmt>(&S);
      Value *Index = genExpr(*IA->index());
      Value *V = genExpr(*IA->value());
      Value *Base = addressOfArray(IA->arrayName(), IA->IsGlobal);
      Value *Ptr = Builder->createGep(Base, Index);
      Builder->createStore(V, Ptr);
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      Value *Cond = genExpr(*If->cond());
      BasicBlock *ThenBB = newBlock("if.then");
      BasicBlock *MergeBB = newBlock("if.end");
      BasicBlock *ElseBB =
          If->elseBranch() ? newBlock("if.else") : MergeBB;
      Builder->createCondBr(Cond, ThenBB, ElseBB);

      Builder->setInsertPoint(ThenBB);
      genStmt(*If->thenBranch());
      if (!Builder->isTerminated())
        Builder->createBr(MergeBB);

      if (If->elseBranch()) {
        Builder->setInsertPoint(ElseBB);
        genStmt(*If->elseBranch());
        if (!Builder->isTerminated())
          Builder->createBr(MergeBB);
      }
      Builder->setInsertPoint(MergeBB);
      return;
    }
    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(&S);
      BasicBlock *CondBB = newBlock("while.cond");
      BasicBlock *BodyBB = newBlock("while.body");
      BasicBlock *EndBB = newBlock("while.end");
      Builder->createBr(CondBB);

      Builder->setInsertPoint(CondBB);
      Value *Cond = genExpr(*W->cond());
      Builder->createCondBr(Cond, BodyBB, EndBB);

      Builder->setInsertPoint(BodyBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(CondBB);
      genStmt(*W->body());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!Builder->isTerminated())
        Builder->createBr(CondBB);

      Builder->setInsertPoint(EndBB);
      return;
    }
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(&S);
      pushScope();
      if (F->init())
        genStmt(*F->init());
      BasicBlock *CondBB = newBlock("for.cond");
      BasicBlock *BodyBB = newBlock("for.body");
      BasicBlock *StepBB = newBlock("for.step");
      BasicBlock *EndBB = newBlock("for.end");
      Builder->createBr(CondBB);

      Builder->setInsertPoint(CondBB);
      if (F->cond()) {
        Value *Cond = genExpr(*F->cond());
        Builder->createCondBr(Cond, BodyBB, EndBB);
      } else {
        Builder->createBr(BodyBB);
      }

      Builder->setInsertPoint(BodyBB);
      BreakTargets.push_back(EndBB);
      ContinueTargets.push_back(StepBB);
      genStmt(*F->body());
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      if (!Builder->isTerminated())
        Builder->createBr(StepBB);

      Builder->setInsertPoint(StepBB);
      if (F->step())
        genStmt(*F->step());
      if (!Builder->isTerminated())
        Builder->createBr(CondBB);

      Builder->setInsertPoint(EndBB);
      popScope();
      return;
    }
    case Stmt::Kind::Return: {
      const auto *R = cast<ReturnStmt>(&S);
      if (R->value())
        Builder->createRet(genExpr(*R->value()));
      else
        Builder->createRetVoid();
      return;
    }
    case Stmt::Kind::Break:
      assert(!BreakTargets.empty() && "break outside loop after sema");
      Builder->createBr(BreakTargets.back());
      return;
    case Stmt::Kind::Continue:
      assert(!ContinueTargets.empty() && "continue outside loop after sema");
      Builder->createBr(ContinueTargets.back());
      return;
    case Stmt::Kind::Expr:
      genExpr(*cast<ExprStmt>(&S)->expr());
      return;
    }
  }

  //===--- Addressing ---------------------------------------------------------------===//

  Value *addressOfScalar(const std::string &Name, bool IsGlobal) {
    if (IsGlobal) {
      auto It = Globals.find(Name);
      assert(It != Globals.end() && "unknown global after sema");
      return It->second;
    }
    const LocalVar *Var = lookupLocal(Name);
    assert(Var && !Var->IsArray && "unknown local after sema");
    return Var->Slot;
  }

  Value *addressOfArray(const std::string &Name, bool IsGlobal) {
    if (IsGlobal) {
      auto It = Globals.find(Name);
      assert(It != Globals.end() && "unknown global array after sema");
      return It->second;
    }
    const LocalVar *Var = lookupLocal(Name);
    assert(Var && Var->IsArray && "unknown local array after sema");
    return Var->Slot;
  }

  //===--- Expressions ----------------------------------------------------------------===//

  Value *genExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLiteral:
      return Builder->i64(cast<IntLiteralExpr>(&E)->value());
    case Expr::Kind::BoolLiteral:
      return Builder->boolean(cast<BoolLiteralExpr>(&E)->value());
    case Expr::Kind::VarRef: {
      const auto *Ref = cast<VarRefExpr>(&E);
      Value *Slot = addressOfScalar(Ref->name(), Ref->IsGlobal);
      Value *Loaded = Builder->createLoad(Slot);
      return E.ExprType == TypeName::Bool ? narrow(Loaded) : Loaded;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      Value *Operand = genExpr(*U->operand());
      if (U->op() == UnaryOp::Neg)
        return Builder->createNeg(Operand);
      return Builder->createNot(Operand);
    }
    case Expr::Kind::Binary:
      return genBinary(*cast<BinaryExpr>(&E));
    case Expr::Kind::Call: {
      const auto *C = cast<CallExpr>(&E);
      auto SigIt = Signatures.find(C->callee());
      assert(SigIt != Signatures.end() && "unknown callee after sema");
      const FunctionSignature &Sig = SigIt->second;
      std::vector<Value *> Args;
      for (const ExprPtr &Arg : C->args())
        Args.push_back(genExpr(*Arg));
      return Builder->createCall(C->callee(), lowerType(Sig.ReturnType),
                                 Args);
    }
    case Expr::Kind::Index: {
      const auto *Idx = cast<IndexExpr>(&E);
      Value *Index = genExpr(*Idx->index());
      Value *Base = addressOfArray(Idx->arrayName(), Idx->IsGlobal);
      Value *Ptr = Builder->createGep(Base, Index);
      return Builder->createLoad(Ptr);
    }
    }
    assert(false && "unhandled expression kind");
    return Builder->i64(0);
  }

  Value *genBinary(const BinaryExpr &B) {
    // Short-circuit forms first: they generate control flow.
    if (B.op() == BinaryOp::And || B.op() == BinaryOp::Or) {
      bool IsAnd = B.op() == BinaryOp::And;
      Value *ResultSlot = createEntryAlloca(1, IsAnd ? "and.res" : "or.res");
      Value *LHS = genExpr(*B.lhs());
      Builder->createStore(widen(LHS), ResultSlot);
      BasicBlock *RhsBB = newBlock(IsAnd ? "and.rhs" : "or.rhs");
      BasicBlock *MergeBB = newBlock(IsAnd ? "and.end" : "or.end");
      if (IsAnd)
        Builder->createCondBr(LHS, RhsBB, MergeBB);
      else
        Builder->createCondBr(LHS, MergeBB, RhsBB);

      Builder->setInsertPoint(RhsBB);
      Value *RHS = genExpr(*B.rhs());
      Builder->createStore(widen(RHS), ResultSlot);
      Builder->createBr(MergeBB);

      Builder->setInsertPoint(MergeBB);
      return narrow(Builder->createLoad(ResultSlot));
    }

    Value *L = genExpr(*B.lhs());
    Value *R = genExpr(*B.rhs());
    switch (B.op()) {
    case BinaryOp::Add:
      return Builder->createAdd(L, R);
    case BinaryOp::Sub:
      return Builder->createSub(L, R);
    case BinaryOp::Mul:
      return Builder->createMul(L, R);
    case BinaryOp::Div:
      return Builder->createSDiv(L, R);
    case BinaryOp::Rem:
      return Builder->createSRem(L, R);
    case BinaryOp::Eq:
      return Builder->createCmp(CmpPred::EQ, L, R);
    case BinaryOp::Ne:
      return Builder->createCmp(CmpPred::NE, L, R);
    case BinaryOp::Lt:
      return Builder->createCmp(CmpPred::SLT, L, R);
    case BinaryOp::Le:
      return Builder->createCmp(CmpPred::SLE, L, R);
    case BinaryOp::Gt:
      return Builder->createCmp(CmpPred::SGT, L, R);
    case BinaryOp::Ge:
      return Builder->createCmp(CmpPred::SGE, L, R);
    case BinaryOp::And:
    case BinaryOp::Or:
      break; // Handled above.
    }
    assert(false && "unhandled binary operator");
    return Builder->i64(0);
  }

  const ModuleAST &AST;
  std::string ModuleName;
  std::map<std::string, FunctionSignature> Signatures;
  std::unique_ptr<Module> M;
  std::unique_ptr<IRBuilder> Builder;
  std::map<std::string, GlobalVariable *> Globals;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  Function *CurrentFn = nullptr;
  BasicBlock *Entry = nullptr;
  unsigned BlockCounter = 0;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
};

} // namespace

std::unique_ptr<Module> sc::generateIR(const ModuleAST &AST,
                                       const std::string &ModuleName,
                                       const ModuleInterface &Callables) {
  IRGenerator Gen(AST, ModuleName, Callables);
  return Gen.run();
}
