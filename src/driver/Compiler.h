//===- driver/Compiler.h - Compilation facade -------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's public entry point: source text in, VISA object out.
/// One Compiler instance is configured either stateless (baseline) or
/// stateful (the paper's system, wired to a BuildStateDB). The build
/// system invokes compile() per dirty translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef SC_DRIVER_COMPILER_H
#define SC_DRIVER_COMPILER_H

#include "codegen/VISA.h"
#include "lang/Sema.h"
#include "pass/PassManager.h"
#include "state/BuildStateDB.h"
#include "state/StatefulPolicy.h"
#include "transforms/Passes.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace sc {

class TaskPool;
class TraceRecorder;
class MetricsRegistry;

/// Per-build memo of pre-optimization function fingerprints, keyed by
/// a hash of (TUKey, source bytes, visible import signatures) — the
/// complete input of IR generation, hence of the fingerprints. A TU
/// recompiled because a dependency's *implementation* changed (its
/// interface hash is what the key folds in) hits the memo and skips
/// re-hashing every function. Thread-safe; shared across the parallel
/// compilations of one BuildDriver.
class FingerprintMemo {
public:
  /// Copies the memoized fingerprints into \p Out on hit.
  bool lookup(uint64_t Key, std::map<std::string, uint64_t> &Out) const;

  void insert(uint64_t Key, std::map<std::string, uint64_t> Fingerprints);

  size_t size() const;

private:
  /// Sharded by key so the parallel compilations of one build don't
  /// serialize on a single memo mutex (contention tracked via
  /// fingerprintMemoContention()).
  static constexpr size_t NumShards = 8;
  struct Shard {
    mutable std::mutex Mu;
    std::map<uint64_t, std::map<std::string, uint64_t>> Entries;
  };
  Shard &shardFor(uint64_t Key) {
    return Shards[(Key * 0x9E3779B97F4A7C15ull) >> 61];
  }
  const Shard &shardFor(uint64_t Key) const {
    return Shards[(Key * 0x9E3779B97F4A7C15ull) >> 61];
  }
  Shard Shards[NumShards];
};

struct CompilerOptions {
  OptLevel Opt = OptLevel::O2;

  /// Skip policy. Mode::Stateless is the baseline compiler; the other
  /// modes require a BuildStateDB to be attached.
  StatefulConfig Stateful{StatefulConfig::Mode::Stateless, 0, true};

  /// Run the IR verifier after each changing pass (tests/debugging).
  bool VerifyEach = false;

  /// Folded into the pipeline signature: bump to invalidate all
  /// persisted dormancy state (simulates a compiler upgrade).
  uint32_t CompilerVersion = 1;

  /// Optional shared worker pool enabling function-level parallelism
  /// in the middle end (and parallel fingerprinting). Owned by the
  /// caller (one pool per BuildDriver, shared with TU-level jobs).
  /// Deliberately NOT part of any configuration hash: parallelism
  /// never changes output, so dormancy state is portable across -j.
  TaskPool *Workers = nullptr;

  /// Optional per-build fingerprint memo; see FingerprintMemo.
  FingerprintMemo *FPMemo = nullptr;

  /// Optional telemetry sinks (support/Trace.h, support/Metrics.h).
  /// Like Workers/FPMemo these are observation-only plumbing: they
  /// never change what the compiler produces and are deliberately NOT
  /// part of any configuration hash.
  TraceRecorder *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;

  /// Capture the per-(function, pass) decision log into
  /// CompileResult::Decisions (the `scbuild --explain` data source).
  bool RecordDecisions = false;

  /// Stateful modes only: instead of writing the TU's new state into
  /// the BuildStateDB at the end of compile() (one shard lock per TU,
  /// from many workers at once), return it in CompileResult::NewState
  /// for the caller to apply in one batch per build — see
  /// BuildStateDB::applyBatch(). The DB is still required for
  /// LOOKUPS of the previous state. Callers that set this own the
  /// write-back; dropping the result loses the TU's dormancy state.
  bool DeferStateWrite = false;
};

/// Wall-clock spent per compilation phase, in microseconds.
struct PhaseTimings {
  double FrontendUs = 0; // Lex + parse + sema + IR generation.
  double MiddleUs = 0;   // Optimization pipeline.
  double BackendUs = 0;  // ISel + RA + peephole + object emission.
  double StateUs = 0;    // Fingerprinting + state bookkeeping.

  double totalUs() const {
    return FrontendUs + MiddleUs + BackendUs + StateUs;
  }

  /// Folds another TU's timings into this one (commutative, so the
  /// per-worker merge order of parallel builds never changes totals).
  void accumulate(const PhaseTimings &Other) {
    FrontendUs += Other.FrontendUs;
    MiddleUs += Other.MiddleUs;
    BackendUs += Other.BackendUs;
    StateUs += Other.StateUs;
  }
};

struct CompileResult {
  bool Success = false;
  std::string DiagText; // Rendered diagnostics when !Success.

  MModule Object;            // Valid when Success.
  ModuleInterface Interface; // Exported function signatures.

  PhaseTimings Timings;
  PipelineStats PassStats;
  StatefulStats SkipStats;
  TUDecisionLog Decisions; // Populated when Options.RecordDecisions.
  std::map<std::string, uint64_t> Fingerprints;
  size_t IRInstsBeforeOpt = 0;
  size_t IRInstsAfterOpt = 0;

  /// The TU state to persist, populated (with HasNewState set) only
  /// when Options.DeferStateWrite is on; the caller batches it into
  /// the BuildStateDB.
  bool HasNewState = false;
  TUState NewState;
};

class Compiler {
public:
  /// \p DB may be null only for Mode::Stateless.
  explicit Compiler(CompilerOptions Options, BuildStateDB *DB = nullptr);

  /// Compiles one translation unit. \p TUKey names the unit in the
  /// BuildStateDB (the build system passes the source path);
  /// \p Imports lists the signatures made visible by the unit's
  /// imports (resolved by the caller).
  CompileResult compile(const std::string &TUKey, const std::string &Source,
                        const ModuleInterface &Imports);

  /// Parses just enough of \p Source to extract its exported interface
  /// and import list (used by the build system's dependency scanner).
  /// Returns std::nullopt on syntax errors.
  static std::optional<std::pair<ModuleInterface, std::vector<std::string>>>
  scanInterface(const std::string &Source);

  const CompilerOptions &options() const { return Options; }
  const PassPipeline &pipeline() const { return Pipeline; }

  /// Pipeline signature including opt level and compiler version.
  uint64_t pipelineSignature() const;

private:
  CompilerOptions Options;
  BuildStateDB *DB;
  PassPipeline Pipeline;
};

} // namespace sc

#endif // SC_DRIVER_COMPILER_H
