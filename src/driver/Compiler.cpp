//===- driver/Compiler.cpp - Compilation facade --------------------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "analysis/CallGraph.h"
#include "codegen/ISel.h"
#include "codegen/ObjectFile.h"
#include "codegen/Peephole.h"
#include "codegen/RegAlloc.h"
#include "driver/IRGen.h"
#include "ir/StructuralHash.h"
#include "ir/Verifier.h"
#include "lang/Parser.h"
#include "support/ContentionStats.h"
#include "support/Hashing.h"
#include "support/Metrics.h"
#include "support/TaskPool.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "transforms/MemoryUtils.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace sc;

Compiler::Compiler(CompilerOptions Options, BuildStateDB *DB)
    : Options(Options), DB(DB), Pipeline(buildPipeline(Options.Opt)) {
  assert((DB || Options.Stateful.SkipMode ==
                    StatefulConfig::Mode::Stateless) &&
         "stateful modes require a BuildStateDB");
}

bool FingerprintMemo::lookup(uint64_t Key,
                             std::map<std::string, uint64_t> &Out) const {
  const Shard &S = shardFor(Key);
  auto Lock = timedLock(S.Mu, fingerprintMemoContention());
  auto It = S.Entries.find(Key);
  if (It == S.Entries.end())
    return false;
  Out = It->second;
  return true;
}

void FingerprintMemo::insert(uint64_t Key,
                             std::map<std::string, uint64_t> Fingerprints) {
  Shard &S = shardFor(Key);
  auto Lock = timedLock(S.Mu, fingerprintMemoContention());
  S.Entries[Key] = std::move(Fingerprints);
}

size_t FingerprintMemo::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Entries.size();
  }
  return N;
}

namespace {

/// Inline-closure code keys for every function of \p M (the
/// ReuseFunctionCode extension; see FunctionRecord::CodeKey). The key
/// must change whenever ANY input an optimization of this function
/// could observe changes:
///  * its own pre-optimization body (fingerprint);
///  * the body of every module-local function reachable through calls
///    (the inliner may splice them in, purity derives from them);
///  * the module's global-variable usage summary (globalopt folds
///    loads of never-written globals based on module-wide knowledge);
///  * the pipeline signature (different passes, different output).
std::map<std::string, uint64_t>
computeCodeKeys(const Module &M,
                const std::map<std::string, uint64_t> &Fingerprints,
                uint64_t PipelineSignature) {
  // Global usage summary.
  std::map<const GlobalVariable *, std::pair<bool, bool>> Usage;
  for (size_t I = 0; I != M.numFunctions(); ++I)
    M.function(I)->forEachInstruction([&](Instruction *Inst) {
      if (auto *Load = dyn_cast<LoadInst>(Inst)) {
        MemLocation Loc = decomposePointer(Load->pointer());
        if (auto *G = dyn_cast_if_present<GlobalVariable>(Loc.Base))
          Usage[G].first = true;
      } else if (auto *Store = dyn_cast<StoreInst>(Inst)) {
        MemLocation Loc = decomposePointer(Store->pointer());
        if (auto *G = dyn_cast_if_present<GlobalVariable>(Loc.Base))
          Usage[G].second = true;
      }
    });
  HashBuilder GH;
  for (size_t I = 0; I != M.numGlobals(); ++I) {
    const GlobalVariable *G = M.global(I);
    GH.addString(G->name());
    GH.addU64(G->size());
    GH.addI64(G->initValue());
    auto It = Usage.find(G);
    GH.addBool(It != Usage.end() && It->second.first);
    GH.addBool(It != Usage.end() && It->second.second);
  }
  uint64_t GlobalSummary = GH.digest();

  CallGraph CG = CallGraph::compute(M);
  std::map<std::string, uint64_t> Keys;
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    Function *F = M.function(I);
    // Transitive closure over module-local callees.
    std::set<const Function *> Closure;
    std::vector<const Function *> Work{F};
    bool CallsExtern = CG.hasExternalCallee(F);
    while (!Work.empty()) {
      const Function *Cur = Work.back();
      Work.pop_back();
      if (!Closure.insert(Cur).second)
        continue;
      CallsExtern |= CG.hasExternalCallee(Cur);
      for (Function *Callee : CG.callees(Cur))
        Work.push_back(Callee);
    }
    HashBuilder H;
    H.addU64(PipelineSignature);
    H.addU64(GlobalSummary);
    H.addBool(CallsExtern);
    // Closure fingerprints in name order for stability.
    std::vector<std::string> Names;
    for (const Function *C : Closure)
      Names.push_back(C->name());
    std::sort(Names.begin(), Names.end());
    for (const std::string &Name : Names) {
      H.addString(Name);
      auto It = Fingerprints.find(Name);
      H.addU64(It != Fingerprints.end() ? It->second : 0);
    }
    Keys[F->name()] = H.digest();
  }
  return Keys;
}

} // namespace

uint64_t Compiler::pipelineSignature() const {
  HashBuilder H;
  H.addU64(Pipeline.signature());
  H.addU32(static_cast<uint32_t>(Options.Opt));
  H.addU32(Options.CompilerVersion);
  return H.digest();
}

CompileResult Compiler::compile(const std::string &TUKey,
                                const std::string &Source,
                                const ModuleInterface &Imports) {
  CompileResult Result;
  Timer Frontend, Middle, Backend, State;

  // One span covering the whole TU job: in a parallel build these
  // spans land on different trace threads, making -j scheduling
  // visible. Phase sub-spans nest inside it.
  const bool Tracing = Options.Trace && Options.Trace->enabled();
  TraceSpan TUSpan(Options.Trace, "compile", "compile:" + TUKey);

  // Phase spans below are recorded retroactively (nowNanos window +
  // span() after the fact), which the sampling profiler cannot see —
  // so one SampleFrame tracks the current phase, switching at each
  // boundary. Sampled stacks read "compile:<tu>;frontend" etc.; the
  // destructor unwinds on the early-return paths.
  static const std::string FrontendPhase("frontend"), StatePhase("state"),
      MiddlePhase("middle"), BackendPhase("backend");
  SampleFrame Phase(Options.Trace, "compile.phase", FrontendPhase);

  //===--- Frontend: parse, sema, IR generation -----------------------------===//

  uint64_t PhaseT0 = nowNanos();
  Frontend.start();
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  std::unique_ptr<ModuleAST> AST = P.parseModule();
  ModuleInterface Exported = analyzeModule(*AST, Imports, Diags);
  if (Diags.hasErrors()) {
    Frontend.stop();
    Result.DiagText = Diags.render(TUKey);
    Result.Timings.FrontendUs = Frontend.micros();
    return Result;
  }

  // Callables: imports + own exports (sema validated no collisions).
  ModuleInterface Callables = Imports;
  Callables.insert(Callables.end(), Exported.begin(), Exported.end());
  std::unique_ptr<Module> M = generateIR(*AST, TUKey, Callables);
  Frontend.stop();
  if (Tracing)
    Options.Trace->span("compile.phase", "frontend:" + TUKey, PhaseT0,
                        nowNanos());

  {
    std::vector<std::string> Errors;
    if (!verifyModule(*M, Errors)) {
      Result.DiagText = "internal error: IR verification failed after "
                        "generation:\n";
      for (const std::string &E : Errors)
        Result.DiagText += "  " + E + "\n";
      return Result;
    }
  }

  Result.IRInstsBeforeOpt = 0;
  for (size_t I = 0; I != M->numFunctions(); ++I)
    Result.IRInstsBeforeOpt += M->function(I)->instructionCount();

  //===--- State: fingerprints and previous records -------------------------===//

  PhaseT0 = nowNanos();
  Phase.enter(StatePhase);
  State.start();
  uint64_t MemoKey = 0;
  bool MemoHit = false;
  if (Options.FPMemo) {
    // The fingerprints are a pure function of the generated IR, which
    // is a pure function of (TUKey, source, visible import
    // signatures) — fold exactly those into the memo key.
    HashBuilder MK;
    MK.addString(TUKey);
    MK.addString(Source);
    MK.addU64(Imports.size());
    for (const FunctionSignature &Sig : Imports) {
      MK.addString(Sig.Name);
      MK.addU32(static_cast<uint32_t>(Sig.ReturnType));
      MK.addU64(Sig.ParamTypes.size());
      for (TypeName T : Sig.ParamTypes)
        MK.addU32(static_cast<uint32_t>(T));
    }
    MemoKey = MK.digest();
    MemoHit = Options.FPMemo->lookup(MemoKey, Result.Fingerprints);
  }
  if (!MemoHit) {
    // Hash functions in parallel when a pool is available: disjoint
    // output slots, name-keyed map built afterwards in index order.
    const size_t NumFns = M->numFunctions();
    std::vector<uint64_t> Hashes(NumFns);
    auto HashOne = [&](size_t I, unsigned) {
      Hashes[I] = structuralHash(*M->function(I));
    };
    if (Options.Workers && NumFns > 1)
      Options.Workers->parallelFor(NumFns, HashOne);
    else
      for (size_t I = 0; I != NumFns; ++I)
        HashOne(I, 0);
    for (size_t I = 0; I != NumFns; ++I)
      Result.Fingerprints[M->function(I)->name()] = Hashes[I];
    if (Options.FPMemo)
      Options.FPMemo->insert(MemoKey, Result.Fingerprints);
  }

  std::unique_ptr<StatefulInstrumentation> Instr;
  std::map<std::string, uint64_t> CodeKeys;
  std::set<std::string> ReusedFunctions;
  const TUState *Prev = nullptr;
  if (Options.Stateful.SkipMode != StatefulConfig::Mode::Stateless) {
    Prev = DB->lookup(TUKey);
    Instr = std::make_unique<StatefulInstrumentation>(
        Options.Stateful, Prev, pipelineSignature(), Pipeline.size(),
        Result.Fingerprints);

    if (Options.Stateful.ReuseFunctionCode) {
      CodeKeys = computeCodeKeys(*M, Result.Fingerprints,
                                 pipelineSignature());
      if (Prev && Prev->PipelineSignature == pipelineSignature())
        for (const auto &[Name, Key] : CodeKeys) {
          auto It = Prev->Functions.find(Name);
          if (It != Prev->Functions.end() && It->second.CodeKey == Key &&
              !It->second.CachedCode.empty())
            ReusedFunctions.insert(Name);
        }
      Instr->setReusedFunctions(ReusedFunctions);
    }
  }
  State.stop();
  if (Options.Metrics) {
    Options.Metrics->counter(MemoHit ? "compiler.fingerprint_memo_hits"
                                     : "compiler.fingerprint_memo_misses")
        .add(1);
  }
  if (Tracing)
    Options.Trace->span("compile.phase", "state:" + TUKey, PhaseT0,
                        nowNanos());

  //===--- Middle end: the optimization pipeline ----------------------------===//

  PhaseT0 = nowNanos();
  Phase.enter(MiddlePhase);
  Middle.start();
  AnalysisManager AM(*M);
  Result.PassStats = Pipeline.run(*M, AM, Instr.get(), Options.VerifyEach,
                                  Options.Workers, Options.Trace);
  Middle.stop();
  if (Tracing)
    Options.Trace->span("compile.phase", "middle:" + TUKey, PhaseT0,
                        nowNanos());

  Result.IRInstsAfterOpt = 0;
  for (size_t I = 0; I != M->numFunctions(); ++I)
    Result.IRInstsAfterOpt += M->function(I)->instructionCount();

  //===--- Backend: isel, register allocation, peephole ----------------------===//
  // Functions whose inline-closure key matched splice their cached
  // compiled code instead of going through codegen.

  PhaseT0 = nowNanos();
  Phase.enter(BackendPhase);
  Backend.start();
  MModule Object;
  Object.Name = M->name();
  for (size_t I = 0; I != M->numGlobals(); ++I) {
    const GlobalVariable *G = M->global(I);
    Object.Globals.push_back({G->name(), G->size(), G->initValue()});
  }
  for (size_t I = 0; I != M->numFunctions(); ++I) {
    Function *F = M->function(I);
    if (ReusedFunctions.count(F->name())) {
      std::optional<MFunction> Cached =
          readFunctionBlob(Prev->Functions.at(F->name()).CachedCode);
      if (Cached) {
        Object.Functions.push_back(std::move(*Cached));
        continue;
      }
      // Corrupt blob (damaged state file): fall through and compile
      // normally. The function's passes were skipped, so the result
      // is valid but unoptimized — never wrong.
    }
    MFunction MF = selectInstructions(*F);
    allocateRegisters(MF);
    runPeephole(MF);
    Object.Functions.push_back(std::move(MF));
  }
  Backend.stop();
  if (Tracing)
    Options.Trace->span("compile.phase", "backend:" + TUKey, PhaseT0,
                        nowNanos());

  //===--- State: persist dormancy records and the code cache ----------------===//

  PhaseT0 = nowNanos();
  Phase.enter(StatePhase);
  State.start();
  if (Instr) {
    Result.SkipStats = Instr->stats();
    if (Options.RecordDecisions) {
      Result.Decisions = Instr->takeDecisions();
      Result.Decisions.PassNames.reserve(Pipeline.size());
      for (size_t I = 0; I != Pipeline.size(); ++I)
        Result.Decisions.PassNames.push_back(Pipeline.passName(I));
    }
    TUState NewState = Instr->takeNewState();
    if (Options.Stateful.ReuseFunctionCode) {
      for (const MFunction &MF : Object.Functions) {
        FunctionRecord &Rec = NewState.Functions[MF.Name];
        if (Rec.Dormancy.empty()) {
          // O0 pipelines produce no pass events; still fingerprint.
          auto FPIt = Result.Fingerprints.find(MF.Name);
          Rec.Fingerprint =
              FPIt != Result.Fingerprints.end() ? FPIt->second : 0;
        }
        auto KeyIt = CodeKeys.find(MF.Name);
        Rec.CodeKey = KeyIt != CodeKeys.end() ? KeyIt->second : 0;
        if (ReusedFunctions.count(MF.Name))
          // The spliced code came from the previous blob; keep it.
          Rec.CachedCode = Prev->Functions.at(MF.Name).CachedCode;
        else
          Rec.CachedCode = writeFunctionBlob(MF);
      }
    }
    if (Options.DeferStateWrite) {
      // Batched write-back: hand the state to the caller (Scheduler)
      // so one build applies all TU updates per DB shard in one lock
      // acquisition instead of locking per TU from every worker.
      Result.NewState = std::move(NewState);
      Result.HasNewState = true;
    } else {
      DB->update(TUKey, std::move(NewState));
    }
  }
  State.stop();
  if (Tracing) {
    Options.Trace->span("compile.phase", "state:" + TUKey, PhaseT0,
                        nowNanos());
    TUSpan.args("{\"passes_run\":" +
                std::to_string(Result.PassStats.FunctionPassRuns +
                               Result.PassStats.ModulePassRuns) +
                ",\"passes_skipped\":" +
                std::to_string(Result.PassStats.FunctionPassSkips +
                               Result.PassStats.ModulePassSkips) +
                ",\"functions_reused\":" +
                std::to_string(Result.SkipStats.FunctionsReused) + "}");
  }

  Result.Object = std::move(Object);
  Result.Interface = std::move(Exported);
  Result.Success = true;
  Result.Timings.FrontendUs = Frontend.micros();
  Result.Timings.MiddleUs = Middle.micros();
  Result.Timings.BackendUs = Backend.micros();
  Result.Timings.StateUs = State.micros();
  return Result;
}

std::optional<std::pair<ModuleInterface, std::vector<std::string>>>
Compiler::scanInterface(const std::string &Source) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  std::unique_ptr<ModuleAST> AST = P.parseModule();
  if (Diags.hasErrors())
    return std::nullopt;
  ModuleInterface Interface;
  for (const auto &F : AST->Functions) {
    FunctionSignature Sig;
    Sig.Name = F->name();
    Sig.ReturnType = F->returnType();
    for (const ParamDecl &Param : F->params())
      Sig.ParamTypes.push_back(Param.Type);
    Interface.push_back(std::move(Sig));
  }
  std::vector<std::string> ImportPaths;
  for (const ImportDecl &I : AST->Imports)
    ImportPaths.push_back(I.Path);
  return std::make_pair(std::move(Interface), std::move(ImportPaths));
}
