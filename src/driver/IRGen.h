//===- driver/IRGen.h - AST to IR lowering ----------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a type-checked ModuleAST to IR. Notable conventions:
///
///  * Variables live in entry-block allocas (mem2reg promotes them);
///    parameters are spilled to allocas on entry so they are mutable.
///  * Memory cells are i64; bool values are widened with
///    `select b, 1, 0` on store and narrowed with `cmp ne x, 0` on
///    load.
///  * `&&`/`||` lower to short-circuit control flow through a result
///    alloca.
///  * Globals are namespaced `<module>::<name>` so linked programs
///    never collide (globals are module-private at the language
///    level).
///
//===----------------------------------------------------------------------===//

#ifndef SC_DRIVER_IRGEN_H
#define SC_DRIVER_IRGEN_H

#include "ir/IR.h"
#include "lang/AST.h"
#include "lang/Sema.h"

#include <memory>
#include <string>

namespace sc {

/// Lowers \p AST (which must have passed sema) to an IR module named
/// \p ModuleName. \p Callables supplies return types for every
/// function callable from this module (locals + imports + print).
std::unique_ptr<Module> generateIR(const ModuleAST &AST,
                                   const std::string &ModuleName,
                                   const ModuleInterface &Callables);

} // namespace sc

#endif // SC_DRIVER_IRGEN_H
