//===- lang/Parser.h - MiniC recursive-descent parser -----------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a ModuleAST. On syntax errors the
/// parser reports a diagnostic and recovers at statement/declaration
/// boundaries so multiple errors can be reported in one run.
///
//===----------------------------------------------------------------------===//

#ifndef SC_LANG_PARSER_H
#define SC_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "lang/Lexer.h"

#include <memory>

namespace sc {

class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags);

  /// Parses a whole translation unit. Always returns a module (possibly
  /// partial); check Diags.hasErrors() for validity.
  std::unique_ptr<ModuleAST> parseModule();

private:
  // Token cursor over the pre-lexed buffer. save()/restore() give the
  // parser cheap backtracking for statement disambiguation.
  void consume();
  bool check(TokenKind Kind) const { return Tok.is(Kind); }
  const Token &peekAhead(size_t N = 1) const;
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToRecoveryPoint();
  size_t save() const { return Index; }
  void restore(size_t Saved);

  // Declarations.
  void parseImport(ModuleAST &M);
  void parseGlobal(ModuleAST &M);
  std::unique_ptr<FunctionDecl> parseFunction();
  bool parseType(TypeName &Out);

  // Statements.
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStatement();
  StmtPtr parseSimpleStatement(bool RequireSemicolon);
  StmtPtr parseIf();

  // Expressions (precedence climbing via nested productions).
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t Index = 0;
  Token Tok;
};

} // namespace sc

#endif // SC_LANG_PARSER_H
