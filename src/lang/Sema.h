//===- lang/Sema.h - MiniC semantic analysis --------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking and name resolution for a parsed ModuleAST. Sema
/// annotates the AST in place (expression types, global-reference
/// flags) and computes the module's exported interface, which the build
/// system hands to importers.
///
/// Cross-module model: `import "x.mc"` makes the *functions* of x.mc
/// callable; globals are always module-private. The builtin
/// `print(int)` is available everywhere and is lowered to a VM
/// intrinsic.
///
//===----------------------------------------------------------------------===//

#ifndef SC_LANG_SEMA_H
#define SC_LANG_SEMA_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace sc {

/// Callable signature as seen by importers and the linker.
struct FunctionSignature {
  std::string Name;
  std::vector<TypeName> ParamTypes;
  TypeName ReturnType = TypeName::Void;

  bool operator==(const FunctionSignature &RHS) const {
    return Name == RHS.Name && ParamTypes == RHS.ParamTypes &&
           ReturnType == RHS.ReturnType;
  }
};

/// The exported interface of one module: its public functions.
using ModuleInterface = std::vector<FunctionSignature>;

/// Runs semantic analysis over \p M.
///
/// \param Imported functions made visible by the module's imports
///        (resolved by the caller — the driver or build system).
/// \returns the module's own exported interface (valid even when
///          diagnostics were reported, for best-effort tooling).
ModuleInterface analyzeModule(ModuleAST &M, const ModuleInterface &Imported,
                              DiagnosticEngine &Diags);

/// Returns the signature of the `print` builtin.
const FunctionSignature &printBuiltinSignature();

} // namespace sc

#endif // SC_LANG_SEMA_H
