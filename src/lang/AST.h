//===- lang/AST.h - MiniC abstract syntax tree ------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node hierarchy for MiniC with LLVM-style RTTI. Ownership flows
/// top-down through unique_ptr; sema annotates nodes in place (resolved
/// declarations and expression types) before IR generation consumes
/// the tree.
///
/// MiniC summary:
/// \code
///   import "util.mc";
///   global counter = 0;
///   global table[64];
///   fn clamp(x: int, lo: int, hi: int) -> int {
///     if (x < lo) { return lo; }
///     if (x > hi) { return hi; }
///     return x;
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SC_LANG_AST_H
#define SC_LANG_AST_H

#include "lang/Token.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <vector>

namespace sc {

/// MiniC surface types. Arrays only exist as named global/local storage
/// (no first-class array values), so the expression type system is just
/// Int / Bool plus Void for functions without a return value.
enum class TypeName : uint8_t { Int, Bool, Void };

const char *typeNameSpelling(TypeName T);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr {
public:
  enum class Kind : uint8_t {
    IntLiteral,
    BoolLiteral,
    VarRef,
    Unary,
    Binary,
    Call,
    Index,
  };

  virtual ~Expr() = default;

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Expression type, filled in by sema (meaningless before then).
  TypeName ExprType = TypeName::Int;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  int64_t Value;
};

class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLiteral, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::BoolLiteral; }

private:
  bool Value;
};

/// Reference to a local variable, parameter, or global scalar.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Set by sema: true when this resolves to a global symbol.
  bool IsGlobal = false;

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
};

enum class UnaryOp : uint8_t { Neg, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, // Short-circuit &&.
  Or,  // Short-circuit ||.
};

const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// Array element read: `name[index]`.
class IndexExpr : public Expr {
public:
  IndexExpr(std::string ArrayName, ExprPtr Index, SourceLoc Loc)
      : Expr(Kind::Index, Loc), ArrayName(std::move(ArrayName)),
        Index(std::move(Index)) {}

  const std::string &arrayName() const { return ArrayName; }
  Expr *index() const { return Index.get(); }

  /// Set by sema: true when the array is a global.
  bool IsGlobal = false;

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  std::string ArrayName;
  ExprPtr Index;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind : uint8_t {
    Block,
    VarDecl,
    ArrayDecl,
    Assign,
    IndexAssign,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    Expr,
  };

  virtual ~Stmt() = default;

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &statements() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// `var x = init;` or `var x: int = init;`
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, TypeName DeclType, bool HasExplicitType,
              ExprPtr Init, SourceLoc Loc)
      : Stmt(Kind::VarDecl, Loc), Name(std::move(Name)), DeclType(DeclType),
        HasExplicitType(HasExplicitType), Init(std::move(Init)) {}

  const std::string &name() const { return Name; }
  TypeName declType() const { return DeclType; }
  bool hasExplicitType() const { return HasExplicitType; }
  Expr *init() const { return Init.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }

private:
  std::string Name;
  TypeName DeclType;
  bool HasExplicitType;
  ExprPtr Init;
};

/// `var buf[N];` — a fixed-size local int array.
class ArrayDeclStmt : public Stmt {
public:
  ArrayDeclStmt(std::string Name, uint64_t Size, SourceLoc Loc)
      : Stmt(Kind::ArrayDecl, Loc), Name(std::move(Name)), Size(Size) {}

  const std::string &name() const { return Name; }
  uint64_t size() const { return Size; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ArrayDecl; }

private:
  std::string Name;
  uint64_t Size;
};

/// `x = expr;`
class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Name, ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}

  const std::string &name() const { return Name; }
  Expr *value() const { return Value.get(); }

  /// Set by sema: true when assigning a global scalar.
  bool IsGlobal = false;

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  std::string Name;
  ExprPtr Value;
};

/// `arr[i] = expr;`
class IndexAssignStmt : public Stmt {
public:
  IndexAssignStmt(std::string ArrayName, ExprPtr Index, ExprPtr Value,
                  SourceLoc Loc)
      : Stmt(Kind::IndexAssign, Loc), ArrayName(std::move(ArrayName)),
        Index(std::move(Index)), Value(std::move(Value)) {}

  const std::string &arrayName() const { return ArrayName; }
  Expr *index() const { return Index.get(); }
  Expr *value() const { return Value.get(); }

  /// Set by sema: true when the array is a global.
  bool IsGlobal = false;

  static bool classof(const Stmt *S) { return S->kind() == Kind::IndexAssign; }

private:
  std::string ArrayName;
  ExprPtr Index, Value;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenBranch() const { return Then.get(); }
  /// May be null when there is no else branch.
  Stmt *elseBranch() const { return Else.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then, Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// `for (init; cond; step) { ... }` — all three clauses optional.
class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  Stmt *init() const { return Init.get(); }
  Expr *cond() const { return Cond.get(); }
  Stmt *step() const { return Step.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  StmtPtr Init;
  ExprPtr Cond;
  StmtPtr Step, Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  /// May be null for `return;` in a void function.
  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(Kind::Expr, Loc), E(std::move(E)) {}

  Expr *expr() const { return E.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  ExprPtr E;
};

//===----------------------------------------------------------------------===//
// Declarations and the translation unit
//===----------------------------------------------------------------------===//

struct ParamDecl {
  std::string Name;
  TypeName Type = TypeName::Int;
  SourceLoc Loc;
};

class FunctionDecl {
public:
  FunctionDecl(std::string Name, std::vector<ParamDecl> Params,
               TypeName ReturnType, std::unique_ptr<BlockStmt> Body,
               SourceLoc Loc)
      : Name(std::move(Name)), Params(std::move(Params)),
        ReturnType(ReturnType), Body(std::move(Body)), Loc(Loc) {}

  const std::string &name() const { return Name; }
  const std::vector<ParamDecl> &params() const { return Params; }
  TypeName returnType() const { return ReturnType; }
  BlockStmt *body() const { return Body.get(); }
  SourceLoc loc() const { return Loc; }

private:
  std::string Name;
  std::vector<ParamDecl> Params;
  TypeName ReturnType;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
};

/// `global g = 3;` (scalar) or `global buf[64];` (int array).
struct GlobalDecl {
  std::string Name;
  bool IsArray = false;
  uint64_t ArraySize = 0; // Valid when IsArray.
  int64_t InitValue = 0;  // Valid when !IsArray.
  SourceLoc Loc;
};

struct ImportDecl {
  std::string Path;
  SourceLoc Loc;
};

/// Root of a parsed translation unit.
class ModuleAST {
public:
  std::vector<ImportDecl> Imports;
  std::vector<GlobalDecl> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  /// Finds a function by name; returns null if absent.
  const FunctionDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace sc

#endif // SC_LANG_AST_H
