//===- lang/Diagnostics.h - Diagnostic collection ---------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects compiler diagnostics. Library code never prints or exits;
/// the driver decides how to render accumulated diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SC_LANG_DIAGNOSTICS_H
#define SC_LANG_DIAGNOSTICS_H

#include "lang/Token.h"

#include <string>
#include <vector>

namespace sc {

enum class DiagSeverity : uint8_t { Error, Warning, Note };

/// One reported diagnostic with its location in the current file.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics during lexing, parsing, and sema.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines,
  /// prefixed with \p FileName when non-empty.
  std::string render(const std::string &FileName = std::string()) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace sc

#endif // SC_LANG_DIAGNOSTICS_H
