//===- lang/Diagnostics.cpp - Diagnostic rendering -------------------------===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Diagnostics.h"

#include <sstream>

using namespace sc;

std::string DiagnosticEngine::render(const std::string &FileName) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (!FileName.empty())
      OS << FileName << ":";
    OS << D.Loc.Line << ":" << D.Loc.Col << ": ";
    switch (D.Severity) {
    case DiagSeverity::Error:
      OS << "error: ";
      break;
    case DiagSeverity::Warning:
      OS << "warning: ";
      break;
    case DiagSeverity::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << "\n";
  }
  return OS.str();
}
