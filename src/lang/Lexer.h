//===- lang/Lexer.h - MiniC lexer -------------------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Supports `//` line comments, decimal
/// integer literals, and double-quoted strings (used only by `import`).
///
//===----------------------------------------------------------------------===//

#ifndef SC_LANG_LEXER_H
#define SC_LANG_LEXER_H

#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace sc {

/// Converts a source buffer into a token stream. The buffer must stay
/// alive while any produced Token is in use (tokens hold string_views).
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token (Eof repeatedly at end of input).
  Token next();

  /// Lexes the whole buffer, including the trailing Eof token.
  std::vector<Token> lexAll();

private:
  void skipTrivia();
  Token makeToken(TokenKind Kind, size_t Begin);
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexString();

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc loc() const { return {Line, Col}; }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace sc

#endif // SC_LANG_LEXER_H
