//===- lang/Token.h - MiniC token definitions -------------------*- C++ -*-===//
//
// Part of the stateful-compiler project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the Lexer.
///
//===----------------------------------------------------------------------===//

#ifndef SC_LANG_TOKEN_H
#define SC_LANG_TOKEN_H

#include <cstdint>
#include <string>
#include <string_view>

namespace sc {

/// Source position (1-based line and column) within a single file.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
};

enum class TokenKind : uint8_t {
  // Sentinels.
  Eof,
  Error,

  // Literals and identifiers.
  Identifier,
  IntLiteral,
  StringLiteral,

  // Keywords.
  KwFn,
  KwVar,
  KwGlobal,
  KwImport,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwInt,
  KwBool,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Arrow, // ->

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Assign,       // =
  EqualEqual,   // ==
  NotEqual,     // !=
  Less,         // <
  LessEqual,    // <=
  Greater,      // >
  GreaterEqual, // >=
  AmpAmp,       // &&
  PipePipe,     // ||
  Not,          // !
};

/// Returns a human-readable spelling for diagnostics ("'=='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// A single lexed token. \c Text references the source buffer, so a Token
/// must not outlive the string the Lexer was constructed with.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  SourceLoc Loc;

  /// Integer value; only meaningful when Kind == IntLiteral.
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace sc

#endif // SC_LANG_TOKEN_H
